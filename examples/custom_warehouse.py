"""Custom warehouse: build a floor plan and workload from the raw API.

Everything the dataset generators do can be done by hand: lay out a
floor, pin racks to pickers, write an item schedule, pick a planner
configuration, and inspect individual fulfilment cycles afterwards.
This example builds a small cross-dock-style warehouse where one picker
handles export orders (bursty) and one handles returns (steady drip).

Run::

    python examples/custom_warehouse.py
"""

from repro import (EfficientAdaptiveTaskPlanner, Item, PlannerConfig,
                   QLearningConfig, Simulation, WarehouseState, build_layout)
from repro.sim.missions import MissionStage


def main() -> None:
    # 1. Floor plan: 28x18 cells, 24 racks in blocks, 2 picker stations.
    layout = build_layout(28, 18, n_racks=24, n_pickers=2,
                          block_width=3, block_height=2, aisle=1)

    # 2. Pin racks to pickers: left half exports (picker 0), right half
    #    returns (picker 1) — the fixed rack→picker association of the
    #    rack-to-picker mode.
    rack_to_picker = [0 if home[0] < 14 else 1
                      for home in layout.rack_homes]
    state = WarehouseState.from_layout(layout, n_robots=4,
                                       rack_to_picker=rack_to_picker)

    # 3. Workload: a burst of export items at t=100 plus a steady drip of
    #    returns every 40 ticks.
    exports = [rack.rack_id for rack in state.racks if rack.picker_id == 0]
    returns = [rack.rack_id for rack in state.racks if rack.picker_id == 1]
    items = []
    item_id = 0
    for i in range(30):  # the burst
        items.append(Item(item_id, exports[i % len(exports)],
                          arrival=100 + i, processing_time=15))
        item_id += 1
    for i in range(20):  # the drip
        items.append(Item(item_id, returns[i % len(returns)],
                          arrival=40 * i, processing_time=25))
        item_id += 1

    # 4. A patient planner configuration: less exploration noise, deeper
    #    batching than the defaults.
    config = PlannerConfig(
        knn_k=6, cache_threshold=10,
        qlearning=QLearningConfig(delta=0.1, epsilon=0.05,
                                  deferral_weight=8.0))
    planner = EfficientAdaptiveTaskPlanner(state, config)
    result = Simulation(state, planner, items).run()

    print(f"Makespan: {result.metrics.makespan} ticks, "
          f"{result.metrics.missions_completed} fulfilment cycles for "
          f"{result.metrics.items_processed} items\n")

    # 5. Inspect the cycles: per picker, how the batches formed.
    for picker_id, label in ((0, "exports (burst)"), (1, "returns (drip)")):
        cycles = [m for m in result.missions
                  if state.racks[m.rack_id].picker_id == picker_id]
        total = sum(m.n_items for m in cycles)
        mean_batch = total / len(cycles) if cycles else 0.0
        print(f"Picker {picker_id} {label}: {len(cycles)} cycles, "
              f"{total} items, {mean_batch:.2f} items/cycle")

    slowest = max(result.missions,
                  key=lambda m: m.stage_entered_at - m.dispatched_at)
    assert slowest.stage is MissionStage.DONE
    print(f"\nLongest cycle: rack {slowest.rack_id} "
          f"({slowest.n_items} items), dispatched t={slowest.dispatched_at}, "
          f"returned t={slowest.stage_entered_at}")


if __name__ == "__main__":
    main()
