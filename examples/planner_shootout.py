"""Planner shootout: all five algorithms on an identical workload.

Reproduces the flavour of the paper's Table III on one dataset: every
planner sees a byte-identical item stream over a fresh copy of the same
warehouse, and the effectiveness/efficiency metrics are printed side by
side.

Run::

    python examples/planner_shootout.py [dataset] [scale]

``dataset`` ∈ {Syn-A, Syn-B, Real-Norm, Real-Large} (default Syn-A);
``scale`` is a float multiplier (default 0.4).
"""

import sys

from repro import PLANNERS, Simulation, all_datasets
from repro.experiments.reporting import format_table, percent_improvement


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "Syn-A"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.4
    scenario = all_datasets(scale)[dataset]
    print(f"Dataset {scenario.name} at scale {scale}: "
          f"{scenario.n_items} items, {scenario.n_racks} racks, "
          f"{scenario.n_robots} robots — {scenario.description}")

    rows = []
    makespans = {}
    for name, cls in PLANNERS.items():
        state, items = scenario.build()
        planner = cls(state)
        metrics = Simulation(state, planner, items).run().metrics
        makespans[name] = metrics.makespan
        rows.append([
            name,
            f"{metrics.makespan:,}",
            f"{metrics.ppr:.3f}",
            f"{metrics.rwr:.3f}",
            f"{metrics.selection_seconds:.3f}",
            f"{metrics.planning_seconds:.2f}",
            f"{metrics.peak_memory_bytes // 1024}",
        ])
    print(format_table(
        ["Method", "Makespan", "PPR", "RWR", "STC/s", "PTC/s", "MC/KiB"],
        rows))

    worst_baseline = max(makespans[n] for n in ("NTP", "LEF", "ILP"))
    best_adaptive = min(makespans["ATP"], makespans["EATP"])
    print(f"\nAdaptive planning reduces makespan by "
          f"{percent_improvement(worst_baseline, best_adaptive):.1f}% "
          f"vs the worst baseline.")


if __name__ == "__main__":
    main()
