"""Quickstart: run the EATP planner on a scaled-down Syn-A warehouse.

This is the smallest end-to-end use of the library: build a dataset,
construct a planner over a fresh world, simulate, and read the metrics
the paper reports.

Run::

    python examples/quickstart.py
"""

from repro import EfficientAdaptiveTaskPlanner, Simulation, make_syn_a
from repro.warehouse import render_state


def main() -> None:
    # A quarter-scale Syn-A: ~300 items, seconds to run.
    scenario = make_syn_a(scale=0.25)
    state, items = scenario.build()
    print(f"Warehouse: {state.grid.width}x{state.grid.height}, "
          f"{len(state.racks)} racks, {len(state.pickers)} pickers, "
          f"{len(state.robots)} robots, {len(items)} items")
    print(render_state(state, show_legend=True))
    print()

    planner = EfficientAdaptiveTaskPlanner(state)
    result = Simulation(state, planner, items).run()

    m = result.metrics
    print(f"Makespan (M):              {m.makespan} ticks")
    print(f"Picker processing rate:    {m.ppr:.3f}")
    print(f"Robot working rate:        {m.rwr:.3f}")
    print(f"Missions (fulfil cycles):  {m.missions_completed}")
    print(f"Mean batch size:           "
          f"{m.items_processed / m.missions_completed:.2f} items/cycle")
    print(f"Selection time (STC):      {m.selection_seconds * 1e3:.1f} ms")
    print(f"Planning time (PTC):       {m.planning_seconds * 1e3:.1f} ms")
    print(f"Peak structures (MC):      {m.peak_memory_bytes // 1024} KiB")
    print(f"Cache-finished legs:       {planner.stats.cache_finished_legs}"
          f"/{planner.stats.legs_planned}")


if __name__ == "__main__":
    main()
