"""Surge day: watch the fulfilment bottleneck migrate during a spike.

Reproduces the paper's Fig. 13 case study on a synthetic "midnight
carnival" workload: arrivals ramp from a trickle to a surge and back.
The bottleneck trace shows transport dominating while traffic is light,
queuing taking over as picker queues build at the peak, and the adaptive
planner's batch sizes growing in response — the behaviour the paper's
case study reports from the Geekplus warehouse.

Run::

    python examples/surge_day.py
"""

from repro import AdaptiveTaskPlanner, Simulation, SimulationConfig
from repro.workloads.scenario import ItemStreamSpec, ScenarioSpec


def build_surge_scenario() -> ScenarioSpec:
    n_racks = 60
    return ScenarioSpec(
        name="surge-day", width=36, height=24, n_racks=n_racks,
        n_pickers=8, n_robots=8,
        items=ItemStreamSpec.of(
            "surge", n_items=900, n_racks=n_racks, base_rate=0.2,
            peak_rate=1.4, ramp_fraction=0.25, seed=42),
        description="ramp → surge → tail, Zipf rack popularity")


def main() -> None:
    scenario = build_surge_scenario()
    state, items = scenario.build()
    planner = AdaptiveTaskPlanner(state)
    config = SimulationConfig(record_bottleneck_trace=True)
    result = Simulation(state, planner, items, config).run()

    print(f"Makespan: {result.metrics.makespan} ticks over "
          f"{result.metrics.items_processed} items\n")

    # The dominant fulfilment step per 200-tick window, Fig. 13 style.
    timeline = result.trace.bottleneck_timeline(window=200)
    glyphs = {"transport": "T", "queuing": "Q", "processing": "P"}
    print("Bottleneck per 200-tick window "
          "(T=transport, Q=queuing, P=processing):")
    print("  " + " ".join(glyphs[w] for w in timeline))

    final = result.trace.samples[-1]
    print(f"\nCumulative mission-ticks per step:")
    print(f"  transport:  {final.cum_transport:>8,}")
    print(f"  queuing:    {final.cum_queuing:>8,}")
    print(f"  processing: {final.cum_processing:>8,}")

    # Batch sizes over the run: the adaptive policy batches harder as the
    # surge builds (the paper's single-rack illustration).
    thirds = len(result.missions) // 3 or 1
    for label, chunk in (("early", result.missions[:thirds]),
                         ("peak", result.missions[thirds:2 * thirds]),
                         ("tail", result.missions[2 * thirds:])):
        if chunk:
            mean_batch = sum(m.n_items for m in chunk) / len(chunk)
            print(f"Mean batch size ({label}): {mean_batch:.2f} items/cycle")


if __name__ == "__main__":
    main()
