"""Unit tests for warehouse entities (Item, Rack, Picker, Robot)."""

import pytest

from repro.warehouse.entities import (Item, Picker, Rack, RackPhase, Robot,
                                      RobotState)


class TestItem:
    def test_valid_item(self):
        item = Item(item_id=1, rack_id=0, arrival=5, processing_time=20)
        assert item.processing_time == 20

    def test_rejects_non_positive_processing(self):
        with pytest.raises(ValueError):
            Item(item_id=1, rack_id=0, arrival=0, processing_time=0)

    def test_rejects_negative_arrival(self):
        with pytest.raises(ValueError):
            Item(item_id=1, rack_id=0, arrival=-1, processing_time=5)

    def test_frozen(self):
        item = Item(item_id=1, rack_id=0, arrival=0, processing_time=5)
        with pytest.raises(Exception):
            item.arrival = 3


class TestRack:
    def make_rack(self):
        return Rack(rack_id=0, home=(2, 3), picker_id=1)

    def test_initially_empty_and_stored(self):
        rack = self.make_rack()
        assert not rack.has_pending
        assert rack.phase is RackPhase.STORED
        assert rack.pending_processing_time == 0
        assert rack.oldest_arrival is None

    def test_pending_processing_time_sums_items(self):
        rack = self.make_rack()
        rack.pending_items = [Item(0, 0, 0, 7), Item(1, 0, 2, 9)]
        assert rack.pending_processing_time == 16

    def test_oldest_arrival(self):
        rack = self.make_rack()
        rack.pending_items = [Item(0, 0, 8, 7), Item(1, 0, 2, 9)]
        assert rack.oldest_arrival == 2

    def test_take_batch_empties_pending(self):
        rack = self.make_rack()
        rack.pending_items = [Item(0, 0, 0, 7)]
        batch = rack.take_batch()
        assert len(batch) == 1
        assert not rack.has_pending

    def test_items_after_take_batch_form_next_batch(self):
        rack = self.make_rack()
        rack.pending_items = [Item(0, 0, 0, 7)]
        rack.take_batch()
        rack.pending_items.append(Item(1, 0, 5, 9))
        assert rack.pending_processing_time == 9


class TestPicker:
    def test_finish_time_estimate_is_eq3(self):
        picker = Picker(picker_id=0, location=(0, 9))
        picker.remaining_current = 12
        picker.queued_processing = 30
        assert picker.finish_time_estimate == 42

    def test_is_busy(self):
        picker = Picker(picker_id=0, location=(0, 9))
        assert not picker.is_busy
        picker.current_rack = 3
        assert picker.is_busy


class TestRobot:
    def test_initially_idle(self):
        robot = Robot(robot_id=0, location=(1, 1))
        assert robot.is_idle
        assert robot.state is RobotState.IDLE

    def test_busy_states(self):
        assert not RobotState.IDLE.busy
        for state in RobotState:
            if state is not RobotState.IDLE:
                assert state.busy
