"""The tier-0 free-flow fast path: descent identity, audits, counters.

The fast path's correctness claim is sharp — *a conflict-free greedy
descent on the exact heuristic field is byte-identical to what the full
spatiotemporal search would return* — so the suite pins it three ways:

* property tests that descent paths equal ``find_path`` on empty
  reservation tables, across the shared obstructed fixtures and
  randomized pillar grids;
* audit-rejection tests on the corridor fixtures of the pipeline suite,
  including the finisher-emulation path EATP takes;
* end-to-end equivalence: whole simulations with the fast path on and
  off produce identical deterministic views, and the hit/miss/audit
  counters round-trip through serialization.
"""

from __future__ import annotations

import random

import pytest

from repro.config import PlannerConfig, SimulationConfig
from repro.pathfinding.cache import ShortestPathCache, make_wait_finisher
from repro.pathfinding.cdt import ConflictDetectionTable
from repro.pathfinding.free_flow import FreeFlowPathCache
from repro.pathfinding.heuristics import HeuristicFieldCache
from repro.pathfinding.paths import Path
from repro.pathfinding.pipeline import (FASTPATH_AUDIT_REJECT, FASTPATH_HIT,
                                        FASTPATH_MISS, FASTPATH_OFF,
                                        TIER_FREE_FLOW, TIER_FULL,
                                        FallbackChain)
from repro.pathfinding._kernel import build_and_load
from repro.pathfinding.reservation import ReservationTable
from repro.pathfinding.spatiotemporal_graph import SpatiotemporalGraph
from repro.pathfinding.st_astar import (SearchStats, find_path,
                                        search_kernel_name,
                                        set_search_kernel)
from repro.planners import PLANNERS
from repro.sim.serialize import (deterministic_view, metrics_from_dict,
                                 metrics_to_dict, result_to_dict)
from repro.warehouse.grid import Grid
from repro.workloads.datasets import make_mini

# The shared obstructed fixtures of the heuristic-field suite — imported,
# not copied, so a fixture fix there keeps pinning the descent identity
# here too.
from test_heuristic_fields import GRIDS


_COMPILED = build_and_load()

#: Every test in this module runs once per available kernel plane: the
#: descent/audit/end-to-end claims must hold bit-identically whether the
#: tier-0 body executes in python or through the fused native entry point.
KERNELS = ["python"] + (["compiled"] if _COMPILED is not None else [])


@pytest.fixture(autouse=True, params=KERNELS)
def tier0_kernel(request):
    previous = search_kernel_name()
    set_search_kernel(request.param)
    yield request.param
    set_search_kernel(previous)


def random_pillar_grid(rng: random.Random) -> Grid:
    """A randomized obstructed grid that stays fully connected.

    Isolated pillars (no two adjacent, none on the boundary) can never
    disconnect a 4-connected grid, so every (source, goal) pair over the
    free cells is searchable.
    """
    width = rng.randint(7, 14)
    height = rng.randint(6, 12)
    blocked = set()
    for __ in range(rng.randint(3, 10)):
        x = rng.randrange(1, width - 1)
        y = rng.randrange(1, height - 1)
        if not any((x + dx, y + dy) in blocked
                   for dx in (-1, 0, 1) for dy in (-1, 0, 1)):
            blocked.add((x, y))
    return Grid(width, height, blocked=blocked)


def make_cache(grid: Grid) -> FreeFlowPathCache:
    return FreeFlowPathCache(grid, HeuristicFieldCache(grid))


def make_chain(grid: Grid, reservation, config=None,
               finisher_factory=None) -> FallbackChain:
    heuristics = HeuristicFieldCache(grid)
    config = config if config is not None else PlannerConfig()
    finisher_factory = finisher_factory or (lambda goal: (None, 0))

    def full(t, source, goal):
        finisher, trigger = finisher_factory(goal)
        return find_path(grid, reservation, source, goal, t,
                         heuristic=heuristics.field(goal),
                         max_expansions=config.max_search_expansions,
                         finisher=finisher, finisher_trigger=trigger)

    return FallbackChain(grid=grid, reservation=reservation,
                         heuristics=heuristics, config=config,
                         full_search=full,
                         finisher_factory=finisher_factory)


class TestDescentMatchesSearch:
    """Descents are byte-identical to the search on empty tables."""

    @pytest.mark.parametrize("name", sorted(GRIDS))
    def test_fixture_grids(self, name):
        grid = GRIDS[name]
        cache = make_cache(grid)
        cells = list(grid.cells())
        rng = random.Random(7)
        for __ in range(25):
            source, goal = rng.choice(cells), rng.choice(cells)
            chain = cache.descent(source, goal)
            searched = find_path(grid, ConflictDetectionTable(), source,
                                 goal, 0,
                                 heuristic=cache._heuristics.field(goal))
            assert chain == tuple(searched.spatial_cells()), (
                f"descent diverged from search for {source}->{goal} "
                f"on {name}")

    def test_randomized_obstructed_grids(self):
        for seed in range(12):
            rng = random.Random(1000 + seed)
            grid = random_pillar_grid(rng)
            cache = make_cache(grid)
            cells = list(grid.cells())
            for __ in range(15):
                source, goal = rng.choice(cells), rng.choice(cells)
                chain = cache.descent(source, goal)
                searched = find_path(grid, ConflictDetectionTable(), source,
                                     goal, 3,  # non-zero start time too
                                     heuristic=cache._heuristics.field(goal))
                assert chain == tuple(searched.spatial_cells()), (
                    f"descent diverged for {source}->{goal} on seed {seed} "
                    f"({grid!r})")

    def test_descent_matches_default_manhattan_search(self):
        # With no explicit heuristic the search runs on the Manhattan
        # field, which equals the exact field on open floors — the
        # descent must match that default call too.
        grid = GRIDS["open"]
        cache = make_cache(grid)
        chain = cache.descent((0, 0), (8, 6))
        searched = find_path(grid, ConflictDetectionTable(), (0, 0),
                             (8, 6), 0)
        assert chain == tuple(searched.spatial_cells())

    def test_unreachable_returns_none(self):
        grid = Grid(8, 3, blocked=[(4, y) for y in range(3)])
        assert make_cache(grid).descent((0, 0), (7, 0)) is None

    def test_source_equals_goal(self):
        assert make_cache(GRIDS["open"]).descent((3, 3), (3, 3)) == ((3, 3),)


class TestManhattanClosedForm:
    """The closed-form descent equals the generic loop, every field.

    Paper-scale unobstructed floors carry the lazy Manhattan field and
    `_walk` answers with `_walk_manhattan` — all-of-x-then-all-of-y by
    construction.  The generic descent loop run on the *same* lazy field
    must produce the identical chain in every representation the audits
    consume (cells, packed keys, flat indices), or tier-0 behaviour
    would silently depend on floor size.
    """

    def test_paper_floor_random_pairs(self):
        from repro.pathfinding.heuristics import _LazyManhattanFlat

        grid = Grid(541, 302)
        cache = make_cache(grid)
        rng = random.Random(20220808)
        pairs = [((rng.randrange(541), rng.randrange(302)),
                  (rng.randrange(541), rng.randrange(302)))
                 for __ in range(40)]
        # Degenerate axes: same cell, same column, same row, reversed.
        pairs += [((7, 9), (7, 9)), ((7, 9), (7, 200)), ((7, 9), (400, 9)),
                  ((400, 200), (7, 9))]
        for source, goal in pairs:
            flat = cache._heuristics.field(goal).flat
            assert isinstance(flat, _LazyManhattanFlat)
            fast = cache._walk_manhattan(source, goal)
            slow = cache._walk_generic(source, goal, flat)
            assert fast.cells == slow.cells, (source, goal)
            assert fast.keys == slow.keys, (source, goal)
            assert fast.flat == slow.flat, (source, goal)

    def test_dispatch_selects_closed_form_on_paper_floor(self):
        grid = Grid(541, 302)
        cache = make_cache(grid)
        chain = cache.packed((3, 5), (10, 2))
        assert chain.cells == cache._walk_manhattan((3, 5), (10, 2)).cells

    def test_small_floors_keep_the_generic_walk(self):
        # Sub-paper floors build eager fields; the descent there still
        # matches the search (TestDescentMatchesSearch) — here we only
        # pin that the closed form is not involved.
        from repro.pathfinding.heuristics import _LazyManhattanFlat

        grid = GRIDS["open"]
        cache = make_cache(grid)
        assert not isinstance(cache._heuristics.field((5, 5)).flat,
                              _LazyManhattanFlat)


class TestFreeFlowCache:
    def test_memoises_per_pair(self):
        cache = make_cache(GRIDS["open"])
        first = cache.descent((0, 0), (8, 6))
        second = cache.descent((0, 0), (8, 6))
        assert first is second
        assert cache.memo_hits == 1 and cache.memo_misses == 1
        assert len(cache) == 1

    def test_unreachable_memoised(self):
        grid = Grid(8, 3, blocked=[(4, y) for y in range(3)])
        cache = make_cache(grid)
        assert cache.descent((0, 0), (7, 0)) is None
        assert cache.descent((0, 0), (7, 0)) is None
        assert cache.memo_hits == 1  # the None was memoised, not re-walked

    def test_invalidate_goal(self):
        cache = make_cache(GRIDS["open"])
        cache.descent((0, 0), (8, 6))
        cache.descent((1, 0), (8, 6))
        cache.descent((0, 0), (5, 5))
        cache.invalidate((8, 6))
        assert len(cache) == 1  # only the (0,0)->(5,5) chain survives

    def test_clear(self):
        cache = make_cache(GRIDS["open"])
        cache.descent((0, 0), (8, 6))
        cache.clear()
        assert len(cache) == 0

    def test_field_cache_reset_clears_descents(self):
        grid = GRIDS["open"]
        heuristics = HeuristicFieldCache(grid)
        cache = FreeFlowPathCache(grid, heuristics)
        cache.descent((0, 0), (8, 6))
        assert len(cache) == 1
        # Force the field cache over its cap: the registered hook must
        # drop the descents in lockstep.
        heuristics._FIELD_CAP = 1
        heuristics.field((5, 5))
        heuristics.field((6, 6))
        assert len(cache) == 0

    def test_dead_listeners_pruned(self):
        # A derived cache's lifetime must not be extended by the field
        # cache it observes: listeners are weak, and a reset prunes the
        # dead ones.
        grid = GRIDS["open"]
        heuristics = HeuristicFieldCache(grid)
        cache = FreeFlowPathCache(grid, heuristics)
        assert len(heuristics._invalidation_listeners) == 1
        del cache
        heuristics._FIELD_CAP = 1
        heuristics.field((5, 5))
        heuristics.field((6, 6))  # triggers the reset → prune
        assert heuristics._invalidation_listeners == []

    def test_entry_cap_resets(self):
        cache = make_cache(GRIDS["open"])
        cache._ENTRY_CAP = 3
        cells = list(GRIDS["open"].cells())
        for goal in cells[:5]:
            cache.descent((0, 0), goal)
        assert len(cache) <= 3
        assert cache.memory_bytes() > 0


class TestAuditPath:
    def corridor_tables(self):
        grid = Grid(6, 2)
        cdt = ConflictDetectionTable()
        stg = SpatiotemporalGraph(grid)
        return grid, (cdt, stg)

    def moving_path(self):
        return Path.from_cells([(0, 0), (1, 0), (2, 0), (3, 0)],
                               start_time=0)

    def test_clean_table_audits_free(self):
        __, tables = self.corridor_tables()
        for table in tables:
            assert table.audit_path(self.moving_path())

    def test_vertex_conflict_rejected(self):
        __, tables = self.corridor_tables()
        for table in tables:
            table.reserve_path(Path.waiting((2, 0), 0, 8))
            assert not table.audit_path(self.moving_path())

    def test_swap_conflict_rejected(self):
        __, tables = self.corridor_tables()
        oncoming = Path.from_cells([(3, 0), (2, 0), (1, 0), (0, 0)],
                                   start_time=0)
        for table in tables:
            table.reserve_path(oncoming)
            # Every arrival vertex differs, but the t=1 edge (1,0)->(2,0)
            # swaps with the oncoming (2,0)->(1,0).
            path = Path.from_cells([(1, 0), (2, 0)], start_time=1)
            assert not table.audit_path(path)

    def test_source_vertex_not_probed(self):
        # The robot's own start cell may be "reserved" (its previous leg
        # ends there) — the search never probes it, so neither may the
        # audit.
        __, tables = self.corridor_tables()
        for table in tables:
            table.reserve_path(Path.waiting((0, 0), 0, 0))
            assert table.audit_path(self.moving_path())

    def test_purged_reservations_do_not_reject(self):
        __, tables = self.corridor_tables()
        for table in tables:
            table.reserve_path(Path.waiting((2, 0), 0, 8))
            table.purge_before(50)
            path = Path.from_cells([(0, 0), (1, 0), (2, 0)], start_time=51)
            assert table.audit_path(path)

    def test_matches_probe_by_probe_semantics(self):
        # The bulk audit must agree with the per-move probes (the generic
        # base implementation) on random paths over random traffic, for
        # both structures.
        grid = Grid(10, 8)
        rng = random.Random(42)
        cdt = ConflictDetectionTable()
        stg = SpatiotemporalGraph(grid)
        for __ in range(15):
            x = rng.randrange(10)
            cells = [(x, y) for y in range(8)]
            start = rng.randrange(6)
            for table in (cdt, stg):
                table.reserve_path(Path.from_cells(cells, start))

        def generic_audit(table, path):
            # Force the tuple-probe fallback of the base implementation.
            cls = type("Probe", (), {})
            probe = cls()
            probe.is_free = table.is_free
            probe.edge_free = table.edge_free
            probe.packed_buckets = lambda: None
            return ReservationTable.audit_path(probe, path)

        for __ in range(40):
            y = rng.randrange(8)
            cells = [(x, y) for x in range(10)]
            if rng.random() < 0.5:
                cells.reverse()
            path = Path.from_cells(cells, rng.randrange(10))
            verdicts = {table.audit_path(path) for table in (cdt, stg)}
            assert len(verdicts) == 1
            assert verdicts == {generic_audit(cdt, path)}


class TestChainTierZero:
    def test_audit_reject_falls_through_identically(self):
        # Corridor blockade from the pipeline suite: tier 0 must reject
        # and the full tier must answer with the byte-identical path a
        # tier-0-disabled chain produces.
        grid = Grid(30, 1)
        def load(table):
            table.reserve_path(Path.waiting((20, 0), 0, 300))
        cdt_fast, cdt_slow = ConflictDetectionTable(), ConflictDetectionTable()
        load(cdt_fast), load(cdt_slow)
        fast = make_chain(grid, cdt_fast).plan_leg(0, (0, 0), (29, 0))
        slow = make_chain(grid, cdt_slow,
                          PlannerConfig(free_flow=False)).plan_leg(
                              0, (0, 0), (29, 0))
        assert fast.fastpath == FASTPATH_AUDIT_REJECT
        assert fast.tier == TIER_FULL
        assert slow.fastpath == FASTPATH_OFF
        assert fast.path.steps == slow.path.steps

    def test_tiny_budget_disables_tier_zero(self):
        grid = Grid(12, 10)
        config = PlannerConfig(max_search_expansions=grid.n_cells - 1)
        leg = make_chain(grid, ConflictDetectionTable(), config).plan_leg(
            0, (0, 0), (9, 7))
        assert leg.fastpath == FASTPATH_OFF
        assert leg.tier == TIER_FULL

    def test_class_kill_switch(self, monkeypatch):
        monkeypatch.setattr(FallbackChain, "free_flow_enabled", False)
        leg = make_chain(Grid(12, 10), ConflictDetectionTable()).plan_leg(
            0, (0, 0), (9, 7))
        assert leg.fastpath == FASTPATH_OFF
        assert leg.tier == TIER_FULL

    def test_hit_commits_full_path(self):
        grid = Grid(12, 10)
        cdt = ConflictDetectionTable()
        chain = make_chain(grid, cdt)
        leg = chain.plan_leg(0, (0, 0), (9, 7))
        assert leg.tier == TIER_FREE_FLOW and leg.fastpath == FASTPATH_HIT
        assert leg.complete and leg.commit_until is None
        assert leg.path.duration == 16  # Manhattan-optimal

    def test_finisher_hit_matches_search(self):
        # EATP's tier-0 path: the finisher is consulted at the exact
        # (cell, tick) the full search would first trigger it, and the
        # emitted head+tail equals the search result byte for byte.
        grid = Grid(14, 11)
        cache = ShortestPathCache(grid, threshold=5)

        def factory_for(reservation):
            def factory(goal):
                return (make_wait_finisher(cache, goal, reservation), 5)
            return factory

        cdt_fast = ConflictDetectionTable()
        chain = make_chain(grid, cdt_fast,
                           finisher_factory=factory_for(cdt_fast))
        leg = chain.plan_leg(0, (0, 0), (13, 10))
        assert leg.tier == TIER_FREE_FLOW
        assert leg.search_stats and leg.search_stats[0].cache_finished

        cdt_ref = ConflictDetectionTable()
        stats = SearchStats()
        reference = find_path(
            grid, cdt_ref, (0, 0), (13, 10), 0,
            heuristic=HeuristicFieldCache(grid).field((13, 10)),
            finisher=make_wait_finisher(cache, (13, 10), cdt_ref),
            finisher_trigger=5, stats=stats)
        assert stats.cache_finished
        assert leg.path.steps == reference.steps

    def test_declining_finisher_is_a_miss(self):
        # A finisher that returns None sends the leg to the full search
        # (whose own finisher calls decide), never to a raw descent.
        grid = Grid(12, 10)
        chain = make_chain(grid, ConflictDetectionTable(),
                           finisher_factory=lambda goal: (
                               lambda cell, t: None, 5))
        leg = chain.plan_leg(0, (0, 0), (9, 7))
        assert leg.fastpath == FASTPATH_MISS
        assert leg.tier == TIER_FULL


class TestEndToEndEquivalence:
    """Whole runs are bit-identical with the fast path on and off."""

    @pytest.mark.parametrize("planner", ["NTP", "EATP"])
    def test_deterministic_view_identical(self, planner):
        from repro.experiments.harness import run_planner
        scenario = make_mini(n_items=40)
        fast = run_planner(scenario, planner)
        slow = run_planner(scenario, planner,
                           planner_config=PlannerConfig(free_flow=False))
        fast_view = deterministic_view(result_to_dict(fast))
        slow_view = deterministic_view(result_to_dict(slow))
        # The runs must agree on everything except the fast-path
        # accounting itself (off reads all-zero by definition).
        assert fast_view["metrics"].pop("fastpath") != {
            "free_flow_legs": 0, "audit_rejects": 0, "misses": 0}
        assert slow_view["metrics"].pop("fastpath") == {
            "free_flow_legs": 0, "audit_rejects": 0, "misses": 0}
        assert fast_view == slow_view


class TestCountersAndSerialization:
    def run_mini(self):
        from repro.experiments.harness import run_planner
        scenario = make_mini(n_items=30)
        return run_planner(scenario, "NTP")

    def test_tier_histogram_partitions_legs(self):
        scenario = make_mini(n_items=30)
        state, items = scenario.build()
        from repro.sim.engine import Simulation
        planner = PLANNERS["NTP"](state)
        Simulation(state, planner, items).run()
        stats = planner.stats
        assert stats.legs_planned == (stats.legs_free_flow + stats.legs_full
                                      + stats.legs_windowed + stats.legs_wait)
        assert stats.legs_free_flow > 0
        # Tier-0 legs run no search: total expansions stay below what
        # the leg count alone would force through the full tier.
        assert (stats.legs_free_flow + stats.fastpath_audit_rejects
                + stats.fastpath_misses) == stats.legs_planned

    def test_fastpath_round_trips_serialization(self):
        result = self.run_mini()
        payload = metrics_to_dict(result.metrics)
        assert payload["fastpath"]["free_flow_legs"] > 0
        rebuilt = metrics_from_dict(payload)
        assert rebuilt.fastpath_view() == result.metrics.fastpath_view()
        # Deterministic view keeps the counters (they are seed-derived,
        # not wall-clock).
        view = deterministic_view(payload)
        assert view["fastpath"] == payload["fastpath"]

    def test_fastpath_stable_across_runs(self):
        first = self.run_mini().metrics.fastpath_view()
        second = self.run_mini().metrics.fastpath_view()
        assert first == second

    def test_matrix_summary_line(self):
        from repro.experiments.matrix import render_fastpath_summary
        payloads = {
            "a": {"result": {"metrics": {"fastpath": {
                "free_flow_legs": 8, "audit_rejects": 1, "misses": 1}}}},
            "b": {"result": {"metrics": {}}},  # pre-fast-path cell
        }
        line = render_fastpath_summary(payloads)
        assert "8/10" in line and "80%" in line
        assert "no tier-0 attempts" in render_fastpath_summary(
            {"b": {"result": {"metrics": {}}}})
