"""The service-mode soak harness and the live-state telemetry it reads."""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.experiments.soak import (SoakSpec, build_soak, run_soak, soak_ok,
                                    smoke_spec)
from repro.pathfinding.cache import ShortestPathCache
from repro.pathfinding.cdt import (ConflictDetectionTable,
                                   ShardedConflictDetectionTable)
from repro.pathfinding.paths import Path
from repro.pathfinding.spatiotemporal_graph import (
    ShardedSpatiotemporalGraph, SpatiotemporalGraph)
from repro.warehouse.grid import Grid


def tiny_spec(**overrides):
    base = dict(duration=1_500, window_ticks=300, warmup_windows=1,
                checkpoint_every=2)
    base.update(overrides)
    return SoakSpec(**base)


class TestLiveCounts:
    """Every reservation structure reports its live-state counters."""

    def _loaded(self, table):
        table.reserve_path(Path(steps=((0, 1, 1), (1, 1, 2), (2, 2, 2))))
        return table.live_counts()

    @pytest.mark.parametrize("factory", [
        lambda: ConflictDetectionTable(),
        lambda: ShardedConflictDetectionTable(),
        lambda: SpatiotemporalGraph(Grid(8, 8)),
        lambda: ShardedSpatiotemporalGraph(),
    ])
    def test_counts_track_reservations_and_memory(self, factory):
        empty = factory().live_counts()
        table = factory()
        loaded = self._loaded(table)
        assert loaded["memory_bytes"] == table.memory_bytes()
        assert loaded["memory_bytes"] >= empty["memory_bytes"]
        # Purging everything returns the live counters to their floor.
        table.purge_before(10)
        assert table.live_counts()["edge_ticks"] == 0

    def test_edge_counts_exposed(self):
        table = ConflictDetectionTable()
        counts = self._loaded(table)
        assert counts["reservations"] == 3
        assert counts["edges"] == 2  # two moves, one cell-to-cell each
        assert counts["memory_bytes"] == table.memory_bytes()

    def test_cache_counts(self):
        cache = ShortestPathCache(Grid(8, 8), threshold=6)
        cache.lookup((0, 0), (3, 3))
        counts = cache.live_counts()
        assert counts["entries"] == 1
        assert counts["blob_bytes"] > 0
        assert counts["memory_bytes"] == cache.memory_bytes()


class TestSoakSpec:
    def test_rejects_unknown_planner(self):
        with pytest.raises(ConfigurationError):
            SoakSpec(planner="nope")

    def test_rejects_duration_below_one_window(self):
        with pytest.raises(ConfigurationError):
            SoakSpec(duration=10, window_ticks=100)

    def test_stream_factory_is_deterministic(self):
        spec = tiny_spec()
        a = spec.make_stream().take(20)
        b = spec.make_stream().take(20)
        assert a == b


class TestRunSoak:
    @pytest.fixture(scope="class")
    def report(self):
        return run_soak(tiny_spec())

    def test_flat_envelope(self, report):
        assert report["flatness"]["flat"]
        assert report["flatness"]["steady_windows"] >= 1

    def test_windows_cover_the_duration(self, report):
        assert report["windows"]
        assert report["windows"][-1]["window_end"] >= 1_500
        for entry in report["windows"]:
            assert "reservation" in entry
            assert entry["reservation"]["memory_bytes"] >= 0
            assert "cache" in entry  # EATP exposes its cache counters

    def test_restore_is_bit_identical(self, report):
        assert report["restore"]["bit_identical"]
        assert report["restore"]["checkpoint_bytes"] > 0
        assert soak_ok(report)

    def test_drained_result_is_consistent(self, report):
        processed = sum(e["items_processed"] for e in report["windows"])
        # Windows stop at the duration boundary; the drain tail finishes
        # the rest, so the final count can only exceed the window sum.
        assert report["final"]["items_processed"] >= processed

    def test_periodic_checkpoints_written(self, tmp_path):
        run_soak(tiny_spec(duration=900, window_ticks=300,
                           checkpoint_every=1),
                 checkpoint_dir=str(tmp_path), verify_restore=False)
        assert list(tmp_path.glob("soak-w*.ckpt"))

    def test_soak_state_is_picklable_mid_run(self):
        sim, stream, harness = build_soak(tiny_spec())
        blob = pickle.dumps((stream, harness))
        stream2, harness2 = pickle.loads(blob)
        assert stream2.emitted == stream.emitted
        assert harness2.fed_through == harness.fed_through

    def test_soak_ok_fails_on_growth_or_divergence(self):
        report = {"flatness": {"flat": False}}
        assert not soak_ok(report)
        report = {"flatness": {"flat": True},
                  "restore": {"bit_identical": False}}
        assert not soak_ok(report)

    def test_smoke_spec_passes_its_own_gates(self):
        # The CI-sized run must be green by construction, otherwise the
        # bench_kernels smoke gate is flaky on arrival.
        assert soak_ok(run_soak(smoke_spec()))
