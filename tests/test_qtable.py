"""Unit tests for the tabular action-value function."""

from repro.rl.mdp import ACTION_REQUEST, ACTION_WAIT
from repro.rl.qtable import QTable


class TestDefaults:
    def test_unvisited_returns_initial(self):
        table = QTable(initial_value=0.0)
        assert table.get((0, 0), ACTION_WAIT) == 0.0

    def test_custom_initial_value(self):
        table = QTable(initial_value=-5.0)
        assert table.get((9, 9), ACTION_REQUEST) == -5.0


class TestSetGet:
    def test_roundtrip(self):
        table = QTable()
        table.set((1, 2), ACTION_REQUEST, -42.5)
        assert table.get((1, 2), ACTION_REQUEST) == -42.5
        assert table.get((1, 2), ACTION_WAIT) == 0.0

    def test_len_counts_entries(self):
        table = QTable()
        table.set((0, 0), ACTION_WAIT, 1.0)
        table.set((0, 0), ACTION_REQUEST, 2.0)
        table.set((1, 0), ACTION_WAIT, 3.0)
        assert len(table) == 3

    def test_iteration(self):
        table = QTable()
        table.set((0, 0), ACTION_WAIT, 1.0)
        entries = dict(table)
        assert entries[((0, 0), ACTION_WAIT)] == 1.0


class TestBest:
    def test_best_value(self):
        table = QTable()
        table.set((0, 0), ACTION_WAIT, -3.0)
        table.set((0, 0), ACTION_REQUEST, -1.0)
        assert table.best_value((0, 0)) == -1.0

    def test_best_action(self):
        table = QTable()
        table.set((0, 0), ACTION_WAIT, -3.0)
        table.set((0, 0), ACTION_REQUEST, -1.0)
        assert table.best_action((0, 0)) == ACTION_REQUEST

    def test_tie_prefers_request(self):
        # Fresh state: both actions at the initial value — prefer REQUEST
        # so a cold-start system dispatches instead of deadlocking.
        table = QTable()
        assert table.best_action((5, 5)) == ACTION_REQUEST

    def test_memory_grows_with_entries(self):
        table = QTable()
        empty = table.memory_bytes()
        table.set((0, 0), ACTION_WAIT, 1.0)
        assert table.memory_bytes() > empty
