"""Unit tests for the mission state machine."""

import pytest

from repro.errors import SimulationError
from repro.pathfinding.paths import Path
from repro.sim.missions import Mission, MissionStage
from repro.warehouse.entities import Item


def mission(n_items=2, processing=5):
    batch = [Item(i, 0, 0, processing) for i in range(n_items)]
    path = Path.from_cells([(0, 0), (1, 0)], start_time=0)
    return Mission(robot_id=0, rack_id=0, batch=batch, path=path)


class TestMission:
    def test_empty_batch_rejected(self):
        with pytest.raises(SimulationError):
            Mission(robot_id=0, rack_id=0, batch=[],
                    path=Path.waiting((0, 0), 0, 0))

    def test_batch_processing_time(self):
        assert mission(n_items=3, processing=7).batch_processing_time == 21

    def test_n_items(self):
        assert mission(n_items=4).n_items == 4

    def test_moving_stages(self):
        assert MissionStage.TO_RACK.moving
        assert MissionStage.TO_PICKER.moving
        assert MissionStage.RETURNING.moving
        assert not MissionStage.QUEUING.moving
        assert not MissionStage.PROCESSING.moving
        assert not MissionStage.DONE.moving


class TestTransitions:
    def test_full_legal_cycle(self):
        m = mission()
        path = Path.from_cells([(1, 0), (1, 1)], start_time=2)
        m.enter(MissionStage.TO_PICKER, 2, path)
        m.enter(MissionStage.QUEUING, 4)
        m.enter(MissionStage.PROCESSING, 5)
        m.enter(MissionStage.RETURNING, 15,
                Path.from_cells([(1, 1), (1, 0)], start_time=15))
        m.enter(MissionStage.DONE, 17)
        assert m.stage is MissionStage.DONE
        assert m.stage_entered_at == 17

    def test_skipping_stage_rejected(self):
        m = mission()
        with pytest.raises(SimulationError):
            m.enter(MissionStage.QUEUING, 2)

    def test_backwards_rejected(self):
        m = mission()
        m.enter(MissionStage.TO_PICKER, 2)
        with pytest.raises(SimulationError):
            m.enter(MissionStage.TO_RACK, 3)

    def test_done_is_terminal(self):
        m = mission()
        m.enter(MissionStage.TO_PICKER, 1)
        m.enter(MissionStage.QUEUING, 2)
        m.enter(MissionStage.PROCESSING, 3)
        m.enter(MissionStage.RETURNING, 4)
        m.enter(MissionStage.DONE, 5)
        with pytest.raises(SimulationError):
            m.enter(MissionStage.TO_RACK, 6)

    def test_enter_clears_path_when_not_given(self):
        m = mission()
        m.enter(MissionStage.TO_PICKER, 2)
        assert m.path is None
