"""Unit tests for planning schemes."""

import pytest

from repro.errors import PlanningError
from repro.pathfinding.paths import Path
from repro.planners.scheme import Assignment, PlanningScheme


def assignment(robot_id=0, rack_id=0):
    path = Path.from_cells([(0, 0), (1, 0)], start_time=0)
    return Assignment(robot_id=robot_id, rack_id=rack_id, pickup_path=path)


class TestPlanningScheme:
    def test_add_and_iterate(self):
        scheme = PlanningScheme(timestamp=3)
        scheme.add(assignment(0, 5))
        scheme.add(assignment(1, 6))
        assert len(scheme) == 2
        assert scheme.robot_ids == (0, 1)
        assert scheme.rack_ids == (5, 6)

    def test_duplicate_robot_rejected(self):
        scheme = PlanningScheme(timestamp=0)
        scheme.add(assignment(0, 5))
        with pytest.raises(PlanningError):
            scheme.add(assignment(0, 6))

    def test_duplicate_rack_rejected(self):
        scheme = PlanningScheme(timestamp=0)
        scheme.add(assignment(0, 5))
        with pytest.raises(PlanningError):
            scheme.add(assignment(1, 5))

    def test_empty_scheme(self):
        scheme = PlanningScheme(timestamp=0)
        assert len(scheme) == 0
        assert list(scheme) == []
