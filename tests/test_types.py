"""Unit tests for the primitive helpers in repro.types."""

from repro.types import (CARDINAL_MOVES, CELL_KEY_MASK, CELL_KEY_SHIFT,
                         manhattan, neighbours4, pack_cell, unpack_cell)


class TestPackedCellKeys:
    def test_round_trip(self):
        for cell in [(0, 0), (1, 0), (0, 1), (63, 39), (541, 302),
                     (CELL_KEY_MASK, CELL_KEY_MASK)]:
            assert unpack_cell(pack_cell(cell)) == cell

    def test_keys_are_unique_and_ordered_like_cell_index(self):
        keys = [pack_cell((x, y)) for x in range(5) for y in range(4)]
        assert len(set(keys)) == len(keys)
        assert keys == sorted(keys)  # x-major, same order as x*H + y

    def test_matches_inline_encoding(self):
        # The hot loops inline this shift; the helper must agree.
        assert pack_cell((6, 9)) == (6 << CELL_KEY_SHIFT) | 9


class TestManhattan:
    def test_zero_for_same_cell(self):
        assert manhattan((3, 4), (3, 4)) == 0

    def test_axis_aligned(self):
        assert manhattan((0, 0), (5, 0)) == 5
        assert manhattan((0, 0), (0, 7)) == 7

    def test_diagonal(self):
        assert manhattan((1, 2), (4, 6)) == 7

    def test_symmetry(self):
        a, b = (2, 9), (11, 3)
        assert manhattan(a, b) == manhattan(b, a)

    def test_triangle_inequality(self):
        a, b, c = (0, 0), (3, 5), (10, 2)
        assert manhattan(a, c) <= manhattan(a, b) + manhattan(b, c)


class TestNeighbours4:
    def test_yields_exactly_four(self):
        assert len(list(neighbours4((5, 5)))) == 4

    def test_all_at_distance_one(self):
        for n in neighbours4((5, 5)):
            assert manhattan((5, 5), n) == 1

    def test_unbounded_goes_negative(self):
        neighbours = set(neighbours4((0, 0)))
        assert (-1, 0) in neighbours
        assert (0, -1) in neighbours


class TestCardinalMoves:
    def test_four_distinct_unit_moves(self):
        assert len(set(CARDINAL_MOVES)) == 4
        for dx, dy in CARDINAL_MOVES:
            assert abs(dx) + abs(dy) == 1
