"""Unit tests for the primitive helpers in repro.types."""

from repro.types import CARDINAL_MOVES, manhattan, neighbours4


class TestManhattan:
    def test_zero_for_same_cell(self):
        assert manhattan((3, 4), (3, 4)) == 0

    def test_axis_aligned(self):
        assert manhattan((0, 0), (5, 0)) == 5
        assert manhattan((0, 0), (0, 7)) == 7

    def test_diagonal(self):
        assert manhattan((1, 2), (4, 6)) == 7

    def test_symmetry(self):
        a, b = (2, 9), (11, 3)
        assert manhattan(a, b) == manhattan(b, a)

    def test_triangle_inequality(self):
        a, b, c = (0, 0), (3, 5), (10, 2)
        assert manhattan(a, c) <= manhattan(a, b) + manhattan(b, c)


class TestNeighbours4:
    def test_yields_exactly_four(self):
        assert len(list(neighbours4((5, 5)))) == 4

    def test_all_at_distance_one(self):
        for n in neighbours4((5, 5)):
            assert manhattan((5, 5), n) == 1

    def test_unbounded_goes_negative(self):
        neighbours = set(neighbours4((0, 0)))
        assert (-1, 0) in neighbours
        assert (0, -1) in neighbours


class TestCardinalMoves:
    def test_four_distinct_unit_moves(self):
        assert len(set(CARDINAL_MOVES)) == 4
        for dx, dy in CARDINAL_MOVES:
            assert abs(dx) + abs(dy) == 1
