"""Validation tests for the configuration dataclasses."""

import pytest

from repro.config import PlannerConfig, QLearningConfig, SimulationConfig
from repro.errors import ConfigurationError


class TestQLearningConfig:
    def test_defaults_are_the_paper_defaults(self):
        cfg = QLearningConfig()
        assert cfg.delta == 0.2
        assert cfg.epsilon == 0.1
        assert cfg.learning_rate == 0.1

    @pytest.mark.parametrize("field,value", [
        ("delta", -0.1), ("delta", 1.5),
        ("epsilon", -0.01), ("epsilon", 2.0),
        ("learning_rate", 0.0), ("learning_rate", 1.5),
        ("discount", -0.2), ("discount", 1.0),
        ("state_bin_width", 0),
        ("deferral_weight", 0.0), ("deferral_weight", -3.0),
    ])
    def test_rejects_out_of_domain(self, field, value):
        with pytest.raises(ConfigurationError):
            QLearningConfig(**{field: value})

    def test_boundary_values_accepted(self):
        QLearningConfig(delta=0.0, epsilon=0.0, learning_rate=1.0,
                        discount=0.0, state_bin_width=1)
        QLearningConfig(delta=1.0, epsilon=1.0)


class TestPlannerConfig:
    def test_defaults(self):
        cfg = PlannerConfig()
        assert cfg.knn_k == 8
        assert cfg.cache_threshold == 12
        assert cfg.qlearning == QLearningConfig()

    @pytest.mark.parametrize("field,value", [
        ("knn_k", 0), ("cache_threshold", -1),
        ("max_search_expansions", 0), ("reservation_horizon", 0),
    ])
    def test_rejects_out_of_domain(self, field, value):
        with pytest.raises(ConfigurationError):
            PlannerConfig(**{field: value})

    def test_with_returns_modified_copy(self):
        cfg = PlannerConfig()
        other = cfg.with_(knn_k=3)
        assert other.knn_k == 3
        assert cfg.knn_k == 8
        assert other.cache_threshold == cfg.cache_threshold

    def test_frozen(self):
        with pytest.raises(Exception):
            PlannerConfig().knn_k = 2


class TestSimulationConfig:
    def test_defaults(self):
        cfg = SimulationConfig()
        assert cfg.metrics_checkpoints == 10
        assert not cfg.record_bottleneck_trace
        assert not cfg.collect_paths

    @pytest.mark.parametrize("field,value", [
        ("max_ticks", 0), ("metrics_checkpoints", 0), ("purge_interval", 0),
    ])
    def test_rejects_out_of_domain(self, field, value):
        with pytest.raises(ConfigurationError):
            SimulationConfig(**{field: value})
