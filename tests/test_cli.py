"""Tests for the ``python -m repro`` dispatcher."""

import pytest

from repro.__main__ import main


class TestDispatcher:
    def test_no_arguments_prints_usage(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_help_exits_zero(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "fig13" in out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2

    def test_badcase_runs(self, capsys):
        assert main(["badcase", "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "Bad case k=3" in out

    def test_help_lists_matrix(self, capsys):
        main(["--help"])
        assert "matrix" in capsys.readouterr().out

    def test_matrix_runs_and_resumes(self, capsys, tmp_path):
        argv = ["matrix", "--family", "mini", "--planners", "NTP",
                "--scale", "0.5", "--results-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "Matrix mini-s0.5" in first.out and "Mini" in first.out
        # Second invocation resumes entirely from the stored cells.
        assert main(argv) == 0
        second = capsys.readouterr()
        assert "[cached] Mini--NTP" in second.err
