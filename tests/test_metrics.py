"""Unit tests for the metrics recorder and rate formulas."""

import pytest

from repro.sim.metrics import (MetricsRecorder, RunMetrics,
                               SteadyStateTracker, _checkpoint_grid,
                               picker_processing_rate, robot_working_rate)
from repro.sim.serialize import (metrics_from_dict, metrics_to_dict,
                                 window_from_dict, window_to_dict)


class TestRates:
    def test_ppr_is_mean_over_pickers(self):
        # Eq. 6: two pickers, busy 50 and 100 of 200 ticks.
        assert picker_processing_rate([50, 100], 200) == pytest.approx(0.375)

    def test_rwr_is_mean_over_robots(self):
        assert robot_working_rate([100, 0, 50], 100) == pytest.approx(0.5)

    def test_zero_elapsed_is_zero(self):
        assert picker_processing_rate([10], 0) == 0.0
        assert robot_working_rate([10], 0) == 0.0

    def test_empty_fleet_is_zero(self):
        assert picker_processing_rate([], 10) == 0.0
        assert robot_working_rate([], 10) == 0.0


class TestMetricsRecorder:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            MetricsRecorder(0)
        with pytest.raises(ValueError):
            MetricsRecorder(10, n_checkpoints=0)

    def sample(self, recorder, tick=0):
        return recorder.maybe_checkpoint(tick=tick, ppr=0.5, rwr=0.5,
                                         selection_seconds=0.0,
                                         planning_seconds=0.0,
                                         memory_bytes=100)

    def test_no_checkpoint_before_threshold(self):
        recorder = MetricsRecorder(100, n_checkpoints=10)
        recorder.note_items_processed(9)
        assert self.sample(recorder) is None

    def test_checkpoint_on_crossing(self):
        recorder = MetricsRecorder(100, n_checkpoints=10)
        recorder.note_items_processed(10)
        sample = self.sample(recorder, tick=42)
        assert sample is not None
        assert sample.items_processed == 10
        assert sample.tick == 42

    def test_multiple_thresholds_in_one_tick_emit_one_sample(self):
        recorder = MetricsRecorder(100, n_checkpoints=10)
        recorder.note_items_processed(35)
        assert self.sample(recorder) is not None
        assert len(recorder.samples) == 1

    def test_all_checkpoints_emitted_over_run(self):
        recorder = MetricsRecorder(100, n_checkpoints=10)
        for _ in range(100):
            recorder.note_items_processed(1)
            self.sample(recorder)
        assert len(recorder.samples) == 10

    def test_peak_memory_tracked_every_call(self):
        recorder = MetricsRecorder(100, n_checkpoints=2)
        recorder.maybe_checkpoint(tick=0, ppr=0, rwr=0, selection_seconds=0,
                                  planning_seconds=0, memory_bytes=500)
        recorder.maybe_checkpoint(tick=1, ppr=0, rwr=0, selection_seconds=0,
                                  planning_seconds=0, memory_bytes=200)
        assert recorder.peak_memory == 500

    def test_small_workload_single_checkpoint(self):
        recorder = MetricsRecorder(3, n_checkpoints=10)
        recorder.note_items_processed(3)
        self.sample(recorder)
        assert recorder.samples  # no crash on tiny workloads


class TestCheckpointGrid:
    """The threshold grid must be strictly increasing and end at the total.

    The old ``total * i // n`` grid failed both ways: with 7 items over
    10 checkpoints it repeated thresholds (0, 0, 2, 2, ...) and never
    reached 7; with 15 items its last threshold landed at 14, so the
    final checkpoint fired one item early (or, for the run-completion
    sample, not at all).
    """

    def test_small_workload_grid_is_monotonic_and_complete(self):
        assert _checkpoint_grid(7, 10) == [1, 2, 3, 4, 5, 6, 7]

    def test_indivisible_total_ends_exactly_at_total(self):
        grid = _checkpoint_grid(15, 10)
        assert grid[-1] == 15
        assert grid == sorted(set(grid))  # strictly increasing, deduped

    def test_divisible_total_matches_the_old_grid(self):
        # total % n == 0 is where the old grid was already correct —
        # ceil(total*i/n) == total*i//n there, so goldens at 100/10 (and
        # every historical scenario with a round item count) are
        # untouched.
        assert _checkpoint_grid(100, 10) == [10, 20, 30, 40, 50,
                                             60, 70, 80, 90, 100]

    def test_every_grid_ends_at_total(self):
        for total in range(1, 40):
            for n in range(1, 15):
                grid = _checkpoint_grid(total, n)
                assert grid[-1] == total
                assert all(b > a for a, b in zip(grid, grid[1:]))

    def test_small_workload_emits_every_checkpoint(self):
        recorder = MetricsRecorder(7, n_checkpoints=10)
        for _ in range(7):
            recorder.note_items_processed(1)
            recorder.maybe_checkpoint(tick=0, ppr=0, rwr=0,
                                      selection_seconds=0,
                                      planning_seconds=0, memory_bytes=0)
        assert [s.items_processed for s in recorder.samples] == list(range(1, 8))

    def test_final_checkpoint_fires_on_last_item(self):
        recorder = MetricsRecorder(15, n_checkpoints=10)
        recorder.note_items_processed(15)
        recorder.maybe_checkpoint(tick=9, ppr=0, rwr=0, selection_seconds=0,
                                  planning_seconds=0, memory_bytes=0)
        assert recorder.samples[-1].items_processed == 15


class TestExtendTotal:
    def sample(self, recorder, tick=0):
        return recorder.maybe_checkpoint(tick=tick, ppr=0, rwr=0,
                                         selection_seconds=0,
                                         planning_seconds=0, memory_bytes=0)

    def test_shrinking_rejected(self):
        recorder = MetricsRecorder(10)
        with pytest.raises(ValueError):
            recorder.extend_total(9)

    def test_same_total_is_noop(self):
        recorder = MetricsRecorder(10)
        recorder.extend_total(10)
        assert recorder.total_items == 10

    def test_grid_rebuilt_past_processed_items(self):
        recorder = MetricsRecorder(10, n_checkpoints=5)
        recorder.note_items_processed(6)
        self.sample(recorder)
        recorder.extend_total(20)
        # Thresholds already covered by the 6 processed items must not
        # re-fire; the next checkpoint is the first rebuilt threshold
        # beyond them.
        before = len(recorder.samples)
        self.sample(recorder)
        assert len(recorder.samples) == before
        recorder.note_items_processed(2)  # 8 >= threshold 8 of grid(20, 5)
        assert self.sample(recorder) is not None

    def test_extended_run_still_finishes_at_new_total(self):
        recorder = MetricsRecorder(5, n_checkpoints=5)
        recorder.extend_total(8)
        recorder.note_items_processed(8)
        self.sample(recorder)
        assert recorder.samples[-1].items_processed == 8


class TestSteadyStateTracker:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            SteadyStateTracker(0)

    def test_window_rates_are_deltas_over_actual_span(self):
        tracker = SteadyStateTracker(100)
        tracker.sample(tick=100, picker_busy_ticks=[50, 50],
                       robot_busy_ticks=[100], items_processed=10,
                       legs_planned=30, memory_bytes=1000)
        # Second boundary overshoots to 250: rates use the 150-tick span.
        sample = tracker.sample(tick=250, picker_busy_ticks=[125, 125],
                                robot_busy_ticks=[250], items_processed=25,
                                legs_planned=75, memory_bytes=1200)
        assert sample.window_start == 100
        assert sample.window_end == 250
        assert sample.items_processed == 15
        assert sample.legs_planned == 45
        assert sample.ppr == pytest.approx(150 / (150 * 2))
        assert sample.rwr == pytest.approx(150 / 150)
        assert sample.items_per_tick == pytest.approx(0.1)
        assert sample.memory_bytes == 1200

    def test_non_advancing_sample_rejected(self):
        tracker = SteadyStateTracker(10)
        tracker.sample(tick=10, picker_busy_ticks=[1], robot_busy_ticks=[1],
                       items_processed=1, legs_planned=1, memory_bytes=1)
        with pytest.raises(ValueError):
            tracker.sample(tick=10, picker_busy_ticks=[1],
                           robot_busy_ticks=[1], items_processed=1,
                           legs_planned=1, memory_bytes=1)

    def test_next_boundary_tracks_last_sample(self):
        tracker = SteadyStateTracker(100)
        assert tracker.next_boundary == 100
        tracker.sample(tick=130, picker_busy_ticks=[], robot_busy_ticks=[],
                       items_processed=0, legs_planned=0, memory_bytes=0)
        assert tracker.next_boundary == 230

    def test_window_sample_serialisation_roundtrip(self):
        tracker = SteadyStateTracker(10)
        sample = tracker.sample(tick=10, picker_busy_ticks=[5],
                                robot_busy_ticks=[10], items_processed=2,
                                legs_planned=6, memory_bytes=42)
        assert window_from_dict(window_to_dict(sample)) == sample


class TestMetricsFromDictTolerance:
    """Stored payloads predating a counter family must still rebuild."""

    def _payload(self):
        metrics = RunMetrics(makespan=7, items_processed=4,
                             missions_completed=2, ppr=0.5, rwr=0.5,
                             peak_memory_bytes=10)
        return metrics_to_dict(metrics)

    @pytest.mark.parametrize("family", ["fallback", "fastpath", "batch"])
    def test_missing_family_reads_all_zero(self, family):
        payload = self._payload()
        del payload[family]
        rebuilt = metrics_from_dict(payload)
        view = getattr(rebuilt, f"{family}_view")()
        assert view and all(value == 0 for value in view.values())

    def test_all_families_missing_reads_all_zero(self):
        payload = self._payload()
        for family in ("fallback", "fastpath", "batch"):
            del payload[family]
        rebuilt = metrics_from_dict(payload)
        assert rebuilt.makespan == 7
        for family in ("fallback", "fastpath", "batch"):
            view = getattr(rebuilt, f"{family}_view")()
            assert all(value == 0 for value in view.values())
