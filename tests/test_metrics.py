"""Unit tests for the metrics recorder and rate formulas."""

import pytest

from repro.sim.metrics import (MetricsRecorder, picker_processing_rate,
                               robot_working_rate)


class TestRates:
    def test_ppr_is_mean_over_pickers(self):
        # Eq. 6: two pickers, busy 50 and 100 of 200 ticks.
        assert picker_processing_rate([50, 100], 200) == pytest.approx(0.375)

    def test_rwr_is_mean_over_robots(self):
        assert robot_working_rate([100, 0, 50], 100) == pytest.approx(0.5)

    def test_zero_elapsed_is_zero(self):
        assert picker_processing_rate([10], 0) == 0.0
        assert robot_working_rate([10], 0) == 0.0

    def test_empty_fleet_is_zero(self):
        assert picker_processing_rate([], 10) == 0.0
        assert robot_working_rate([], 10) == 0.0


class TestMetricsRecorder:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            MetricsRecorder(0)
        with pytest.raises(ValueError):
            MetricsRecorder(10, n_checkpoints=0)

    def sample(self, recorder, tick=0):
        return recorder.maybe_checkpoint(tick=tick, ppr=0.5, rwr=0.5,
                                         selection_seconds=0.0,
                                         planning_seconds=0.0,
                                         memory_bytes=100)

    def test_no_checkpoint_before_threshold(self):
        recorder = MetricsRecorder(100, n_checkpoints=10)
        recorder.note_items_processed(9)
        assert self.sample(recorder) is None

    def test_checkpoint_on_crossing(self):
        recorder = MetricsRecorder(100, n_checkpoints=10)
        recorder.note_items_processed(10)
        sample = self.sample(recorder, tick=42)
        assert sample is not None
        assert sample.items_processed == 10
        assert sample.tick == 42

    def test_multiple_thresholds_in_one_tick_emit_one_sample(self):
        recorder = MetricsRecorder(100, n_checkpoints=10)
        recorder.note_items_processed(35)
        assert self.sample(recorder) is not None
        assert len(recorder.samples) == 1

    def test_all_checkpoints_emitted_over_run(self):
        recorder = MetricsRecorder(100, n_checkpoints=10)
        for _ in range(100):
            recorder.note_items_processed(1)
            self.sample(recorder)
        assert len(recorder.samples) == 10

    def test_peak_memory_tracked_every_call(self):
        recorder = MetricsRecorder(100, n_checkpoints=2)
        recorder.maybe_checkpoint(tick=0, ppr=0, rwr=0, selection_seconds=0,
                                  planning_seconds=0, memory_bytes=500)
        recorder.maybe_checkpoint(tick=1, ppr=0, rwr=0, selection_seconds=0,
                                  planning_seconds=0, memory_bytes=200)
        assert recorder.peak_memory == 500

    def test_small_workload_single_checkpoint(self):
        recorder = MetricsRecorder(3, n_checkpoints=10)
        recorder.note_items_processed(3)
        self.sample(recorder)
        assert recorder.samples  # no crash on tiny workloads
