"""Unit tests for warehouse layout generation."""

import pytest

from repro.errors import LayoutError
from repro.warehouse.layout import (PICKING_AREA_HEIGHT, WarehouseLayout,
                                    build_layout)


class TestBuildLayout:
    def test_counts_match_request(self):
        layout = build_layout(20, 16, n_racks=24, n_pickers=4)
        assert layout.n_racks == 24
        assert layout.n_pickers == 4

    def test_validates_clean(self):
        build_layout(20, 16, n_racks=24, n_pickers=4).validate()

    def test_pickers_on_bottom_row(self):
        layout = build_layout(20, 16, n_racks=10, n_pickers=3)
        for (x, y) in layout.picker_locations:
            assert y == layout.grid.height - 1

    def test_racks_above_picking_area(self):
        layout = build_layout(20, 16, n_racks=24, n_pickers=4)
        storage_bottom = 16 - PICKING_AREA_HEIGHT - 1
        for (x, y) in layout.rack_homes:
            assert y <= storage_bottom

    def test_rack_homes_distinct(self):
        layout = build_layout(30, 20, n_racks=60, n_pickers=5)
        assert len(set(layout.rack_homes)) == 60

    def test_single_picker_centered(self):
        layout = build_layout(21, 12, n_racks=6, n_pickers=1)
        assert layout.picker_locations == ((10, 11),)

    def test_pickers_spread_to_edges(self):
        layout = build_layout(20, 12, n_racks=6, n_pickers=2)
        xs = sorted(x for x, _ in layout.picker_locations)
        assert xs == [0, 19]


class TestBuildLayoutErrors:
    def test_too_small_grid(self):
        with pytest.raises(LayoutError):
            build_layout(3, 4, n_racks=2, n_pickers=1)

    def test_too_many_racks(self):
        with pytest.raises(LayoutError):
            build_layout(12, 10, n_racks=500, n_pickers=2)

    def test_too_many_pickers(self):
        with pytest.raises(LayoutError):
            build_layout(10, 10, n_racks=4, n_pickers=11)

    def test_zero_pickers(self):
        with pytest.raises(LayoutError):
            build_layout(12, 10, n_racks=4, n_pickers=0)

    def test_bad_block_dimensions(self):
        with pytest.raises(LayoutError):
            build_layout(12, 10, n_racks=4, n_pickers=1, block_width=0)
        with pytest.raises(LayoutError):
            build_layout(12, 10, n_racks=4, n_pickers=1, aisle=0)


class TestValidation:
    def test_duplicate_rack_homes_rejected(self, small_layout):
        bad = WarehouseLayout(grid=small_layout.grid,
                              rack_homes=(small_layout.rack_homes[0],) * 2,
                              picker_locations=small_layout.picker_locations)
        with pytest.raises(LayoutError):
            bad.validate()

    def test_rack_on_picker_rejected(self, small_layout):
        bad = WarehouseLayout(grid=small_layout.grid,
                              rack_homes=(small_layout.picker_locations[0],),
                              picker_locations=small_layout.picker_locations)
        with pytest.raises(LayoutError):
            bad.validate()

    def test_empty_layout_rejected(self, small_layout):
        with pytest.raises(LayoutError):
            WarehouseLayout(grid=small_layout.grid, rack_homes=(),
                            picker_locations=small_layout.picker_locations
                            ).validate()
        with pytest.raises(LayoutError):
            WarehouseLayout(grid=small_layout.grid,
                            rack_homes=small_layout.rack_homes,
                            picker_locations=()).validate()

    def test_rack_aisles_exist_between_blocks(self):
        # With the default 4x2 blocks and 1-wide aisles, the cell to the
        # right of a block's last column must not be a rack home.
        layout = build_layout(24, 16, n_racks=16, n_pickers=2)
        homes = set(layout.rack_homes)
        xs = sorted({x for x, _ in homes})
        # Column 5 is the first aisle (blocks start at x=1, width 4).
        assert 5 not in xs


class TestObstructLayout:
    def _base(self):
        from repro.warehouse.layout import obstruct_layout
        return obstruct_layout, build_layout(24, 16, n_racks=16, n_pickers=3)

    def test_places_exact_pillar_count(self):
        obstruct_layout, layout = self._base()
        obstructed = obstruct_layout(layout, n_pillars=10, seed=3)
        assert len(obstructed.grid.blocked_cells) == 10
        obstructed.validate()

    def test_deterministic_per_seed(self):
        obstruct_layout, layout = self._base()
        a = obstruct_layout(layout, n_pillars=8, seed=3)
        b = obstruct_layout(layout, n_pillars=8, seed=3)
        c = obstruct_layout(layout, n_pillars=8, seed=4)
        assert a.grid.blocked_cells == b.grid.blocked_cells
        assert a.grid.blocked_cells != c.grid.blocked_cells

    def test_never_blocks_racks_or_pickers(self):
        obstruct_layout, layout = self._base()
        obstructed = obstruct_layout(layout, n_pillars=20, seed=1)
        blocked = obstructed.grid.blocked_cells
        assert not blocked & set(layout.rack_homes)
        assert not blocked & set(layout.picker_locations)

    def test_preserves_reachability(self):
        obstruct_layout, layout = self._base()
        obstructed = obstruct_layout(layout, n_pillars=25, seed=7)
        picker = obstructed.picker_locations[0]
        for home in obstructed.rack_homes:
            assert obstructed.grid.connected(picker, home)

    def test_pillars_stay_out_of_the_picking_area(self):
        obstruct_layout, layout = self._base()
        obstructed = obstruct_layout(layout, n_pillars=15, seed=2)
        storage_bottom = 16 - PICKING_AREA_HEIGHT - 1
        assert all(y <= storage_bottom
                   for (_, y) in obstructed.grid.blocked_cells)

    def test_impossible_pillar_count_rejected(self):
        obstruct_layout, layout = self._base()
        with pytest.raises(LayoutError):
            obstruct_layout(layout, n_pillars=10_000, seed=0)

    def test_zero_pillars_rejected(self):
        obstruct_layout, layout = self._base()
        with pytest.raises(LayoutError):
            obstruct_layout(layout, n_pillars=0)
