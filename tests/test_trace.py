"""Unit tests for the bottleneck decomposition trace (Fig. 13 instrument)."""

from repro.sim.trace import BottleneckTrace


class TestRecording:
    def test_cumulative_sums(self):
        trace = BottleneckTrace()
        trace.record(0, transporting=3, queuing=1, processing=2)
        trace.record(1, transporting=2, queuing=4, processing=2)
        last = trace.samples[-1]
        assert last.cum_transport == 5
        assert last.cum_queuing == 5
        assert last.cum_processing == 4
        assert len(trace) == 2

    def test_sample_bottleneck(self):
        trace = BottleneckTrace()
        trace.record(0, transporting=5, queuing=1, processing=2)
        assert trace.samples[0].bottleneck == "transport"
        trace.record(1, transporting=1, queuing=9, processing=2)
        assert trace.samples[1].bottleneck == "queuing"


class TestTimeline:
    def fill(self, trace, spec):
        t = 0
        for count, (tr, qu, pr) in spec:
            for _ in range(count):
                trace.record(t, tr, qu, pr)
                t += 1

    def test_migration_visible_in_timeline(self):
        trace = BottleneckTrace()
        self.fill(trace, [(100, (5, 0, 1)), (100, (1, 8, 2))])
        timeline = trace.bottleneck_timeline(window=100)
        assert timeline == ["transport", "queuing"]

    def test_window_larger_than_trace(self):
        trace = BottleneckTrace()
        self.fill(trace, [(10, (1, 0, 0))])
        assert trace.bottleneck_timeline(window=100) == ["transport"]

    def test_empty_trace(self):
        assert BottleneckTrace().bottleneck_timeline() == []
