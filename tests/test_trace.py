"""Unit tests for the bottleneck decomposition trace (Fig. 13 instrument)."""

import pytest

from repro.errors import SimulationError
from repro.sim.trace import BottleneckTrace


class TestRecording:
    def test_cumulative_sums(self):
        trace = BottleneckTrace()
        trace.record(0, transporting=3, queuing=1, processing=2)
        trace.record(1, transporting=2, queuing=4, processing=2)
        last = trace.samples[-1]
        assert last.cum_transport == 5
        assert last.cum_queuing == 5
        assert last.cum_processing == 4
        assert len(trace) == 2

    def test_sample_bottleneck(self):
        trace = BottleneckTrace()
        trace.record(0, transporting=5, queuing=1, processing=2)
        assert trace.samples[0].bottleneck == "transport"
        trace.record(1, transporting=1, queuing=9, processing=2)
        assert trace.samples[1].bottleneck == "queuing"


class TestTimeline:
    def fill(self, trace, spec):
        t = 0
        for count, (tr, qu, pr) in spec:
            for _ in range(count):
                trace.record(t, tr, qu, pr)
                t += 1

    def test_migration_visible_in_timeline(self):
        trace = BottleneckTrace()
        self.fill(trace, [(100, (5, 0, 1)), (100, (1, 8, 2))])
        timeline = trace.bottleneck_timeline(window=100)
        assert timeline == ["transport", "queuing"]

    def test_window_larger_than_trace(self):
        trace = BottleneckTrace()
        self.fill(trace, [(10, (1, 0, 0))])
        assert trace.bottleneck_timeline(window=100) == ["transport"]

    def test_empty_trace(self):
        assert BottleneckTrace().bottleneck_timeline() == []


class TestRunLengthRecording:
    def test_run_expands_to_per_tick_samples(self):
        run_length = BottleneckTrace()
        run_length.record_run(0, 4, transporting=3, queuing=1, processing=0)
        per_tick = BottleneckTrace()
        for t in range(5):
            per_tick.record(t, transporting=3, queuing=1, processing=0)
        assert run_length.samples == per_tick.samples
        assert len(run_length) == 5

    def test_mixed_recording_matches_per_tick(self):
        mixed = BottleneckTrace()
        mixed.record(0, 2, 0, 1)
        mixed.record_run(1, 6, 2, 0, 1)     # same counts: merges
        mixed.record_run(7, 9, 0, 4, 1)
        mixed.record(10, 0, 4, 1)           # merges with the previous run
        reference = BottleneckTrace()
        for t in range(7):
            reference.record(t, 2, 0, 1)
        for t in range(7, 11):
            reference.record(t, 0, 4, 1)
        assert mixed.samples == reference.samples
        assert len(mixed._runs) == 2        # merged storage, expanded view

    def test_samples_refresh_after_tail_merge(self):
        trace = BottleneckTrace()
        trace.record(0, 1, 0, 0)
        assert len(trace.samples) == 1      # expand early...
        trace.record_run(1, 3, 1, 0, 0)     # ...then grow the tail run
        trace.record(4, 0, 2, 0)
        samples = trace.samples
        assert [s.tick for s in samples] == [0, 1, 2, 3, 4]
        assert samples[3].cum_transport == 4
        assert samples[4].cum_queuing == 2

    def test_rejects_gaps(self):
        trace = BottleneckTrace()
        trace.record(0, 1, 0, 0)
        with pytest.raises(SimulationError):
            trace.record_run(2, 5, 1, 0, 0)

    def test_rejects_nonzero_start(self):
        with pytest.raises(SimulationError):
            BottleneckTrace().record(3, 1, 0, 0)

    def test_rejects_empty_run(self):
        trace = BottleneckTrace()
        with pytest.raises(SimulationError):
            trace.record_run(5, 4, 1, 0, 0)

    def test_timeline_over_runs(self):
        trace = BottleneckTrace()
        trace.record_run(0, 99, 5, 0, 1)
        trace.record_run(100, 199, 1, 8, 2)
        assert trace.bottleneck_timeline(window=100) == ["transport",
                                                         "queuing"]
