"""Checkpoint/restore of a live simulation (service mode).

The contract under test: pickling a paused run and resurrecting it is
*invisible* — the restored run drains to a deterministic view
bit-identical to the uninterrupted run's, for every planner.  Plus the
envelope around the pickle: magic, version gate, cheap header probe,
atomic file writes.
"""

import pickle

import pytest

from repro.errors import CheckpointError, SimulationError
from repro.planners import PLANNERS
from repro.sim.checkpoint import (CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
                                  dump_checkpoint, load_checkpoint,
                                  load_checkpoint_bytes,
                                  read_checkpoint_header, save_checkpoint)
from repro.sim.engine import Simulation
from repro.sim.serialize import deterministic_view, result_to_dict
from repro.workloads.datasets import make_mini


def build_sim(planner_name="EATP", n_items=40):
    scenario = make_mini(n_items=n_items)
    state, items = scenario.build()
    planner = PLANNERS[planner_name](state)
    return Simulation(state, planner, items), items


def drained_view(sim):
    return deterministic_view(result_to_dict(sim.run()))


class TestRoundTrip:
    @pytest.mark.parametrize("planner_name", sorted(PLANNERS))
    def test_restore_is_bit_identical_for_every_planner(self, planner_name):
        baseline, _ = build_sim(planner_name)
        expected = drained_view(baseline)

        sim, _ = build_sim(planner_name)
        sim.run_until(60)
        assert 0 < sim.tick  # actually paused mid-run
        restored, extra = load_checkpoint_bytes(dump_checkpoint(sim))
        assert extra is None
        assert restored.tick == sim.tick
        assert drained_view(restored) == expected

    def test_original_continues_unharmed_after_dump(self):
        expected = drained_view(build_sim()[0])
        sim, _ = build_sim()
        sim.run_until(60)
        dump_checkpoint(sim)  # serialising must not perturb the run
        assert drained_view(sim) == expected

    def test_extra_payload_roundtrips(self):
        sim, _ = build_sim()
        sim.run_until(30)
        _, extra = load_checkpoint_bytes(
            dump_checkpoint(sim, extra={"cursor": 17, "tag": "soak"}))
        assert extra == {"cursor": 17, "tag": "soak"}


class TestEnvelope:
    def test_missing_magic_rejected(self):
        with pytest.raises(CheckpointError, match="magic"):
            load_checkpoint_bytes(b"not a checkpoint at all")

    def test_wrong_version_rejected(self):
        sim, _ = build_sim()
        blob = bytearray(dump_checkpoint(sim))
        # Re-pickle the header with a hostile version, keeping the body.
        import io
        buffer = io.BytesIO(bytes(blob[len(CHECKPOINT_MAGIC):]))
        unpickler = pickle.Unpickler(buffer)
        header = unpickler.load()
        body = buffer.read()
        header["version"] = CHECKPOINT_VERSION + 1
        forged = (CHECKPOINT_MAGIC
                  + pickle.dumps(header, protocol=4) + body)
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint_bytes(forged)

    def test_non_simulation_body_rejected(self):
        forged = CHECKPOINT_MAGIC + pickle.dumps(
            {"version": CHECKPOINT_VERSION}, protocol=4) + pickle.dumps(
            ({"not": "a sim"}, None), protocol=4)
        with pytest.raises(CheckpointError, match="Simulation"):
            load_checkpoint_bytes(forged)

    def test_header_probe_without_unpickling_body(self, tmp_path):
        sim, _ = build_sim()
        sim.run_until(60)
        path = save_checkpoint(sim, tmp_path / "a.ckpt")
        header = read_checkpoint_header(path)
        assert header["version"] == CHECKPOINT_VERSION
        assert header["tick"] == sim.tick
        assert header["planner"] == sim.planner.name
        assert header["items_total"] == sim.items_total

    def test_save_is_atomic_and_loadable(self, tmp_path):
        sim, _ = build_sim()
        sim.run_until(60)
        path = save_checkpoint(sim, tmp_path / "sub" / "b.ckpt")
        assert path.is_file()
        assert not list(tmp_path.rglob("*.tmp"))
        restored, _ = load_checkpoint(path)
        assert restored.tick == sim.tick

    def test_header_probe_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "noise.ckpt"
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(CheckpointError):
            read_checkpoint_header(path)


class TestServiceStepping:
    def test_run_until_prefix_matches_uninterrupted_run(self):
        expected = drained_view(build_sim()[0])
        sim, _ = build_sim()
        t = 0
        while not sim.drained:
            t += 25
            sim.run_until(t)
        assert drained_view(sim) == expected

    def test_chunked_feed_matches_upfront_feed(self):
        expected = drained_view(build_sim(n_items=40)[0])

        scenario = make_mini(n_items=40)
        state, items = scenario.build()
        planner = PLANNERS["EATP"](state)
        sim = Simulation(state, planner, items[:15])
        sim.extend_items(items[15:30])
        sim.extend_items(items[30:])
        assert drained_view(sim) == expected

    def test_extend_rejects_non_monotonic_items(self):
        sim, items = build_sim(n_items=10)
        with pytest.raises(SimulationError, match="sort after"):
            sim.extend_items([items[-1]])

    def test_extend_rejects_arrivals_before_the_clock(self):
        from repro.warehouse.entities import Item
        sim, items = build_sim(n_items=10)
        sim.run_until(10_000)  # drains the workload; clock at final tick
        assert sim.drained
        # Sorts after the tail item, but arrives in the run's past.
        stale = Item(item_id=len(items), rack_id=0,
                     arrival=items[-1].arrival + 1, processing_time=5)
        assert stale.arrival < sim.tick
        with pytest.raises(SimulationError, match="before the clock"):
            sim.extend_items([stale])

    def test_extend_after_drain_resumes(self):
        from repro.warehouse.entities import Item
        sim, items = build_sim(n_items=10)
        sim.run_until(10_000)
        assert sim.drained
        fresh = Item(item_id=len(items), rack_id=0,
                     arrival=sim.tick + 5, processing_time=5)
        sim.extend_items([fresh])
        assert not sim.drained
        result = sim.run()
        assert result.metrics.items_processed == len(items) + 1

    def test_result_before_drain_rejected(self):
        sim, _ = build_sim()
        sim.run_until(30)
        with pytest.raises(SimulationError, match="drained"):
            sim.result()
