"""Legacy (per-tick) vs event-driven engine equivalence.

The event-calendar refactor must be a pure wall-clock change: for every
planner, the frozen per-tick engine (``sim/_legacy_engine.py``) and the
event-driven engine (``sim/engine.py``) must produce identical makespans,
metrics, mission orders, bottleneck traces, and planned legs from the
same scenario — bit for bit, modulo wall-clock timing fields.  This
mirrors the ``pathfinding/_legacy.py`` equivalence suite of the packed
search core.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.errors import SimulationError
from repro.planners import PLANNERS
from repro.sim._legacy_engine import LegacySimulation
from repro.sim.engine import Simulation
from repro.sim.serialize import deterministic_view, result_to_dict
from repro.warehouse.entities import Item
from repro.warehouse.layout import build_layout
from repro.warehouse.state import WarehouseState
from repro.workloads.datasets import make_mini, scenario_family

#: Extra mini workload draws beyond the registered family instance, so the
#: sweep exercises different batching/queueing interleavings.
MINI_SEEDS = (20220513, 7)


def run_engine(engine_cls, scenario, planner_name):
    state, items = scenario.build()
    planner = PLANNERS[planner_name](state)
    config = SimulationConfig(record_bottleneck_trace=True,
                              collect_paths=True)
    result = engine_cls(state, planner, items, config).run()
    return result, state


def mini_scenarios():
    scenarios = list(scenario_family("mini", scale=1.0))
    scenarios += [make_mini(seed=seed, n_items=42) for seed in MINI_SEEDS]
    return scenarios


@pytest.mark.parametrize("planner_name", sorted(PLANNERS))
def test_engines_identical_over_mini_family(planner_name):
    for scenario in mini_scenarios():
        legacy_result, legacy_state = run_engine(
            LegacySimulation, scenario, planner_name)
        event_result, event_state = run_engine(
            Simulation, scenario, planner_name)

        # Named assertions first, for readable failures.
        assert (event_result.metrics.makespan
                == legacy_result.metrics.makespan), scenario.name
        assert ([(m.robot_id, m.rack_id, m.dispatched_at)
                 for m in event_result.missions]
                == [(m.robot_id, m.rack_id, m.dispatched_at)
                    for m in legacy_result.missions]), scenario.name
        assert (event_result.trace.samples
                == legacy_result.trace.samples), scenario.name
        # Then the full serialised payload, field by field.
        assert (deterministic_view(result_to_dict(event_result))
                == deterministic_view(result_to_dict(legacy_result))), \
            scenario.name
        # Every planned leg, in planning order, with its owner.
        assert ([p.steps for p in event_result.paths]
                == [p.steps for p in legacy_result.paths]), scenario.name
        assert (event_result.path_owners
                == legacy_result.path_owners), scenario.name
        # The worlds the two engines leave behind agree too.
        assert ([(r.location, r.state, r.busy_ticks)
                 for r in event_state.robots]
                == [(r.location, r.state, r.busy_ticks)
                    for r in legacy_state.robots]), scenario.name
        assert ([(p.busy_ticks, p.accumulated_processing,
                  p.queued_processing) for p in event_state.pickers]
                == [(p.busy_ticks, p.accumulated_processing,
                     p.queued_processing)
                    for p in legacy_state.pickers]), scenario.name
        assert ([(r.phase, r.last_return, r.accumulated_processing)
                 for r in event_state.racks]
                == [(r.phase, r.last_return, r.accumulated_processing)
                    for r in legacy_state.racks]), scenario.name


@pytest.mark.parametrize("planner_name", ["NTP", "EATP"])
def test_engines_identical_on_saturated_picker(planner_name):
    """Deep FCFS backlogs (the queueing-heavy regime) replay identically."""
    def build():
        layout = build_layout(16, 12, n_racks=6, n_pickers=2)
        state = WarehouseState.from_layout(layout, n_robots=3,
                                           rack_to_picker=[0] * 6)
        items = [Item(i, i % 6, arrival=0, processing_time=30)
                 for i in range(18)]
        return state, items

    views = []
    for engine_cls in (LegacySimulation, Simulation):
        state, items = build()
        planner = PLANNERS[planner_name](state)
        config = SimulationConfig(record_bottleneck_trace=True)
        result = engine_cls(state, planner, items, config).run()
        views.append(deterministic_view(result_to_dict(result)))
    assert views[0] == views[1]


def test_engines_agree_on_max_ticks_guard():
    """Both engines flag a run that cannot drain, at the same boundary."""
    def build():
        layout = build_layout(16, 12, n_racks=6, n_pickers=2)
        state = WarehouseState.from_layout(layout, n_robots=1)
        items = [Item(0, 5, arrival=0, processing_time=1000)]
        return state, items

    config = SimulationConfig(max_ticks=50)
    for engine_cls in (LegacySimulation, Simulation):
        state, items = build()
        planner = PLANNERS["NTP"](state)
        with pytest.raises(SimulationError, match="max_ticks=50"):
            engine_cls(state, planner, items, config).run()


def test_event_engine_processes_fewer_ticks():
    """The calendar must actually skip quiet spans, not just match."""
    scenario = make_mini(seed=3, n_items=30)
    state, items = scenario.build()
    planner = PLANNERS["NTP"](state)
    simulation = Simulation(state, planner, items)
    result = simulation.run()
    assert simulation.events_processed < result.metrics.makespan
