"""Property tests: ``ScenarioSpec`` is declarative, deterministic, and
process-safe.

The parallel experiment matrix rests on three guarantees:

* a spec is plain picklable data (it must cross process boundaries);
* ``build()`` is a pure function of the spec — same spec, same world and
  byte-identical item stream, in the parent or in a spawned worker;
* two builds never share mutable state (a planner mutating one world
  cannot leak into another planner's comparison run).
"""

from __future__ import annotations

import multiprocessing
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.datasets import (all_datasets, make_mini,
                                      obstructed_floor, scenario_family)
from repro.workloads.scenario import (ItemStreamSpec, ScenarioSpec,
                                      workload_fingerprint)

ALL_SPECS = sorted(all_datasets(0.18).values(), key=lambda s: s.name)


def spec_strategy():
    """Small random specs over the registered stochastic generators."""
    poisson = st.builds(
        lambda n, racks, rate, seed: ItemStreamSpec.of(
            "poisson", n_items=n, n_racks=racks, rate=rate, seed=seed),
        st.integers(1, 60), st.integers(8, 16),
        st.floats(0.1, 2.0, allow_nan=False), st.integers(0, 2**31))
    surge = st.builds(
        lambda n, racks, seed: ItemStreamSpec.of(
            "surge", n_items=n, n_racks=racks, base_rate=0.2, peak_rate=1.0,
            ramp_fraction=0.25, seed=seed),
        st.integers(1, 60), st.integers(8, 16), st.integers(0, 2**31))
    return st.builds(
        lambda items, seed: ScenarioSpec(
            name="prop", width=18, height=14, n_racks=16, n_pickers=2,
            n_robots=2, items=items),
        st.one_of(poisson, surge), st.integers())


class TestDeterminism:
    @given(spec=spec_strategy())
    @settings(max_examples=40, deadline=None)
    def test_same_spec_same_stream(self, spec):
        assert spec.items.materialise() == spec.items.materialise()
        assert workload_fingerprint(spec) == workload_fingerprint(spec)

    @given(spec=spec_strategy())
    @settings(max_examples=20, deadline=None)
    def test_pickle_roundtrip_preserves_stream(self, spec):
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert workload_fingerprint(clone) == workload_fingerprint(spec)

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_dataset_builds_are_reproducible(self, spec):
        __, items_a = spec.build()
        __, items_b = spec.build()
        assert items_a == items_b

    def test_obstructed_layouts_are_reproducible(self):
        spec = obstructed_floor(scale=0.2)[-1]
        assert (spec.layout().grid.blocked_cells
                == spec.layout().grid.blocked_cells)


class TestProcessSafety:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_spawned_worker_sees_identical_stream(self, spec):
        # ``spawn`` (not fork) so the child re-imports everything from
        # scratch: nothing about the stream may depend on parent memory.
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(1) as pool:
            child = pool.apply(workload_fingerprint, (spec,))
        assert child == workload_fingerprint(spec)

    def test_family_specs_are_picklable(self):
        for family in ("table2", "surge-sweep", "fleet-ladder",
                       "obstructed", "mini"):
            for spec in scenario_family(family, scale=0.2):
                assert pickle.loads(pickle.dumps(spec)) == spec


class TestIsolation:
    def test_builds_never_share_mutable_state(self):
        spec = make_mini(n_items=30)
        state_a, items_a = spec.build()
        state_b, items_b = spec.build()
        assert state_a is not state_b
        assert items_a is not items_b
        assert all(ra is not rb for ra, rb in zip(state_a.racks, state_b.racks))
        assert all(pa is not pb for pa, pb in zip(state_a.pickers, state_b.pickers))
        assert all(ta is not tb for ta, tb in zip(state_a.robots, state_b.robots))

    def test_mutating_one_build_leaves_the_other_untouched(self):
        spec = make_mini(n_items=30)
        state_a, items_a = spec.build()
        state_b, items_b = spec.build()
        state_a.deliver_item(items_a[0])
        state_a.robots[0].busy_ticks = 999
        items_a.clear()
        assert state_b.total_pending_items() == 0
        assert state_b.robots[0].busy_ticks == 0
        assert len(items_b) == 30

    def test_spec_itself_is_immutable(self):
        spec = make_mini(n_items=10)
        with pytest.raises(AttributeError):
            spec.n_robots = 99
        with pytest.raises(AttributeError):
            spec.items.generator = "surge"
