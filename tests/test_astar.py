"""Unit tests for spatial A* and the heuristics module."""

import pytest

from repro.errors import PathNotFoundError
from repro.pathfinding.astar import shortest_distance, shortest_path
from repro.pathfinding.heuristics import (HeuristicFieldCache,
                                          manhattan_heuristic,
                                          true_distance_heuristic)
from repro.types import manhattan
from repro.warehouse.grid import Grid


class TestShortestPath:
    def test_trivial_same_cell(self, small_grid):
        assert shortest_path(small_grid, (3, 3), (3, 3)) == [(3, 3)]

    def test_length_equals_manhattan_on_open_grid(self, small_grid):
        path = shortest_path(small_grid, (0, 0), (9, 7))
        assert len(path) - 1 == manhattan((0, 0), (9, 7))

    def test_consecutive_steps_adjacent(self, small_grid):
        path = shortest_path(small_grid, (0, 0), (7, 5))
        for a, b in zip(path, path[1:]):
            assert manhattan(a, b) == 1

    def test_detours_around_wall(self, blocked_grid):
        path = shortest_path(blocked_grid, (4, 0), (6, 0))
        assert len(path) - 1 > manhattan((4, 0), (6, 0))
        assert all(blocked_grid.passable(cell) for cell in path)

    def test_raises_when_disconnected(self):
        grid = Grid(5, 3, blocked=[(2, y) for y in range(3)])
        with pytest.raises(PathNotFoundError):
            shortest_path(grid, (0, 0), (4, 0))

    def test_with_true_distance_heuristic_same_length(self, blocked_grid):
        h = true_distance_heuristic(blocked_grid, (6, 0))
        with_h = shortest_path(blocked_grid, (4, 0), (6, 0), heuristic=h)
        without = shortest_path(blocked_grid, (4, 0), (6, 0))
        assert len(with_h) == len(without)

    def test_endpoints(self, small_grid):
        path = shortest_path(small_grid, (2, 2), (8, 6))
        assert path[0] == (2, 2)
        assert path[-1] == (8, 6)


class TestShortestDistance:
    def test_matches_bfs(self, blocked_grid):
        bfs = blocked_grid.bfs_distances((0, 0))
        for goal in [(9, 7), (6, 0), (5, 6)]:
            assert shortest_distance(blocked_grid, (0, 0), goal) == bfs[goal]


class TestHeuristics:
    def test_manhattan_heuristic(self):
        h = manhattan_heuristic((5, 5))
        assert h((5, 5)) == 0
        assert h((0, 0)) == 10

    def test_true_distance_admissible_and_exact(self, blocked_grid):
        h = true_distance_heuristic(blocked_grid, (6, 0))
        assert h((6, 0)) == 0
        assert h((4, 0)) == shortest_distance(blocked_grid, (4, 0), (6, 0))

    def test_true_distance_unreachable_is_big(self):
        grid = Grid(5, 3, blocked=[(2, y) for y in range(3)])
        h = true_distance_heuristic(grid, (4, 0))
        assert h((0, 0)) > grid.n_cells

    def test_cache_reuses_tables(self, small_grid):
        cache = HeuristicFieldCache(small_grid)
        cache.field((5, 5))
        cache.field((5, 5))
        assert len(cache) == 1
        cache.field((1, 1))
        assert len(cache) == 2

    def test_cache_distance(self, blocked_grid):
        cache = HeuristicFieldCache(blocked_grid)
        assert cache.distance((4, 0), (6, 0)) == shortest_distance(
            blocked_grid, (4, 0), (6, 0))

    def test_cache_memory_grows(self, small_grid):
        cache = HeuristicFieldCache(small_grid)
        empty = cache.memory_bytes()
        cache.field((5, 5))
        assert cache.memory_bytes() > empty
