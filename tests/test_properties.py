"""Property-based tests (hypothesis) on the core data structures.

These pin down the algebraic invariants the pathfinding stack rests on:
A* optimality against BFS ground truth, reservation-structure equivalence,
conflict-detector correctness against a naive oracle, and Q-table algebra.
"""

from hypothesis import given, settings, strategies as st

from repro.pathfinding.astar import shortest_path
from repro.pathfinding.cdt import ConflictDetectionTable
from repro.pathfinding.conflicts import find_conflicts, is_conflict_free
from repro.pathfinding.paths import Path
from repro.pathfinding.spatiotemporal_graph import SpatiotemporalGraph
from repro.pathfinding.st_astar import find_path
from repro.rl.mdp import (ACTION_REQUEST, ACTION_WAIT, RackObservation,
                          bucketize, request_cost, reward, transition,
                          wait_cost)
from repro.rl.qtable import QTable
from repro.types import manhattan
from repro.warehouse.grid import Grid

GRID_W, GRID_H = 12, 9

cells = st.tuples(st.integers(0, GRID_W - 1), st.integers(0, GRID_H - 1))


def random_walk(grid, start, moves):
    """Turn a move-index sequence into a lawful timed path."""
    cells_out = [start]
    for move in moves:
        x, y = cells_out[-1]
        options = [(x, y)] + list(grid.neighbours((x, y)))
        cells_out.append(options[move % len(options)])
    return cells_out


walks = st.tuples(cells, st.lists(st.integers(0, 4), min_size=1, max_size=12),
                  st.integers(0, 20))


class TestAStarProperties:
    @given(source=cells, goal=cells)
    @settings(max_examples=60, deadline=None)
    def test_astar_matches_manhattan_on_open_grid(self, source, goal):
        grid = Grid(GRID_W, GRID_H)
        path = shortest_path(grid, source, goal)
        assert len(path) - 1 == manhattan(source, goal)
        assert path[0] == source and path[-1] == goal

    @given(source=cells, goal=cells)
    @settings(max_examples=40, deadline=None)
    def test_astar_matches_bfs_with_obstacles(self, source, goal):
        wall = [(5, y) for y in range(GRID_H - 2)]
        grid = Grid(GRID_W, GRID_H, blocked=wall)
        if not grid.passable(source) or not grid.passable(goal):
            return
        bfs = grid.bfs_distances(source)
        if bfs[goal] < 0:
            return
        path = shortest_path(grid, source, goal)
        assert len(path) - 1 == bfs[goal]


class TestPathProperties:
    @given(walk=walks)
    @settings(max_examples=60, deadline=None)
    def test_random_walk_is_lawful_path(self, walk):
        start, moves, t0 = walk
        grid = Grid(GRID_W, GRID_H)
        path = Path.from_cells(random_walk(grid, start, moves), t0)
        assert path.start_time == t0
        assert path.duration == len(moves)
        assert path.cell_at(t0) == path.source
        assert path.cell_at(path.end_time + 99) == path.goal

    @given(walk=walks, probe=st.integers(-5, 40))
    @settings(max_examples=60, deadline=None)
    def test_cell_at_always_on_path(self, walk, probe):
        start, moves, t0 = walk
        grid = Grid(GRID_W, GRID_H)
        path = Path.from_cells(random_walk(grid, start, moves), t0)
        assert path.cell_at(t0 + probe) in path.spatial_cells()


class TestReservationEquivalence:
    @given(walks_list=st.lists(walks, min_size=1, max_size=4),
           probe_t=st.integers(0, 35), probe_cell=cells)
    @settings(max_examples=60, deadline=None)
    def test_stgraph_and_cdt_agree(self, walks_list, probe_t, probe_cell):
        grid = Grid(GRID_W, GRID_H)
        graph = SpatiotemporalGraph(grid)
        cdt = ConflictDetectionTable()
        for start, moves, t0 in walks_list:
            path = Path.from_cells(random_walk(grid, start, moves), t0)
            graph.reserve_path(path)
            cdt.reserve_path(path)
        assert graph.is_free(probe_t, probe_cell) == cdt.is_free(
            probe_t, probe_cell)
        for target in Grid(GRID_W, GRID_H).neighbours(probe_cell):
            assert (graph.edge_free(probe_t, probe_cell, target)
                    == cdt.edge_free(probe_t, probe_cell, target))

    @given(walks_list=st.lists(walks, min_size=1, max_size=4),
           floor=st.integers(0, 30), probe_t=st.integers(0, 35),
           probe_cell=cells)
    @settings(max_examples=60, deadline=None)
    def test_agreement_survives_purge(self, walks_list, floor, probe_t,
                                      probe_cell):
        grid = Grid(GRID_W, GRID_H)
        graph = SpatiotemporalGraph(grid)
        cdt = ConflictDetectionTable()
        for start, moves, t0 in walks_list:
            path = Path.from_cells(random_walk(grid, start, moves), t0)
            graph.reserve_path(path)
            cdt.reserve_path(path)
        graph.purge_before(floor)
        cdt.purge_before(floor)
        assert graph.is_free(probe_t, probe_cell) == cdt.is_free(
            probe_t, probe_cell)


class TestConflictOracle:
    @staticmethod
    def naive_conflicts(paths):
        """Quadratic oracle implementing Def. 5 literally."""
        found = False
        for i in range(len(paths)):
            for j in range(i + 1, len(paths)):
                a = {(t, (x, y)) for (t, x, y) in paths[i]}
                for (t, x, y) in paths[j]:
                    if (t, (x, y)) in a:
                        found = True
                edges_a = set()
                steps = list(paths[i])
                for (t0, x0, y0), (__, x1, y1) in zip(steps, steps[1:]):
                    edges_a.add((t0, (x0, y0), (x1, y1)))
                steps_b = list(paths[j])
                for (t0, x0, y0), (__, x1, y1) in zip(steps_b, steps_b[1:]):
                    if (t0, (x1, y1), (x0, y0)) in edges_a and (x0, y0) != (x1, y1):
                        found = True
        return found

    @given(walks_list=st.lists(walks, min_size=2, max_size=4))
    @settings(max_examples=80, deadline=None)
    def test_detector_matches_oracle(self, walks_list):
        grid = Grid(GRID_W, GRID_H)
        paths = [Path.from_cells(random_walk(grid, s, m), t0)
                 for s, m, t0 in walks_list]
        assert (not is_conflict_free(paths)) == self.naive_conflicts(paths)


class TestStAstarProperties:
    @given(walks_list=st.lists(walks, min_size=0, max_size=3),
           source=cells, goal=cells, t0=st.integers(0, 10))
    @settings(max_examples=40, deadline=None)
    def test_found_path_conflict_free_with_reservations(
            self, walks_list, source, goal, t0):
        grid = Grid(GRID_W, GRID_H)
        cdt = ConflictDetectionTable()
        reserved = []
        for s, m, rt0 in walks_list:
            path = Path.from_cells(random_walk(grid, s, m), rt0)
            cdt.reserve_path(path)
            reserved.append(path)
        try:
            ours = find_path(grid, cdt, source, goal, start_time=t0,
                             max_expansions=20_000)
        except Exception:
            return  # saturated start cell can be legitimately unsolvable
        # Our path may only clash with a reserved path at its own start
        # vertex (the robot's physical position is never vacated).
        clashes = find_conflicts(reserved + [ours])
        ours_index = len(reserved)
        for clash in clashes:
            if ours_index in (clash.first, clash.second):
                assert (clash.time, clash.cell) == (t0, source)

    @given(source=cells, goal=cells, t0=st.integers(0, 10))
    @settings(max_examples=40, deadline=None)
    def test_optimal_when_unconstrained(self, source, goal, t0):
        grid = Grid(GRID_W, GRID_H)
        ours = find_path(grid, ConflictDetectionTable(), source, goal,
                         start_time=t0)
        assert ours.duration == manhattan(source, goal)


class TestMdpProperties:
    observations = st.builds(
        RackObservation,
        picker_accumulated=st.integers(0, 10_000),
        rack_accumulated=st.integers(0, 10_000),
        picker_finish_time=st.integers(0, 2_000),
        distance_to_picker=st.integers(1, 200),
        batch_processing_time=st.integers(1, 2_000),
        n_pending=st.integers(1, 100))

    @given(observation=observations, width=st.integers(1, 500))
    @settings(max_examples=80, deadline=None)
    def test_bucketize_monotone_and_consistent(self, observation, width):
        state = bucketize(observation, width)
        assert state[0] == observation.picker_accumulated // width
        assert state[1] == observation.rack_accumulated // width

    @given(observation=observations)
    @settings(max_examples=80, deadline=None)
    def test_costs_always_negative(self, observation):
        assert reward(observation) < 0
        assert request_cost(observation) <= 0
        assert wait_cost(observation) < 0

    @given(observation=observations, width=st.integers(1, 500))
    @settings(max_examples=80, deadline=None)
    def test_wait_transition_is_identity(self, observation, width):
        state = bucketize(observation, width)
        assert transition(state, ACTION_WAIT,
                          observation.batch_processing_time, width) == state

    @given(observation=observations, width=st.integers(1, 500))
    @settings(max_examples=80, deadline=None)
    def test_request_transition_monotone(self, observation, width):
        state = bucketize(observation, width)
        nxt = transition(state, ACTION_REQUEST,
                         observation.batch_processing_time, width)
        assert nxt[0] >= state[0] and nxt[1] >= state[1]


class TestQTableProperties:
    @given(entries=st.lists(
        st.tuples(st.tuples(st.integers(0, 20), st.integers(0, 20)),
                  st.sampled_from([ACTION_WAIT, ACTION_REQUEST]),
                  st.floats(-1e6, 1e6, allow_nan=False)),
        max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_best_value_is_max(self, entries):
        table = QTable()
        for state, action, value in entries:
            table.set(state, action, value)
        for state, __, __ in entries:
            best = table.best_value(state)
            assert best >= table.get(state, ACTION_WAIT) - 1e-9
            assert best >= table.get(state, ACTION_REQUEST) - 1e-9
            assert best in (table.get(state, ACTION_WAIT),
                            table.get(state, ACTION_REQUEST))


class TestTraceSerialisationProperties:
    """``trace_from_dict(trace_to_dict(t))`` reproduces the trace exactly.

    Both representations must survive: the expanded per-tick ``samples``
    (what Fig. 13 consumers read) and the run-length ``runs`` structure
    (the canonical merged segments — rebuilding from per-tick samples
    must re-merge adjacent identical ticks into the same runs).
    """

    #: Per-segment decomposition counts plus the segment length.
    segments = st.lists(
        st.tuples(st.integers(1, 6),                    # run length
                  st.integers(0, 3), st.integers(0, 3),  # tr, qu
                  st.integers(0, 3)),                    # pr
        min_size=1, max_size=12)

    @given(segments=segments)
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_reproduces_samples_and_runs(self, segments):
        from repro.sim.serialize import trace_from_dict, trace_to_dict
        from repro.sim.trace import BottleneckTrace

        trace = BottleneckTrace()
        tick = 0
        for length, tr, qu, pr in segments:
            trace.record_run(tick, tick + length - 1, tr, qu, pr)
            tick += length
        rebuilt = trace_from_dict(trace_to_dict(trace))
        assert rebuilt.samples == trace.samples
        assert rebuilt.runs == trace.runs
        assert len(rebuilt) == len(trace)
