"""Simulation-engine edge cases: degenerate workloads and saturated floors.

The harness refactor made every experiment a (spec × planner) cell, so the
engine now meets worlds it never saw in the paper's tables: empty
workloads (misconfigured sweeps), single-robot fleets (the bottom rung of
the fleet ladder), and pickers whose queues stay backed up for the whole
run.  Each must either fail loudly at the boundary or drain cleanly —
never hang.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigurationError, SimulationError
from repro.planners import PLANNERS
from repro.sim.engine import Simulation
from repro.warehouse.entities import Item
from repro.warehouse.layout import build_layout
from repro.warehouse.state import WarehouseState
from repro.workloads.scenario import ItemStreamSpec, ScenarioSpec


def one_picker_world(n_racks=6, n_robots=2):
    """Every rack feeds picker 0; picker 1 exists but never gets work."""
    layout = build_layout(16, 12, n_racks=n_racks, n_pickers=2)
    return WarehouseState.from_layout(layout, n_robots=n_robots,
                                      rack_to_picker=[0] * n_racks)


class TestZeroItemWorkload:
    def test_simulation_rejects_empty_items(self):
        layout = build_layout(16, 12, n_racks=4, n_pickers=2)
        state = WarehouseState.from_layout(layout, n_robots=1)
        planner = PLANNERS["NTP"](state)
        with pytest.raises(SimulationError):
            Simulation(state, planner, [])

    def test_spec_with_empty_stream_fails_at_build(self):
        spec = ScenarioSpec(
            name="void", width=16, height=12, n_racks=4, n_pickers=2,
            n_robots=1, items=ItemStreamSpec.of("deterministic", schedule=[]))
        with pytest.raises(ConfigurationError):
            spec.build()


class TestSingleRobotFleet:
    @pytest.mark.parametrize("name", sorted(PLANNERS))
    def test_one_robot_drains_everything(self, name):
        layout = build_layout(16, 12, n_racks=6, n_pickers=2)
        state = WarehouseState.from_layout(layout, n_robots=1)
        items = [Item(i, i % 6, arrival=i * 3, processing_time=4)
                 for i in range(18)]
        planner = PLANNERS[name](state)
        result = Simulation(state, planner, items).run()
        assert result.metrics.items_processed == 18
        # One robot serialises the cycles: missions cannot overlap.
        spans = sorted((m.dispatched_at, m.stage_entered_at)
                       for m in result.missions)
        for (__, end), (start, __) in zip(spans, spans[1:]):
            assert start >= end

    def test_single_robot_single_picker_single_rack(self):
        layout = build_layout(16, 12, n_racks=1, n_pickers=1)
        state = WarehouseState.from_layout(layout, n_robots=1)
        items = [Item(i, 0, arrival=i * 40, processing_time=5)
                 for i in range(4)]
        planner = PLANNERS["NTP"](state)
        result = Simulation(state, planner, items).run()
        assert result.metrics.items_processed == 4
        assert result.metrics.makespan >= 4 * 5


class TestSaturatedPicker:
    """A queue that never drains mid-run must not stop the clock."""

    def _flood(self, name):
        state = one_picker_world(n_racks=6, n_robots=3)
        # Everything lands at t=0 with heavy batches: picker 0's queue
        # stays backed up until the workload is exhausted.
        items = [Item(i, i % 6, arrival=0, processing_time=30)
                 for i in range(18)]
        planner = PLANNERS[name](state)
        config = SimulationConfig(record_bottleneck_trace=True)
        return state, Simulation(state, planner, items, config).run()

    @pytest.mark.parametrize("name", ["NTP", "EATP"])
    def test_terminates_with_all_items_processed(self, name):
        state, result = self._flood(name)
        assert result.metrics.items_processed == 18
        # The single working picker bounds the makespan from below by the
        # full processing load; termination proves no livelock.
        assert result.metrics.makespan >= 18 * 30

    @pytest.mark.parametrize("name", ["NTP", "EATP"])
    def test_queue_stays_backed_up_until_the_end(self, name):
        __, result = self._flood(name)
        waiting = [s.queuing + s.processing for s in result.trace.samples]
        # From first delivery to the last batch there is never a tick
        # where picker-side work has drained.
        first = next(i for i, v in enumerate(waiting) if v)
        last = max(i for i, v in enumerate(waiting) if v)
        assert all(v > 0 for v in waiting[first:last + 1])
        # The span covers (at least) the full 540-tick processing load,
        # modulo the boundary ticks where legs hand over.
        assert last - first >= 18 * 30 - 5

    def test_idle_picker_never_works(self):
        state, result = self._flood("NTP")
        assert state.pickers[1].busy_ticks == 0
        assert state.pickers[0].busy_ticks == 18 * 30
