"""Property suite: sharded reservation structures == their global twins.

The region-sharded variants (tick buckets / graph layers partitioned
into fixed spatial tiles) are pure performance reshapes behind the
``ReservationTable`` interface — every probe, audit, reserve and purge
must answer exactly what the global structure answers.  These tests pin
that equivalence on randomized cross-tile traffic, including the nasty
cases: swap conflicts whose two cells straddle a tile edge, windowed
commits, and purges interleaved with audits.
"""

import random

import pytest

from repro.pathfinding.cdt import (ConflictDetectionTable,
                                   ShardedConflictDetectionTable)
from repro.pathfinding.paths import Path
from repro.pathfinding.reservation import CELL_KEY_SHIFT, PackedChain
from repro.pathfinding.spatiotemporal_graph import (
    ShardedSpatiotemporalGraph, SpatiotemporalGraph)
from repro.warehouse.grid import Grid

#: Grid spanning a 3×3 block of the sharded variants' default 32×32
#: tiles, so random staircases routinely cross tile boundaries.
WIDTH, HEIGHT = 96, 96

#: (global factory, sharded factory) pairs under test.
PAIRS = {
    "stgraph": (lambda: SpatiotemporalGraph(Grid(WIDTH, HEIGHT)),
                lambda: ShardedSpatiotemporalGraph()),
    "cdt": (lambda: ConflictDetectionTable(),
            lambda: ShardedConflictDetectionTable()),
}


@pytest.fixture(params=sorted(PAIRS))
def pair(request):
    make_global, make_sharded = PAIRS[request.param]
    return make_global(), make_sharded()


def staircase(rng, start=None, goal=None):
    """Random monotone staircase between two random cells."""
    if start is None:
        start = (rng.randrange(WIDTH), rng.randrange(HEIGHT))
    if goal is None:
        goal = (rng.randrange(WIDTH), rng.randrange(HEIGHT))
    (x, y), (gx, gy) = start, goal
    cells = [(x, y)]
    while (x, y) != (gx, gy):
        if x != gx and (y == gy or rng.random() < 0.5):
            x += 1 if gx > x else -1
        else:
            y += 1 if gy > y else -1
        cells.append((x, y))
    return cells


def chain_of(cells):
    """A PackedChain over ``cells`` (every consecutive pair is a move)."""
    keys = [(x << CELL_KEY_SHIFT) | y for x, y in cells]
    flat = [x * HEIGHT + y for x, y in cells]
    return PackedChain(tuple(cells), keys, flat)


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_cross_tile_traffic(self, pair, seed):
        """Reserve/audit/probe/purge agree on random cross-tile paths."""
        table_global, table_sharded = pair
        rng = random.Random(1000 + seed)
        reserved = []
        for round_no in range(30):
            cells = staircase(rng)
            t0 = rng.randrange(0, 80)
            path = Path.from_cells(cells, start_time=t0)
            verdicts = (table_global.audit_path(path),
                        table_sharded.audit_path(path))
            assert verdicts[0] == verdicts[1], (
                f"audit diverged on round {round_no}")
            probe = chain_of(cells)
            assert (table_global.audit_chain(t0, probe, len(cells) - 1)
                    == table_sharded.audit_chain(t0, probe,
                                                 len(cells) - 1)), (
                f"audit_chain diverged on round {round_no}")
            if verdicts[0]:
                # Windowed commits exercise the horizon semantics too.
                horizon = (t0 + rng.randrange(1, 40)
                           if rng.random() < 0.3 else None)
                table_global.reserve_path(path, horizon)
                table_sharded.reserve_path(path, horizon)
                reserved.append(path)
            if round_no % 7 == 6:
                cut = rng.randrange(0, 40)
                table_global.purge_before(cut)
                table_sharded.purge_before(cut)
            # Spot probes around reserved traffic.
            for __ in range(20):
                t = rng.randrange(0, 140)
                cell = (rng.randrange(WIDTH), rng.randrange(HEIGHT))
                assert (table_global.is_free(t, cell)
                        == table_sharded.is_free(t, cell))
        assert reserved, "the randomized workload never reserved a path"

    @pytest.mark.parametrize("seed", range(3))
    def test_move_probes_agree(self, pair, seed):
        """edge_free / move_allowed agree along and against traffic."""
        table_global, table_sharded = pair
        rng = random.Random(2000 + seed)
        for __ in range(12):
            cells = staircase(rng)
            path = Path.from_cells(cells, start_time=rng.randrange(0, 30))
            table_global.reserve_path(path)
            table_sharded.reserve_path(path)
        for __ in range(300):
            t = rng.randrange(0, 120)
            x = rng.randrange(WIDTH - 1)
            y = rng.randrange(HEIGHT - 1)
            source = (x, y)
            target = (x + 1, y) if rng.random() < 0.5 else (x, y + 1)
            if rng.random() < 0.5:
                source, target = target, source
            assert (table_global.edge_free(t, source, target)
                    == table_sharded.edge_free(t, source, target))
            assert (table_global.move_allowed(t, source, target)
                    == table_sharded.move_allowed(t, source, target))


class TestTileEdgeSwaps:
    """Swap conflicts whose two cells sit in *different* tiles."""

    #: Cell pairs straddling a default (32×32) tile boundary: vertical
    #: edge between x=31|32, horizontal edge between y=31|32.
    STRADDLES = [((31, 10), (32, 10)), ((10, 31), (10, 32)),
                 ((63, 40), (64, 40)), ((40, 63), (40, 64))]

    @pytest.mark.parametrize("a,b", STRADDLES)
    def test_swap_across_tile_edge_blocked(self, pair, a, b):
        table_global, table_sharded = pair
        path = Path.from_cells([a, b], start_time=5)
        for table in pair:
            table.reserve_path(path)
        swap = Path.from_cells([b, a], start_time=5)
        assert table_global.audit_path(swap) is False
        assert table_sharded.audit_path(swap) is False
        # The same swap one tick later is clean on both.
        later = Path.from_cells([b, a], start_time=6)
        assert table_global.audit_path(later) == \
            table_sharded.audit_path(later)

    @pytest.mark.parametrize("a,b", STRADDLES)
    def test_vertex_across_tile_edge(self, pair, a, b):
        table_global, table_sharded = pair
        path = Path.from_cells([a, b], start_time=0)
        for table in pair:
            table.reserve_path(path)
        for t in (0, 1, 2):
            for cell in (a, b):
                assert (table_global.is_free(t, cell)
                        == table_sharded.is_free(t, cell))


class TestEndToEndSharding:
    """Forcing sharding on a sub-gate run must not change behaviour."""

    def test_run_identical_modulo_memory(self):
        from repro.config import PlannerConfig
        from repro.experiments.harness import run_planner
        from repro.sim.serialize import deterministic_view, result_to_dict
        from repro.workloads.datasets import make_mini

        spec = make_mini(seed=11, n_items=40)
        views = {}
        for sharding in (False, True):
            config = PlannerConfig(reservation_sharding=sharding)
            result = run_planner(spec, "NTP", planner_config=config)
            view = deterministic_view(result_to_dict(result))
            # The structures differ in footprint by design; everything
            # else — makespan, missions, traces, tier counters — is
            # pinned identical.
            view["metrics"].pop("peak_memory_bytes", None)
            view["metrics"].pop("final_memory_bytes", None)
            for checkpoint in view["metrics"].get("checkpoints", []):
                checkpoint.pop("memory_bytes", None)
            views[sharding] = view
        assert views[False] == views[True]
