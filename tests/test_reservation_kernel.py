"""Native reservation-mutation kernel: equivalence and accounting.

The compiled reserve / unreserve / purge / audit entry points must be
drop-ins for the pure-python mutation loops on every production table —
same container contents bit for bit, same incremental counters, same
probe-index feed (including poisoning), same audit answers — and the
incremental occupancy counters every structure now maintains must never
drift from a walk-from-scratch recount.  The equivalence half builds the
extension on the fly (skipping where no compiler is available); the
counter-drift property and the planner accounting tests run under
whichever kernel is selected, so the pure-python CI job exercises them
with the extension never built.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as hyp

from repro.config import PlannerConfig
from repro.pathfinding._kernel import build_and_load
from repro.pathfinding.cdt import (ConflictDetectionTable,
                                   ShardedConflictDetectionTable)
from repro.pathfinding.free_flow import FreeFlowPathCache
from repro.pathfinding.heuristics import HeuristicFieldCache
from repro.pathfinding.paths import Path
from repro.pathfinding.reservation import (ReservationTable,
                                           mutation_kernel_name,
                                           set_mutation_kernel)
from repro.pathfinding.spatiotemporal_graph import (ShardedSpatiotemporalGraph,
                                                    SpatiotemporalGraph)
from repro.pathfinding.st_astar import search_kernel_name, set_search_kernel
from repro.planners import PLANNERS
from repro.sim.engine import Simulation
from repro.warehouse.grid import Grid
from repro.workloads.datasets import make_mini

COMPILED = build_and_load()

needs_compiled = pytest.mark.skipif(
    COMPILED is None,
    reason="native kernel unavailable (no compiler or REPRO_KERNEL_BUILD=0)")


@pytest.fixture(autouse=True)
def _restore_kernel():
    # set_search_kernel rewires the mutation kernel too, so restoring the
    # search selection restores everything a test switched.
    previous = search_kernel_name()
    yield
    set_search_kernel(previous)


WIDTH, HEIGHT = 12, 10

TABLES = {
    "cdt": lambda: ConflictDetectionTable(),
    "cdt-vector": lambda: ConflictDetectionTable(vector_audit=True),
    "sharded-cdt": lambda: ShardedConflictDetectionTable(tile_bits=2),
    "stgraph": lambda: SpatiotemporalGraph(Grid(WIDTH, HEIGHT)),
    "sharded-stgraph": lambda: ShardedSpatiotemporalGraph(tile_bits=2),
}


def random_walk(rng, max_len=14, t_max=48):
    """A random wait-allowing lattice walk as a timed Path."""
    x, y = rng.randrange(WIDTH), rng.randrange(HEIGHT)
    cells = [(x, y)]
    for _ in range(rng.randrange(1, max_len)):
        options = [(x, y)]
        if x + 1 < WIDTH:
            options.append((x + 1, y))
        if x > 0:
            options.append((x - 1, y))
        if y + 1 < HEIGHT:
            options.append((x, y + 1))
        if y > 0:
            options.append((x, y - 1))
        x, y = rng.choice(options)
        cells.append((x, y))
    return Path.from_cells(cells, start_time=rng.randrange(t_max))


def random_ops(seed, n=60):
    """A concrete op tape: replayable against any table, any kernel.

    Mixes full and windowed reserves, unreserves of previously reserved
    paths (with their original horizon), and purges — the full mutation
    surface of the compiled entry points.
    """
    rng = random.Random(seed)
    ops = []
    live = []
    for _ in range(n):
        roll = rng.random()
        if roll < 0.55 or not live:
            path = random_walk(rng)
            horizon = (None if rng.random() < 0.6
                       else path.start_time + rng.randrange(1, 8))
            ops.append(("reserve", path, horizon))
            live.append((path, horizon))
        elif roll < 0.8:
            path, horizon = live.pop(rng.randrange(len(live)))
            ops.append(("unreserve", path, horizon))
        else:
            ops.append(("purge", rng.randrange(40)))
    return ops


def apply_ops(table, ops):
    for op in ops:
        if op[0] == "reserve":
            if op[2] is None:
                table.reserve_path(op[1])
            else:
                table.reserve_path(op[1], op[2])
        elif op[0] == "unreserve":
            if op[2] is None:
                table.unreserve_path(op[1])
            else:
                table.unreserve_path(op[1], op[2])
        else:
            table.purge_before(op[1])


def containers(table):
    """The raw vertex/edge containers (compare by deep value equality)."""
    _, vertices, edges, _ = table.kernel_probe_spec()
    return vertices, edges


class TestMutationKernelSelection:
    def test_search_selection_drives_mutations(self):
        if COMPILED is not None:
            set_search_kernel("compiled")
            assert mutation_kernel_name() == "compiled"
        set_search_kernel("python")
        assert mutation_kernel_name() == "python"

    def test_rejects_pre_mutation_abi(self):
        class StaleModule:
            KERNEL_ABI = 1

        set_mutation_kernel(StaleModule())
        # A pre-mutation ABI module must degrade to the python bodies.
        assert mutation_kernel_name() == "python"

    def test_base_table_has_no_unreserve(self):
        class Minimal(SpatiotemporalGraph):
            pass

        with pytest.raises(NotImplementedError):
            ReservationTable.unreserve_path(
                Minimal(Grid(4, 4)), Path.from_cells([(0, 0), (1, 0)], 0))


@needs_compiled
@pytest.mark.parametrize("name", sorted(TABLES))
class TestMutationBitIdentity:
    """Twin tables, identical op tapes, one per kernel — equal states."""

    def twins(self, name, seed, n=60):
        ops = random_ops(seed, n)
        set_mutation_kernel(COMPILED)
        compiled_table = TABLES[name]()
        apply_ops(compiled_table, ops)
        set_mutation_kernel(None)
        python_table = TABLES[name]()
        apply_ops(python_table, ops)
        return compiled_table, python_table

    def test_random_ops_bit_identical(self, name):
        for seed in range(6):
            compiled_table, python_table = self.twins(name, seed)
            assert containers(compiled_table) == containers(python_table)
            assert (compiled_table.live_counts()
                    == python_table.live_counts())
            assert (compiled_table.memory_bytes()
                    == python_table.memory_bytes())
            assert compiled_table.recount() == python_table.recount()

    def test_audits_agree(self, name):
        compiled_table, python_table = self.twins(name, 1234)
        rng = random.Random(99)
        probes = [random_walk(rng) for _ in range(40)]
        set_mutation_kernel(COMPILED)
        compiled_answers = [compiled_table.audit_path(p) for p in probes]
        set_mutation_kernel(None)
        python_answers = [python_table.audit_path(p) for p in probes]
        assert compiled_answers == python_answers
        assert not all(compiled_answers)  # some probe actually conflicted

    def test_unreserve_restores_prior_state(self, name):
        # Set-backed tables restore their exact recount; the dense-layer
        # family zeroes the bytes but keeps the materialised layers (so
        # only the occupancy answers are required to roll back there).
        rng = random.Random(7)
        base = [random_walk(rng) for _ in range(5)]
        extra = random_walk(rng)
        exact_rollback = name in ("cdt", "cdt-vector", "sharded-cdt")
        for kernel in (COMPILED, None):
            set_mutation_kernel(kernel)
            table = TABLES[name]()
            for path in base:
                table.reserve_path(path)
            before = table.recount()
            free_before = [table.is_free(t, (x, y))
                           for (t, x, y) in extra.steps]
            table.reserve_path(extra, extra.start_time + 4)
            table.unreserve_path(extra, extra.start_time + 4)
            after = table.recount()
            if exact_rollback:
                assert after == before
            else:
                assert after["edges"] == before["edges"]
                assert after["edge_ticks"] == before["edge_ticks"]
            assert free_before == [table.is_free(t, (x, y))
                                   for (t, x, y) in extra.steps]

    def test_purge_counters_stay_exact(self, name):
        compiled_table, python_table = self.twins(name, 42, n=40)
        for t in (10, 25, 60):
            set_mutation_kernel(COMPILED)
            compiled_table.purge_before(t)
            set_mutation_kernel(None)
            python_table.purge_before(t)
            assert containers(compiled_table) == containers(python_table)
            assert compiled_table.recount() == python_table.recount()
            assert (compiled_table.live_counts()
                    == compiled_table.recount())


@needs_compiled
class TestProbeIndexFeed:
    """The compiled reserve must feed the vector-audit indexes exactly."""

    def index_values(self, table):
        merged = []
        for index in (table._vindex, table._eindex):
            assert index is not None
            merged.append(sorted(list(index._sorted) + list(index._pending)))
        return merged

    def test_collected_probes_match_per_call_feed(self):
        rng = random.Random(11)
        paths = [random_walk(rng) for _ in range(12)]
        set_mutation_kernel(COMPILED)
        compiled_table = ConflictDetectionTable(vector_audit=True)
        for path in paths:
            compiled_table.reserve_path(path)
        set_mutation_kernel(None)
        python_table = ConflictDetectionTable(vector_audit=True)
        for path in paths:
            python_table.reserve_path(path)
        assert (self.index_values(compiled_table)
                == self.index_values(python_table))

    def test_tick_overflow_poisons_like_python(self):
        from repro.pathfinding.cdt import CHAIN_TICK_LIMIT

        set_mutation_kernel(COMPILED)
        table = ConflictDetectionTable(vector_audit=True)
        table.reserve_path(
            Path.from_cells([(0, 0), (1, 0)], CHAIN_TICK_LIMIT))
        assert table._vindex is None and table._eindex is None
        # State must still have mutated despite the poisoned batch.
        assert not table.is_free(CHAIN_TICK_LIMIT, (0, 0))

    def test_unreserve_poisons_indexes(self):
        set_mutation_kernel(COMPILED)
        table = ConflictDetectionTable(vector_audit=True)
        path = Path.from_cells([(0, 0), (1, 0), (2, 0)], 0)
        table.reserve_path(path)
        assert table._vindex is not None
        table.unreserve_path(path)
        assert table._vindex is None


def _free_flow_ops(cache, rng, cells):
    for _ in range(80):
        roll = rng.random()
        if roll < 0.75:
            cache.packed(rng.choice(cells), rng.choice(cells))
        elif roll < 0.92:
            cache.invalidate(rng.choice(cells))
        else:
            cache.clear()


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=hyp.integers(min_value=0, max_value=10 ** 9))
def test_property_incremental_matches_recount(seed):
    """Counters never drift from a from-scratch recount, any kernel.

    Exercises every production table through randomized full reserves,
    windowed commits, purges and unreserves, plus the free-flow memo
    through its grow/invalidate/clear cycle — under whichever mutation
    kernel the session selected (the pure-python CI job runs this with
    the extension never built).
    """
    ops = random_ops(seed, n=50)
    for name, make_table in sorted(TABLES.items()):
        table = make_table()
        apply_ops(table, ops)
        counts = table.live_counts()
        recounted = table.recount()
        assert counts == recounted, (name, counts, recounted)
        assert table.memory_bytes() == recounted["memory_bytes"]
    rng = random.Random(seed)
    grid = Grid(WIDTH, HEIGHT)
    cache = FreeFlowPathCache(grid, HeuristicFieldCache(grid))
    cells = [(rng.randrange(WIDTH), rng.randrange(HEIGHT)) for _ in range(8)]
    _free_flow_ops(cache, rng, cells)
    assert cache.live_counts() == cache.recount()


class TestPlannerAccounting:
    def run_mini(self, kernel):
        set_search_kernel(kernel)
        scenario = make_mini(n_items=12)
        state, items = scenario.build()
        planner = PLANNERS["NTP"](state, PlannerConfig(free_flow=False))
        try:
            result = Simulation(state, planner, items).run()
        finally:
            planner.close()
        return result, planner

    def test_mutation_kernel_tags(self):
        result_py, planner_py = self.run_mini("python")
        stats = planner_py.stats
        assert stats.reserves_python > 0 and stats.reserves_compiled == 0
        if COMPILED is None:
            return
        result_c, planner_c = self.run_mini("compiled")
        stats = planner_c.stats
        assert stats.reserves_compiled > 0 and stats.reserves_python == 0
        assert (result_c.metrics.makespan == result_py.metrics.makespan)
        assert (result_c.metrics.peak_memory_bytes
                == result_py.metrics.peak_memory_bytes)
        assert ([s.memory_bytes for s in result_c.metrics.checkpoints]
                == [s.memory_bytes for s in result_py.metrics.checkpoints])

    def test_purge_kernel_tags(self):
        set_search_kernel("python")
        scenario = make_mini(n_items=24)
        state, items = scenario.build()
        planner = PLANNERS["NTP"](state, PlannerConfig(free_flow=False))
        try:
            Simulation(state, planner, items).run()
        finally:
            planner.close()
        stats = planner.stats
        assert stats.purges_compiled == 0
        # A run long enough to cross the purge cadence tags its purges.
        if stats.purges_python:
            assert planner.reservation.mutation_kernel == "python"

    def test_memory_cache_tracks_mutations(self):
        set_search_kernel("python")
        scenario = make_mini(n_items=8)
        state, items = scenario.build()
        planner = PLANNERS["NTP"](state)
        try:
            Simulation(state, planner, items).run()
        finally:
            planner.close()
        # The cached aggregate must equal a fresh recompute, and keep
        # tracking after further mutations.
        assert planner.memory_bytes() == (
            planner.reservation.memory_bytes()
            + planner._extra_memory_bytes())
        planner.reservation.reserve_path(
            Path.from_cells([(0, 0), (0, 1)], 10 ** 6))
        assert planner.memory_bytes() == (
            planner.reservation.recount()["memory_bytes"]
            + planner._extra_memory_bytes())

    def test_peak_memory_is_commit_high_water(self):
        set_search_kernel("python")
        scenario = make_mini(n_items=12)
        state, items = scenario.build()
        planner = PLANNERS["NTP"](state)
        try:
            result = Simulation(state, planner, items).run()
        finally:
            planner.close()
        assert planner.peak_memory_bytes > 0
        assert result.metrics.peak_memory_bytes == planner.peak_memory_bytes
        assert planner.peak_memory_bytes >= max(
            s.memory_bytes for s in result.metrics.checkpoints)
