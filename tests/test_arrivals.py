"""Unit tests for the arrival processes and dataset generators."""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.workloads.arrivals import (PROCESSING_TIME_RANGE, CycleStream,
                                      PoissonStream, deterministic_arrivals,
                                      poisson_arrivals, register_stream,
                                      resolve_stream, surge_arrivals)
from repro.workloads.datasets import (all_datasets, make_mini,
                                      make_real_large, make_real_norm,
                                      make_syn_a, make_syn_b)


class TestPoissonArrivals:
    def test_count_and_fields(self):
        items = poisson_arrivals(n_items=200, n_racks=10, rate=0.5, seed=1)
        assert len(items) == 200
        assert all(0 <= item.rack_id < 10 for item in items)
        low, high = PROCESSING_TIME_RANGE
        assert all(low <= item.processing_time <= high for item in items)

    def test_arrivals_non_decreasing(self):
        items = poisson_arrivals(n_items=200, n_racks=10, rate=0.5, seed=1)
        arrivals = [item.arrival for item in items]
        assert arrivals == sorted(arrivals)

    def test_deterministic_per_seed(self):
        a = poisson_arrivals(100, 5, 0.5, seed=7)
        b = poisson_arrivals(100, 5, 0.5, seed=7)
        assert a == b
        c = poisson_arrivals(100, 5, 0.5, seed=8)
        assert a != c

    def test_rate_controls_span(self):
        slow = poisson_arrivals(500, 5, rate=0.2, seed=1)
        fast = poisson_arrivals(500, 5, rate=2.0, seed=1)
        assert fast[-1].arrival < slow[-1].arrival

    @pytest.mark.parametrize("kwargs", [
        dict(n_items=0, n_racks=5, rate=0.5, seed=1),
        dict(n_items=5, n_racks=0, rate=0.5, seed=1),
        dict(n_items=5, n_racks=5, rate=0.0, seed=1),
    ])
    def test_rejects_bad_arguments(self, kwargs):
        with pytest.raises(ConfigurationError):
            poisson_arrivals(**kwargs)


class TestSurgeArrivals:
    def test_count(self):
        items = surge_arrivals(300, 20, base_rate=0.2, peak_rate=1.5,
                               ramp_fraction=0.25, seed=2)
        assert len(items) == 300

    def test_peak_is_denser_than_tails(self):
        items = surge_arrivals(900, 20, base_rate=0.2, peak_rate=2.0,
                               ramp_fraction=0.25, seed=2)
        warm = items[224].arrival - items[0].arrival
        peak = items[674].arrival - items[225].arrival
        # Twice the items in the peak window, far less time per item.
        assert peak / 450 < warm / 225

    def test_zipf_concentrates_load(self):
        items = surge_arrivals(2000, 50, base_rate=0.5, peak_rate=2.0,
                               ramp_fraction=0.25, seed=3)
        counts = {}
        for item in items:
            counts[item.rack_id] = counts.get(item.rack_id, 0) + 1
        top = max(counts.values())
        assert top > 2000 / 50  # hottest rack above uniform share

    def test_rejects_bad_ramp(self):
        with pytest.raises(ConfigurationError):
            surge_arrivals(10, 5, 0.5, 1.0, ramp_fraction=0.6, seed=1)

    def test_rejects_peak_below_base(self):
        with pytest.raises(ConfigurationError):
            surge_arrivals(10, 5, 1.0, 0.5, ramp_fraction=0.25, seed=1)


class TestDeterministicArrivals:
    def test_schedule_respected(self):
        items = deterministic_arrivals([(5, 2), (9, 0)], processing_time=7)
        assert items[0].arrival == 5 and items[0].rack_id == 2
        assert items[1].processing_time == 7
        assert [i.item_id for i in items] == [0, 1]


class TestDatasets:
    @pytest.mark.parametrize("factory", [make_syn_a, make_syn_b,
                                         make_real_norm, make_real_large,
                                         make_mini])
    def test_scenarios_build(self, factory):
        scenario = factory() if factory is not make_mini else factory(n_items=20)
        state, items = scenario.build()
        assert len(state.racks) == scenario.n_racks
        assert len(state.robots) == scenario.n_robots
        assert items

    def test_all_datasets_has_paper_names(self):
        names = list(all_datasets())
        assert names == ["Syn-A", "Syn-B", "Real-Norm", "Real-Large"]

    def test_scale_shrinks_items(self):
        full = make_syn_a(1.0)
        half = make_syn_a(0.5)
        assert half.n_items < full.n_items

    def test_workload_identical_across_builds(self):
        scenario = make_syn_a(0.2)
        _, items_a = scenario.build()
        _, items_b = scenario.build()
        assert items_a == items_b

    def test_syn_b_denser_than_syn_a(self):
        # The paper's Syn-B: more items on fewer racks.
        a, b = make_syn_a(), make_syn_b()
        assert b.n_items / b.n_racks > a.n_items / a.n_racks


class TestGeneratorRegistry:
    def test_named_generators_resolve(self):
        from repro.workloads.arrivals import resolve_generator
        assert resolve_generator("poisson") is poisson_arrivals
        assert resolve_generator("surge") is surge_arrivals

    def test_unknown_generator_rejected(self):
        from repro.workloads.arrivals import resolve_generator
        with pytest.raises(ConfigurationError):
            resolve_generator("lognormal")

    def test_reregistration_rejected(self):
        from repro.workloads.arrivals import register_generator
        with pytest.raises(ConfigurationError):
            register_generator("poisson", poisson_arrivals)


class TestScenarioValidation:
    def test_rejects_item_referencing_missing_rack(self):
        from repro.workloads.scenario import ItemStreamSpec, ScenarioSpec
        scenario = ScenarioSpec(
            name="bad", width=16, height=12, n_racks=2, n_pickers=1,
            n_robots=1,
            items=ItemStreamSpec.of("deterministic", schedule=[(0, 5)]))
        with pytest.raises(ConfigurationError):
            scenario.build()

    def test_rejects_empty_workload(self):
        from repro.workloads.scenario import ItemStreamSpec, ScenarioSpec
        scenario = ScenarioSpec(
            name="empty", width=16, height=12, n_racks=2, n_pickers=1,
            n_robots=1, items=ItemStreamSpec.of("deterministic", schedule=[]))
        with pytest.raises(ConfigurationError):
            scenario.build()


class TestItemStreams:
    """Open-ended streams: chunk invariance, picklability, registry."""

    def test_chunked_take_equals_one_big_take(self):
        whole = PoissonStream(n_racks=10, rate=0.5, seed=3).take(50)
        chunked = PoissonStream(n_racks=10, rate=0.5, seed=3)
        assert chunked.take(7) + chunked.take(0) + chunked.take(43) == whole

    def test_poisson_stream_prefix_matches_batch_generator(self):
        stream = PoissonStream(n_racks=10, rate=0.5, seed=1)
        assert stream.take(200) == poisson_arrivals(
            n_items=200, n_racks=10, rate=0.5, seed=1)

    def test_item_ids_are_sequential(self):
        stream = PoissonStream(n_racks=4, rate=1.0, seed=9)
        stream.take(5)
        items = stream.take(5)
        assert [item.item_id for item in items] == [5, 6, 7, 8, 9]
        assert stream.emitted == 10

    def test_pickle_preserves_the_exact_continuation(self):
        stream = PoissonStream(n_racks=10, rate=0.5, seed=3)
        stream.take(20)
        clone = pickle.loads(pickle.dumps(stream))
        assert clone.take(30) == stream.take(30)

    def test_cycle_stream_pickles_mid_run(self):
        stream = CycleStream(n_racks=10, rates=[0.1, 0.8, 0.3],
                             period=600, seed=5)
        stream.take(40)
        clone = pickle.loads(pickle.dumps(stream))
        assert clone.take(40) == stream.take(40)

    def test_cycle_stream_rates_shape_the_arrivals(self):
        # Segment rates 0.05 vs 1.0: the dense segment must pack far
        # more arrivals per tick than the sparse one.
        stream = CycleStream(n_racks=6, rates=[0.05, 1.0], period=1000,
                             seed=11)
        items = stream.take(400)
        per_segment = [0, 0]
        for item in items:
            per_segment[(item.arrival % 1000) * 2 // 1000] += 1
        assert per_segment[1] > per_segment[0] * 2

    def test_arrivals_non_decreasing(self):
        for stream in (PoissonStream(n_racks=3, rate=0.2, seed=2),
                       CycleStream(n_racks=3, rates=[0.2, 0.6],
                                   period=100, seed=2)):
            items = stream.take(100)
            assert all(a.arrival <= b.arrival
                       for a, b in zip(items, items[1:]))

    def test_negative_take_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonStream(n_racks=3, rate=0.2, seed=2).take(-1)

    @pytest.mark.parametrize("kwargs", [
        dict(n_racks=0, rate=0.5, seed=1),
        dict(n_racks=3, rate=0.0, seed=1),
    ])
    def test_poisson_stream_rejects_bad_arguments(self, kwargs):
        with pytest.raises(ConfigurationError):
            PoissonStream(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        dict(n_racks=3, rates=[], period=10, seed=1),
        dict(n_racks=3, rates=[0.5, -0.1], period=10, seed=1),
        dict(n_racks=3, rates=[0.5, 0.5, 0.5], period=2, seed=1),
    ])
    def test_cycle_stream_rejects_bad_arguments(self, kwargs):
        with pytest.raises(ConfigurationError):
            CycleStream(**kwargs)


class TestStreamRegistry:
    def test_named_streams_resolve(self):
        assert resolve_stream("poisson") is PoissonStream
        assert resolve_stream("cycle") is CycleStream

    def test_unknown_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_stream("lognormal")

    def test_reregistration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_stream("poisson", PoissonStream)
