"""Unit tests for the five planners' selection logic.

Planner tests drive ``plan`` directly on hand-built worlds so the
selection decisions are fully deterministic and observable.
"""

import pytest

from repro.config import PlannerConfig, QLearningConfig
from repro.pathfinding.cdt import ConflictDetectionTable
from repro.pathfinding.spatiotemporal_graph import SpatiotemporalGraph
from repro.planners import (AdaptiveTaskPlanner, EfficientAdaptiveTaskPlanner,
                            IlpPlanner, LeastExpirationFirstPlanner,
                            NaiveTaskPlanner, most_slack_first)
from repro.warehouse.entities import Item

from tests.conftest import drip_items, make_two_picker_state


def give_items(state, rack_id, n=1, processing=5, start=0):
    for i in range(n):
        state.deliver_item(Item(item_id=start + i, rack_id=rack_id,
                                arrival=0, processing_time=processing))


class TestNaiveTaskPlanner:
    def test_plans_for_all_idle_robots(self):
        state = make_two_picker_state(n_robots=2)
        give_items(state, 2)
        give_items(state, 3, start=10)
        give_items(state, 4, start=20)
        planner = NaiveTaskPlanner(state)
        scheme = planner.plan(0)
        assert len(scheme) == 2  # capped by robots

    def test_most_slack_picker_first(self):
        state = make_two_picker_state(n_robots=1)
        give_items(state, 0)  # picker 0
        give_items(state, 1, start=10)  # picker 1
        state.pickers[0].remaining_current = 100  # picker 0 busy
        planner = NaiveTaskPlanner(state)
        scheme = planner.plan(0)
        assert scheme.rack_ids == (1,)  # picker 1 is most slack

    def test_empty_world_returns_empty(self):
        state = make_two_picker_state()
        scheme = NaiveTaskPlanner(state).plan(0)
        assert len(scheme) == 0

    def test_paths_start_at_plan_time(self):
        state = make_two_picker_state(n_robots=1)
        give_items(state, 5)
        scheme = NaiveTaskPlanner(state).plan(7)
        assert scheme.assignments[0].pickup_path.start_time == 7

    def test_pickup_path_ends_at_rack_home(self):
        state = make_two_picker_state(n_robots=1)
        give_items(state, 5)
        scheme = NaiveTaskPlanner(state).plan(0)
        assert scheme.assignments[0].pickup_path.goal == state.racks[5].home


class TestMostSlackFirst:
    def test_orders_by_finish_time(self):
        state = make_two_picker_state()
        give_items(state, 0)
        give_items(state, 1, start=10)
        finish = {0: 50, 1: 5}
        entries = most_slack_first(state.selectable_racks(), 2,
                                   lambda pid: finish[pid])
        assert entries[0].rack.picker_id == 1

    def test_respects_budget(self):
        state = make_two_picker_state()
        for rack_id in range(4):
            give_items(state, rack_id, start=rack_id * 10)
        entries = most_slack_first(state.selectable_racks(), 2, lambda pid: 0)
        assert len(entries) == 2


class TestLefPlanner:
    def test_oldest_item_first(self):
        state = make_two_picker_state(n_robots=1)
        state.deliver_item(Item(0, 3, arrival=50, processing_time=5))
        state.deliver_item(Item(1, 4, arrival=10, processing_time=5))
        planner = LeastExpirationFirstPlanner(state)
        scheme = planner.plan(60)
        assert scheme.rack_ids == (4,)

    def test_tie_broken_by_rack_id(self):
        state = make_two_picker_state(n_robots=1)
        state.deliver_item(Item(0, 5, arrival=10, processing_time=5))
        state.deliver_item(Item(1, 2, arrival=10, processing_time=5))
        scheme = LeastExpirationFirstPlanner(state).plan(20)
        assert scheme.rack_ids == (2,)


class TestIlpPlanner:
    def test_assigns_min_of_robots_and_racks(self):
        state = make_two_picker_state(n_robots=2)
        give_items(state, 0)
        planner = IlpPlanner(state)
        scheme = planner.plan(0)
        assert len(scheme) == 1

    def test_cost_matrix_shape_and_sign(self):
        state = make_two_picker_state(n_robots=2)
        give_items(state, 0)
        give_items(state, 1, start=10)
        planner = IlpPlanner(state)
        cost = planner._cost_matrix(state.selectable_racks(),
                                    state.idle_robots())
        assert cost.shape == (2, 2)
        assert (cost >= 0).all()

    def test_hungarian_matches_milp_on_small_instance(self):
        state = make_two_picker_state(n_robots=2)
        give_items(state, 0)
        give_items(state, 1, start=10)
        give_items(state, 2, start=20)
        planner = IlpPlanner(state)
        racks = state.selectable_racks()
        robots = state.idle_robots()
        fast = planner._select(0, racks, robots)
        exact = planner.solve_milp(racks, robots)
        assert exact is not None
        cost = planner._cost_matrix(racks, robots)

        def total(entries):
            rack_index = {r.rack_id: j for j, r in enumerate(racks)}
            robot_index = {a.robot_id: i for i, a in enumerate(robots)}
            return sum(cost[robot_index[e.robot.robot_id],
                            rack_index[e.rack.rack_id]] for e in entries)

        assert total(fast) == pytest.approx(total(exact))

    def test_milp_respects_size_limit(self):
        state = make_two_picker_state(n_robots=2)
        planner = IlpPlanner(state)
        planner.MILP_CROSSCHECK_LIMIT = 0
        give_items(state, 0)
        assert planner.solve_milp(state.selectable_racks(),
                                  state.idle_robots()) is None


class TestAtpPlanner:
    def config(self, delta=0.0, epsilon=0.0):
        return PlannerConfig(qlearning=QLearningConfig(delta=delta,
                                                       epsilon=epsilon))

    def test_uses_stgraph_reservation(self):
        state = make_two_picker_state()
        planner = AdaptiveTaskPlanner(state, self.config())
        assert isinstance(planner.reservation, SpatiotemporalGraph)

    def test_dispatches_loaded_rack(self):
        state = make_two_picker_state(n_robots=1)
        give_items(state, 0, n=8)  # heavily loaded -> must dispatch
        planner = AdaptiveTaskPlanner(state, self.config())
        scheme = planner.plan(0)
        assert scheme.rack_ids == (0,)

    def test_defers_single_far_item(self):
        state = make_two_picker_state(n_robots=1)
        give_items(state, 0, n=1)
        # Make the rack far from its picker so deferral wins.
        state.racks[0].home = (15, 0)
        planner = AdaptiveTaskPlanner(state, self.config())
        scheme = planner.plan(0)
        assert len(scheme) == 0

    def test_greedy_branch_selects_like_ntp(self):
        state = make_two_picker_state(n_robots=1)
        give_items(state, 0, n=1)
        state.racks[0].home = (15, 0)  # learned branch would defer
        planner = AdaptiveTaskPlanner(state, self.config(delta=1.0))
        scheme = planner.plan(0)
        assert len(scheme) == 1  # greedy branch dispatches anyway

    def test_q_table_learns_during_planning(self):
        state = make_two_picker_state(n_robots=2)
        give_items(state, 0, n=4)
        give_items(state, 1, n=4, start=10)
        planner = AdaptiveTaskPlanner(state, self.config())
        planner.plan(0)
        assert planner.agent.stats.updates > 0

    def test_observation_reflects_rack(self):
        state = make_two_picker_state()
        give_items(state, 0, n=3, processing=7)
        planner = AdaptiveTaskPlanner(state, self.config())
        observation = planner.observe(state.racks[0])
        assert observation.n_pending == 3
        assert observation.batch_processing_time == 21


class TestEatpPlanner:
    def config(self, **kw):
        ql = QLearningConfig(delta=kw.pop("delta", 0.0),
                             epsilon=kw.pop("epsilon", 0.0))
        return PlannerConfig(qlearning=ql, **kw)

    def test_uses_cdt_reservation(self):
        state = make_two_picker_state()
        planner = EfficientAdaptiveTaskPlanner(state, self.config())
        assert isinstance(planner.reservation, ConflictDetectionTable)

    def test_flip_requesting_respects_k(self):
        state = make_two_picker_state(n_racks=6, n_robots=1)
        # Load only the rack farthest from robot 0; with k=1 the robot
        # probes only its nearest rack and cannot see the loaded one.
        robot_home = state.robots[0].location
        far_rack = max(state.racks,
                       key=lambda r: abs(r.home[0] - robot_home[0])
                       + abs(r.home[1] - robot_home[1]))
        give_items(state, far_rack.rack_id, n=8)
        planner = EfficientAdaptiveTaskPlanner(state, self.config(knn_k=1))
        scheme = planner.plan(0)
        assert len(scheme) == 0

    def test_large_k_sees_everything(self):
        state = make_two_picker_state(n_racks=6, n_robots=1)
        give_items(state, 5, n=8)
        planner = EfficientAdaptiveTaskPlanner(state, self.config(knn_k=6))
        scheme = planner.plan(0)
        assert scheme.rack_ids == (5,)

    def test_one_rack_per_robot(self):
        state = make_two_picker_state(n_racks=6, n_robots=2)
        for rack_id in range(6):
            give_items(state, rack_id, n=8, start=rack_id * 10)
        planner = EfficientAdaptiveTaskPlanner(state, self.config(knn_k=6))
        scheme = planner.plan(0)
        assert len(scheme) == 2

    def test_cache_finisher_used_on_long_runs(self, quiet_learner_config):
        # Covered end-to-end in integration tests; here just ensure the
        # planner exposes the cache and counts finished legs.
        state = make_two_picker_state(n_robots=1)
        give_items(state, 0, n=8)
        planner = EfficientAdaptiveTaskPlanner(state, self.config())
        planner.plan(0)
        assert planner.cache.threshold == planner.config.cache_threshold


class TestPlannerBookkeeping:
    def test_stats_accumulate(self):
        state = make_two_picker_state(n_robots=2)
        give_items(state, 0)
        give_items(state, 1, start=10)
        planner = NaiveTaskPlanner(state)
        planner.plan(0)
        assert planner.stats.schemes_emitted == 1
        assert planner.stats.assignments_emitted == 2
        assert planner.stats.planning_seconds > 0

    def test_end_of_tick_purges_on_cadence(self):
        state = make_two_picker_state(n_robots=1)
        give_items(state, 5)
        planner = NaiveTaskPlanner(state)
        planner.plan(0)
        horizon = planner.config.reservation_horizon
        cadence = planner.PURGE_CADENCE
        t = ((horizon + 100) // cadence + 1) * cadence
        planner.end_of_tick(t)
        assert planner.reservation.is_free(0, state.racks[5].home)

    def test_advance_span_purges_like_the_tick_loop(self):
        """One span-aware advance() call must leave the reservation in
        the exact state the per-tick end_of_tick sweep produced."""
        def loaded_planner():
            state = make_two_picker_state(n_robots=1)
            give_items(state, 5)
            planner = NaiveTaskPlanner(state)
            planner.plan(0)
            return planner

        horizon_end = 400
        ticked = loaded_planner()
        for t in range(horizon_end + 1):
            ticked.end_of_tick(t)
        spanned = loaded_planner()
        spanned.advance(0, horizon_end)
        assert (spanned.reservation.memory_bytes()
                == ticked.reservation.memory_bytes())
        assert spanned.reservation.is_free(0, spanned.state.racks[5].home)

    def test_advance_span_without_cadence_tick_is_a_noop(self):
        state = make_two_picker_state(n_robots=1)
        give_items(state, 5)
        planner = NaiveTaskPlanner(state)
        planner.plan(0)
        before = planner.reservation.memory_bytes()
        cadence = planner.PURGE_CADENCE
        planner.advance(cadence * 20 + 1, cadence * 21 - 1)
        assert planner.reservation.memory_bytes() == before

    def test_memory_bytes_positive(self):
        state = make_two_picker_state()
        assert NaiveTaskPlanner(state).memory_bytes() >= 0
