"""Batched planner wakes, the worker pool, the paper-scale auto-gate,
and the tier-0.5 wait-following rescue.

The batched-wake contract (see ``Planner._plan_wake_batch``): candidates
are planned independently against the wake's opening reservation state,
then committed in order behind an optimistic audit — a rejected candidate
is replanned once against the live table, which *is* the sequential
contract for that leg.  The invariant the suite pins is therefore not
path identity (candidates see staler reservations by design) but
conflict-freedom of everything committed, plus exact accounting.

The worker pool must be a pure wall-clock knob: a run with
``batch_workers=2`` produces the identical deterministic view as the
inline batch, because workers plan the same candidates against the same
shipped reservation state and the audit-then-commit loop runs unchanged
in the main process.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import PAPER_SCALE_MIN_CELLS, PlannerConfig
from repro.experiments.harness import run_planner
from repro.pathfinding.cdt import ShardedConflictDetectionTable
from repro.pathfinding.heuristics import HeuristicFieldCache
from repro.pathfinding.paths import Path
from repro.pathfinding.pipeline import (FASTPATH_AUDIT_REJECT,
                                        FASTPATH_RESCUE, TIER_FREE_FLOW,
                                        TIER_FULL, FallbackChain)
from repro.pathfinding.spatiotemporal_graph import (
    ShardedSpatiotemporalGraph, SpatiotemporalGraph)
from repro.pathfinding.st_astar import find_path
from repro.planners import PLANNERS
from repro.sim.metrics import BATCH_KEYS
from repro.sim.serialize import (deterministic_view, metrics_from_dict,
                                 metrics_to_dict, result_to_dict)
from repro.warehouse.entities import Rack
from repro.warehouse.grid import Grid
from repro.warehouse.state import WarehouseState
from repro.workloads.datasets import ItemStreamSpec, make_mini

#: Forces batching on the sub-gate mini floor: every wake with at least
#: two legs plans as a batch.
FORCED_BATCH = dict(batch_planning=True, batch_min_legs=2)


def bursty_mini(seed: int = 1, n_items: int = 30):
    """The mini floor under arrivals fast enough to co-idle robots.

    The stock mini stream (poisson rate 0.4) wakes the planner one leg
    at a time, so a forced-batch run would never actually batch; at
    rate 3.0 several items land per tick and multi-leg wakes occur
    (seed 1 is pinned: two batched wakes, five batched legs).
    """
    spec = make_mini(seed=seed, n_items=n_items)
    return replace(spec, items=ItemStreamSpec.of(
        "poisson", n_items=n_items, n_racks=12, rate=3.0, seed=seed,
        processing_low=5, processing_high=12))


def open_row(grid: Grid, length: int):
    """Endpoints of a horizontal run of ``length`` passable cells."""
    for y in range(grid.height):
        run = 0
        for x in range(grid.width):
            run = run + 1 if grid.passable((x, y)) else 0
            if run >= length:
                return (x - length + 1, y), (x, y)
    raise AssertionError(f"no open row of {length} cells in the fixture")


@pytest.fixture(scope="module")
def forced_batch_result():
    """One forced-batch NTP run over the bursty mini floor, shared."""
    return run_planner(bursty_mini(), "NTP",
                       planner_config=PlannerConfig(**FORCED_BATCH))


class TestForcedBatchRuns:
    def test_run_drains_and_counts_batches(self, forced_batch_result):
        # run_planner raising on an undrained run is the completion
        # check; here we pin that batching actually engaged.
        batch = forced_batch_result.metrics.batch_view()
        assert batch["batched_wakes"] >= 1
        assert batch["batched_legs"] >= batch["batched_wakes"]
        assert batch["batch_conflicts"] >= 0

    def test_batch_off_below_gate_counters_zero(self):
        spec = make_mini(seed=7, n_items=30)
        result = run_planner(spec, "NTP")
        assert result.metrics.batch_view() == {key: 0 for key in BATCH_KEYS}

    def test_batch_metrics_round_trip(self, forced_batch_result):
        payload = metrics_to_dict(forced_batch_result.metrics)
        rebuilt = metrics_from_dict(payload)
        assert rebuilt.batch_view() == forced_batch_result.metrics.batch_view()


class TestBatchConflictReplan:
    def test_head_on_batch_commits_conflict_free(self):
        """Two head-on candidates: the audit catches the second, the
        replan routes it around, and both commits are conflict-free."""
        state, __ = make_mini(seed=3, n_items=10).build()
        planner = PLANNERS["NTP"](state, PlannerConfig(**FORCED_BATCH))
        a, b = open_row(state.grid, 6)
        paths = planner._plan_wake_batch(0, [(a, b), (b, a)])
        assert planner.stats.batched_wakes == 1
        assert planner.stats.batched_legs == 2
        # Both free-flow candidates hug the same row in opposite
        # directions, so the second one's audit must have failed.
        assert planner.stats.batch_conflicts == 1
        # Replay the commits onto a fresh table: each path must audit
        # clean against everything committed before it.
        fresh = SpatiotemporalGraph(state.grid)
        for path in paths:
            assert fresh.audit_path(path) is True
            fresh.reserve_path(path)

    def test_disjoint_batch_needs_no_replan(self):
        state, __ = make_mini(seed=3, n_items=10).build()
        planner = PLANNERS["NTP"](state, PlannerConfig(**FORCED_BATCH))
        a, b = open_row(state.grid, 6)
        # Same direction, staggered start cells: candidates never meet.
        paths = planner._plan_wake_batch(0, [(a, b), (a, b)])
        assert planner.stats.batch_conflicts in (0, 1)
        assert len(paths) == 2


class TestWorkerPool:
    def test_pool_matches_inline_batch(self):
        """``batch_workers=2`` is wall-clock only: identical view."""
        views = {}
        for workers in (0, 2):
            config = PlannerConfig(batch_workers=workers, **FORCED_BATCH)
            result = run_planner(bursty_mini(), "NTP", planner_config=config)
            views[workers] = deterministic_view(result_to_dict(result))
        assert views[0] == views[2]

    def test_eatp_opts_out_of_the_pool(self):
        # EATP's cache-aided finisher memoises into the main process's
        # shortest-path cache; a worker would silently diverge from it.
        state, __ = make_mini(seed=3, n_items=10).build()
        planner = PLANNERS["EATP"](state, PlannerConfig(batch_workers=2,
                                                       **FORCED_BATCH))
        assert planner.parallel_batch_safe is False
        assert planner._batch_planner_pool() is None

    def test_close_is_idempotent(self):
        state, __ = make_mini(seed=3, n_items=10).build()
        planner = PLANNERS["NTP"](state, PlannerConfig(batch_workers=1,
                                                       **FORCED_BATCH))
        pool = planner._batch_planner_pool()
        assert pool is not None
        planner.close()
        assert planner._batch_pool is None
        planner.close()  # second close must be a no-op


class TestPaperScaleAutoGate:
    def test_small_floor_defaults_off(self):
        state, __ = make_mini(seed=3, n_items=10).build()
        planner = PLANNERS["NTP"](state)
        assert planner.paper_scale is False
        assert planner.sharded_reservations is False
        assert planner.batch_planning is False
        assert isinstance(planner.reservation, SpatiotemporalGraph)

    def test_paper_floor_defaults_on(self):
        # 128x128 sits exactly on the gate (16,384 cells >= the floor).
        assert 128 * 128 == PAPER_SCALE_MIN_CELLS
        state = WarehouseState(grid=Grid(128, 128), racks=[],
                               pickers=[], robots=[])
        planner = PLANNERS["NTP"](state)
        assert planner.paper_scale is True
        assert planner.sharded_reservations is True
        assert planner.batch_planning is True
        assert isinstance(planner.reservation, ShardedSpatiotemporalGraph)

    def test_explicit_knobs_override_the_gate(self):
        big = WarehouseState(grid=Grid(128, 128), racks=[],
                             pickers=[], robots=[])
        forced_off = PLANNERS["NTP"](big, PlannerConfig(
            reservation_sharding=False, batch_planning=False))
        assert forced_off.sharded_reservations is False
        assert forced_off.batch_planning is False
        assert isinstance(forced_off.reservation, SpatiotemporalGraph)

        small, __ = make_mini(seed=3, n_items=10).build()
        forced_on = PLANNERS["ATP"](small,
                                    PlannerConfig(reservation_sharding=True))
        assert forced_on.sharded_reservations is True

    def test_eatp_sharded_cdt_at_paper_scale(self):
        # EATP's KNN index needs at least one rack to index.
        state = WarehouseState(grid=Grid(128, 128),
                               racks=[Rack(rack_id=0, home=(4, 4),
                                           picker_id=0)],
                               pickers=[], robots=[])
        planner = PLANNERS["EATP"](state)
        assert isinstance(planner.reservation, ShardedConflictDetectionTable)


class TestWaitFollowingRescue:
    GRID = None  # built per test; all-passable 12x10 floor

    def make_chain(self, reservation, config, full_search=None):
        grid = reservation.grid if hasattr(reservation, "grid") \
            else Grid(12, 10)
        heuristics = HeuristicFieldCache(grid)

        def default_full(t, source, goal):
            return find_path(grid, reservation, source, goal, t,
                             heuristic=heuristics.field(goal),
                             max_expansions=config.max_search_expansions)

        return FallbackChain(grid=grid, reservation=reservation,
                             heuristics=heuristics, config=config,
                             full_search=full_search or default_full,
                             finisher_factory=lambda goal: (None, 0))

    def never_search(self, t, source, goal):
        raise AssertionError("the rescue should have served this leg")

    def test_forced_rescue_serves_conflicted_descent(self):
        grid = Grid(12, 10)
        reservation = SpatiotemporalGraph(grid)
        # A robot parks on (3, 5) until t=4, squarely on the only
        # monotone descent from (0, 5) to (6, 5).
        blocker = Path.from_cells([(3, 5)] * 4 + [(3, 4)], start_time=0)
        reservation.reserve_path(blocker)
        config = PlannerConfig(free_flow_rescue=True)
        chain = self.make_chain(reservation, config,
                                full_search=self.never_search)
        leg = chain.plan_leg(0, (0, 5), (6, 5))
        assert leg.tier == TIER_FREE_FLOW
        assert leg.fastpath == FASTPATH_RESCUE
        assert leg.complete
        assert leg.path.source == (0, 5)
        assert leg.path.goal == (6, 5)
        assert len(leg.path) > 7  # at least one inserted wait
        assert reservation.audit_path(leg.path) is True

    def test_rescue_declines_past_wait_caps(self):
        grid = Grid(12, 10)
        reservation = SpatiotemporalGraph(grid)
        # The blocker sits far longer than the rescue's wait budget.
        blocker = Path.from_cells([(3, 5)] * 40, start_time=0)
        reservation.reserve_path(blocker)
        config = PlannerConfig(free_flow_rescue=True,
                               rescue_wait_per_step=2, rescue_total_wait=2)
        chain = self.make_chain(reservation, config)
        leg = chain.plan_leg(0, (0, 5), (6, 5))
        # Rescue gave up; the leg fell into the unchanged tier-1 search.
        assert leg.fastpath == FASTPATH_AUDIT_REJECT
        assert leg.tier == TIER_FULL
        assert leg.path.goal == (6, 5)

    def test_rescue_defaults_off_below_the_gate(self):
        grid = Grid(12, 10)
        assert grid.n_cells < PAPER_SCALE_MIN_CELLS
        chain = self.make_chain(SpatiotemporalGraph(grid), PlannerConfig())
        assert chain.rescue_enabled is False
        assert chain._rescue_leg(0, ((0, 5), (1, 5))) is None


class TestDeepTieOrdering:
    def test_paper_scale_tie_break_preserves_optimality(self, monkeypatch):
        """The deep-tie heap order changes expansion order, not cost."""
        from repro.pathfinding import st_astar

        def reserved_table(grid):
            table = SpatiotemporalGraph(grid)
            for cells, t0 in [([(4, y) for y in range(8)], 0),
                              ([(x, 3) for x in range(2, 9)], 2),
                              ([(7, 7), (7, 6), (7, 5)], 1)]:
                table.reserve_path(Path.from_cells(cells, start_time=t0))
            return table

        grid = Grid(12, 10)
        baseline = find_path(grid, reserved_table(grid), (0, 0), (10, 8), 0)
        monkeypatch.setattr(st_astar, "PAPER_SCALE_MIN_CELLS", 1)
        deep = find_path(grid, reserved_table(grid), (0, 0), (10, 8), 0)
        # Both reach the goal at the same (optimal) time; the route may
        # legitimately differ.
        assert deep.end_time == baseline.end_time
        assert deep.goal == baseline.goal
        assert reserved_table(grid).audit_path(deep) is True
