"""Native tier-0 plane: field flood, fused descent+audit, field arena.

Three compiled surfaces arrived with KERNEL_ABI 3 and each must be a
bit-identical drop-in for its python body:

* ``bfs_fill`` — the heuristic-field flood over the prepared adjacency
  capsule must equal the python deque flood value for value on any grid,
  any source, any sentinel (and reject colliding sentinels the same way);
* ``tier0_leg`` — the fused greedy-descent + bulk-audit entry point must
  agree with the python ``packed()``/``audit_chain`` pair on every
  production reservation table, every verdict class (unreachable, clean,
  finisher head, audit reject), and on both field regimes (eager int32
  buffers and the paper-scale lazy Manhattan closed form);
* the shared :class:`FieldArena` — fields served from shared memory must
  equal locally flooded ones, attach across pickled handles, and degrade
  cleanly when the owning block is gone.

Stale artefacts (pre-ABI-3 modules) must be silently rejected by the new
setters, exactly like the mutation kernel's staleness handling.
"""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as hyp

from repro.config import PAPER_SCALE_MIN_CELLS
from repro.pathfinding._kernel import build_and_load
from repro.pathfinding.cdt import (ConflictDetectionTable,
                                   ShardedConflictDetectionTable)
from repro.pathfinding.free_flow import (FreeFlowPathCache,
                                         descent_kernel_name,
                                         set_descent_kernel)
from repro.pathfinding.heuristics import (FieldArena, HeuristicFieldCache,
                                          attach_field_arena)
from repro.pathfinding.paths import Path
from repro.pathfinding.spatiotemporal_graph import (ShardedSpatiotemporalGraph,
                                                    SpatiotemporalGraph)
from repro.pathfinding.st_astar import search_kernel_name, set_search_kernel
from repro.warehouse.grid import (Grid, field_kernel_name, set_field_kernel)

COMPILED = build_and_load()

needs_compiled = pytest.mark.skipif(
    COMPILED is None,
    reason="native kernel unavailable (no compiler or REPRO_KERNEL_BUILD=0)")


@pytest.fixture(autouse=True)
def _restore_kernel():
    # set_search_kernel rewires the field and descent kernels too, so
    # restoring the search selection restores everything a test switched.
    previous = search_kernel_name()
    yield
    set_search_kernel(previous)


def random_grid(rng: random.Random, max_side: int = 14) -> Grid:
    width = rng.randint(2, max_side)
    height = rng.randint(2, max_side)
    blocked = {(rng.randrange(width), rng.randrange(height))
               for __ in range(rng.randint(0, width * height // 3))}
    if len(blocked) == width * height:
        blocked.pop()
    return Grid(width, height, blocked=blocked)


def passable_cells(grid: Grid):
    return list(grid.cells())


# -- the field flood ---------------------------------------------------------


class TestFieldKernelSelection:
    def test_search_selection_drives_field_kernel(self):
        if COMPILED is not None:
            set_search_kernel("compiled")
            assert field_kernel_name() == "compiled"
        set_search_kernel("python")
        assert field_kernel_name() == "python"

    def test_rejects_pre_field_abi(self):
        class StaleModule:
            KERNEL_ABI = 2

        set_field_kernel(StaleModule())
        # A pre-field ABI module must degrade to the python flood.
        assert field_kernel_name() == "python"

    def test_search_selection_drives_descent_kernel(self):
        if COMPILED is not None:
            set_search_kernel("compiled")
            assert descent_kernel_name() == "compiled"
        set_search_kernel("python")
        assert descent_kernel_name() == "python"

    def test_rejects_pre_descent_abi(self):
        class StaleModule:
            KERNEL_ABI = 2

        set_descent_kernel(StaleModule())
        assert descent_kernel_name() == "python"


@needs_compiled
class TestBfsFillEquivalence:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=hyp.integers(min_value=0, max_value=10**9),
           sentinel=hyp.sampled_from([-1, -7, 10**6]))
    def test_matches_python_flood(self, seed, sentinel):
        rng = random.Random(seed)
        grid = random_grid(rng)
        cells = passable_cells(grid)
        if not cells:
            return
        source = rng.choice(cells)
        effective = sentinel if sentinel != 10**6 else grid.n_cells + 1
        set_field_kernel(None)
        expected = Grid(grid.width, grid.height,
                        grid.blocked_cells).distance_flat(
                            source, unreached=effective)
        set_field_kernel(COMPILED)
        assert field_kernel_name() == "compiled"
        got = grid.distance_flat(source, unreached=effective)
        assert got == expected
        assert got.typecode == expected.typecode == "i"

    def test_bfs_distances_keeps_historical_shape(self):
        grid = Grid(9, 7, blocked=[(4, 3)])
        set_field_kernel(COMPILED)
        dist = grid.bfs_distances((0, 0))
        assert dist.shape == (9, 7)
        assert dist[0, 0] == 0
        assert dist[4, 3] == -1  # blocked stays at the -1 sentinel
        assert dist[1, 0] == 1
        # The historical ndarray is an owned, writable copy.
        dist[0, 0] = 99
        assert grid.bfs_distances((0, 0))[0, 0] == 0

    @pytest.mark.parametrize("kernel", ["python", "compiled"])
    def test_sentinel_collision_rejected(self, kernel):
        grid = Grid(5, 5)
        set_field_kernel(COMPILED if kernel == "compiled" else None)
        with pytest.raises(ValueError):
            grid.distance_flat((0, 0), unreached=3)

    def test_unreachable_cells_keep_sentinel(self):
        # A walled-off right half must carry the sentinel in both planes.
        grid_a = Grid(7, 3, blocked=[(3, y) for y in range(3)])
        grid_b = Grid(7, 3, blocked=[(3, y) for y in range(3)])
        set_field_kernel(COMPILED)
        compiled = grid_a.distance_flat((0, 0), unreached=-1)
        set_field_kernel(None)
        python = grid_b.distance_flat((0, 0), unreached=-1)
        assert compiled == python
        assert compiled[6 * 3 + 0] == -1


class TestGridConnectivity:
    """``connected`` answers from one cached component labelling."""

    def test_connected_components(self):
        grid = Grid(8, 3, blocked=[(4, y) for y in range(3)])
        assert grid.connected((0, 0), (3, 2))
        assert not grid.connected((0, 0), (7, 0))
        assert not grid.connected((0, 0), (4, 0))  # blocked endpoint
        assert not grid.connected((0, 0), (99, 0))  # out of bounds

    def test_matches_bfs_reachability(self):
        rng = random.Random(20)
        for __ in range(25):
            grid = random_grid(rng)
            cells = passable_cells(grid)
            if len(cells) < 2:
                continue
            source = rng.choice(cells)
            dist = grid.distance_flat(source, unreached=-1)
            for __ in range(8):
                other = rng.choice(cells)
                reachable = dist[other[0] * grid.height + other[1]] >= 0
                assert grid.connected(source, other) == reachable

    def test_labels_computed_once(self):
        grid = Grid(6, 6)
        grid.connected((0, 0), (5, 5))
        labels = grid._components
        grid.connected((1, 1), (2, 2))
        assert grid._components is labels


# -- the fused tier-0 leg ----------------------------------------------------


WIDTH, HEIGHT = 12, 10

TABLES = {
    "cdt": lambda grid: ConflictDetectionTable(),
    "sharded-cdt": lambda grid: ShardedConflictDetectionTable(tile_bits=2),
    "stgraph": lambda grid: SpatiotemporalGraph(grid),
    "sharded-stgraph": lambda grid: ShardedSpatiotemporalGraph(tile_bits=2),
}


def random_traffic(rng: random.Random, grid: Grid, table) -> None:
    cells = passable_cells(grid)
    for __ in range(rng.randint(0, 8)):
        x, y = rng.choice(cells)
        t0 = rng.randint(0, 8)
        steps = [(t0, x, y)]
        for dt in range(rng.randint(1, 6)):
            options = list(grid.neighbours((steps[-1][1], steps[-1][2])))
            if options and rng.random() < 0.85:
                x, y = rng.choice(options)
            else:
                x, y = steps[-1][1], steps[-1][2]
            steps.append((t0 + dt + 1, x, y))
        table.reserve_path(Path(tuple(steps)))


@needs_compiled
@pytest.mark.parametrize("name", sorted(TABLES))
class TestFusedLegEquivalence:
    """``tier0_leg`` == the python ``packed()`` + ``audit_chain`` pair."""

    def test_matches_python_pair(self, name):
        set_descent_kernel(COMPILED)
        verdicts = set()
        for seed in range(80):
            rng = random.Random(5_000 + seed)
            grid = random_grid(rng)
            cells = passable_cells(grid)
            if len(cells) < 2:
                continue
            table = TABLES[name](grid)
            random_traffic(rng, grid, table)
            cache = FreeFlowPathCache(grid, HeuristicFieldCache(grid))
            source, goal = rng.sample(cells, 2)
            t = rng.randint(0, 5)
            fused = cache.kernel_leg(table, t, source, goal,
                                     lambda goal: (None, 0))
            assert fused is not None
            verdict, payload, j, finisher, trigger = fused
            verdicts.add(verdict)
            chain = cache.packed(source, goal)
            if chain is None:
                assert verdict == 0 and payload is None
                continue
            limit = len(chain.cells) - 1
            if table.audit_chain(t, chain, limit):
                assert verdict == 1
                assert tuple(payload) == Path.from_cells(chain.cells, t).steps
            else:
                assert verdict == 3
                assert tuple(payload) == chain.cells
        # The random tape must exercise clean and rejected descents.
        assert {1, 3} <= verdicts

    def test_finisher_head_verdict(self, name):
        """With a live finisher only the head prefix is audited."""
        set_descent_kernel(COMPILED)
        seen_heads = 0
        for seed in range(40):
            rng = random.Random(9_000 + seed)
            grid = random_grid(rng)
            cells = passable_cells(grid)
            if len(cells) < 2:
                continue
            table = TABLES[name](grid)
            random_traffic(rng, grid, table)
            cache = FreeFlowPathCache(grid, HeuristicFieldCache(grid))
            source, goal = rng.sample(cells, 2)
            t = rng.randint(0, 3)
            trigger = rng.randint(1, 6)
            finisher = lambda cell, tick: None
            fused = cache.kernel_leg(table, t, source, goal,
                                     lambda goal: (finisher, trigger))
            verdict, payload, j, got_finisher, got_trigger = fused
            assert got_trigger == trigger
            chain = cache.packed(source, goal)
            if chain is None:
                assert verdict == 0
                continue
            k = len(chain.cells) - 1
            head = k - trigger if k > trigger else 0
            if verdict == 2:
                assert got_finisher is finisher
                assert j == head
                assert tuple(payload) == chain.cells
                assert table.audit_chain(t, chain, head)
                seen_heads += 1
            elif verdict == 3:
                assert not table.audit_chain(t, chain, head)
            else:
                assert verdict == 1  # k == 0: nothing for the finisher
        assert seen_heads > 0

    def test_declines_generic_probe_spec(self, name):
        set_descent_kernel(COMPILED)
        grid = Grid(WIDTH, HEIGHT)
        real = TABLES[name](grid)

        class GenericProbe:
            def kernel_probe_spec(self):
                spec = real.kernel_probe_spec()
                return (0,) + tuple(spec[1:])

        cache = FreeFlowPathCache(grid, HeuristicFieldCache(grid))
        assert cache.kernel_leg(GenericProbe(), 0, (0, 0), (5, 5),
                                lambda goal: (None, 0)) is None


@needs_compiled
class TestFusedLegManhattanRegime:
    """Paper-scale lazy Manhattan fields take the closed-form descent."""

    def test_matches_python_pair(self):
        set_descent_kernel(COMPILED)
        side = int(PAPER_SCALE_MIN_CELLS ** 0.5) + 1
        grid = Grid(side, side)  # unobstructed => lazy Manhattan fields
        assert grid.n_cells >= PAPER_SCALE_MIN_CELLS
        cache = FreeFlowPathCache(grid, HeuristicFieldCache(grid))
        table = ShardedSpatiotemporalGraph(tile_bits=4)
        rng = random.Random(31)
        # Cross traffic near one corner so some descents get rejected.
        for lane in range(6):
            cells = [(8 + lane, y) for y in range(0, 14)]
            table.reserve_path(Path.from_cells(cells, rng.randint(0, 3)))
        verdicts = set()
        for __ in range(60):
            source = (rng.randrange(24), rng.randrange(24))
            goal = (rng.randrange(24), rng.randrange(24))
            if source == goal:
                continue
            t = rng.randint(0, 4)
            fused = cache.kernel_leg(table, t, source, goal,
                                     lambda goal: (None, 0))
            assert fused is not None
            verdict, payload, j, finisher, trigger = fused
            verdicts.add(verdict)
            chain = cache.packed(source, goal)
            if table.audit_chain(t, chain, len(chain.cells) - 1):
                assert verdict == 1
                assert tuple(payload) == Path.from_cells(chain.cells, t).steps
            else:
                assert verdict == 3
                assert tuple(payload) == chain.cells
        assert {1, 3} <= verdicts

    def test_kernel_declines_without_module(self):
        set_descent_kernel(None)
        grid = Grid(8, 8)
        cache = FreeFlowPathCache(grid, HeuristicFieldCache(grid))
        assert cache.kernel_leg(SpatiotemporalGraph(grid), 0, (0, 0),
                                (7, 7), lambda goal: (None, 0)) is None


# -- the shared field arena --------------------------------------------------


class TestFieldArena:
    def test_fields_equal_local_floods(self):
        grid = Grid(11, 9, blocked=[(5, 4), (2, 2)])
        goals = [(0, 0), (10, 8), (5, 3), (2, 2)]  # one blocked goal
        arena = FieldArena.build(grid, goals)
        try:
            assert set(arena.goals()) == {(0, 0), (10, 8), (5, 3)}
            infinity = grid.n_cells + 1
            for goal in arena.goals():
                served = arena.field(goal)
                expected = grid.distance_flat(goal, unreached=infinity)
                assert list(served.flat) == list(expected)
                assert served.nbytes == 64  # views own no buffer
            assert arena.field((9, 9)) is None
            assert arena.nbytes() == 4 * grid.n_cells * 3
        finally:
            arena.close()

    def test_attach_roundtrip_and_cache_integration(self):
        grid = Grid(9, 7)
        goals = [(0, 0), (8, 6)]
        arena = FieldArena.build(grid, goals)
        try:
            handle = pickle.loads(pickle.dumps(arena.handle()))
            reader = attach_field_arena(handle)
            cache = HeuristicFieldCache(grid)
            cache.attach_arena(reader)
            for goal in goals:
                served = cache.field(goal)
                expected = HeuristicFieldCache(grid).field(goal)
                assert list(served.flat) == list(expected.flat)
                assert cache.field(goal) is served  # memoised view
            # peek answers memo/arena goals without flooding new ones.
            assert cache.peek((0, 0)) is not None
            assert cache.peek((4, 4)) is None
            # Goals outside the arena still flood locally.
            local = cache.field((4, 4))
            assert list(local.flat) == list(
                HeuristicFieldCache(grid).field((4, 4)).flat)
        finally:
            arena.close()

    def test_attach_after_unlink_raises(self):
        grid = Grid(5, 5)
        arena = FieldArena.build(grid, [(0, 0)])
        handle = arena.handle()
        arena.close()
        with pytest.raises(FileNotFoundError):
            attach_field_arena(handle)

    def test_close_is_idempotent(self):
        arena = FieldArena.build(Grid(4, 4), [(0, 0)])
        arena.field((0, 0))
        arena.close()
        arena.close()

    def test_soak_flatness_nbytes_consistency(self):
        # Satellite to the nbytes fix: the cache ledger must equal the
        # sum of the fields' own nbytes, eager and arena-backed alike.
        grid = Grid(9, 7, blocked=[(4, 3)])
        arena = FieldArena.build(grid, [(0, 0)])
        try:
            cache = HeuristicFieldCache(grid)
            cache.attach_arena(attach_field_arena(arena.handle()))
            cache.field((0, 0))   # arena view: 64 header bytes
            cache.field((8, 6))   # local flood: 64 + 4 B/cell
            total = sum(field.nbytes for field in cache._fields.values())
            assert cache.memory_bytes() == total
            assert total == 64 + (64 + 4 * grid.n_cells)
        finally:
            arena.close()
