"""Contract tests shared by all five planners.

Whatever the selection strategy, every planner must satisfy the TPRW
output contract: schemes bounded by the idle-robot count, no duplicate
robots/racks, paths that start where robots stand, and reservation
bookkeeping that keeps successive schemes mutually conflict-free.
"""

import pytest

from repro.pathfinding.conflicts import find_conflicts
from repro.planners import PLANNERS
from repro.warehouse.entities import Item

from tests.conftest import make_two_picker_state

ALL_PLANNERS = sorted(PLANNERS)


def loaded_state(n_racks=6, n_robots=3, n_loaded=5):
    state = make_two_picker_state(n_racks=n_racks, n_robots=n_robots)
    for i in range(n_loaded):
        # Several items per rack so every planner (including the adaptive
        # ones, which defer near-empty racks) has reason to dispatch.
        for j in range(6):
            state.deliver_item(Item(i * 10 + j, i, arrival=0,
                                    processing_time=5))
    return state


class TestSchemeContract:
    @pytest.mark.parametrize("name", ALL_PLANNERS)
    def test_at_most_one_rack_per_robot(self, name):
        state = loaded_state()
        scheme = PLANNERS[name](state).plan(0)
        assert len(scheme) <= len(state.idle_robots())
        assert len(set(scheme.robot_ids)) == len(scheme.robot_ids)
        assert len(set(scheme.rack_ids)) == len(scheme.rack_ids)

    @pytest.mark.parametrize("name", ALL_PLANNERS)
    def test_paths_start_at_robot_positions(self, name):
        state = loaded_state()
        scheme = PLANNERS[name](state).plan(0)
        for assignment in scheme:
            robot = state.robots[assignment.robot_id]
            assert assignment.pickup_path.source == robot.location

    @pytest.mark.parametrize("name", ALL_PLANNERS)
    def test_paths_end_at_selected_rack_homes(self, name):
        state = loaded_state()
        scheme = PLANNERS[name](state).plan(0)
        for assignment in scheme:
            rack = state.racks[assignment.rack_id]
            assert assignment.pickup_path.goal == rack.home

    @pytest.mark.parametrize("name", ALL_PLANNERS)
    def test_scheme_paths_mutually_conflict_free(self, name):
        state = loaded_state(n_robots=3)
        scheme = PLANNERS[name](state).plan(0)
        paths = [a.pickup_path for a in scheme]
        starts = {(p.start_time, p.source) for p in paths}
        for clash in find_conflicts(paths):
            # Only co-located parked robots may share their start vertex
            # (idle robots are non-blocking by design).
            assert (clash.time, clash.cell) in starts

    @pytest.mark.parametrize("name", ALL_PLANNERS)
    def test_empty_when_no_robots(self, name):
        state = loaded_state()
        planner = PLANNERS[name](state)
        from repro.warehouse.entities import RobotState
        for robot in state.robots:
            robot.state = RobotState.TO_RACK
            robot.rack_id = robot.robot_id  # keep invariants satisfiable
        assert len(planner.plan(0)) == 0

    @pytest.mark.parametrize("name", ALL_PLANNERS)
    def test_empty_when_no_selectable_racks(self, name):
        state = make_two_picker_state()
        assert len(PLANNERS[name](state).plan(0)) == 0

    @pytest.mark.parametrize("name", ALL_PLANNERS)
    def test_successive_schemes_reserve_against_each_other(self, name):
        state = loaded_state(n_robots=2)
        planner = PLANNERS[name](state)
        first = planner.plan(0)
        # Mark dispatched robots/racks busy, then plan again next tick.
        from repro.warehouse.entities import RackPhase, RobotState
        for assignment in first:
            state.robots[assignment.robot_id].state = RobotState.TO_RACK
            state.robots[assignment.robot_id].rack_id = assignment.rack_id
            state.racks[assignment.rack_id].phase = RackPhase.IN_TRANSIT
        second = planner.plan(1)
        paths = ([a.pickup_path for a in first]
                 + [a.pickup_path for a in second])
        starts = {(p.start_time, p.source) for p in paths}
        for clash in find_conflicts(paths):
            assert (clash.time, clash.cell) in starts
