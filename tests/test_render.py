"""Tests for the ASCII warehouse renderer."""

from repro.warehouse.entities import Item, RackPhase, RobotState
from repro.warehouse.render import occupancy_counts, render_state

from tests.conftest import make_two_picker_state


class TestRenderState:
    def test_dimensions(self):
        state = make_two_picker_state()
        lines = render_state(state).splitlines()
        assert len(lines) == state.grid.height
        assert all(len(line) == state.grid.width for line in lines)

    def test_entities_drawn(self):
        state = make_two_picker_state()
        out = render_state(state)
        assert "o" in out  # empty racks
        assert "P" in out  # idle pickers
        assert "r" in out  # idle robots

    def test_pending_counts_shown(self):
        state = make_two_picker_state()
        for i in range(3):
            state.deliver_item(Item(i, 5, 0, 5))
        x, y = state.racks[5].home
        assert render_state(state).splitlines()[y][x] == "3"

    def test_ten_plus_items_capped(self):
        state = make_two_picker_state()
        for i in range(12):
            state.deliver_item(Item(i, 5, 0, 5))
        x, y = state.racks[5].home
        assert render_state(state).splitlines()[y][x] == "+"

    def test_in_transit_rack_marked(self):
        state = make_two_picker_state()
        rack = state.racks[5]
        rack.phase = RackPhase.IN_TRANSIT
        x, y = rack.home
        assert render_state(state).splitlines()[y][x] == "_"

    def test_busy_robot_uppercase(self):
        state = make_two_picker_state()
        state.robots[0].state = RobotState.TO_RACK
        state.robots[0].rack_id = 0
        state.racks[0].phase = RackPhase.IN_TRANSIT
        out = render_state(state)
        assert "R" in out

    def test_queueing_picker_marked(self):
        state = make_two_picker_state()
        state.pickers[0].current_rack = 0
        x, y = state.pickers[0].location
        assert render_state(state).splitlines()[y][x] == "Q"

    def test_legend_appended(self):
        state = make_two_picker_state()
        assert "picker" in render_state(state, show_legend=True)


class TestOccupancyCounts:
    def test_initial_counts(self):
        state = make_two_picker_state(n_racks=8, n_robots=2)
        counts = occupancy_counts(state)
        assert counts["racks_home"] == 8
        assert counts["racks_in_transit"] == 0
        assert counts["busy_robots"] == 0

    def test_counts_track_state(self):
        state = make_two_picker_state()
        state.deliver_item(Item(0, 5, 0, 5))
        state.racks[0].phase = RackPhase.IN_TRANSIT
        counts = occupancy_counts(state)
        assert counts["racks_with_pending"] == 1
        assert counts["racks_in_transit"] == 1
