"""Unit tests for the shortest-path cache and wait-based finisher."""

import pytest

from repro.pathfinding.cache import (ShortestPathCache, follow_with_waits,
                                     make_wait_finisher)
from repro.pathfinding.cdt import ConflictDetectionTable
from repro.pathfinding.conflicts import is_conflict_free
from repro.pathfinding.paths import Path
from repro.types import manhattan
from repro.warehouse.grid import Grid


@pytest.fixture
def grid():
    return Grid(12, 10)


class TestShortestPathCache:
    def test_rejects_negative_threshold(self, grid):
        with pytest.raises(ValueError):
            ShortestPathCache(grid, -1)

    def test_beyond_threshold_returns_none(self, grid):
        cache = ShortestPathCache(grid, threshold=3)
        assert cache.lookup((0, 0), (9, 9)) is None
        assert cache.misses == 0

    def test_lookup_returns_shortest(self, grid):
        cache = ShortestPathCache(grid, threshold=10)
        cells = cache.lookup((0, 0), (3, 2))
        assert cells[0] == (0, 0)
        assert cells[-1] == (3, 2)
        assert len(cells) - 1 == manhattan((0, 0), (3, 2))

    def test_hit_counting(self, grid):
        cache = ShortestPathCache(grid, threshold=10)
        first = cache.lookup((0, 0), (3, 2))
        second = cache.lookup((0, 0), (3, 2))
        assert first == second
        assert cache.hits == 1
        assert cache.misses == 1
        assert len(cache) == 1

    def test_roundtrip_packing(self, grid):
        cache = ShortestPathCache(grid, threshold=12)
        original = cache.lookup((1, 1), (7, 5))
        decoded = cache.lookup((1, 1), (7, 5))
        assert original == decoded

    def test_memory_counts_blobs(self, grid):
        cache = ShortestPathCache(grid, threshold=10)
        empty = cache.memory_bytes()
        cache.lookup((0, 0), (5, 5))
        assert cache.memory_bytes() > empty


class TestFollowWithWaits:
    def test_no_conflicts_no_waits(self):
        cdt = ConflictDetectionTable()
        steps = follow_with_waits(cdt, ((0, 0), (1, 0), (2, 0)), 5)
        assert steps == [(5, 0, 0), (6, 1, 0), (7, 2, 0)]

    def test_waits_out_transient_conflict(self):
        cdt = ConflictDetectionTable()
        cdt.reserve_path(Path.from_cells([(1, 0), (1, 0)], start_time=0))
        steps = follow_with_waits(cdt, ((0, 0), (1, 0), (2, 0)), 0)
        path = Path(tuple(steps))
        assert path.goal == (2, 0)
        assert path.duration > 2  # at least one wait inserted
        blocked = Path.from_cells([(1, 0), (1, 0)], start_time=0)
        assert is_conflict_free([path, blocked])

    def test_gives_up_when_wait_budget_exhausted(self):
        cdt = ConflictDetectionTable()
        cdt.reserve_path(Path.waiting((1, 0), 0, 200))
        steps = follow_with_waits(cdt, ((0, 0), (1, 0)), 0,
                                  max_wait_per_step=4)
        assert steps is None

    def test_gives_up_when_holding_cell_reserved(self):
        cdt = ConflictDetectionTable()
        # Next cell blocked at t=1 and our holding cell reserved at t=1.
        cdt.reserve_path(Path.from_cells([(1, 0), (1, 0)], start_time=0))
        cdt.reserve_path(Path.from_cells([(0, 1), (0, 0)], start_time=0))
        steps = follow_with_waits(cdt, ((0, 0), (1, 0)), 0)
        assert steps is None


class TestMakeWaitFinisher:
    def test_finisher_integrates_with_cache(self, grid):
        cdt = ConflictDetectionTable()
        cache = ShortestPathCache(grid, threshold=8)
        finisher = make_wait_finisher(cache, (4, 0), cdt)
        steps = finisher((0, 0), 10)
        assert steps[0] == (10, 0, 0)
        assert steps[-1][1:] == (4, 0)

    def test_finisher_none_beyond_threshold(self, grid):
        cdt = ConflictDetectionTable()
        cache = ShortestPathCache(grid, threshold=2)
        finisher = make_wait_finisher(cache, (9, 9), cdt)
        assert finisher((0, 0), 0) is None
