"""Tests for the parallel experiment matrix: cells, store, resume, parity.

The acceptance bar for the harness refactor: ``run_matrix`` over the
Table III scenario set with several workers must produce per-cell JSON
whose deterministic view is bit-identical to the serial harness, and a
re-invocation after deleting one cell file must recompute exactly that
cell.
"""

from __future__ import annotations

import json

import pytest

from repro.config import PlannerConfig, SimulationConfig
from repro.errors import ConfigurationError
from repro.experiments.harness import (DEFAULT_PLANNERS, SLOW_PLANNERS,
                                       MatrixCell, execute_cell, plan_cells,
                                       run_comparison, run_matrix)
from repro.experiments.matrix import render_matrix_summary
from repro.experiments.store import (ResultStore, assert_unique_filenames,
                                     cell_filename)
from repro.sim.serialize import deterministic_view
from repro.workloads.datasets import all_datasets, fleet_ladder, make_mini
from repro.workloads.scenario import TAG_SKIP_SLOW_PLANNERS

#: Small but structurally faithful stand-in for the Table III grid.
SCALE = 0.18


def mini_cells(planners=("NTP", "ATP", "EATP"), n_items=30):
    return plan_cells([make_mini(n_items=n_items)], planners)


class TestResultStore:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "m")
        payload = {"metrics": {"makespan": 42}}
        store.save("Syn-A--NTP", payload)
        assert store.has("Syn-A--NTP")
        assert store.load("Syn-A--NTP") == payload
        assert len(store) == 1

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("cell", {"a": 1})
        assert [p.name for p in store.cell_files()] == ["cell.json"]

    def test_delete_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("cell", {})
        store.delete("cell")
        store.delete("cell")
        assert not store.has("cell")

    def test_filenames_are_sanitised(self):
        assert cell_filename("Syn-A--NTP") == "Syn-A--NTP.json"
        assert "/" not in cell_filename("weird/../name")
        with pytest.raises(ConfigurationError):
            cell_filename("///")

    def test_stale_tmp_files_swept_on_open(self, tmp_path):
        # A crash between the temp write and the rename leaves a
        # *.json.tmp behind; opening the store cleans it up.
        root = tmp_path / "m"
        root.mkdir()
        (root / "cell.json.tmp").write_text("{half")
        (root / "done.json").write_text("{}")
        ResultStore(root)
        assert not list(root.glob("*.json.tmp"))
        assert (root / "done.json").is_file()

    def test_unique_filenames_helper(self):
        assert_unique_filenames(["a", "b", "c"])
        with pytest.raises(ConfigurationError, match="collide"):
            assert_unique_filenames(["a b", "a_b"])
        with pytest.raises(ConfigurationError, match="collide"):
            assert_unique_filenames(["a", "b", "a"])


class TestRunComparison:
    def test_all_planners_skipped_raises(self):
        with pytest.raises(ConfigurationError):
            run_comparison(make_mini(n_items=20), planners=("NTP", "LEF"),
                           skip=("NTP", "LEF"))

    def test_empty_planner_list_raises(self):
        with pytest.raises(ConfigurationError):
            run_comparison(make_mini(n_items=20), planners=())

    def test_partial_skip_still_runs(self):
        comparison = run_comparison(make_mini(n_items=30),
                                    planners=("NTP", "LEF"), skip=("LEF",))
        assert list(comparison.results) == ["NTP"]


class TestCellPlanning:
    def test_slow_planners_skipped_on_large(self):
        cells = plan_cells(all_datasets(SCALE).values(), DEFAULT_PLANNERS)
        ids = [c.cell_id for c in cells]
        assert "Real-Large--NTP" in ids
        assert "Real-Large--LEF" not in ids and "Real-Large--ILP" not in ids
        assert len(cells) == 4 * 5 - 2

    def test_fleet_ladder_runs_all_five_planners(self):
        # PR 4 unlocked the small rungs: the windowed pipeline keeps
        # every planner recoverable at the 200-robot rung, and LEF/ILP
        # drain the scaled-down floor in seconds.  The PR-6 large rungs
        # (500-3000 robots, paper-true 541x302 floor) carry the
        # skip-slow-planners tag — LEF/ILP keep the paper's "too slow
        # to execute" exclusion there, like Table III's Real-Large
        # cells (see test_slow_planners_skipped_on_large).
        rungs = fleet_ladder(SCALE)
        cells = plan_cells(rungs, DEFAULT_PLANNERS)
        planners = {c.planner for c in cells}
        assert planners == set(DEFAULT_PLANNERS)
        tagged = sum(1 for spec in rungs
                     if TAG_SKIP_SLOW_PLANNERS in spec.tags)
        assert tagged == 3  # the 500/1000/3000 paper-floor rungs
        expected = (len(rungs) - tagged) * len(DEFAULT_PLANNERS) \
            + tagged * (len(DEFAULT_PLANNERS) - len(SLOW_PLANNERS))
        assert len(cells) == expected
        large = {c.planner for c in cells if c.scenario.name == "Fleet-3000"}
        assert large == set(DEFAULT_PLANNERS) - set(SLOW_PLANNERS)

    def test_duplicate_cell_ids_rejected(self):
        cells = mini_cells(planners=("NTP", "NTP"))
        with pytest.raises(ConfigurationError):
            run_matrix(cells)

    def test_colliding_sanitised_filenames_rejected(self):
        spec = make_mini(n_items=10)
        cells = [MatrixCell(scenario=spec, planner="NTP", label="a b"),
                 MatrixCell(scenario=spec, planner="NTP", label="a_b")]
        with pytest.raises(ConfigurationError):
            run_matrix(cells)

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            run_matrix(mini_cells(), workers=-1)


class TestCellIds:
    def test_default_config_keeps_plain_id(self):
        cell = MatrixCell(scenario=make_mini(n_items=10), planner="NTP")
        assert cell.cell_id == "Mini--NTP"

    def test_non_default_config_changes_the_id(self):
        # A stored cell must never be resumed under different knobs.
        spec = make_mini(n_items=10)
        plain = MatrixCell(scenario=spec, planner="EATP")
        tuned = MatrixCell(scenario=spec, planner="EATP",
                           planner_config=PlannerConfig(knn_k=3))
        traced = MatrixCell(scenario=spec, planner="EATP",
                            sim_config=SimulationConfig(
                                record_bottleneck_trace=True))
        ids = {plain.cell_id, tuned.cell_id, traced.cell_id}
        assert len(ids) == 3
        assert all(i.startswith("Mini--EATP") for i in ids)

    def test_same_config_same_id(self):
        spec = make_mini(n_items=10)
        a = MatrixCell(scenario=spec, planner="EATP",
                       planner_config=PlannerConfig(knn_k=3))
        b = MatrixCell(scenario=spec, planner="EATP",
                       planner_config=PlannerConfig(knn_k=3))
        assert a.cell_id == b.cell_id


class TestMatrixExecution:
    def test_payload_carries_provenance(self):
        cell = mini_cells(planners=("NTP",))[0]
        payload = execute_cell(cell)
        assert payload["scenario"] == "Mini" and payload["planner"] == "NTP"
        assert payload["spec"]["items"]["generator"] == "poisson"
        assert payload["result"]["metrics"]["items_processed"] == 30
        json.dumps(payload)  # JSON-serialisable end to end

    def test_store_streams_each_cell(self, tmp_path):
        store = ResultStore(tmp_path)
        run_matrix(mini_cells(), store=store)
        assert sorted(p.stem for p in store.cell_files()) == [
            "Mini--ATP", "Mini--EATP", "Mini--NTP"]

    def test_custom_labels_key_results(self):
        spec = make_mini(n_items=20)
        cells = [MatrixCell(scenario=spec, planner="NTP", label="a"),
                 MatrixCell(scenario=spec, planner="NTP", label="b")]
        payloads = run_matrix(cells)
        assert list(payloads) == ["a", "b"]

    def test_summary_renders_makespans(self):
        payloads = run_matrix(mini_cells(planners=("NTP", "EATP")))
        out = render_matrix_summary(payloads, "T")
        assert "Mini" in out and "NTP" in out and "EATP" in out

    def test_resume_rejects_foreign_payload(self, tmp_path):
        # A stored file claiming a different cell id (a past sanitiser
        # collision) must not be silently served as this cell's result.
        cells = mini_cells(planners=("NTP",))
        store = ResultStore(tmp_path)
        store.save(cells[0].cell_id, {"cell_id": "Other--EATP"})
        with pytest.raises(ConfigurationError, match="written by"):
            run_matrix(cells, store=store)

    def test_resume_tolerates_legacy_payload_without_cell_id(self, tmp_path):
        cells = mini_cells(planners=("NTP",))
        store = ResultStore(tmp_path)
        legacy = {"scenario": "Mini", "planner": "NTP"}  # pre-provenance
        store.save(cells[0].cell_id, legacy)
        payloads = run_matrix(cells, store=store)
        assert payloads[cells[0].cell_id] == legacy


@pytest.mark.slow
class TestParallelParity:
    """The acceptance criterion, on the Table III scenario set."""

    def test_parallel_bit_identical_and_resume_recomputes_one_cell(
            self, tmp_path):
        cells = plan_cells(all_datasets(SCALE).values(), DEFAULT_PLANNERS)
        serial = run_matrix(cells, workers=0)

        store = ResultStore(tmp_path / "table3")
        parallel = run_matrix(cells, workers=4, store=store)
        assert list(parallel) == list(serial)
        for cell_id in serial:
            assert (deterministic_view(parallel[cell_id])
                    == deterministic_view(serial[cell_id])), cell_id
        # ... and the on-disk JSON round-trips to the same view.
        for cell in cells:
            on_disk = json.loads(store.path(cell.cell_id).read_text())
            assert (deterministic_view(on_disk)
                    == deterministic_view(serial[cell.cell_id]))

        # Delete one cell; a re-run recomputes exactly that cell.
        victim = "Syn-B--ATP"
        store.delete(victim)
        events = []
        rerun = run_matrix(cells, workers=4, store=store,
                           progress=lambda c, s: events.append((c, s)))
        recomputed = [c for c, s in events if s == "done"]
        assert recomputed == [victim]
        assert sum(1 for c, s in events if s == "cached") == len(cells) - 1
        assert (deterministic_view(rerun[victim])
                == deterministic_view(serial[victim]))
