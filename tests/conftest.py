"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the golden traces under tests/golden/ from the "
             "current implementation instead of diffing against them")


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: multi-second experiment regenerator runs")


@pytest.fixture
def update_golden(request) -> bool:
    """Whether this run should regenerate the golden files."""
    return bool(request.config.getoption("--update-golden"))

from repro.config import PlannerConfig, QLearningConfig, SimulationConfig
from repro.warehouse.grid import Grid
from repro.warehouse.layout import build_layout
from repro.warehouse.state import WarehouseState
from repro.workloads.arrivals import deterministic_arrivals
from repro.workloads.datasets import make_mini


@pytest.fixture
def small_grid() -> Grid:
    """A 10×8 open grid."""
    return Grid(10, 8)


@pytest.fixture
def blocked_grid() -> Grid:
    """A 10×8 grid with a vertical wall leaving one gap at y=6."""
    wall = [(5, y) for y in range(0, 6)]
    return Grid(10, 8, blocked=wall)


@pytest.fixture
def small_layout():
    """A compact layout: 16×12, 8 racks, 2 pickers."""
    return build_layout(16, 12, n_racks=8, n_pickers=2)


@pytest.fixture
def small_state(small_layout) -> WarehouseState:
    """A world over ``small_layout`` with 2 robots."""
    return WarehouseState.from_layout(small_layout, n_robots=2)


@pytest.fixture
def mini_scenario():
    """The seconds-fast smoke scenario."""
    return make_mini(n_items=40)


@pytest.fixture
def fast_sim_config() -> SimulationConfig:
    """A simulation config with a tight tick budget for unit tests."""
    return SimulationConfig(max_ticks=50_000)


@pytest.fixture
def quiet_learner_config() -> PlannerConfig:
    """Adaptive planner config with exploration turned down (determinism)."""
    return PlannerConfig(qlearning=QLearningConfig(delta=0.05, epsilon=0.02))


def make_two_picker_state(n_racks: int = 6, n_robots: int = 2) -> WarehouseState:
    """Helper used by planner tests: a small, fully deterministic world."""
    layout = build_layout(16, 12, n_racks=n_racks, n_pickers=2)
    return WarehouseState.from_layout(layout, n_robots=n_robots)


def drip_items(rack_ids, start: int = 0, spacing: int = 1,
               processing: int = 5):
    """Items arriving one per ``spacing`` ticks across ``rack_ids``."""
    schedule = [(start + i * spacing, rack_id)
                for i, rack_id in enumerate(rack_ids)]
    return deterministic_arrivals(schedule, processing_time=processing)
