"""Tests for the experiment harness and every table/figure regenerator.

These run the regenerators at a small scale and check the *shapes* the
paper claims, not absolute numbers — who wins, which structure is smaller,
which direction the bottleneck migrates.
"""

import pytest

from repro.experiments.ablations import (sweep_cache_threshold, sweep_delta,
                                         sweep_knn, sweep_reservation)
from repro.experiments.badcase import build_bad_case, run_bad_case
from repro.experiments.fig10 import render_fig10, run_fig10
from repro.experiments.fig11 import render_fig11, run_fig11
from repro.experiments.fig12 import render_fig12, run_fig12
from repro.experiments.fig13 import render_fig13, run_fig13
from repro.experiments.harness import (ComparisonResult, run_comparison,
                                       run_planner)
from repro.experiments.reporting import (format_series, format_table,
                                         percent_improvement)
from repro.experiments.table3 import render_table3, run_table3
from repro.workloads.datasets import make_mini

SCALE = 0.18  # keeps each dataset run to a couple of seconds


class TestReporting:
    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [["x", 1], ["yyyy", 22]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        out = format_series("NTP", [1, 2], [0.5, 0.25])
        assert out == "NTP: (1, 0.500) (2, 0.250)"

    def test_percent_improvement(self):
        assert percent_improvement(200, 100) == pytest.approx(50.0)
        assert percent_improvement(0, 100) == 0.0


class TestHarness:
    def test_run_planner_unknown_name(self):
        with pytest.raises(KeyError):
            run_planner(make_mini(n_items=10), "NOPE")

    def test_run_comparison_skips(self):
        comparison = run_comparison(make_mini(n_items=30),
                                    planners=("NTP", "LEF"), skip=("LEF",))
        assert list(comparison.results) == ["NTP"]

    def test_comparison_accessors(self):
        comparison = run_comparison(make_mini(n_items=30),
                                    planners=("NTP", "ATP"))
        makespans = comparison.makespans()
        assert set(makespans) == {"NTP", "ATP"}
        assert comparison.best_planner() in makespans


@pytest.mark.slow
class TestTable3:
    def test_shapes(self):
        table = run_table3(scale=SCALE)
        assert set(table) == {"Syn-A", "Syn-B", "Real-Norm", "Real-Large"}
        # Paper fidelity: LEF and ILP are absent on Real-Large.
        assert "LEF" not in table["Real-Large"]
        assert "ILP" not in table["Real-Large"]
        for dataset, makespans in table.items():
            ours = min(makespans.get("ATP"), makespans.get("EATP"))
            # ATP/EATP never lose to NTP, the extended state of the art.
            assert ours <= makespans["NTP"]
        rendered = render_table3(table)
        assert "Table III" in rendered
        assert "-" in rendered  # the missing cells


@pytest.mark.slow
class TestFig10:
    def test_series_shapes(self):
        data = run_fig10(scale=SCALE, dataset="Syn-A")
        series = data["Syn-A"]
        assert {s.planner for s in series} == {"NTP", "LEF", "ILP", "ATP",
                                               "EATP"}
        for s in series:
            assert len(s.items) == len(s.ppr) == len(s.rwr)
            assert all(0 <= v <= 1 for v in s.ppr)
            assert all(0 <= v <= 1 for v in s.rwr)
        assert "PPR" in render_fig10(data)


@pytest.mark.slow
class TestFig11:
    def test_cumulative_and_monotone(self):
        data = run_fig11(scale=SCALE, dataset="Syn-A")
        for s in data["Syn-A"]:
            assert s.stc_seconds == sorted(s.stc_seconds)
            assert s.ptc_seconds == sorted(s.ptc_seconds)
        rendered = render_fig11(data)
        assert "STC" in rendered and "PTC" in rendered

    def test_eatp_selection_cheaper_than_atp(self):
        # The STC gap is a scaling effect (flip requesting replaces the
        # global rack sort), so it needs a world big enough for the sort
        # to cost something — SCALE is too small, 0.6 shows it.
        data = run_fig11(scale=0.6, dataset="Syn-B")
        final = {s.planner: s.stc_seconds[-1] for s in data["Syn-B"]
                 if s.stc_seconds}
        assert final["EATP"] < final["ATP"]


@pytest.mark.slow
class TestFig12:
    def test_eatp_lowest_memory(self):
        # Like the paper's Fig. 12, the CDT-vs-graph gap grows with the
        # floor: at tiny scale EATP's fixed KNN/cache overheads mask it,
        # so this shape check runs at 0.6 scale.
        data = run_fig12(scale=0.6, dataset="Real-Norm")
        peaks = {s.planner: s.peak_kib for s in data["Real-Norm"]}
        assert peaks["EATP"] < peaks["ATP"]
        assert "MC" in render_fig12(data)


@pytest.mark.slow
class TestFig13:
    def test_bottleneck_migrates(self):
        report = run_fig13(scale=0.4, window=150)
        assert report.migrated
        assert report.cum_processing > 0
        rendered = render_fig13(report)
        assert "migration observed: True" in rendered


@pytest.mark.slow
class TestBadCase:
    def test_construction_shape(self):
        layout, mapping, items = build_bad_case(k=4, xi=6)
        assert mapping[0] == 0 and set(mapping[1:]) == {1}
        assert len([i for i in items if i.rack_id == 0]) == 4

    def test_rejects_tiny_k(self):
        with pytest.raises(ValueError):
            build_bad_case(k=1)

    def test_greedy_shuttles_more(self):
        result = run_bad_case(k=8)
        assert result.outcomes["NTP"].rack0_trips >= 6
        assert result.shuttle_ratio >= 1.5


@pytest.mark.slow
class TestAblations:
    def test_delta_sweep_runs(self):
        points = sweep_delta(values=(0.1, 0.9), scale=SCALE)
        assert [p.value for p in points] == [0.1, 0.9]
        assert all(p.makespan > 0 for p in points)

    def test_cache_sweep_reports_hit_rate(self):
        points = sweep_cache_threshold(values=(0, 12), scale=SCALE)
        off, on = points
        assert off.extra["cache_finish_rate"] == 0.0
        assert on.extra["cache_finish_rate"] > 0.0

    def test_knn_sweep_runs(self):
        points = sweep_knn(values=(2, 8), scale=SCALE)
        assert all(p.makespan > 0 for p in points)

    def test_reservation_swap_memory_gap(self):
        swap = sweep_reservation(scale=SCALE)
        assert (swap["CDT"].extra["reservation_kib"]
                <= swap["STGraph"].extra["reservation_kib"])
