"""The windowed-horizon planning pipeline: search tiers, commits, replans.

Covers the PR-4 contract end to end:

* ``search()`` returns :class:`SearchOutcome` failures instead of raising,
  and the raising wrapper attaches the search stats to
  :class:`PathNotFoundError`;
* windowed search is bit-identical to the full search on uncongested
  grids and escapes congestion the full search cannot afford;
* the fallback chain answers every request with exactly one tier, with
  crafted dense-corridor fixtures exercising each tier;
* reservation structures honour windowed commits;
* the event engine finishes partial legs through horizon replans.
"""

from __future__ import annotations

import pytest

from repro.config import PlannerConfig, SimulationConfig
from repro.errors import ConfigurationError, ConflictError, PathNotFoundError
from repro.pathfinding.cache import follow_with_waits
from repro.pathfinding.cdt import ConflictDetectionTable
from repro.pathfinding.conflicts import find_conflicts
from repro.pathfinding.heuristics import HeuristicFieldCache
from repro.pathfinding.paths import Path
from repro.pathfinding.pipeline import (TIER_FREE_FLOW, TIER_FULL, TIER_WAIT,
                                        TIER_WINDOWED, FallbackChain)
from repro.pathfinding.spatiotemporal_graph import SpatiotemporalGraph
from repro.pathfinding.st_astar import (SEARCH_BUDGET, SEARCH_COMPLETE,
                                        SEARCH_EXHAUSTED, SearchRequest,
                                        SearchStats, find_path, search)
from repro.planners.ntp import NaiveTaskPlanner
from repro.sim.engine import Simulation
from repro.sim.missions import Mission, MissionStage
from repro.warehouse.grid import Grid
from repro.workloads.datasets import make_mini


def corridor(length: int) -> Grid:
    """A single-file corridor of ``length`` cells along y=0."""
    return Grid(length, 1)


def blockade(table, cell, until: int) -> None:
    """Park a reservation on ``cell`` for every tick in [0, until]."""
    table.reserve_path(Path.waiting(cell, 0, until))


def make_chain(grid: Grid, reservation, config: PlannerConfig,
               heuristics: HeuristicFieldCache = None) -> FallbackChain:
    """A fallback chain wired exactly as the planner base wires it."""
    if heuristics is None:
        heuristics = HeuristicFieldCache(grid)

    def full(t, source, goal):
        stats = SearchStats()
        return find_path(grid, reservation, source, goal, t,
                         heuristic=heuristics.field(goal),
                         max_expansions=config.max_search_expansions,
                         stats=stats)

    return FallbackChain(grid=grid, reservation=reservation,
                         heuristics=heuristics, config=config,
                         full_search=full,
                         finisher_factory=lambda goal: (None, 0))


class TestSearchOutcomes:
    def test_complete_outcome(self):
        grid = Grid(12, 10)
        outcome = search(grid, ConflictDetectionTable(),
                         SearchRequest(source=(0, 0), goal=(6, 4),
                                       start_time=0))
        assert outcome.ok and outcome.status == SEARCH_COMPLETE
        assert outcome.path.goal == (6, 4)
        assert outcome.stats.budget == 200_000

    def test_budget_outcome_returned_not_raised(self):
        grid = Grid(12, 10)
        outcome = search(grid, ConflictDetectionTable(),
                         SearchRequest(source=(0, 0), goal=(11, 9),
                                       start_time=0, max_expansions=3))
        assert not outcome.ok
        assert outcome.status == SEARCH_BUDGET
        assert outcome.path is None
        assert outcome.stats.expansions > 0
        assert outcome.stats.budget == 3

    def test_exhausted_outcome_when_boxed_in(self):
        grid = corridor(5)
        cdt = ConflictDetectionTable()
        for cell in [(1, 0), (2, 0), (3, 0)]:
            blockade(cdt, cell, until=6)
        outcome = search(grid, cdt,
                         SearchRequest(source=(2, 0), goal=(4, 0),
                                       start_time=0))
        assert outcome.status == SEARCH_EXHAUSTED
        assert outcome.stats.expansions == 1  # the start pops, nothing else

    def test_find_path_attaches_stats_to_error(self):
        grid = Grid(12, 10)
        with pytest.raises(PathNotFoundError) as excinfo:
            find_path(grid, ConflictDetectionTable(), (0, 0), (11, 9), 0,
                      max_expansions=3)
        error = excinfo.value
        assert error.stats is not None
        assert error.stats.expansions == 4  # the pop that broke the budget
        assert error.stats.budget == 3
        assert error.stats.peak_open > 0
        # The diagnostics survive into the rendered message too.
        assert "expansions=4" in str(error)
        assert "budget=3" in str(error)


class TestWindowedEquivalence:
    ENDPOINTS = [((0, 0), (9, 7)), ((11, 0), (0, 9)), ((3, 8), (10, 1))]

    @pytest.mark.parametrize("horizon", [1, 3, 8])
    def test_bit_identical_to_full_when_uncongested(self, horizon):
        grid = Grid(12, 10)
        fields = HeuristicFieldCache(grid)
        for source, goal in self.ENDPOINTS:
            full_stats, win_stats = SearchStats(), SearchStats()
            full = find_path(grid, ConflictDetectionTable(), source, goal, 0,
                             heuristic=fields.field(goal), stats=full_stats)
            windowed = find_path(grid, ConflictDetectionTable(), source,
                                 goal, 0, heuristic=fields.field(goal),
                                 stats=win_stats, horizon=horizon)
            assert windowed.steps == full.steps
            assert win_stats == full_stats

    def test_windowed_tail_ignores_reservations_beyond_horizon(self):
        # A corridor blocked far beyond the window: the windowed search
        # must walk straight through the (future, unprobed) blockade.
        grid = corridor(30)
        cdt = ConflictDetectionTable()
        blockade(cdt, (20, 0), until=300)
        outcome = search(grid, cdt,
                         SearchRequest(source=(0, 0), goal=(29, 0),
                                       start_time=0, horizon=8),
                         heuristic=HeuristicFieldCache(grid).field((29, 0)))
        assert outcome.ok
        assert outcome.path.duration == 29  # conflict-oblivious optimum
        # ... while the full search cannot (it must out-wait the blockade).
        full = find_path(grid, cdt, (0, 0), (29, 0), 0)
        assert full.duration > 290


class TestFallbackChain:
    def test_tier_free_flow_on_open_floor(self):
        # Tier 0 serves an uncongested leg without searching: greedy
        # descent plus a clean audit, byte-identical to the full search.
        grid = Grid(12, 10)
        cdt = ConflictDetectionTable()
        leg = make_chain(grid, cdt, PlannerConfig()).plan_leg(0, (0, 0),
                                                              (9, 7))
        assert leg.tier == TIER_FREE_FLOW
        assert leg.complete
        assert leg.commit_until is None
        assert leg.path.goal == (9, 7)

    def test_tier_full_on_open_floor(self):
        # With tier 0 off, the same leg lands on the classic full tier
        # with the byte-identical path.
        grid = Grid(12, 10)
        cdt = ConflictDetectionTable()
        config = PlannerConfig(free_flow=False)
        leg = make_chain(grid, cdt, config).plan_leg(0, (0, 0), (9, 7))
        fast = make_chain(grid, ConflictDetectionTable(),
                          PlannerConfig()).plan_leg(0, (0, 0), (9, 7))
        assert leg.tier == TIER_FULL
        assert leg.complete
        assert leg.commit_until is None
        assert leg.path.goal == (9, 7)
        assert fast.path.steps == leg.path.steps

    def test_tier_windowed_when_full_blows_budget(self):
        grid = corridor(30)
        cdt = ConflictDetectionTable()
        blockade(cdt, (20, 0), until=300)
        config = PlannerConfig(max_search_expansions=500, search_horizon=8)
        leg = make_chain(grid, cdt, config).plan_leg(0, (0, 0), (29, 0))
        assert leg.tier == TIER_WINDOWED
        assert not leg.complete
        # Executed prefix: exactly the window, fully conflict-checked.
        assert leg.path.start_time == 0 and leg.path.end_time == 8
        assert leg.path.goal == (8, 0)
        assert leg.commit_until == 8
        # The chain reports both searches' stats for absorption.
        assert len(leg.search_stats) == 2

    def test_tier_windowed_completes_within_window(self):
        # The full tier fails but the goal sits inside the window: the
        # windowed plan is complete, no replan needed.
        grid = corridor(30)
        cdt = ConflictDetectionTable()
        heuristics = HeuristicFieldCache(grid)

        def always_fails(t, source, goal):
            raise PathNotFoundError(source, goal, "forced fallback")

        chain = FallbackChain(grid=grid, reservation=cdt,
                              heuristics=heuristics,
                              config=PlannerConfig(search_horizon=12,
                                                   free_flow=False),
                              full_search=always_fails,
                              finisher_factory=lambda goal: (None, 0))
        leg = chain.plan_leg(0, (0, 0), (10, 0))
        assert leg.tier == TIER_WINDOWED
        assert leg.complete
        assert leg.path.goal == (10, 0)
        assert leg.path.end_time == 10

    def test_tier_wait_boxed_commits_only_start(self):
        grid = corridor(5)
        cdt = ConflictDetectionTable()
        for cell in [(1, 0), (2, 0), (3, 0)]:
            blockade(cdt, cell, until=6)
        before = cdt.n_reservations
        config = PlannerConfig()
        leg = make_chain(grid, cdt, config).plan_leg(0, (2, 0), (4, 0))
        assert leg.tier == TIER_WAIT
        assert not leg.complete
        # Waits precisely until the robot's cell is first free again.
        assert leg.path.steps == Path.waiting((2, 0), 0, 7).steps
        # Boxed wait: only the start step may be committed — the rest of
        # the wait overlaps traffic already reserved through the cell.
        assert leg.commit_until == 0

    def test_tier_wait_free_run_is_committed(self):
        grid = corridor(5)
        cdt = ConflictDetectionTable()
        # Neighbours blocked for ages, own cell free: searches blow a
        # tiny budget, the robot legally holds position.
        blockade(cdt, (1, 0), until=100)
        blockade(cdt, (3, 0), until=100)
        config = PlannerConfig(max_search_expansions=3,
                               fallback_wait_ticks=8)
        chain = make_chain(grid, cdt, config)
        leg = chain.plan_leg(0, (2, 0), (4, 0))
        assert leg.tier == TIER_WAIT
        assert leg.path.steps == Path.waiting((2, 0), 0, 8).steps
        assert leg.commit_until is None  # whole wait conflict-free
        chain_committed_own_cell = not cdt.is_free(5, (2, 0))
        assert not chain_committed_own_cell  # commit happens in the planner

    def test_unreachable_goal_fails_fast(self):
        # A disconnected floor must still raise immediately: no amount
        # of waiting/replanning conjures a corridor, and looping to the
        # simulator's max_ticks would bury the real error.
        grid = Grid(10, 3, blocked=[(5, y) for y in range(3)])
        config = PlannerConfig(max_search_expansions=500)
        chain = make_chain(grid, ConflictDetectionTable(), config)
        with pytest.raises(PathNotFoundError):
            chain.plan_leg(0, (0, 0), (9, 0))

    def test_chain_is_deterministic(self):
        grid = corridor(30)
        config = PlannerConfig(max_search_expansions=500, search_horizon=8)

        def run():
            cdt = ConflictDetectionTable()
            blockade(cdt, (20, 0), until=300)
            return make_chain(grid, cdt, config).plan_leg(0, (0, 0), (29, 0))

        first, second = run(), run()
        assert first.path.steps == second.path.steps
        assert first.tier == second.tier


class TestWindowedCommits:
    def moving_path(self):
        return Path.from_cells([(0, 0), (1, 0), (2, 0), (3, 0), (4, 0)],
                               start_time=0)

    @pytest.mark.parametrize("make_table", [
        ConflictDetectionTable, lambda: SpatiotemporalGraph(Grid(6, 3))])
    def test_horizon_bounds_vertices_and_edges(self, make_table):
        table = make_table()
        table.reserve_path(self.moving_path(), 2)
        # Vertices at t <= 2 committed, beyond not.
        assert not table.is_free(1, (1, 0))
        assert not table.is_free(2, (2, 0))
        assert table.is_free(3, (3, 0))
        assert table.is_free(4, (4, 0))
        # Edge departing t=1 (arrives t=2) committed: the swap is caught.
        assert not table.edge_free(1, (2, 0), (1, 0))
        # Edge departing t=2 (arrives t=3) is beyond the window.
        assert table.edge_free(2, (3, 0), (2, 0))

    @pytest.mark.parametrize("make_table", [
        ConflictDetectionTable, lambda: SpatiotemporalGraph(Grid(6, 3))])
    def test_no_horizon_commits_everything(self, make_table):
        table = make_table()
        table.reserve_path(self.moving_path())
        for t in range(5):
            assert not table.is_free(t, (t, 0))

    def test_recommit_on_horizon_advance(self):
        # The windowed pipeline's re-commit: the continuation leg planned
        # at the horizon re-reserves from where the prefix stopped.
        table = ConflictDetectionTable()
        table.reserve_path(self.moving_path(), 2)
        continuation = Path.from_cells([(2, 0), (3, 0), (4, 0)],
                                       start_time=2)
        table.reserve_path(continuation, 4)
        assert not table.is_free(3, (3, 0))
        assert not table.is_free(4, (4, 0))


class TestTruncateAt:
    def test_prefix(self):
        path = Path.from_cells([(0, 0), (1, 0), (2, 0)], start_time=5)
        prefix = path.truncate_at(6)
        assert prefix.steps == ((5, 0, 0), (6, 1, 0))

    def test_beyond_end_is_identity(self):
        path = Path.from_cells([(0, 0), (1, 0)], start_time=0)
        assert path.truncate_at(99) is path

    def test_before_start_rejected(self):
        path = Path.from_cells([(0, 0), (1, 0)], start_time=5)
        with pytest.raises(ConflictError):
            path.truncate_at(4)


class TestFinisherTotalWaitCap:
    def test_total_wait_cap_declines_degenerate_tails(self):
        grid = corridor(5)
        cdt = ConflictDetectionTable()
        blockade(cdt, (1, 0), until=40)   # first hop waits ~40 ticks
        blockade(cdt, (2, 0), until=100)  # second hop waits ~60 more
        cells = ((0, 0), (1, 0), (2, 0))
        # Each step stays under the per-step cap, so only the total cap
        # can catch the degenerate tail.
        generous = follow_with_waits(cdt, cells, 0, max_wait_per_step=64,
                                     max_total_wait=1000)
        assert generous is not None and generous[-1][1:] == (2, 0)
        assert follow_with_waits(cdt, cells, 0, max_wait_per_step=64) is None


class ForcedWindowedNTP(NaiveTaskPlanner):
    """NTP whose full tier always fails — every leg goes windowed.

    Callers must pass a config with ``free_flow=False``: the tier-0 fast
    path would otherwise serve the uncongested legs before the sabotaged
    full tier is ever consulted.
    """

    def _find_leg(self, t, source, goal):
        raise PathNotFoundError(source, goal, "forced windowed tier")


class TestHorizonReplanEngine:
    def test_partial_legs_drain_through_horizon_replans(self):
        scenario = make_mini(n_items=30)
        state, items = scenario.build()
        planner = ForcedWindowedNTP(state, PlannerConfig(search_horizon=4,
                                               free_flow=False))
        config = SimulationConfig(collect_paths=True)
        result = Simulation(state, planner, items, config).run()

        assert result.metrics.items_processed == 30
        stats = planner.stats
        assert stats.legs_full == 0
        assert stats.legs_windowed > 0
        assert stats.horizon_replans > 0
        assert stats.legs_planned == (stats.legs_full + stats.legs_windowed
                                      + stats.legs_wait)
        assert result.metrics.fallback_view() == {
            "windowed_legs": stats.legs_windowed,
            "wait_legs": stats.legs_wait,
            "horizon_replans": stats.horizon_replans,
        }
        # Every executed leg was conflict-checked end to end: no
        # *cross-robot* conflicts among the collected prefixes and
        # continuations (same-robot consecutive legs share their boundary
        # vertex by construction, and picker cells are the documented
        # off-grid queue buffer — the same filter the integration-suite
        # audit applies).
        picker_cells = {p.location for p in state.pickers}
        cross = [c for c in find_conflicts(result.paths)
                 if result.path_owners[c.first] != result.path_owners[c.second]
                 and c.cell not in picker_cells]
        assert cross == []
        # No leg overruns the window it was planned under.
        for path in result.paths:
            assert path.duration <= 4

    def test_windowed_run_matches_full_run_outcome(self):
        # On the uncongested mini floor the windowed pipeline must fulfil
        # the same missions (robot/rack pairing and order may shift with
        # leg timing, but the workload drains completely either way).
        scenario = make_mini(n_items=30)
        state, items = scenario.build()
        full_result = Simulation(
            state, NaiveTaskPlanner(state), items, SimulationConfig()).run()
        state2, items2 = scenario.build()
        windowed_result = Simulation(
            state2, ForcedWindowedNTP(state2,
                                      PlannerConfig(search_horizon=6,
                                                    free_flow=False)),
            items2, SimulationConfig()).run()
        assert (windowed_result.metrics.items_processed
                == full_result.metrics.items_processed)
        assert (windowed_result.metrics.missions_completed
                == full_result.metrics.missions_completed)


class TestLegacyEngineGuard:
    def test_frozen_engine_rejects_partial_legs(self):
        # The frozen per-tick engine predates horizon replans; handing
        # it a planner that emits partial legs must fail loudly, not
        # silently teleport robots through stage transitions.
        from repro.errors import SimulationError
        from repro.sim._legacy_engine import LegacySimulation
        scenario = make_mini(n_items=20)
        state, items = scenario.build()
        planner = ForcedWindowedNTP(state, PlannerConfig(search_horizon=4,
                                               free_flow=False))
        with pytest.raises(SimulationError, match="partial"):
            LegacySimulation(state, planner, items).run()


class TestMissionResume:
    def make_mission(self):
        return Mission(robot_id=0, rack_id=0, batch=[object()],
                       path=Path.from_cells([(0, 0), (1, 0)], start_time=0),
                       stage=MissionStage.TO_RACK)

    def test_resume_keeps_stage(self):
        mission = self.make_mission()
        continuation = Path.from_cells([(1, 0), (2, 0)], start_time=1)
        mission.resume(1, continuation)
        assert mission.stage is MissionStage.TO_RACK
        assert mission.path is continuation

    def test_resume_rejects_discontinuous_leg(self):
        from repro.errors import SimulationError
        mission = self.make_mission()
        with pytest.raises(SimulationError):
            mission.resume(1, Path.from_cells([(0, 0), (1, 0)], start_time=1))
        with pytest.raises(SimulationError):
            mission.resume(2, Path.from_cells([(1, 0), (2, 0)], start_time=1))


class TestPlannersCliFilter:
    def test_parse_planners_canonicalises(self):
        from repro.experiments.matrix import parse_planners
        assert parse_planners("ntp, eatp") == ("NTP", "EATP")
        assert parse_planners("EATP,EATP") == ("EATP",)

    def test_parse_planners_rejects_unknown(self):
        from repro.experiments.matrix import parse_planners
        with pytest.raises(ConfigurationError, match="unknown planner"):
            parse_planners("NTP,WARP")

    def test_parse_planners_rejects_empty(self):
        from repro.experiments.matrix import parse_planners
        with pytest.raises(ConfigurationError):
            parse_planners(" , ")
