"""Unit tests for the rack-selection MDP (Sec. V-A, Eq. 4)."""

from repro.rl.mdp import (ACTION_REQUEST, ACTION_WAIT, RackObservation,
                          bucketize, request_cost, reward, transition,
                          wait_cost)


def obs(ap=0, ar=0, fp=0, d=10, batch=30, n=1):
    return RackObservation(picker_accumulated=ap, rack_accumulated=ar,
                           picker_finish_time=fp, distance_to_picker=d,
                           batch_processing_time=batch, n_pending=n)


class TestBucketize:
    def test_zero_state(self):
        assert bucketize(obs(), 60) == (0, 0)

    def test_bucket_boundaries(self):
        assert bucketize(obs(ap=59, ar=60), 60) == (0, 1)
        assert bucketize(obs(ap=60, ar=119), 60) == (1, 1)

    def test_bin_width_one_is_identity(self):
        assert bucketize(obs(ap=17, ar=23), 1) == (17, 23)


class TestTransition:
    def test_wait_keeps_state(self):
        assert transition((3, 4), ACTION_WAIT, 100, 60) == (3, 4)

    def test_request_advances_both_counters(self):
        assert transition((0, 0), ACTION_REQUEST, 120, 60) == (2, 2)

    def test_small_batch_may_stay_in_bucket(self):
        assert transition((1, 1), ACTION_REQUEST, 30, 60) == (1, 1)


class TestReward:
    def test_eq4_transport_dominated(self):
        # max{f_p, d} with f_p=0: the wait is the delivery distance.
        assert reward(obs(fp=0, d=25, batch=30)) == -(25 + 30)

    def test_eq4_queue_dominated(self):
        assert reward(obs(fp=500, d=25, batch=30)) == -(500 + 30)

    def test_reward_is_negative(self):
        assert reward(obs()) < 0


class TestDecisionCosts:
    def test_request_cost_drops_batch_term(self):
        assert request_cost(obs(fp=0, d=25, batch=999)) == -25
        assert request_cost(obs(fp=500, d=25, batch=999)) == -500

    def test_wait_cost_scales_with_pending(self):
        assert wait_cost(obs(n=1), weight=10) == -10
        assert wait_cost(obs(n=5), weight=10) == -50

    def test_wait_cost_weight(self):
        assert wait_cost(obs(n=2), weight=1) == -2

    def test_loaded_rack_near_slack_picker_favours_request(self):
        # Decision boundary: request when |τ| ≳ max{f_p, d} / weight.
        loaded = obs(fp=0, d=20, n=5)
        assert request_cost(loaded) > wait_cost(loaded, weight=10)

    def test_empty_rack_far_away_favours_wait(self):
        nearly_empty = obs(fp=0, d=30, n=1)
        assert wait_cost(nearly_empty, weight=10) > request_cost(nearly_empty)

    def test_busy_picker_discourages_request(self):
        busy = obs(fp=400, d=20, n=10)
        idle = obs(fp=0, d=20, n=10)
        assert request_cost(busy) < request_cost(idle)
