"""Golden-trace regression suite.

One small, fully deterministic run per planner — metrics, the bottleneck
trace, and the completed mission order — is frozen as JSON under
``tests/golden/``.  The suite replays each run and diffs the serialised
result field by field, so *any* behavioural drift in selection, routing,
queueing or accounting shows up as a named-field diff rather than a
mysteriously shifted makespan three experiments later.

Wall-clock timing fields are excluded (see
:func:`repro.sim.serialize.deterministic_view`); everything else must
match exactly.

After an *intentional* behaviour change, regenerate with::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --update-golden
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List

import pytest

from repro.config import SimulationConfig
from repro.planners import PLANNERS
from repro.sim.serialize import deterministic_view, result_to_dict
from repro.workloads.datasets import make_mini
from repro.experiments.harness import run_planner

GOLDEN_DIR = Path(__file__).parent / "golden"

#: The frozen workload: small enough to run all five planners in seconds,
#: large enough that batching, queueing and return legs all occur.
GOLDEN_SEED = 20220513
GOLDEN_ITEMS = 48

#: Purely additive accounting keys introduced *after* a golden may have
#: been frozen.  A stored file that predates such a key simply never
#: recorded it; every behavioural field (makespan, missions, trace,
#: checkpoints, fallback tiers) still compares exactly, so the comparison
#: ignores the key rather than forcing a regeneration that would change
#: no behaviour.  Freshly written goldens include the key and pin it.
ADDITIVE_METRIC_KEYS = ("fastpath", "batch")


def comparable(golden: Dict[str, Any], actual: Dict[str, Any]) -> Dict[str, Any]:
    """``actual`` restricted to the keys ``golden`` was frozen with."""
    trimmed = dict(actual)
    trimmed["metrics"] = dict(actual["metrics"])
    for key in ADDITIVE_METRIC_KEYS:
        if key not in golden.get("metrics", {}):
            trimmed["metrics"].pop(key, None)
    return trimmed


def golden_payload(planner: str) -> Dict[str, Any]:
    """Run one planner on the frozen workload; deterministic fields only."""
    scenario = make_mini(seed=GOLDEN_SEED, n_items=GOLDEN_ITEMS)
    result = run_planner(
        scenario, planner,
        sim_config=SimulationConfig(record_bottleneck_trace=True))
    return deterministic_view(result_to_dict(result))


def _flatten(payload: Any, prefix: str = "") -> Dict[str, Any]:
    """``{"metrics.makespan": 812, "missions[3].rack_id": 7, ...}``."""
    flat: Dict[str, Any] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            flat.update(_flatten(value, f"{prefix}.{key}" if prefix else key))
    elif isinstance(payload, list):
        for i, value in enumerate(payload):
            flat.update(_flatten(value, f"{prefix}[{i}]"))
    else:
        flat[prefix] = payload
    return flat


def field_diff(expected: Any, actual: Any, limit: int = 12) -> List[str]:
    """Human-readable per-field differences between two payloads."""
    exp, act = _flatten(expected), _flatten(actual)
    lines = []
    for key in sorted(set(exp) | set(act)):
        if exp.get(key, "<absent>") != act.get(key, "<absent>"):
            lines.append(f"  {key}: golden={exp.get(key, '<absent>')!r} "
                         f"current={act.get(key, '<absent>')!r}")
        if len(lines) >= limit:
            lines.append("  ... (diff truncated)")
            break
    return lines


@pytest.mark.parametrize("planner", sorted(PLANNERS))
def test_golden_trace(planner, update_golden):
    path = GOLDEN_DIR / f"{planner.lower()}.json"
    actual = golden_payload(planner)
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        pytest.skip(f"rewrote {path.name}")
    assert path.is_file(), (
        f"missing golden file {path}; run pytest with --update-golden")
    golden = json.loads(path.read_text(encoding="utf-8"))
    actual = comparable(golden, actual)
    if golden != actual:
        diff = "\n".join(field_diff(golden, actual))
        pytest.fail(f"{planner} diverged from its golden trace:\n{diff}")


def test_golden_files_have_no_timing_fields():
    # Goldens must stay comparable across machines: wall-clock keys are
    # stripped at write time and must never sneak back in.
    for path in sorted(GOLDEN_DIR.glob("*.json")):
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload == deterministic_view(payload), (
            f"{path.name} contains wall-clock timing fields")


def test_golden_covers_every_planner():
    missing = [name for name in PLANNERS
               if not (GOLDEN_DIR / f"{name.lower()}.json").is_file()]
    assert not missing, (
        f"planners without golden traces: {missing}; run --update-golden")
