"""Unit tests for the warehouse grid."""

import numpy as np
import pytest

from repro.errors import InvalidLocationError
from repro.types import manhattan
from repro.warehouse.grid import Grid


class TestConstruction:
    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(InvalidLocationError):
            Grid(0, 5)
        with pytest.raises(InvalidLocationError):
            Grid(5, -1)

    def test_rejects_out_of_bounds_blocked_cell(self):
        with pytest.raises(InvalidLocationError):
            Grid(4, 4, blocked=[(4, 0)])

    def test_n_cells(self):
        assert Grid(7, 3).n_cells == 21


class TestPassability:
    def test_in_bounds_corners(self, small_grid):
        assert small_grid.in_bounds((0, 0))
        assert small_grid.in_bounds((9, 7))
        assert not small_grid.in_bounds((10, 0))
        assert not small_grid.in_bounds((0, -1))

    def test_blocked_cells_not_passable(self, blocked_grid):
        assert not blocked_grid.passable((5, 0))
        assert blocked_grid.passable((5, 6))

    def test_require_passable_raises(self, blocked_grid):
        with pytest.raises(InvalidLocationError):
            blocked_grid.require_passable((5, 0))
        blocked_grid.require_passable((0, 0))  # no raise

    def test_blocked_cells_property_immutable_view(self, blocked_grid):
        blocked = blocked_grid.blocked_cells
        assert (5, 0) in blocked
        assert isinstance(blocked, frozenset)


class TestNeighbours:
    def test_interior_cell_has_four(self, small_grid):
        assert len(list(small_grid.neighbours((4, 4)))) == 4

    def test_corner_cell_has_two(self, small_grid):
        assert len(list(small_grid.neighbours((0, 0)))) == 2

    def test_neighbours_exclude_blocked(self, blocked_grid):
        neighbours = set(blocked_grid.neighbours((4, 3)))
        assert (5, 3) not in neighbours
        assert (3, 3) in neighbours

    def test_cells_iterates_passable_only(self, blocked_grid):
        cells = list(blocked_grid.cells())
        assert len(cells) == blocked_grid.n_cells - 6
        assert (5, 0) not in cells


class TestDistances:
    def test_bfs_matches_manhattan_on_open_grid(self, small_grid):
        dist = small_grid.bfs_distances((2, 3))
        for x in range(small_grid.width):
            for y in range(small_grid.height):
                assert dist[x, y] == manhattan((2, 3), (x, y))

    def test_bfs_detours_around_wall(self, blocked_grid):
        dist = blocked_grid.bfs_distances((4, 0))
        # (6, 0) is just across the wall: must detour through the gap at y=6.
        assert dist[6, 0] > manhattan((4, 0), (6, 0))

    def test_bfs_marks_unreachable(self):
        # Wall the whole column: right side unreachable from left.
        grid = Grid(5, 3, blocked=[(2, y) for y in range(3)])
        dist = grid.bfs_distances((0, 0))
        assert dist[4, 0] == -1

    def test_connected(self, blocked_grid):
        assert blocked_grid.connected((0, 0), (9, 7))
        grid = Grid(5, 3, blocked=[(2, y) for y in range(3)])
        assert not grid.connected((0, 0), (4, 0))
        assert not grid.connected((2, 0), (0, 0))

    def test_bfs_requires_passable_source(self, blocked_grid):
        with pytest.raises(InvalidLocationError):
            blocked_grid.bfs_distances((5, 0))


class TestEquality:
    def test_equal_grids(self):
        assert Grid(4, 4, blocked=[(1, 1)]) == Grid(4, 4, blocked=[(1, 1)])

    def test_unequal_blocked_sets(self):
        assert Grid(4, 4) != Grid(4, 4, blocked=[(1, 1)])

    def test_hashable(self):
        assert len({Grid(4, 4), Grid(4, 4)}) == 1
