"""Property tests for the cached exact heuristic fields.

A* optimality (and the bit-identity claims of the packed core) rest on the
fields being *admissible* (never overestimate the true remaining distance)
and *consistent* (change by at most 1 across an edge).  Both are checked
exhaustively on a mix of open and obstructed floors, alongside the cache
bookkeeping the planners rely on.
"""

import pytest

from repro.pathfinding.astar import shortest_distance
from repro.pathfinding.cdt import ConflictDetectionTable
from repro.pathfinding.heuristics import HeuristicField, HeuristicFieldCache
from repro.pathfinding.st_astar import find_path
from repro.types import manhattan
from repro.warehouse.grid import Grid

GRIDS = {
    "open": Grid(9, 7),
    "walled": Grid(9, 7, blocked=[(4, y) for y in range(7) if y != 5]),
    "pillars": Grid(10, 10, blocked=[(x, y) for x in (2, 5, 8)
                                     for y in (2, 5, 8)]),
}


@pytest.fixture(params=sorted(GRIDS))
def grid(request):
    return GRIDS[request.param]


def passable_cells(grid):
    return list(grid.cells())


class TestFieldProperties:
    def test_zero_at_goal(self, grid):
        for goal in passable_cells(grid)[::5]:
            assert HeuristicField(grid, goal)(goal) == 0

    def test_admissible_everywhere(self, grid):
        goal = passable_cells(grid)[-1]
        field = HeuristicField(grid, goal)
        for cell in passable_cells(grid):
            h = field(cell)
            if h > grid.n_cells:
                continue  # unreachable marker
            assert h == shortest_distance(grid, cell, goal)

    def test_dominates_manhattan(self, grid):
        """Exact fields are at least as tight as the paper's h-value."""
        goal = passable_cells(grid)[0]
        field = HeuristicField(grid, goal)
        for cell in passable_cells(grid):
            assert field(cell) >= manhattan(cell, goal)

    def test_consistent_across_edges(self, grid):
        goal = passable_cells(grid)[-1]
        field = HeuristicField(grid, goal)
        infinity = grid.n_cells + 1
        for cell in passable_cells(grid):
            h = field(cell)
            for nxt in grid.neighbours(cell):
                hn = field(nxt)
                if h == infinity or hn == infinity:
                    # Adjacent passable cells reach the goal together or
                    # not at all.
                    assert h == infinity and hn == infinity
                else:
                    # |h(a) - h(b)| <= cost(a, b) = 1.
                    assert abs(h - hn) <= 1

    def test_unreachable_marked_infinite(self):
        grid = Grid(6, 4, blocked=[(3, y) for y in range(4)])
        field = HeuristicField(grid, (0, 0))
        assert field((5, 0)) == grid.n_cells + 1

    def test_wrong_grid_field_rejected(self):
        # Same cell count, different height — silent misindexing trap.
        field = HeuristicField(Grid(9, 7), (0, 0))
        other = Grid(7, 9)
        with pytest.raises(ValueError, match="different grid"):
            find_path(other, ConflictDetectionTable(), (0, 0), (6, 8), 0,
                      heuristic=field)

    def test_flat_layout_matches_callable(self, grid):
        goal = passable_cells(grid)[-1]
        field = HeuristicField(grid, goal)
        for (x, y) in passable_cells(grid):
            assert field.flat[x * grid.height + y] == field((x, y))


class TestFieldCache:
    def test_field_reused_per_goal(self, grid):
        cache = HeuristicFieldCache(grid)
        goal = passable_cells(grid)[0]
        assert cache.field(goal) is cache.field(goal)
        assert len(cache) == 1

    def test_distance_helper(self, grid):
        cache = HeuristicFieldCache(grid)
        cells = passable_cells(grid)
        source, goal = cells[0], cells[-1]
        assert cache.distance(source, goal) == shortest_distance(
            grid, source, goal)

    def test_memory_reported(self, grid):
        cache = HeuristicFieldCache(grid)
        assert cache.memory_bytes() == 0
        field = cache.field(passable_cells(grid)[0])
        # One int32 buffer: 4 B per cell + header — and the ledger must
        # charge the bytes the buffer actually holds.
        assert cache.memory_bytes() == 64 + 4 * grid.n_cells
        assert field.nbytes == 64 + 4 * len(field.flat)
