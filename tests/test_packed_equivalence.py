"""Equivalence of the packed-integer search core with the frozen seed.

The packed rewrite is a pure mechanical-sympathy change: same expansion
order, same tie breaking, same answers.  These tests pin that down against
the verbatim seed implementations kept in ``repro.pathfinding._legacy`` —
on open floors the paths must be bit-identical (Manhattan equals the exact
field there), and on obstructed floors the lengths must match (the exact
field reorders expansions but cannot change optimal cost).
"""

import random

import pytest

from repro.experiments.harness import run_planner
from repro.pathfinding._kernel import build_and_load
from repro.pathfinding.st_astar import search_kernel_name, set_search_kernel
from repro.pathfinding._legacy import (LegacyConflictDetectionTable,
                                       LegacySpatiotemporalGraph,
                                       legacy_find_path,
                                       seed_planner_patches)
from repro.pathfinding.cdt import ConflictDetectionTable
from repro.pathfinding.conflicts import is_conflict_free
from repro.pathfinding.heuristics import HeuristicFieldCache
from repro.pathfinding.paths import Path
from repro.pathfinding.spatiotemporal_graph import SpatiotemporalGraph
from repro.pathfinding.st_astar import SearchStats, find_path
from repro.warehouse.grid import Grid
from repro.workloads.datasets import make_mini

#: Both search cores must hold the seed equivalences: the pure-python
#: packed rewrite AND (where a compiler is available) the native kernel.
KERNELS = ["python"] + (["compiled"] if build_and_load() else [])


@pytest.fixture(params=KERNELS)
def kernel(request):
    previous = search_kernel_name()
    set_search_kernel(request.param)
    yield request.param
    set_search_kernel(previous)


OPEN_GRID = Grid(14, 11)
WALLED_GRID = Grid(14, 11, blocked=[(7, y) for y in range(11) if y not in (2, 9)])

ENDPOINTS = [((0, 0), (13, 10)), ((13, 0), (0, 10)), ((2, 5), (12, 5)),
             ((5, 9), (9, 1)), ((0, 10), (13, 10))]


def crossing_traffic(table, width, n=8):
    for i in range(n):
        row = 1 + (3 * i) % 9
        cells = [(x, row) for x in range(width)]
        table.reserve_path(Path.from_cells(cells, start_time=2 * i))


def both_tables(grid):
    """A (new, legacy) CDT pair loaded with identical traffic."""
    new, old = ConflictDetectionTable(), LegacyConflictDetectionTable()
    crossing_traffic(new, grid.width)
    crossing_traffic(old, grid.width)
    return new, old


class TestSearchEquivalence:
    @pytest.mark.parametrize("source,goal", ENDPOINTS)
    def test_open_grid_bit_identical(self, kernel, source, goal):
        new_table, old_table = both_tables(OPEN_GRID)
        new_stats, old_stats = SearchStats(), SearchStats()
        ours = find_path(OPEN_GRID, new_table, source, goal, 0,
                         stats=new_stats)
        seed = legacy_find_path(OPEN_GRID, old_table, source, goal, 0,
                                stats=old_stats)
        assert ours.steps == seed.steps
        assert new_stats.expansions == old_stats.expansions
        assert new_stats.generated == old_stats.generated
        assert new_stats.peak_open == old_stats.peak_open

    @pytest.mark.parametrize("source,goal", ENDPOINTS)
    def test_obstructed_grid_same_length(self, kernel, source, goal):
        new_table, old_table = both_tables(WALLED_GRID)
        cache = HeuristicFieldCache(WALLED_GRID)
        ours = find_path(WALLED_GRID, new_table, source, goal, 0,
                         heuristic=cache.field(goal))
        seed = legacy_find_path(WALLED_GRID, old_table, source, goal, 0)
        assert ours.duration == seed.duration
        assert ours.source == source and ours.goal == goal

    def test_sequential_planning_stays_conflict_free(self, kernel):
        table = ConflictDetectionTable()
        paths = []
        for source, goal in ENDPOINTS:
            path = find_path(OPEN_GRID, table, source, goal, 0)
            table.reserve_path(path)
            paths.append(path)
        assert is_conflict_free(paths)

    def test_manhattan_default_matches_exact_field_on_open_grid(self, kernel):
        table = ConflictDetectionTable()
        cache = HeuristicFieldCache(OPEN_GRID)
        default = find_path(OPEN_GRID, table, (0, 0), (13, 10), 0)
        fielded = find_path(OPEN_GRID, table, (0, 0), (13, 10), 0,
                            heuristic=cache.field((13, 10)))
        assert default.steps == fielded.steps


def random_paths(grid, rng, n=25):
    """Conflict-oblivious random walks to stress reservation bookkeeping."""
    paths = []
    for __ in range(n):
        x, y = rng.randrange(grid.width), rng.randrange(grid.height)
        t0 = rng.randrange(40)
        cells = [(x, y)]
        for __ in range(rng.randrange(3, 14)):
            moves = [c for c in grid.neighbours(cells[-1])] + [cells[-1]]
            cells.append(moves[rng.randrange(len(moves))])
        paths.append(Path.from_cells(cells, start_time=t0))
    return paths


@pytest.mark.parametrize("make_new,make_old", [
    (ConflictDetectionTable, LegacyConflictDetectionTable),
    (lambda: SpatiotemporalGraph(OPEN_GRID),
     lambda: LegacySpatiotemporalGraph(OPEN_GRID)),
], ids=["cdt", "stgraph"])
class TestReservationEquivalence:
    def probe_everywhere(self, new, old, grid, horizon=60):
        for t in range(horizon):
            for x in range(0, grid.width, 2):
                for y in range(0, grid.height, 2):
                    assert new.is_free(t, (x, y)) == old.is_free(t, (x, y))
                    for nxt in grid.neighbours((x, y)):
                        assert (new.move_allowed(t, (x, y), nxt)
                                == old.move_allowed(t, (x, y), nxt))

    def test_probes_match_before_and_after_purge(self, make_new, make_old):
        rng = random.Random(7)
        paths = random_paths(OPEN_GRID, rng)
        new, old = make_new(), make_old()
        for path in paths:
            new.reserve_path(path)
            old.reserve_path(path)
        self.probe_everywhere(new, old, OPEN_GRID)
        for floor in (5, 17, 17, 40):
            new.purge_before(floor)
            old.purge_before(floor)
            self.probe_everywhere(new, old, OPEN_GRID)

    def test_cdt_introspection_matches(self, make_new, make_old):
        new, old = make_new(), make_old()
        if not isinstance(new, ConflictDetectionTable):
            pytest.skip("introspection counters are CDT-only")
        rng = random.Random(11)
        for path in random_paths(OPEN_GRID, rng, n=12):
            new.reserve_path(path)
            old.reserve_path(path)
        assert new.n_reservations == old.n_reservations
        assert new.n_cells_touched == old.n_cells_touched
        assert new.n_ticks_live > 0
        new.purge_before(20)
        old.purge_before(20)
        assert new.n_reservations == old.n_reservations
        assert new.n_cells_touched == old.n_cells_touched
        new.purge_before(10 ** 6)
        assert new.n_ticks_live == 0


class TestEndToEndEquivalence:
    """A full mini simulation must be unchanged by the packed rewrite."""

    @pytest.mark.parametrize("planner", ["NTP", "EATP"])
    def test_makespan_identical_to_seed_stack(self, kernel, planner, monkeypatch):
        scenario = make_mini(n_items=40)
        packed = run_planner(scenario, planner)

        # Full seed configuration: tuple core, per-leg Manhattan closures,
        # pre-bucketing reservation structures.
        for target, name, replacement in seed_planner_patches():
            monkeypatch.setattr(target, name, replacement)
        seed = run_planner(scenario, planner)

        assert packed.metrics.makespan == seed.metrics.makespan
        assert (packed.metrics.items_processed
                == seed.metrics.items_processed)
