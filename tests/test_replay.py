"""Record/replay harness tests (the bench_engine determinism witness)."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.errors import SimulationError
from repro.planners import PLANNERS
from repro.sim._legacy_engine import LegacySimulation
from repro.sim.engine import Simulation
from repro.sim.replay import RecordingPlanner, ReplayLog, ReplayPlanner
from repro.sim.serialize import deterministic_view, result_to_dict
from repro.workloads.datasets import make_mini

SCENARIO = make_mini(seed=11, n_items=36)
CONFIG = SimulationConfig(record_bottleneck_trace=True)


def record(planner_name="NTP"):
    state, items = SCENARIO.build()
    recorder = RecordingPlanner(PLANNERS[planner_name](state))
    result = Simulation(state, recorder, items, CONFIG).run()
    return recorder.log, result


def replay(log, engine_cls):
    state, items = SCENARIO.build()
    result = engine_cls(state, ReplayPlanner(state, log), items, CONFIG).run()
    return result


class TestReplay:
    def test_replay_reproduces_recorded_run(self):
        log, recorded = record()
        replayed = replay(log, Simulation)
        recorded_view = deterministic_view(result_to_dict(recorded))
        replayed_view = deterministic_view(result_to_dict(replayed))
        # A replay has no reservation structure (memory reads zero) and
        # plans no legs (the tier-0 fast-path counters read zero); every
        # other field must match exactly.
        for view in (recorded_view, replayed_view):
            view["metrics"]["peak_memory_bytes"] = 0
            for checkpoint in view["metrics"]["checkpoints"]:
                checkpoint["memory_bytes"] = 0
            view["metrics"]["fastpath"] = {}
        assert replayed_view == recorded_view

    def test_both_engines_replay_identically(self):
        log, __ = record()
        legacy_view = deterministic_view(
            result_to_dict(replay(log, LegacySimulation)))
        event_view = deterministic_view(
            result_to_dict(replay(log, Simulation)))
        assert legacy_view == event_view

    def test_log_captures_every_leg(self):
        log, recorded = record()
        # pickup legs live inside recorded schemes; delivery + return
        # legs (2 per mission) go through plan_leg.
        assert log.n_legs == 2 * recorded.metrics.missions_completed

    def test_replay_is_single_use(self):
        log, __ = record()
        state, items = SCENARIO.build()
        planner = ReplayPlanner(state, log)
        Simulation(state, planner, items, CONFIG).run()
        state2, items2 = SCENARIO.build()
        planner.state = state2  # rebind the consumed planner to a new world
        with pytest.raises(SimulationError, match="replay diverged"):
            # Legs were consumed by the first replay: the second raises at
            # its first plan_leg call instead of desynchronising.
            Simulation(state2, planner, items2, CONFIG).run()

    def test_divergence_raises_immediately(self):
        state, items = SCENARIO.build()
        planner = ReplayPlanner(state, ReplayLog())
        # An empty log answers every plan() with an empty scheme, so the
        # run never dispatches and hits the max_ticks guard instead of
        # silently desynchronising.
        with pytest.raises(SimulationError):
            Simulation(state, planner, items,
                       SimulationConfig(max_ticks=200)).run()
