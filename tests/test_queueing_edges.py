"""FCFS queueing edge cases and the event-calendar picker queries.

Satellites of the event-driven engine PR: same-tick multi-rack enqueue
ordering at one picker, a batch completing on the exact tick another
starts, ``queued_processing`` conservation across a full run, and the
span-advance/next-event helpers the calendar is built on.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.errors import SimulationError
from repro.planners import PLANNERS
from repro.sim.engine import Simulation
from repro.sim.missions import MissionStage
from repro.sim.queueing import (advance_picker_span, enqueue_rack,
                                process_picker_tick,
                                ticks_until_next_picker_event)
from repro.warehouse.entities import Item, Picker, Rack
from repro.warehouse.layout import build_layout
from repro.warehouse.state import WarehouseState


def picker():
    return Picker(picker_id=0, location=(5, 9))


def racks(n=4):
    return [Rack(rack_id=i, home=(i, 0), picker_id=0) for i in range(n)]


class TestSameTickEnqueueOrdering:
    def test_same_tick_enqueues_process_in_arrival_order(self):
        """Racks delivered within one tick keep their delivery order."""
        p, rs = picker(), racks()
        batch_times = {2: 3, 0: 2, 1: 4}
        for rack_id in (2, 0, 1):  # delivery order within the tick
            enqueue_rack(p, rack_id, batch_times[rack_id])
        assert list(p.queue) == [2, 0, 1]
        assert p.queued_processing == 9

        processed = []
        t = 0
        while p.current_rack is not None or p.queue:
            started = []
            process_picker_tick(p, t, batch_times, rs, started)
            processed.extend(started)
            t += 1
        assert processed == [2, 0, 1]
        assert t == 9  # FCFS: total occupancy is the sum of batch times

    def test_completion_tick_equals_next_start_tick(self):
        """A batch completing at tick t frees the station; the next rack
        starts on tick t+1 — never the same tick, never later."""
        p, rs = picker(), racks()
        batch_times = {0: 2, 1: 3}
        enqueue_rack(p, 0, 2)
        enqueue_rack(p, 1, 3)
        process_picker_tick(p, 0, batch_times, rs)          # rack 0 starts
        completion = process_picker_tick(p, 1, batch_times, rs)
        assert completion is not None and completion.rack_id == 0
        assert completion.completed_at == 2
        assert p.current_rack is None
        started = []
        process_picker_tick(p, 2, batch_times, rs, started)
        assert started == [1]                                # exact next tick
        assert p.current_rack == 1

    def test_one_tick_batch_starts_and_completes_together(self):
        p, rs = picker(), racks()
        enqueue_rack(p, 3, 1)
        started = []
        completion = process_picker_tick(p, 5, {3: 1}, rs, started)
        assert started == [3]
        assert completion is not None
        assert completion.rack_id == 3 and completion.completed_at == 6


class TestCalendarQueries:
    def test_busy_picker_reports_remaining(self):
        p, rs = picker(), racks()
        enqueue_rack(p, 0, 5)
        process_picker_tick(p, 0, {0: 5}, rs)
        assert ticks_until_next_picker_event(p) == 4

    def test_free_picker_with_queue_pops_next_tick(self):
        p = picker()
        enqueue_rack(p, 0, 5)
        assert ticks_until_next_picker_event(p) == 1

    def test_inert_picker_has_no_event(self):
        assert ticks_until_next_picker_event(picker()) is None

    def test_span_advance_matches_tick_loop(self):
        batch_times = {0: 10}
        spanned, ticked = picker(), picker()
        rs_a, rs_b = racks(), racks()
        for p, rs in ((spanned, rs_a), (ticked, rs_b)):
            enqueue_rack(p, 0, 10)
            process_picker_tick(p, 0, batch_times, rs)
        advance_picker_span(spanned, rs_a, 6)
        for t in range(1, 7):
            process_picker_tick(ticked, t, batch_times, rs_b)
        assert spanned.remaining_current == ticked.remaining_current
        assert spanned.busy_ticks == ticked.busy_ticks
        assert spanned.accumulated_processing == ticked.accumulated_processing
        assert (rs_a[0].accumulated_processing
                == rs_b[0].accumulated_processing)

    def test_span_refuses_to_skip_a_completion(self):
        p, rs = picker(), racks()
        enqueue_rack(p, 0, 3)
        process_picker_tick(p, 0, {0: 3}, rs)
        with pytest.raises(SimulationError):
            advance_picker_span(p, rs, 2)  # tick 2 would complete the batch

    def test_span_refuses_to_skip_a_pop(self):
        p, rs = picker(), racks()
        enqueue_rack(p, 0, 3)
        with pytest.raises(SimulationError):
            advance_picker_span(p, rs, 1)

    def test_idle_span_is_free(self):
        p, rs = picker(), racks()
        advance_picker_span(p, rs, 1000)
        assert p.busy_ticks == 0 and p.accumulated_processing == 0


class TestQueuedProcessingConservation:
    def test_conservation_across_a_full_run(self):
        """Σ enqueued batch time == Σ started batch time == Σ busy ticks,
        and ``queued_processing`` returns to zero when the run drains."""
        layout = build_layout(16, 12, n_racks=6, n_pickers=2)
        state = WarehouseState.from_layout(layout, n_robots=3,
                                           rack_to_picker=[0] * 6)
        items = [Item(i, i % 6, arrival=(i // 6) * 9, processing_time=7)
                 for i in range(18)]
        planner = PLANNERS["NTP"](state)
        result = Simulation(state, planner, items,
                            SimulationConfig()).run()

        total_batch_time = sum(m.batch_processing_time
                               for m in result.missions)
        assert total_batch_time == 18 * 7
        assert state.pickers[0].busy_ticks == total_batch_time
        assert state.pickers[0].accumulated_processing == total_batch_time
        for p in state.pickers:
            assert p.queued_processing == 0
            assert p.remaining_current == 0
            assert p.current_rack is None
            assert not p.queue
        # Every mission ran the full pipeline.
        assert all(m.stage is MissionStage.DONE for m in result.missions)
