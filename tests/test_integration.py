"""Integration tests: full simulations across all planners.

These run every planner end-to-end on small worlds and check the
cross-cutting guarantees: workload conservation, conflict-freedom between
robots, invariant preservation, and the relative behaviours the paper's
evaluation rests on.
"""

import pytest

from repro.config import PlannerConfig, QLearningConfig, SimulationConfig
from repro.pathfinding.conflicts import find_conflicts
from repro.planners import PLANNERS
from repro.sim.engine import Simulation
from repro.sim.missions import MissionStage
from repro.warehouse.entities import RackPhase, RobotState
from repro.workloads.datasets import make_mini

ALL_PLANNERS = sorted(PLANNERS)


def run_mini(name, n_items=60, seed=1, sim_config=None):
    scenario = make_mini(seed=seed, n_items=n_items)
    state, items = scenario.build()
    planner = PLANNERS[name](state)
    result = Simulation(state, planner, items, sim_config).run()
    return state, result


class TestEveryPlannerDrains:
    @pytest.mark.parametrize("name", ALL_PLANNERS)
    def test_all_items_processed(self, name):
        state, result = run_mini(name)
        assert result.metrics.items_processed == 60
        assert result.metrics.makespan > 0

    @pytest.mark.parametrize("name", ALL_PLANNERS)
    def test_world_returns_to_rest(self, name):
        state, result = run_mini(name)
        assert all(r.phase is RackPhase.STORED for r in state.racks)
        assert all(r.state is RobotState.IDLE for r in state.robots)
        assert all(not p.queue and not p.is_busy for p in state.pickers)
        state.check_invariants()

    @pytest.mark.parametrize("name", ALL_PLANNERS)
    def test_every_mission_done(self, name):
        __, result = run_mini(name)
        assert all(m.stage is MissionStage.DONE for m in result.missions)

    @pytest.mark.parametrize("name", ALL_PLANNERS)
    def test_item_conservation_across_missions(self, name):
        __, result = run_mini(name)
        item_ids = [item.item_id for m in result.missions for item in m.batch]
        assert sorted(item_ids) == list(range(60))


class TestConflictFreedom:
    @pytest.mark.parametrize("name", ALL_PLANNERS)
    def test_no_cross_robot_conflicts(self, name):
        state, result = run_mini(
            name, sim_config=SimulationConfig(collect_paths=True))
        conflicts = find_conflicts(result.paths)
        # Conflicts between a robot's own consecutive legs share a vertex
        # by construction, and picker cells are the documented off-grid
        # queue buffer; only other *cross-robot* clashes violate Def. 5.
        picker_cells = {p.location for p in state.pickers}
        cross = [c for c in conflicts
                 if result.path_owners[c.first] != result.path_owners[c.second]
                 and c.cell not in picker_cells]
        assert cross == []

    @pytest.mark.parametrize("name", ALL_PLANNERS)
    def test_paths_respect_grid(self, name):
        state, result = run_mini(
            name, sim_config=SimulationConfig(collect_paths=True))
        for path in result.paths:
            for (__, x, y) in path:
                assert state.grid.passable((x, y))


class TestMakespanSanity:
    def test_makespan_at_least_processing_bound(self):
        scenario = make_mini(n_items=40)
        state, items = scenario.build()
        total_processing = sum(i.processing_time for i in items)
        bound = total_processing / len(state.pickers)
        planner = PLANNERS["NTP"](state)
        result = Simulation(state, planner, items).run()
        assert result.metrics.makespan >= bound

    def test_makespan_at_least_last_arrival(self):
        scenario = make_mini(n_items=40)
        state, items = scenario.build()
        planner = PLANNERS["LEF"](state)
        result = Simulation(state, planner, items).run()
        assert result.metrics.makespan >= max(i.arrival for i in items)

    def test_rates_in_unit_interval(self):
        for name in ALL_PLANNERS:
            __, result = run_mini(name, n_items=40)
            assert 0.0 <= result.metrics.ppr <= 1.0
            assert 0.0 <= result.metrics.rwr <= 1.0


class TestAdaptivePlannersCompetitive:
    def test_atp_beats_ntp_on_bursty_load(self):
        # A workload with hot racks and pacing: adaptive batching must not
        # lose to greedy dispatch by any meaningful margin, and usually
        # wins.  (A strict win is asserted at dataset scale in the
        # benchmark harness; at mini scale we allow a small tolerance.)
        from repro.workloads.scenario import ItemStreamSpec, ScenarioSpec
        scenario = ScenarioSpec(
            name="burst", width=24, height=16, n_racks=16, n_pickers=3,
            n_robots=3,
            items=ItemStreamSpec.of(
                "surge", n_items=150, n_racks=16, base_rate=0.2,
                peak_rate=1.2, ramp_fraction=0.25, seed=5,
                processing_low=5, processing_high=12))
        makespans = {}
        for name in ("NTP", "ATP"):
            state, items = scenario.build()
            planner = PLANNERS[name](state)
            makespans[name] = Simulation(
                state, planner, items).run().metrics.makespan
        assert makespans["ATP"] <= makespans["NTP"] * 1.05

    def test_eatp_efficiency_gains_over_atp(self):
        results = {}
        for name in ("ATP", "EATP"):
            scenario = make_mini(n_items=120)
            state, items = scenario.build()
            planner = PLANNERS[name](state)
            result = Simulation(state, planner, items).run()
            results[name] = (result.metrics, planner)
        atp_metrics, __ = results["ATP"]
        eatp_metrics, eatp_planner = results["EATP"]
        # The headline efficiency claims, at mini scale: the CDT stays
        # below the dense time-expanded graph.
        assert (eatp_planner.reservation.memory_bytes()
                < results["ATP"][1].reservation.memory_bytes())

    def test_deterministic_reruns(self):
        a = run_mini("EATP")[1].metrics.makespan
        b = run_mini("EATP")[1].metrics.makespan
        assert a == b


class TestRobotMotionPhysics:
    @pytest.mark.parametrize("name", ["NTP", "EATP"])
    def test_robot_positions_follow_paths(self, name):
        # Re-run with path collection and verify each robot's position
        # history is consistent with unit-speed motion.
        scenario = make_mini(n_items=30)
        state, items = scenario.build()
        planner = PLANNERS[name](state)
        sim = Simulation(state, planner, items,
                         SimulationConfig(collect_paths=True))
        result = sim.run()
        for path in result.paths:
            steps = list(path)
            for (t0, x0, y0), (t1, x1, y1) in zip(steps, steps[1:]):
                assert t1 == t0 + 1
                assert abs(x1 - x0) + abs(y1 - y0) <= 1
