"""Unit tests for spatiotemporal A* (conflict-free single-robot search)."""

import pytest

from repro.errors import PathNotFoundError
from repro.pathfinding.cdt import ConflictDetectionTable
from repro.pathfinding.conflicts import is_conflict_free
from repro.pathfinding.paths import Path
from repro.pathfinding.st_astar import SearchStats, find_path
from repro.types import manhattan
from repro.warehouse.grid import Grid


@pytest.fixture
def grid():
    return Grid(12, 10)


@pytest.fixture
def cdt():
    return ConflictDetectionTable()


class TestUnconstrainedSearch:
    def test_same_cell(self, grid, cdt):
        path = find_path(grid, cdt, (3, 3), (3, 3), start_time=7)
        assert path.steps == ((7, 3, 3),)

    def test_optimal_when_empty(self, grid, cdt):
        path = find_path(grid, cdt, (0, 0), (6, 4), start_time=0)
        assert path.duration == manhattan((0, 0), (6, 4))

    def test_start_time_respected(self, grid, cdt):
        path = find_path(grid, cdt, (0, 0), (3, 0), start_time=42)
        assert path.start_time == 42
        assert path.end_time == 45


class TestConflictAvoidance:
    def test_avoids_reserved_vertex(self, grid, cdt):
        # Another robot sits on (1, 0) at t=1 — ours must wait or detour.
        cdt.reserve_path(Path.from_cells([(1, 0), (1, 0)], start_time=0))
        ours = find_path(grid, cdt, (0, 0), (2, 0), start_time=0)
        blocked = Path.from_cells([(1, 0), (1, 0)], start_time=0)
        assert is_conflict_free([ours, blocked])

    def test_avoids_swap(self, grid, cdt):
        other = Path.from_cells([(2, 0), (1, 0), (0, 0)], start_time=0)
        cdt.reserve_path(other)
        ours = find_path(grid, cdt, (0, 0), (3, 0), start_time=0)
        assert is_conflict_free([ours, other])

    def test_corridor_forces_wait(self, cdt):
        # Single-file corridor: y=0 row of a 5x1-ish grid with walls.
        grid = Grid(5, 3, blocked=[(x, 1) for x in range(1, 4)])
        other = Path.from_cells([(2, 0), (3, 0), (4, 0)], start_time=0)
        cdt.reserve_path(other)
        ours = find_path(grid, cdt, (0, 0), (4, 0), start_time=0)
        assert is_conflict_free([ours, other])
        assert ours.duration >= 4

    def test_many_sequential_paths_mutually_conflict_free(self, grid, cdt):
        paths = []
        endpoints = [((0, 0), (9, 0)), ((9, 0), (0, 0)), ((0, 5), (9, 5)),
                     ((9, 5), (0, 5)), ((5, 0), (5, 9))]
        for source, goal in endpoints:
            path = find_path(grid, cdt, source, goal, start_time=0)
            cdt.reserve_path(path)
            paths.append(path)
        assert is_conflict_free(paths)


class TestBudgetsAndStats:
    def test_expansion_budget_raises(self, grid, cdt):
        with pytest.raises(PathNotFoundError):
            find_path(grid, cdt, (0, 0), (11, 9), start_time=0,
                      max_expansions=3)

    def test_stats_filled(self, grid, cdt):
        stats = SearchStats()
        find_path(grid, cdt, (0, 0), (6, 4), start_time=0, stats=stats)
        assert stats.expansions > 0
        assert stats.generated > 0
        assert stats.peak_open > 0
        assert not stats.cache_finished


class TestDeepSearchWorkspaceCap:
    """Sparse deep searches must not grow the flat arrays without bound.

    The bucket-queue workspace costs 24 B per (layer, cell) pair whether
    or not a state is touched, so a robot out-waiting a multi-thousand-
    tick blockade — a few thousand expansions, but one time layer per
    wait tick — must restart on the O(generated) heap core instead of
    retaining hundreds of megabytes, with bit-identical results.
    """

    def make_problem(self):
        # A corridor whose only gap is camped for ~1500 ticks: the full
        # search's optimal plan waits next to the gap, one layer per
        # tick, far past the workspace layer cap.
        grid = Grid(8, 1)
        cdt = ConflictDetectionTable()
        cdt.reserve_path(Path.waiting((4, 0), 0, 1500))
        return grid, cdt

    def test_deep_search_matches_legacy(self):
        from repro.pathfinding._legacy import (LegacyConflictDetectionTable,
                                               legacy_find_path)
        grid, cdt = self.make_problem()
        stats = SearchStats()
        path = find_path(grid, cdt, (0, 0), (7, 0), 0, stats=stats)
        legacy_cdt = LegacyConflictDetectionTable()
        legacy_cdt.reserve_path(Path.waiting((4, 0), 0, 1500))
        legacy_stats = SearchStats()
        legacy = legacy_find_path(grid, legacy_cdt, (0, 0), (7, 0), 0,
                                  stats=legacy_stats)
        assert path.steps == legacy.steps
        assert path.duration > 1500  # it really out-waited the blockade
        assert stats.expansions == legacy_stats.expansions
        assert stats.generated == legacy_stats.generated
        assert stats.peak_open == legacy_stats.peak_open

    def test_workspace_stays_bounded(self):
        from repro.pathfinding.st_astar import (_MAX_LAYERS, _WORKSPACES,
                                                _workspace)
        grid, cdt = self.make_problem()
        find_path(grid, cdt, (0, 0), (7, 0), 0)
        ws = _workspace(grid)
        assert ws.size <= _MAX_LAYERS * grid.n_cells
        for other in _WORKSPACES.values():
            assert other.size <= _MAX_LAYERS * other.n_cells
            assert not other.active


class TestFinisherHook:
    def test_finisher_short_circuits(self, grid, cdt):
        calls = []

        def finisher(cell, t):
            calls.append((cell, t))
            # Walk straight along x toward (6, 0).
            steps = [(t, cell[0], cell[1])]
            x = cell[0]
            while x < 6:
                x += 1
                steps.append((steps[-1][0] + 1, x, 0))
            return steps

        stats = SearchStats()
        path = find_path(grid, cdt, (0, 0), (6, 0), start_time=0,
                         finisher=finisher, finisher_trigger=3, stats=stats)
        assert stats.cache_finished
        assert calls, "finisher should have been invoked"
        assert path.goal == (6, 0)
        assert path.duration == 6  # still optimal here

    def test_finisher_returning_none_continues(self, grid, cdt):
        stats = SearchStats()
        path = find_path(grid, cdt, (0, 0), (6, 0), start_time=0,
                         finisher=lambda cell, t: None, finisher_trigger=3,
                         stats=stats)
        assert not stats.cache_finished
        assert path.goal == (6, 0)

    def test_trigger_zero_disables(self, grid, cdt):
        def exploding(cell, t):  # pragma: no cover - must never run
            raise AssertionError("finisher must not fire with trigger 0")

        path = find_path(grid, cdt, (0, 0), (6, 0), start_time=0,
                         finisher=exploding, finisher_trigger=0)
        assert path.goal == (6, 0)
