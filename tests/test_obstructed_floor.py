"""Robustness tests on obstructed floors.

The default layouts are open (robots drive beneath racks), but the grid
supports structural obstacles — pillars, walls — and the whole stack must
stay correct on them: Manhattan stays admissible, spatiotemporal A*
detours, and full simulations drain with all conflict guarantees intact.
"""

import pytest

from repro.config import SimulationConfig
from repro.errors import LayoutError
from repro.pathfinding.conflicts import find_conflicts
from repro.planners import PLANNERS
from repro.sim.engine import Simulation
from repro.warehouse.entities import Item
from repro.warehouse.grid import Grid
from repro.warehouse.layout import WarehouseLayout
from repro.warehouse.state import WarehouseState


def walled_layout():
    """A 20×14 floor split by a wall with two gaps.

    Racks on the left block, pickers at the bottom; the wall at x=10
    forces every delivery to thread one of the gaps at y=2 / y=11.
    """
    wall = [(10, y) for y in range(14) if y not in (2, 11)]
    grid = Grid(20, 14, blocked=wall)
    rack_homes = tuple((x, y) for y in (1, 2) for x in (2, 3, 4, 5))
    picker_locations = ((15, 13), (18, 13))
    layout = WarehouseLayout(grid=grid, rack_homes=rack_homes,
                             picker_locations=picker_locations)
    layout.validate()
    return layout


def walled_world(n_robots=2):
    state = WarehouseState.from_layout(walled_layout(), n_robots=n_robots)
    items = [Item(i, i % 8, arrival=i * 4, processing_time=4)
             for i in range(24)]
    return state, items


class TestLayoutValidation:
    def test_rack_on_wall_rejected(self):
        wall = [(10, y) for y in range(14)]
        grid = Grid(20, 14, blocked=wall)
        layout = WarehouseLayout(grid=grid, rack_homes=((10, 3),),
                                 picker_locations=((0, 13),))
        with pytest.raises(LayoutError):
            layout.validate()

    def test_walled_layout_valid(self):
        walled_layout()


class TestSimulationOnWalledFloor:
    @pytest.mark.parametrize("name", sorted(PLANNERS))
    def test_drains_and_respects_walls(self, name):
        state, items = walled_world()
        planner = PLANNERS[name](state)
        config = SimulationConfig(collect_paths=True)
        result = Simulation(state, planner, items, config).run()
        assert result.metrics.items_processed == len(items)
        for path in result.paths:
            for (__, x, y) in path:
                assert state.grid.passable((x, y)), (
                    f"{name} routed through the wall at ({x},{y})")

    @pytest.mark.parametrize("name", ["NTP", "EATP"])
    def test_paths_detour_through_gaps(self, name):
        state, items = walled_world(n_robots=1)
        planner = PLANNERS[name](state)
        config = SimulationConfig(collect_paths=True)
        result = Simulation(state, planner, items, config).run()
        from repro.types import manhattan
        crossing = [p for p in result.paths
                    if p.source[0] < 10 and p.goal[0] > 10]
        assert crossing, "expected wall-crossing legs"
        # Any wall crossing must pass a gap cell.
        gaps = {(10, 2), (10, 11)}
        for path in crossing:
            assert gaps & set(path.spatial_cells()), (
                "crossing leg avoided both gaps?!")

    @pytest.mark.parametrize("name", sorted(PLANNERS))
    def test_no_cross_robot_conflicts_in_the_bottleneck(self, name):
        # Two robots squeezing through the same gaps is exactly where
        # conflict handling earns its keep.
        state, items = walled_world(n_robots=2)
        planner = PLANNERS[name](state)
        config = SimulationConfig(collect_paths=True)
        result = Simulation(state, planner, items, config).run()
        conflicts = find_conflicts(result.paths)
        # Picker cells are the documented off-grid queue buffer (robots
        # park there between delivery and return, outside the reservation
        # space), so only clashes elsewhere violate Def. 5.
        picker_cells = {p.location for p in state.pickers}
        cross = [c for c in conflicts
                 if result.path_owners[c.first] != result.path_owners[c.second]
                 and c.cell not in picker_cells]
        assert cross == []
