"""Unit tests for the static K-nearest-racks index (flip requesting)."""

import pytest

from repro.errors import ConfigurationError
from repro.types import manhattan
from repro.warehouse.knn import StaticRackKNN


HOMES = [(1, 1), (5, 1), (9, 1), (1, 5), (5, 5), (9, 5)]


class TestConstruction:
    def test_rejects_k_zero(self):
        with pytest.raises(ConfigurationError):
            StaticRackKNN(HOMES, 12, 8, k=0)

    def test_rejects_empty_homes(self):
        with pytest.raises(ConfigurationError):
            StaticRackKNN([], 12, 8, k=1)

    def test_k_clamped_to_rack_count(self):
        index = StaticRackKNN(HOMES, 12, 8, k=50)
        assert index.k == len(HOMES)


class TestNearest:
    def test_nearest_matches_brute_force(self):
        index = StaticRackKNN(HOMES, 12, 8, k=3)
        for cell in [(0, 0), (6, 4), (11, 7), (5, 1)]:
            got = index.nearest(cell)
            expected = sorted(range(len(HOMES)),
                              key=lambda r: (manhattan(cell, HOMES[r]),))
            # Distances may tie; compare distance multisets.
            got_d = [manhattan(cell, HOMES[r]) for r in got]
            exp_d = [manhattan(cell, HOMES[r]) for r in expected[:3]]
            assert got_d == exp_d

    def test_nearest_first_is_own_cell_if_home(self):
        index = StaticRackKNN(HOMES, 12, 8, k=2)
        assert index.nearest((5, 5))[0] == 4

    def test_out_of_bounds_rejected(self):
        index = StaticRackKNN(HOMES, 12, 8, k=2)
        with pytest.raises(ConfigurationError):
            index.nearest((12, 0))


class TestNearestWhere:
    def test_returns_first_matching(self):
        index = StaticRackKNN(HOMES, 12, 8, k=6)
        got = index.nearest_where((0, 0), lambda r: r >= 3)
        # Nearest homes from (0,0): 0 (d=2), 3 (d=6), 1 (d=6)... predicate
        # skips 0; the first accepted must be at distance >= 6.
        assert got is not None and got >= 3

    def test_returns_none_when_no_match(self):
        index = StaticRackKNN(HOMES, 12, 8, k=3)
        assert index.nearest_where((0, 0), lambda r: False) is None


class TestMemory:
    def test_memory_scales_with_k(self):
        small = StaticRackKNN(HOMES, 12, 8, k=1)
        large = StaticRackKNN(HOMES, 12, 8, k=6)
        assert large.memory_bytes() > small.memory_bytes()
