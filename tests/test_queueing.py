"""Unit tests for FCFS picker queue processing."""

import pytest

from repro.errors import SimulationError
from repro.sim.queueing import enqueue_rack, process_picker_tick
from repro.warehouse.entities import Picker, Rack


def picker():
    return Picker(picker_id=0, location=(5, 9))


def racks(n=3):
    return [Rack(rack_id=i, home=(i, 0), picker_id=0) for i in range(n)]


class TestEnqueue:
    def test_enqueue_updates_queue_and_estimate(self):
        p = picker()
        enqueue_rack(p, 1, batch_time=12)
        assert list(p.queue) == [1]
        assert p.queued_processing == 12
        assert p.finish_time_estimate == 12

    def test_rejects_non_positive_batch(self):
        with pytest.raises(SimulationError):
            enqueue_rack(picker(), 1, batch_time=0)


class TestProcessing:
    def test_idle_picker_no_queue_does_nothing(self):
        p = picker()
        assert process_picker_tick(p, 0, {}, racks()) is None
        assert p.busy_ticks == 0

    def test_pops_and_processes_first_tick(self):
        p = picker()
        enqueue_rack(p, 1, batch_time=3)
        started = []
        result = process_picker_tick(p, 0, {1: 3}, racks(), started)
        assert started == [1]
        assert result is None
        assert p.current_rack == 1
        assert p.remaining_current == 2
        assert p.busy_ticks == 1
        assert p.queued_processing == 0

    def test_completion_reported_with_time(self):
        p = picker()
        enqueue_rack(p, 1, batch_time=2)
        process_picker_tick(p, 0, {1: 2}, racks())
        completion = process_picker_tick(p, 1, {1: 2}, racks())
        assert completion is not None
        assert completion.rack_id == 1
        assert completion.completed_at == 2
        assert p.current_rack is None

    def test_fcfs_order(self):
        p = picker()
        enqueue_rack(p, 1, batch_time=1)
        enqueue_rack(p, 2, batch_time=1)
        batch_times = {1: 1, 2: 1}
        first = process_picker_tick(p, 0, batch_times, racks())
        second = process_picker_tick(p, 1, batch_times, racks())
        assert first.rack_id == 1
        assert second.rack_id == 2

    def test_accumulated_counters_update(self):
        rs = racks()
        p = picker()
        enqueue_rack(p, 2, batch_time=2)
        process_picker_tick(p, 0, {2: 2}, rs)
        process_picker_tick(p, 1, {2: 2}, rs)
        assert p.accumulated_processing == 2
        assert rs[2].accumulated_processing == 2

    def test_missing_batch_time_raises(self):
        p = picker()
        enqueue_rack(p, 1, batch_time=5)
        with pytest.raises(SimulationError):
            process_picker_tick(p, 0, {}, racks())

    def test_single_tick_batch_completes_immediately(self):
        p = picker()
        enqueue_rack(p, 0, batch_time=1)
        completion = process_picker_tick(p, 4, {0: 1}, racks())
        assert completion is not None
        assert completion.completed_at == 5
