"""Unit tests for both reservation structures (ST graph and CDT).

The two implementations must agree on every answer — the CDT is a
space optimisation, not a semantics change — so most tests run against
both via parametrisation.
"""

import pytest

from repro.pathfinding.cdt import (ConflictDetectionTable,
                                   ShardedConflictDetectionTable)
from repro.pathfinding.paths import Path
from repro.pathfinding.spatiotemporal_graph import (
    ShardedSpatiotemporalGraph, SpatiotemporalGraph)
from repro.warehouse.grid import Grid


@pytest.fixture(params=["stgraph", "cdt", "sharded-stgraph", "sharded-cdt"])
def table(request):
    # ``tile_bits=2`` puts the sharded variants' 4×4 tiles well inside
    # the 12×10 test grid, so these cases cross tile boundaries too.
    if request.param == "stgraph":
        return SpatiotemporalGraph(Grid(12, 10))
    if request.param == "sharded-stgraph":
        return ShardedSpatiotemporalGraph(tile_bits=2)
    if request.param == "sharded-cdt":
        return ShardedConflictDetectionTable(tile_bits=2)
    return ConflictDetectionTable()


def reserve(table, cells, t0=0):
    path = Path.from_cells(cells, start_time=t0)
    table.reserve_path(path)
    return path


class TestVertexReservations:
    def test_initially_free(self, table):
        assert table.is_free(0, (3, 3))
        assert table.is_free(99, (0, 0))

    def test_reserved_vertex_not_free(self, table):
        reserve(table, [(1, 1), (2, 1), (2, 2)], t0=5)
        assert not table.is_free(5, (1, 1))
        assert not table.is_free(6, (2, 1))
        assert not table.is_free(7, (2, 2))

    def test_same_cell_other_time_free(self, table):
        reserve(table, [(1, 1), (2, 1)], t0=5)
        assert table.is_free(4, (1, 1))
        assert table.is_free(7, (1, 1))


class TestEdgeReservations:
    def test_swap_edge_blocked(self, table):
        reserve(table, [(1, 1), (2, 1)], t0=0)
        assert not table.edge_free(0, (2, 1), (1, 1))

    def test_same_direction_edge_free(self, table):
        reserve(table, [(1, 1), (2, 1)], t0=0)
        assert table.edge_free(0, (1, 1), (2, 1))

    def test_swap_other_time_free(self, table):
        reserve(table, [(1, 1), (2, 1)], t0=0)
        assert table.edge_free(3, (2, 1), (1, 1))

    def test_wait_reserves_no_edge(self, table):
        reserve(table, [(1, 1), (1, 1), (2, 1)], t0=0)
        assert table.edge_free(0, (2, 1), (1, 1))
        assert not table.edge_free(1, (2, 1), (1, 1))


class TestMoveAllowed:
    def test_move_into_reserved_vertex_blocked(self, table):
        reserve(table, [(3, 3), (3, 4)], t0=0)
        assert not table.move_allowed(0, (2, 4), (3, 4))

    def test_swap_blocked(self, table):
        reserve(table, [(3, 3), (3, 4)], t0=0)
        assert not table.move_allowed(0, (3, 4), (3, 3))

    def test_wait_checks_vertex_only(self, table):
        reserve(table, [(3, 3), (3, 4)], t0=0)
        assert not table.move_allowed(0, (3, 4), (3, 4))
        assert table.move_allowed(5, (3, 4), (3, 4))


class TestPurge:
    def test_purged_times_report_free(self, table):
        reserve(table, [(1, 1), (2, 1), (2, 2)], t0=0)
        table.purge_before(2)
        assert table.is_free(0, (1, 1))
        assert table.is_free(1, (2, 1))
        assert not table.is_free(2, (2, 2))

    def test_purge_drops_edges(self, table):
        reserve(table, [(1, 1), (2, 1)], t0=0)
        table.purge_before(5)
        assert table.edge_free(0, (2, 1), (1, 1))

    def test_purge_is_monotone(self, table):
        reserve(table, [(1, 1), (2, 1)], t0=10)
        table.purge_before(20)
        table.purge_before(5)  # lower floor must not resurrect anything
        assert table.is_free(10, (1, 1))

    def test_reserving_below_floor_is_fully_ignored(self, table):
        """Pre-floor steps leave no trace — vertices *and* edges.

        (The seed kept pre-floor edges while dropping their vertices, so a
        purged-time probe could report an occupied edge between two free
        vertices; the bucketed structures treat both uniformly.)
        """
        table.purge_before(17)
        reserve(table, [(1, 1), (2, 1), (2, 2)], t0=10)
        assert table.is_free(10, (1, 1))
        assert table.is_free(11, (2, 1))
        assert table.edge_free(10, (2, 1), (1, 1))
        assert table.move_allowed(10, (2, 1), (1, 1))

    def test_purge_reduces_memory(self, table):
        for t0 in range(0, 60, 3):
            reserve(table, [(1, 1), (2, 1), (3, 1)], t0=t0)
        before = table.memory_bytes()
        table.purge_before(50)
        assert table.memory_bytes() < before


class TestMemoryShape:
    def test_stgraph_materialises_dense_layers(self):
        grid = Grid(20, 20)
        graph = SpatiotemporalGraph(grid)
        reserve(graph, [(0, 0), (1, 0)], t0=50)
        # A literal time-expanded graph has every layer up to t=51.
        assert graph.n_layers >= 51

    def test_cdt_stores_only_occupied(self):
        cdt = ConflictDetectionTable()
        reserve(cdt, [(0, 0), (1, 0)], t0=50)
        assert cdt.n_reservations == 2
        assert cdt.n_cells_touched == 2

    def test_cdt_smaller_than_stgraph_at_scale(self):
        grid = Grid(60, 40)
        graph = SpatiotemporalGraph(grid)
        cdt = ConflictDetectionTable()
        cells = [(x, 5) for x in range(30)]
        for t0 in (0, 40, 80):
            reserve(graph, cells, t0=t0)
            reserve(cdt, cells, t0=t0)
        assert cdt.memory_bytes() < graph.memory_bytes()


class TestUnreserve:
    def test_unreserved_vertices_report_free(self, table):
        path = reserve(table, [(1, 1), (2, 1), (2, 2)], t0=5)
        table.unreserve_path(path)
        assert table.is_free(5, (1, 1))
        assert table.is_free(6, (2, 1))
        assert table.is_free(7, (2, 2))

    def test_unreserved_edges_report_free(self, table):
        path = reserve(table, [(1, 1), (2, 1)], t0=0)
        table.unreserve_path(path)
        assert table.edge_free(0, (2, 1), (1, 1))
        assert table.move_allowed(0, (2, 1), (1, 1))

    def test_unreserve_honours_horizon(self, table):
        path = Path.from_cells([(1, 1), (2, 1), (2, 2), (3, 2)], 0)
        table.reserve_path(path, 1)
        table.unreserve_path(path, 1)
        assert table.is_free(0, (1, 1))
        assert table.is_free(1, (2, 1))
        # Steps past the horizon were never stored, and stay free.
        assert table.is_free(2, (2, 2))

    def test_unreserve_leaves_other_paths_alone(self, table):
        keep = reserve(table, [(5, 5), (6, 5)], t0=3)
        drop = reserve(table, [(1, 1), (2, 1)], t0=3)
        table.unreserve_path(drop)
        assert not table.is_free(3, (5, 5))
        assert not table.is_free(4, (6, 5))
        assert table.is_free(3, (1, 1))
        assert table.audit_path(keep) is False

    def test_unreserve_below_floor_is_ignored(self, table):
        path = reserve(table, [(1, 1), (2, 1)], t0=10)
        table.purge_before(20)
        before = table.live_counts()
        table.unreserve_path(path)
        assert table.live_counts() == before

    def test_unreserve_bumps_mutation_stamp(self, table):
        path = reserve(table, [(1, 1), (2, 1)], t0=0)
        stamp = table.mutation_stamp
        table.unreserve_path(path)
        assert table.mutation_stamp == stamp + 1
