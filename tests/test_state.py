"""Unit tests for WarehouseState construction, indexes, and invariants."""

import pytest

from repro.errors import SimulationError
from repro.warehouse.entities import Item, RackPhase, RobotState
from repro.warehouse.state import WarehouseState


class TestFromLayout:
    def test_entity_counts(self, small_layout):
        state = WarehouseState.from_layout(small_layout, n_robots=3)
        assert len(state.racks) == small_layout.n_racks
        assert len(state.pickers) == small_layout.n_pickers
        assert len(state.robots) == 3

    def test_robots_park_beneath_first_racks(self, small_layout):
        state = WarehouseState.from_layout(small_layout, n_robots=2)
        assert state.robots[0].location == small_layout.rack_homes[0]
        assert state.robots[1].location == small_layout.rack_homes[1]

    def test_round_robin_picker_assignment(self, small_layout):
        state = WarehouseState.from_layout(small_layout, n_robots=1)
        assignments = [rack.picker_id for rack in state.racks]
        assert assignments == [i % 2 for i in range(small_layout.n_racks)]

    def test_explicit_assignment(self, small_layout):
        mapping = [1] * small_layout.n_racks
        state = WarehouseState.from_layout(small_layout, n_robots=1,
                                           rack_to_picker=mapping)
        assert all(rack.picker_id == 1 for rack in state.racks)

    def test_rejects_zero_robots(self, small_layout):
        with pytest.raises(SimulationError):
            WarehouseState.from_layout(small_layout, n_robots=0)

    def test_rejects_more_robots_than_racks(self, small_layout):
        with pytest.raises(SimulationError):
            WarehouseState.from_layout(small_layout,
                                       n_robots=small_layout.n_racks + 1)

    def test_rejects_bad_assignment_length(self, small_layout):
        with pytest.raises(SimulationError):
            WarehouseState.from_layout(small_layout, n_robots=1,
                                       rack_to_picker=[0])

    def test_rejects_bad_picker_id(self, small_layout):
        mapping = [99] * small_layout.n_racks
        with pytest.raises(SimulationError):
            WarehouseState.from_layout(small_layout, n_robots=1,
                                       rack_to_picker=mapping)


class TestQueries:
    def test_idle_robots_initially_all(self, small_state):
        assert len(small_state.idle_robots()) == 2

    def test_selectable_racks_need_pending_items(self, small_state):
        assert small_state.selectable_racks() == []
        small_state.deliver_item(Item(0, 3, 0, 10))
        selectable = small_state.selectable_racks()
        assert [r.rack_id for r in selectable] == [3]

    def test_in_transit_rack_not_selectable(self, small_state):
        small_state.deliver_item(Item(0, 3, 0, 10))
        small_state.racks[3].phase = RackPhase.IN_TRANSIT
        assert small_state.selectable_racks() == []

    def test_racks_of_picker(self, small_state):
        racks = small_state.racks_of_picker(0)
        assert all(r.picker_id == 0 for r in racks)
        assert len(racks) == 4  # 8 racks round-robin over 2 pickers

    def test_picker_of_rack(self, small_state):
        assert small_state.picker_of_rack(0).picker_id == 0
        assert small_state.picker_of_rack(1).picker_id == 1

    def test_pickers_with_work(self, small_state):
        assert small_state.pickers_with_work() == []
        small_state.deliver_item(Item(0, 2, 0, 10))  # rack 2 -> picker 0
        workers = small_state.pickers_with_work()
        assert [p.picker_id for p in workers] == [0]

    def test_total_pending_items(self, small_state):
        small_state.deliver_item(Item(0, 1, 0, 10))
        small_state.deliver_item(Item(1, 1, 0, 10))
        small_state.deliver_item(Item(2, 4, 0, 10))
        assert small_state.total_pending_items() == 3


class TestInvariants:
    def test_clean_state_passes(self, small_state):
        small_state.check_invariants()

    def test_idle_robot_with_rack_fails(self, small_state):
        small_state.robots[0].rack_id = 2
        with pytest.raises(SimulationError):
            small_state.check_invariants()

    def test_busy_robot_without_rack_fails(self, small_state):
        small_state.robots[0].state = RobotState.TO_RACK
        with pytest.raises(SimulationError):
            small_state.check_invariants()

    def test_rack_in_transit_unowned_fails(self, small_state):
        small_state.racks[0].phase = RackPhase.IN_TRANSIT
        with pytest.raises(SimulationError):
            small_state.check_invariants()

    def test_two_robots_one_rack_fails(self, small_state):
        for robot in small_state.robots:
            robot.state = RobotState.TO_RACK
            robot.rack_id = 0
        small_state.racks[0].phase = RackPhase.IN_TRANSIT
        with pytest.raises(SimulationError):
            small_state.check_invariants()

    def test_consistent_mission_passes(self, small_state):
        small_state.robots[0].state = RobotState.TO_RACK
        small_state.robots[0].rack_id = 0
        small_state.racks[0].phase = RackPhase.IN_TRANSIT
        small_state.check_invariants()

    def test_queued_stored_rack_fails(self, small_state):
        small_state.pickers[0].queue.append(0)
        with pytest.raises(SimulationError):
            small_state.check_invariants()
