"""Unit tests for the conflict definitions (paper Sec. II, Fig. 3)."""

from repro.pathfinding.conflicts import (Conflict, ConflictKind,
                                         find_conflicts, is_conflict_free,
                                         paths_conflict)
from repro.pathfinding.paths import Path


def P(cells, t0=0):
    return Path.from_cells(cells, start_time=t0)


class TestSingleGridConflict:
    def test_same_cell_same_time(self):
        a = P([(0, 0), (1, 0)])
        b = P([(2, 0), (1, 0)])
        conflicts = find_conflicts([a, b])
        assert len(conflicts) == 1
        assert conflicts[0].kind is ConflictKind.SINGLE_GRID
        assert conflicts[0].time == 1
        assert conflicts[0].cell == (1, 0)

    def test_same_cell_different_time_ok(self):
        a = P([(0, 0), (1, 0)])
        b = P([(1, 0), (2, 0)], t0=2)
        assert is_conflict_free([a, b])

    def test_crossing_paths_without_meeting_ok(self):
        a = P([(0, 0), (1, 0), (2, 0)])
        b = P([(1, 1), (1, 0)], t0=3)  # uses (1,0) later
        assert is_conflict_free([a, b])

    def test_stationary_overlap(self):
        a = Path.waiting((5, 5), 0, 3)
        b = P([(4, 5), (5, 5)])
        assert paths_conflict(a, b)


class TestInterGridConflict:
    def test_swap_detected(self):
        a = P([(0, 0), (1, 0)])
        b = P([(1, 0), (0, 0)])
        conflicts = find_conflicts([a, b])
        kinds = {c.kind for c in conflicts}
        assert ConflictKind.INTER_GRID in kinds

    def test_follow_is_not_swap(self):
        # b follows a one step behind: no swap, no overlap.
        a = P([(0, 0), (1, 0), (2, 0)])
        b = P([(-1, 0), (0, 0), (1, 0)])
        assert is_conflict_free([a, b])

    def test_swap_at_later_time(self):
        a = P([(0, 0), (0, 0), (1, 0)])
        b = P([(1, 0), (1, 0), (0, 0)])
        conflicts = find_conflicts([a, b])
        assert any(c.kind is ConflictKind.INTER_GRID for c in conflicts)

    def test_perpendicular_cross_without_swap_ok(self):
        a = P([(1, 0), (1, 1)])
        b = P([(0, 1), (1, 1)], t0=1)
        assert is_conflict_free([a, b])


class TestFindConflictsGeneral:
    def test_empty_input(self):
        assert find_conflicts([]) == []

    def test_single_path_never_conflicts(self):
        assert is_conflict_free([P([(0, 0), (1, 0), (1, 1)])])

    def test_indices_reported(self):
        a = P([(0, 0), (1, 0)])
        b = P([(5, 5), (5, 6)])
        c = P([(2, 0), (1, 0)])
        conflicts = find_conflicts([a, b, c])
        assert len(conflicts) == 1
        assert (conflicts[0].first, conflicts[0].second) == (0, 2)

    def test_three_way_collision_reports_pairs(self):
        a = P([(0, 0), (1, 0)])
        b = P([(2, 0), (1, 0)])
        c = P([(1, 1), (1, 0)])
        conflicts = find_conflicts([a, b, c])
        assert len(conflicts) >= 2
