"""Unit and behavioural tests for the simulation engine."""

import pytest

from repro.config import SimulationConfig
from repro.errors import SimulationError
from repro.planners import NaiveTaskPlanner
from repro.sim.engine import Simulation
from repro.sim.missions import MissionStage
from repro.warehouse.entities import Item, RackPhase, RobotState
from repro.warehouse.layout import build_layout
from repro.warehouse.state import WarehouseState

from tests.conftest import make_two_picker_state


def one_item_world(processing=4):
    state = make_two_picker_state(n_racks=6, n_robots=1)
    items = [Item(0, 5, arrival=0, processing_time=processing)]
    return state, items


class TestConstruction:
    def test_rejects_foreign_planner(self):
        state_a = make_two_picker_state()
        state_b = make_two_picker_state()
        planner = NaiveTaskPlanner(state_a)
        with pytest.raises(SimulationError):
            Simulation(state_b, planner, [Item(0, 0, 0, 1)])

    def test_rejects_empty_workload(self):
        state = make_two_picker_state()
        with pytest.raises(SimulationError):
            Simulation(state, NaiveTaskPlanner(state), [])


class TestSingleMission:
    def test_full_cycle_completes(self):
        state, items = one_item_world()
        result = Simulation(state, NaiveTaskPlanner(state), items).run()
        assert result.metrics.items_processed == 1
        assert result.metrics.missions_completed == 1
        assert result.missions[0].stage is MissionStage.DONE

    def test_rack_returns_home(self):
        state, items = one_item_world()
        home = state.racks[5].home
        Simulation(state, NaiveTaskPlanner(state), items).run()
        rack = state.racks[5]
        assert rack.phase is RackPhase.STORED
        assert rack.home == home
        assert rack.last_return > 0

    def test_robot_ends_idle_at_rack_home(self):
        state, items = one_item_world()
        Simulation(state, NaiveTaskPlanner(state), items).run()
        robot = state.robots[0]
        assert robot.state is RobotState.IDLE
        assert robot.rack_id is None
        assert robot.location == state.racks[5].home

    def test_makespan_covers_full_cycle(self):
        state, items = one_item_world(processing=4)
        result = Simulation(state, NaiveTaskPlanner(state), items).run()
        rack = state.racks[5]
        picker = state.pickers[rack.picker_id]
        # Lower bound: delivery + processing + return (pickup may be 0).
        from repro.types import manhattan
        d = manhattan(rack.home, picker.location)
        assert result.metrics.makespan >= 2 * d + 4

    def test_state_invariants_hold_after_run(self):
        state, items = one_item_world()
        Simulation(state, NaiveTaskPlanner(state), items).run()
        state.check_invariants()


class TestBatching:
    def test_items_waiting_on_same_rack_processed_in_one_batch(self):
        state = make_two_picker_state(n_racks=6, n_robots=1)
        items = [Item(i, 5, arrival=0, processing_time=3) for i in range(4)]
        result = Simulation(state, NaiveTaskPlanner(state), items).run()
        assert result.metrics.missions_completed == 1
        assert result.missions[0].n_items == 4

    def test_late_item_needs_second_mission(self):
        state = make_two_picker_state(n_racks=6, n_robots=1)
        items = [Item(0, 5, arrival=0, processing_time=3),
                 Item(1, 5, arrival=500, processing_time=3)]
        result = Simulation(state, NaiveTaskPlanner(state), items).run()
        assert result.metrics.missions_completed == 2


class TestAccounting:
    def test_busy_ticks_accumulate(self):
        state, items = one_item_world()
        Simulation(state, NaiveTaskPlanner(state), items).run()
        assert state.robots[0].busy_ticks > 0
        picker = state.pickers[state.racks[5].picker_id]
        assert picker.busy_ticks == 4  # exactly the processing time

    def test_checkpoints_recorded(self):
        state = make_two_picker_state(n_racks=6, n_robots=2)
        items = [Item(i, i % 6, arrival=i * 3, processing_time=3)
                 for i in range(20)]
        config = SimulationConfig(metrics_checkpoints=5)
        result = Simulation(state, NaiveTaskPlanner(state), items,
                            config).run()
        assert len(result.metrics.checkpoints) == 5
        counts = [c.items_processed for c in result.metrics.checkpoints]
        assert counts == sorted(counts)

    def test_trace_recorded_when_enabled(self):
        state, items = one_item_world()
        config = SimulationConfig(record_bottleneck_trace=True)
        result = Simulation(state, NaiveTaskPlanner(state), items,
                            config).run()
        assert result.trace is not None
        assert len(result.trace) > 0

    def test_trace_absent_by_default(self):
        state, items = one_item_world()
        result = Simulation(state, NaiveTaskPlanner(state), items).run()
        assert result.trace is None

    def test_paths_collected_when_enabled(self):
        state, items = one_item_world()
        config = SimulationConfig(collect_paths=True)
        result = Simulation(state, NaiveTaskPlanner(state), items,
                            config).run()
        # One mission = pickup + delivery + return legs.
        assert len(result.paths) == 3
        assert len(result.path_owners) == 3


class TestGuards:
    def test_max_ticks_guard_fires(self):
        state = make_two_picker_state(n_racks=6, n_robots=1)
        items = [Item(0, 5, arrival=0, processing_time=1000)]
        config = SimulationConfig(max_ticks=50)
        with pytest.raises(SimulationError):
            Simulation(state, NaiveTaskPlanner(state), items, config).run()

    def test_items_arriving_after_long_silence_still_served(self):
        state = make_two_picker_state(n_racks=6, n_robots=1)
        items = [Item(0, 5, arrival=0, processing_time=3),
                 Item(1, 2, arrival=300, processing_time=3)]
        result = Simulation(state, NaiveTaskPlanner(state), items).run()
        assert result.metrics.items_processed == 2


class TestElapsedDenominator:
    """PPR/RWR checkpoints and the final metrics share one denominator
    rule: rate = busy ticks / elapsed accounted ticks.  On drained runs
    the final elapsed tick count provably equals the makespan (the run
    ends the tick after the last rack returns), and the engine asserts
    that instead of silently mixing two clocks."""

    def test_final_rates_use_elapsed_equals_makespan(self):
        state = make_two_picker_state(n_racks=6, n_robots=2)
        items = [Item(i, i % 6, arrival=i * 3, processing_time=3)
                 for i in range(12)]
        result = Simulation(state, NaiveTaskPlanner(state), items).run()
        makespan = result.metrics.makespan
        picker_rates = [p.busy_ticks / makespan for p in state.pickers]
        robot_rates = [r.busy_ticks / makespan for r in state.robots]
        assert result.metrics.ppr == sum(picker_rates) / len(picker_rates)
        assert result.metrics.rwr == sum(robot_rates) / len(robot_rates)

    def test_checkpoint_on_final_tick_agrees_with_final_metrics(self):
        """With an instant return leg (rack home == picker cell) the last
        checkpoint lands on the final accounted tick, where the old
        ``elapsed = t + 1`` vs ``makespan`` skew would make it disagree
        with the final PPR/RWR.  Both now use the same denominator."""
        from repro.warehouse.entities import Picker, Rack, Robot
        from repro.warehouse.grid import Grid

        cell = (2, 2)
        state = WarehouseState(
            grid=Grid(6, 6),
            racks=[Rack(rack_id=0, home=cell, picker_id=0)],
            pickers=[Picker(picker_id=0, location=cell)],
            robots=[Robot(robot_id=0, location=cell)])
        state._rebuild_indexes()
        items = [Item(0, 0, arrival=0, processing_time=4)]
        result = Simulation(state, NaiveTaskPlanner(state), items).run()

        assert result.metrics.makespan == 4
        last = result.metrics.checkpoints[-1]
        assert last.tick + 1 == result.metrics.makespan
        assert last.ppr == result.metrics.ppr
        assert last.rwr == result.metrics.rwr
