"""Unit tests for the timed Path structure."""

import pytest

from repro.errors import ConflictError
from repro.pathfinding.paths import Path


class TestConstruction:
    def test_from_cells(self):
        path = Path.from_cells([(0, 0), (1, 0), (1, 1)], start_time=5)
        assert path.start_time == 5
        assert path.end_time == 7
        assert path.source == (0, 0)
        assert path.goal == (1, 1)
        assert path.duration == 2

    def test_waiting(self):
        path = Path.waiting((3, 3), start_time=2, duration=4)
        assert path.duration == 4
        assert all(cell == (3, 3) for cell in path.spatial_cells())

    def test_zero_duration_wait(self):
        path = Path.waiting((3, 3), start_time=2, duration=0)
        assert len(path) == 1

    def test_rejects_negative_wait(self):
        with pytest.raises(ConflictError):
            Path.waiting((3, 3), start_time=0, duration=-1)

    def test_rejects_empty(self):
        with pytest.raises(ConflictError):
            Path(())

    def test_rejects_time_gap(self):
        with pytest.raises(ConflictError):
            Path(((0, 0, 0), (2, 0, 1)))

    def test_rejects_diagonal_jump(self):
        with pytest.raises(ConflictError):
            Path(((0, 0, 0), (1, 1, 1)))

    def test_rejects_long_jump(self):
        with pytest.raises(ConflictError):
            Path(((0, 0, 0), (1, 3, 0)))

    def test_wait_step_allowed(self):
        Path(((0, 2, 2), (1, 2, 2), (2, 3, 2)))


class TestCellAt:
    def test_within_span(self):
        path = Path.from_cells([(0, 0), (1, 0), (2, 0)], start_time=10)
        assert path.cell_at(11) == (1, 0)

    def test_clamps_before_start(self):
        path = Path.from_cells([(0, 0), (1, 0)], start_time=10)
        assert path.cell_at(0) == (0, 0)

    def test_clamps_after_end(self):
        path = Path.from_cells([(0, 0), (1, 0)], start_time=10)
        assert path.cell_at(99) == (1, 0)


class TestConcat:
    def test_joins_contiguous_legs(self):
        a = Path.from_cells([(0, 0), (1, 0)], start_time=0)
        b = Path.from_cells([(1, 0), (1, 1)], start_time=1)
        joined = a.concat(b)
        assert joined.source == (0, 0)
        assert joined.goal == (1, 1)
        assert joined.end_time == 2
        assert len(joined) == 3

    def test_rejects_time_mismatch(self):
        a = Path.from_cells([(0, 0), (1, 0)], start_time=0)
        b = Path.from_cells([(1, 0), (1, 1)], start_time=5)
        with pytest.raises(ConflictError):
            a.concat(b)

    def test_rejects_cell_mismatch(self):
        a = Path.from_cells([(0, 0), (1, 0)], start_time=0)
        b = Path.from_cells([(2, 0), (2, 1)], start_time=1)
        with pytest.raises(ConflictError):
            a.concat(b)


class TestIteration:
    def test_iter_yields_timed_cells(self):
        path = Path.from_cells([(4, 4), (4, 5)], start_time=7)
        assert list(path) == [(7, 4, 4), (8, 4, 5)]

    def test_len(self):
        assert len(Path.waiting((0, 0), 0, 9)) == 10


class TestCellsBetween:
    def path(self):
        return Path.from_cells([(0, 0), (1, 0), (1, 1), (2, 1)], start_time=10)

    def test_full_span(self):
        assert self.path().cells_between(10, 13) == [(0, 0), (1, 0), (1, 1),
                                                     (2, 1)]

    def test_interior_slice(self):
        assert self.path().cells_between(11, 12) == [(1, 0), (1, 1)]

    def test_clamps_before_start(self):
        assert self.path().cells_between(8, 11) == [(0, 0), (0, 0), (0, 0),
                                                    (1, 0)]

    def test_clamps_after_end(self):
        assert self.path().cells_between(12, 15) == [(1, 1), (2, 1), (2, 1),
                                                     (2, 1)]

    def test_entirely_outside(self):
        assert self.path().cells_between(0, 2) == [(0, 0)] * 3
        assert self.path().cells_between(20, 21) == [(2, 1)] * 2

    def test_single_tick_equals_cell_at(self):
        path = self.path()
        for t in range(5, 20):
            assert path.cells_between(t, t) == [path.cell_at(t)]

    def test_matches_per_tick_cell_at(self):
        path = self.path()
        for t0 in range(6, 18):
            for t1 in range(t0, 18):
                assert path.cells_between(t0, t1) == [
                    path.cell_at(t) for t in range(t0, t1 + 1)]

    def test_rejects_empty_span(self):
        with pytest.raises(ConflictError):
            self.path().cells_between(12, 11)
