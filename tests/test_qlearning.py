"""Unit tests for the Q-learning agent (Eq. 5 update, lookahead policy)."""

import random

import pytest

from repro.config import QLearningConfig
from repro.rl.mdp import (ACTION_REQUEST, ACTION_WAIT, RackObservation,
                          request_cost, wait_cost)
from repro.rl.policy import EpsilonGreedyPolicy, GreedyPolicy
from repro.rl.qlearning import QLearningAgent
from repro.rl.qtable import QTable


def obs(ap=0, ar=0, fp=0, d=10, batch=30, n=1):
    return RackObservation(picker_accumulated=ap, rack_accumulated=ar,
                           picker_finish_time=fp, distance_to_picker=d,
                           batch_processing_time=batch, n_pending=n)


def agent(delta=0.2, epsilon=0.0, seed=3, **kw):
    cfg = QLearningConfig(delta=delta, epsilon=epsilon, **kw)
    return QLearningAgent(cfg, random.Random(seed))


class TestUpdate:
    def test_eq5_single_update(self):
        a = agent()
        observation = obs(fp=0, d=20, n=1)
        td = a.update(observation, ACTION_REQUEST)
        # target = c + γ·max q(s') = request_cost + 0, old = 0.
        expected_target = request_cost(observation)
        assert td == pytest.approx(expected_target)
        state = a.state_of(observation)
        assert a.table.get(state, ACTION_REQUEST) == pytest.approx(
            a.config.learning_rate * expected_target)

    def test_wait_update_uses_deferral_cost(self):
        a = agent()
        observation = obs(n=4)
        a.update(observation, ACTION_WAIT)
        state = a.state_of(observation)
        expected = a.config.learning_rate * wait_cost(
            observation, a.config.deferral_weight)
        assert a.table.get(state, ACTION_WAIT) == pytest.approx(expected)

    def test_updates_counted(self):
        a = agent()
        a.update(obs(), ACTION_REQUEST)
        a.update(obs(), ACTION_WAIT, greedy=True)
        assert a.stats.updates == 2
        assert a.stats.greedy_updates == 1

    def test_repeated_updates_converge_to_target(self):
        a = agent(learning_rate=0.5)
        observation = obs(fp=0, d=20, n=1)
        state = a.state_of(observation)
        for _ in range(200):
            a.update(observation, ACTION_WAIT)
        # Fixed point of q = c_wait + γ·max(q, q_req): with q_req ~ 0
        # frozen, q_wait → c_wait / (1 − γ·…); just assert boundedness
        # and monotone ordering.
        value = a.table.get(state, ACTION_WAIT)
        assert value < 0
        assert value > -10 * a.config.deferral_weight / (1 - a.config.discount)


class TestUtilitiesAndPolicy:
    def test_loaded_near_rack_requests(self):
        a = agent()
        u_wait, u_request = a.utilities(obs(fp=0, d=20, n=5))
        assert u_request > u_wait
        assert a.choose_action(obs(fp=0, d=20, n=5)) == ACTION_REQUEST

    def test_single_item_far_rack_waits(self):
        a = agent()
        assert a.choose_action(obs(fp=0, d=50, n=1)) == ACTION_WAIT

    def test_busy_picker_waits_even_when_loaded(self):
        a = agent()
        assert a.choose_action(obs(fp=500, d=20, n=4)) == ACTION_WAIT

    def test_deep_backlog_eventually_requests(self):
        a = agent()
        assert a.choose_action(obs(fp=500, d=20, n=60)) == ACTION_REQUEST

    def test_epsilon_one_explores(self):
        a = agent(epsilon=1.0)
        actions = {a.choose_action(obs(fp=0, d=50, n=1)) for _ in range(50)}
        assert actions == {ACTION_WAIT, ACTION_REQUEST}
        assert a.stats.explored_actions > 0

    def test_priority_orders_by_request_margin(self):
        a = agent()
        urgent = a.priority(obs(fp=0, d=10, n=8))
        lazy = a.priority(obs(fp=0, d=40, n=1))
        assert urgent < lazy  # urgent racks examined first


class TestBernoulliDelta:
    def test_delta_zero_never_approximates(self):
        a = agent(delta=0.0)
        assert not any(a.use_approximation() for _ in range(100))

    def test_delta_one_always_approximates(self):
        a = agent(delta=1.0)
        assert all(a.use_approximation() for _ in range(100))

    def test_delta_half_mixes(self):
        a = agent(delta=0.5)
        draws = [a.use_approximation() for _ in range(500)]
        assert 150 < sum(draws) < 350


class TestPolicies:
    def test_greedy_policy_follows_table(self):
        table = QTable()
        table.set((0, 0), ACTION_WAIT, 5.0)
        assert GreedyPolicy(table).action((0, 0)) == ACTION_WAIT

    def test_epsilon_greedy_validates_epsilon(self):
        with pytest.raises(ValueError):
            EpsilonGreedyPolicy(QTable(), epsilon=1.5)

    def test_epsilon_zero_is_greedy(self):
        table = QTable()
        table.set((0, 0), ACTION_WAIT, 5.0)
        policy = EpsilonGreedyPolicy(table, 0.0, random.Random(0))
        assert all(policy.action((0, 0)) == ACTION_WAIT for _ in range(20))

    def test_memory_reporting(self):
        a = agent()
        before = a.memory_bytes()
        a.update(obs(), ACTION_REQUEST)
        assert a.memory_bytes() > before
