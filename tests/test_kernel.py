"""Native search kernel: selection, fallback, and bit-identity.

The compiled expansion loop must be a drop-in for the pure-python cores:
same :class:`SearchOutcome` (status, path steps), same
:class:`SearchStats` counters, same expansion order — across every
reservation structure, both queue regimes (flat bucket queue and hash
backend), the overflow restart, windowed horizons, the cache-aided
finisher, and the paper-scale deep-tie ordering.  The extension is built
on the fly here; where no compiler is available the compiled half skips
and the selection/fallback tests still run.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as hyp

from repro.config import search_kernel_choice
from repro.errors import ConfigurationError
from repro.experiments.harness import run_planner
from repro.pathfinding import st_astar
from repro.pathfinding._kernel import build_and_load
from repro.pathfinding._kernel.build import build_allowed
from repro.pathfinding.cache import ShortestPathCache, make_wait_finisher
from repro.pathfinding.cdt import (ConflictDetectionTable,
                                   ShardedConflictDetectionTable)
from repro.pathfinding.heuristics import HeuristicFieldCache
from repro.pathfinding.paths import Path
from repro.pathfinding.reservation import ReservationTable
from repro.pathfinding.spatiotemporal_graph import (ShardedSpatiotemporalGraph,
                                                    SpatiotemporalGraph)
from repro.pathfinding.st_astar import (SearchRequest, SearchStats, search,
                                        search_kernel_name, set_search_kernel)
from repro.warehouse.grid import Grid
from repro.workloads.datasets import make_mini

COMPILED = build_and_load()

needs_compiled = pytest.mark.skipif(
    COMPILED is None,
    reason="native kernel unavailable (no compiler or REPRO_KERNEL_BUILD=0)")


@pytest.fixture(autouse=True)
def _restore_kernel():
    previous = search_kernel_name()
    yield
    set_search_kernel(previous)


class GenericProbeCDT(ConflictDetectionTable):
    """A table that only exposes the generic packed-probe callables.

    Forces the kernel's mode-0 path — the coverage guarantee for any
    out-of-tree :class:`ReservationTable` subclass.
    """

    kernel_probe_spec = ReservationTable.kernel_probe_spec


TABLES = {
    "cdt": lambda grid: ConflictDetectionTable(),
    "sharded_cdt": lambda grid: ShardedConflictDetectionTable(3),
    "stgraph": lambda grid: SpatiotemporalGraph(grid),
    "sharded_stgraph": lambda grid: ShardedSpatiotemporalGraph(3),
    "generic": lambda grid: GenericProbeCDT(),
}


def crossing_traffic(table, width=18, n=10):
    for i in range(n):
        row = 1 + (3 * i) % 11
        cells = [(x, row) for x in range(width)]
        table.reserve_path(Path.from_cells(cells, start_time=2 * i))


def run_on(kernel, grid, make_table, request, heuristic=None):
    """One search under an explicitly selected kernel; fresh table."""
    set_search_kernel(kernel)
    table = make_table()
    crossing_traffic(table, grid.width)
    stats = SearchStats()
    outcome = search(grid, table, request, heuristic=heuristic, stats=stats)
    return outcome, stats


def assert_bit_identical(grid, make_table, request, heuristic=None):
    py_out, py_stats = run_on("python", grid, make_table, request, heuristic)
    c_out, c_stats = run_on("compiled", grid, make_table, request, heuristic)
    assert c_out.status == py_out.status
    if py_out.path is None:
        assert c_out.path is None
    else:
        assert c_out.path.steps == py_out.path.steps
    assert c_stats.expansions == py_stats.expansions
    assert c_stats.generated == py_stats.generated
    assert c_stats.peak_open == py_stats.peak_open
    assert c_stats.cache_finished == py_stats.cache_finished
    assert py_stats.kernel == "python"
    assert c_stats.kernel == "compiled"
    return py_out


# -- selection and fallback -------------------------------------------------


class TestKernelSelection:
    def test_env_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert search_kernel_choice() == "auto"

    @pytest.mark.parametrize("value", ["auto", "compiled", "python"])
    def test_env_accepts_documented_choices(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_KERNEL", value)
        assert search_kernel_choice() == value

    def test_env_rejects_unknown_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "turbo")
        with pytest.raises(ConfigurationError):
            search_kernel_choice()

    def test_set_search_kernel_rejects_unknown_value(self):
        with pytest.raises(ConfigurationError):
            set_search_kernel("turbo")

    def test_compiled_without_extension_is_an_error(self, monkeypatch):
        monkeypatch.setattr(st_astar, "_load_compiled",
                            lambda refresh=False: None)
        monkeypatch.setattr(st_astar, "_COMPILED", None)
        with pytest.raises(ConfigurationError):
            set_search_kernel("compiled")

    def test_auto_without_extension_falls_back_silently(self, monkeypatch):
        monkeypatch.setattr(st_astar, "_load_compiled",
                            lambda refresh=False: None)
        monkeypatch.setattr(st_astar, "_COMPILED", None)
        assert set_search_kernel("auto") == "python"
        stats = SearchStats()
        outcome = search(Grid(8, 8), ConflictDetectionTable(),
                         SearchRequest((0, 0), (7, 7), 0), stats=stats)
        assert outcome.path is not None
        assert stats.kernel == "python"

    def test_build_forbidden_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BUILD", "0")
        assert not build_allowed()

    @needs_compiled
    def test_explicit_choices_select_the_named_core(self):
        assert set_search_kernel("compiled") == "compiled"
        assert search_kernel_name() == "compiled"
        assert set_search_kernel("python") == "python"
        assert search_kernel_name() == "python"

    @needs_compiled
    def test_stats_report_which_core_ran(self):
        grid = Grid(12, 12)
        for kernel in ("python", "compiled"):
            set_search_kernel(kernel)
            stats = SearchStats()
            search(grid, ConflictDetectionTable(),
                   SearchRequest((0, 0), (11, 11), 0), stats=stats)
            assert stats.kernel == kernel

    def test_trivial_search_has_no_kernel_tag(self):
        # source == goal short-circuits before either core runs.
        stats = SearchStats()
        search(Grid(6, 6), ConflictDetectionTable(),
               SearchRequest((2, 2), (2, 2), 0), stats=stats)
        assert stats.kernel == ""


# -- bit-identity across probe modes and regimes ---------------------------


@needs_compiled
class TestKernelBitIdentity:
    @pytest.mark.parametrize("table_name", sorted(TABLES))
    def test_every_probe_mode_matches(self, table_name):
        grid = Grid(18, 13, blocked=[(9, y) for y in range(13)
                                     if y not in (3, 10)])
        make_table = lambda: TABLES[table_name](grid)
        for source, goal in [((0, 0), (17, 12)), ((17, 0), (0, 12)),
                             ((2, 6), (16, 6))]:
            assert_bit_identical(grid, make_table,
                                 SearchRequest(source, goal, 0))

    @pytest.mark.parametrize("horizon", [0, 3, 11, None])
    def test_windowed_mode_matches(self, horizon):
        grid = Grid(18, 13)
        assert_bit_identical(
            grid, ConflictDetectionTable,
            SearchRequest((0, 0), (17, 12), 5, horizon=horizon))

    def test_budget_outcome_matches(self):
        grid = Grid(18, 13)
        out = assert_bit_identical(
            grid, ConflictDetectionTable,
            SearchRequest((0, 0), (17, 12), 0, max_expansions=10))
        assert out.status == st_astar.SEARCH_BUDGET

    def test_exhausted_outcome_matches(self):
        # Source walled in; waiting in place is reserved out too.
        grid = Grid(10, 10, blocked=[(0, 1), (1, 0), (1, 1)])

        def boxed_table():
            table = ConflictDetectionTable()
            table.reserve_path(Path.from_cells([(0, 0)] * 40, start_time=1))
            return table

        py_out, py_stats = [None], [None]
        set_search_kernel("python")
        py = search(grid, boxed_table(), SearchRequest((0, 0), (9, 9), 0),
                    stats=SearchStats())
        set_search_kernel("compiled")
        comp = search(grid, boxed_table(), SearchRequest((0, 0), (9, 9), 0),
                      stats=SearchStats())
        assert py.status == st_astar.SEARCH_EXHAUSTED
        assert comp.status == py.status

    def test_overflow_restart_matches(self):
        # A single doorway reserved past the flat backend's layer cap
        # forces the overflow restart onto the hash backend in both cores.
        grid = Grid(12, 7, blocked=[(6, y) for y in range(7) if y != 3])

        def choked():
            table = ConflictDetectionTable()
            table.reserve_path(Path.from_cells(
                [(6, 3)] * (st_astar._MAX_LAYERS + 30), start_time=0))
            return table

        set_search_kernel("python")
        py_stats = SearchStats()
        py = search(grid, choked(), SearchRequest((0, 3), (11, 3), 0),
                    stats=py_stats)
        set_search_kernel("compiled")
        c_stats = SearchStats()
        comp = search(grid, choked(), SearchRequest((0, 3), (11, 3), 0),
                      stats=c_stats)
        assert py.status == comp.status == st_astar.SEARCH_COMPLETE
        assert comp.path.steps == py.path.steps
        assert c_stats.expansions == py_stats.expansions
        assert c_stats.generated == py_stats.generated
        assert c_stats.peak_open == py_stats.peak_open

    def test_exact_field_heuristic_matches(self):
        grid = Grid(18, 13, blocked=[(9, y) for y in range(13)
                                     if y not in (3, 10)])
        cache = HeuristicFieldCache(grid)
        assert_bit_identical(grid, ConflictDetectionTable,
                             SearchRequest((0, 0), (17, 12), 0),
                             heuristic=cache.field((17, 12)))

    def test_arbitrary_callable_heuristic_stays_python(self):
        # A raw callable is outside the kernel's contract: the compiled
        # selection must decline and fall through to the python core.
        set_search_kernel("compiled")
        grid = Grid(12, 12)
        stats = SearchStats()
        outcome = search(grid, ConflictDetectionTable(),
                         SearchRequest((0, 0), (11, 11), 0),
                         heuristic=lambda cell: 0, stats=stats)
        assert outcome.path is not None
        assert stats.kernel == "python"

    def test_cache_finisher_matches(self):
        grid = Grid(18, 13)
        goal = (17, 12)
        cache = ShortestPathCache(grid, threshold=6)

        def make_table():
            table = ConflictDetectionTable()
            return table

        def run(kernel):
            set_search_kernel(kernel)
            table = ConflictDetectionTable()
            crossing_traffic(table, grid.width)
            finisher = make_wait_finisher(cache, goal, table)
            stats = SearchStats()
            outcome = search(grid, table,
                             SearchRequest((0, 0), goal, 0,
                                           finisher=finisher,
                                           finisher_trigger=6),
                             stats=stats)
            return outcome, stats

        py, py_stats = run("python")
        comp, c_stats = run("compiled")
        assert comp.status == py.status == st_astar.SEARCH_COMPLETE
        assert comp.path.steps == py.path.steps
        assert py_stats.cache_finished and c_stats.cache_finished
        assert c_stats.expansions == py_stats.expansions

    def test_deep_tie_paper_scale_matches(self):
        # 129 * 128 = 16512 cells >= PAPER_SCALE_MIN_CELLS: the hash
        # backend switches to the paper-scale (f, -g, tie) ordering.
        grid = Grid(129, 128)
        assert grid.n_cells >= st_astar.PAPER_SCALE_MIN_CELLS

        def big_traffic():
            table = ConflictDetectionTable()
            for i in range(12):
                row = 10 + 9 * i
                cells = [(x, row) for x in range(0, 100)]
                table.reserve_path(Path.from_cells(cells, start_time=3 * i))
            return table

        for source, goal in [((0, 0), (120, 119)), ((128, 0), (0, 127)),
                             ((5, 60), (124, 60))]:
            set_search_kernel("python")
            py_stats = SearchStats()
            py = search(grid, big_traffic(),
                        SearchRequest(source, goal, 0), stats=py_stats)
            set_search_kernel("compiled")
            c_stats = SearchStats()
            comp = search(grid, big_traffic(),
                          SearchRequest(source, goal, 0), stats=c_stats)
            assert comp.status == py.status
            assert comp.path.steps == py.path.steps
            assert c_stats.expansions == py_stats.expansions
            assert c_stats.peak_open == py_stats.peak_open


# -- randomized property ----------------------------------------------------


def _random_problem(seed):
    rng = random.Random(seed)
    width, height = rng.randrange(8, 22), rng.randrange(8, 18)
    blocked = set()
    for __ in range(rng.randrange(0, (width * height) // 6)):
        blocked.add((rng.randrange(width), rng.randrange(height)))
    free = [(x, y) for x in range(width) for y in range(height)
            if (x, y) not in blocked]
    source, goal = rng.sample(free, 2)
    grid = Grid(width, height, blocked=sorted(blocked))
    paths = []
    for __ in range(rng.randrange(0, 14)):
        x, y = rng.choice(free)
        cells = [(x, y)]
        for __ in range(rng.randrange(2, 16)):
            moves = list(grid.neighbours(cells[-1])) + [cells[-1]]
            cells.append(moves[rng.randrange(len(moves))])
        paths.append(Path.from_cells(cells, start_time=rng.randrange(20)))
    horizon = rng.choice([None, None, rng.randrange(0, 25)])
    budget = rng.choice([200_000, 200_000, rng.randrange(5, 400)])
    request = SearchRequest(source, goal, rng.randrange(8),
                            horizon=horizon, max_expansions=budget)
    table_factory = rng.choice(sorted(TABLES))
    return grid, paths, request, table_factory


@needs_compiled
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(seed=hyp.integers(min_value=0, max_value=10 ** 9))
def test_property_compiled_matches_python(seed):
    grid, paths, request, table_factory = _random_problem(seed)

    def run(kernel):
        set_search_kernel(kernel)
        table = TABLES[table_factory](grid)
        for path in paths:
            table.reserve_path(path)
        stats = SearchStats()
        return search(grid, table, request, stats=stats), stats

    try:
        py, py_stats = run("python")
        comp, c_stats = run("compiled")
    finally:
        set_search_kernel("auto")
    assert comp.status == py.status
    if py.path is None:
        assert comp.path is None
    else:
        assert comp.path.steps == py.path.steps
    assert c_stats.expansions == py_stats.expansions
    assert c_stats.generated == py_stats.generated
    assert c_stats.peak_open == py_stats.peak_open


# -- planner integration ----------------------------------------------------


@needs_compiled
def test_planner_stats_count_kernel_usage():
    from repro.config import PlannerConfig
    from repro.planners import PLANNERS
    from repro.sim.engine import Simulation

    scenario = make_mini(n_items=12)
    makespans = {}
    counters = {}
    for kernel in ("compiled", "python"):
        set_search_kernel(kernel)
        state, items = scenario.build()
        planner = PLANNERS["NTP"](state, PlannerConfig(free_flow=False))
        try:
            result = Simulation(state, planner, items).run()
            makespans[kernel] = result.metrics.makespan
            counters[kernel] = (planner.stats.searches_compiled,
                                planner.stats.searches_python)
        finally:
            planner.close()
    assert counters["compiled"][0] > 0
    assert counters["compiled"][1] == 0
    assert counters["python"][1] > 0
    assert counters["python"][0] == 0
    assert makespans["compiled"] == makespans["python"]
