#!/usr/bin/env python
"""Build (or rebuild) the native search kernel extension.

A thin CLI over :mod:`repro.pathfinding._kernel.build` for workflows that
want the extension compiled ahead of time — CI, containers, or a dev
machine after touching ``_stsearchmodule.c``::

    PYTHONPATH=src python scripts/build_kernel.py [--force] [--check]

``--check`` exits non-zero when the built extension cannot be imported
afterwards (the CI build step uses it so a broken compile fails loudly
instead of silently falling back to the python core).  Without the flag
a failed build is reported but exits zero — the library's contract is
that the pure-python core always works.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path as FsPath

_REPO = FsPath(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO / "src"))

from repro.pathfinding._kernel import load_compiled  # noqa: E402
from repro.pathfinding._kernel.build import (build_allowed,  # noqa: E402
                                             build_extension,
                                             extension_path)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--force", action="store_true",
                        help="rebuild even if the extension is newer than "
                             "the source")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless the extension builds "
                             "AND imports")
    args = parser.parse_args(argv)

    if not build_allowed():
        print("builds are disabled (REPRO_KERNEL_BUILD=0)")
        return 1 if args.check else 0

    built = build_extension(force=args.force, quiet=False)
    if built is None:
        print("native kernel build failed; the pure-python core remains "
              "the fallback")
        return 1 if args.check else 0
    module = load_compiled(refresh=True)
    if module is None:
        print(f"built {built} but the extension does not import")
        return 1 if args.check else 0
    print(f"native kernel ready: {extension_path()} "
          f"(ABI {module.KERNEL_ABI})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
