#!/usr/bin/env python
"""Service-mode soak runner — thin wrapper over ``repro.experiments.soak``.

Streams open-ended arrivals through a fixed fleet, closing steady-state
metric windows, checkpointing periodically, and proving that a mid-run
checkpoint→restore→continue is bit-identical to the uninterrupted run.
Run from the repo root (no PYTHONPATH needed)::

    python scripts/soak.py --planner EATP --duration 20000 --out soak.json
    python scripts/soak.py --smoke

See ``python scripts/soak.py --help`` for every knob, and
``scripts/bench_kernels.py --soak-only`` for the benchmarked
``BENCH_PR7.json`` variant.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.soak import main  # noqa: E402

if __name__ == "__main__":
    main()
