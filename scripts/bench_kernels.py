#!/usr/bin/env python
"""Record the PR-1 performance trajectory into ``BENCH_PR1.json``.

Measures the packed-integer search core and the tick-bucketed reservation
purge **head-to-head against the frozen seed implementations**
(``repro.pathfinding._legacy``) in one process, so the recorded speedups
cannot be an artefact of machine drift between runs.  Three sections:

* ``st_astar`` — expansions/sec of the spatiotemporal A* micro-kernel
  (the Fig. 11 hot loop), plus Python-level function calls per expansion
  measured with cProfile.
* ``purge`` — latency of the periodic reservation *update* on a CDT
  loaded with dense traffic (the Sec. VI-B operation the bucketing fixes).
* ``table3`` — end-to-end Table III wall-time at a reduced scale, with a
  bit-identity check of every planner's makespan between the two stacks.

Run from the repo root::

    PYTHONPATH=src python scripts/bench_kernels.py [--scale 0.35] [--out BENCH_PR1.json]

Future PRs: re-run before and after touching the pathfinding package and
keep ``st_astar.packed.expansions_per_s`` from regressing.

``--smoke`` is the CI gate: a seconds-fast subset (reduced rounds, no
end-to-end Table III timing) that fails the build when the packed search
core's speedup over the in-process seed implementation falls below
``SMOKE_MIN_SEARCH_SPEEDUP``, when the event engine's replay speedup or
events/s floor regresses, when any of the five planners fails to
drain the 200-robot fleet-ladder rung through the windowed planning
pipeline (the PR-4 completion gate, written to ``BENCH_PR4.json``), or
when the tier-0 fast path's live planning-seconds speedup over the PR-4
chain drops below ``SMOKE_MIN_FASTPATH_SPEEDUP`` on the Fleet-100/200
rungs (the PR-5 gate, written to ``BENCH_PR5.json`` with per-rung hit
rates and a bit-identical-makespan check), or when the paper-true
541×302 floor's 500-robot rung fails to drain end to end under
``SMOKE_BIG_RUNG_CEILING_S`` (the PR-6 gate, written to
``BENCH_PR6.json`` together with a sharded-vs-global audit micro whose
verdicts must agree).  Comparing against the seed *in the same process*
keeps the relative gates machine-independent — absolute expansions/sec
vary across runners, the relative speedup does not.

``--profile`` cProfiles the live Fleet-200 NTP run, prints the top-20
cumulative hot spots and writes the same table to ``--profile-out``
(default ``BENCH_PROFILE.txt``), so future perf PRs start from data and
leave an artifact.  ``--big-only`` runs just the PR-6 paper-floor big
ladder (500/1000/3000 robots, NTP+EATP) into ``BENCH_PR6.json``.
``--reservations-only`` runs the PR-9 reservation-mutation micro
(reserve/unreserve/purge/audit ops/s on every production table, python
vs compiled mutation kernel, with cross-kernel state identity and
incremental-counter checks) plus the compiled paper-floor ladder pinned
to the ``BENCH_PR8.json`` makespans, into ``BENCH_PR9.json``; the smoke
gate fails the build when any table's combined mutation-tape throughput
(reserve + unreserve + purge) drops below
``SMOKE_MIN_RESERVATION_SPEEDUP`` over the pure-python bodies.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import platform
import random
import sys
import time
from pathlib import Path as FsPath

_REPO = FsPath(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO / "src"))
sys.path.insert(0, str(_REPO / "benchmarks"))

from _bench_common import crossing_traffic, dense_traffic  # noqa: E402
from repro.experiments.soak import (SoakSpec, render_soak, run_soak,  # noqa: E402
                                    smoke_spec, soak_ok)
from repro.pathfinding._kernel import build_and_load  # noqa: E402
from repro.pathfinding._legacy import (LegacyConflictDetectionTable,  # noqa: E402
                                       legacy_find_path,
                                       seed_planner_patches)
from repro.pathfinding.cdt import (ConflictDetectionTable,  # noqa: E402
                                   ShardedConflictDetectionTable)
from repro.pathfinding.paths import Path  # noqa: E402
from repro.pathfinding.spatiotemporal_graph import (  # noqa: E402
    ShardedSpatiotemporalGraph, SpatiotemporalGraph)
from repro.pathfinding.st_astar import (SearchStats, find_path,  # noqa: E402
                                        search_kernel_name,
                                        set_search_kernel)
from repro.warehouse.grid import Grid  # noqa: E402

GRID = Grid(64, 40)
SEARCH_ENDPOINTS = [((0, 0), (60, 35)), ((63, 0), (2, 38)), ((5, 20), (58, 4))]

#: The recorded PR-1 speedup is ~2.8x; CI fails below this floor (margin
#: for noisy shared runners).
SMOKE_MIN_SEARCH_SPEEDUP = 1.5

#: The recorded PR-3 event-engine speedup on the replayed Fleet-200 rung
#: is ~12x at full scale, ~4-6x at the smoke scale; CI fails below this
#: floor (relative to the in-process frozen engine, machine-independent).
SMOKE_MIN_ENGINE_SPEEDUP = 2.0

#: Absolute backstop for the event engine's throughput.  Deliberately an
#: order of magnitude under the measured rate so only a catastrophic
#: regression (or an accidentally quadratic calendar) trips it on a slow
#: shared runner.
SMOKE_MIN_ENGINE_EVENTS_PER_S = 5_000

#: Fleet-ladder rungs of the engine benchmark (robot counts at scale 1).
ENGINE_FLEETS = (10, 50, 100, 200)

#: The paper's evaluation order — the planner axis of the ladder kernel.
LADDER_PLANNERS = ("NTP", "LEF", "ILP", "ATP", "EATP")

#: Fleet-ladder rungs of the planner-layer benchmark (PR 4).
LADDER_FLEETS = (10, 25, 50, 100, 200)

#: Fleet-ladder rungs of the tier-0 fast-path benchmark (PR 5) — the two
#: rungs where planning time dominates end-to-end wall-clock.
FASTPATH_FLEETS = (100, 200)

#: Planners of the fast-path benchmark: the plain-search planner and the
#: cache-finisher planner (the finisher takes a different tier-0 path).
FASTPATH_PLANNERS = ("NTP", "EATP")

#: CI floor for the live planning-seconds (PTC) speedup of the tier-0
#: fast path over the PR-4 chain (free_flow off), measured in-process on
#: the same runner.  Recorded smoke speedups are 2.1-4.0x; the floor
#: keeps margin for noisy shared runners.
SMOKE_MIN_FASTPATH_SPEEDUP = 1.5

#: Rungs of the paper-scale big-ladder kernel (PR 6): the 541×302
#: paper-true floor at the fleet sizes the paper excluded as "too slow
#: to execute".  Region-sharded reservations, batched wakes and the
#: wait-following rescue are auto-on here (the floor is far above
#: ``PAPER_SCALE_MIN_CELLS``).
BIG_LADDER_FLEETS = (500, 1000, 3000)

#: Stream length of the full service-mode soak (PR 7): 10× the longest
#: batch horizon on record (the Fleet-10 rung's 21,294-tick makespan in
#: ``BENCH_PR4.json``), proving the always-on loop holds memory flat far
#: past anything the batch experiments exercise.
SOAK_DURATION_TICKS = 220_000

#: Planner axis of the big ladder: the fastest plain-search planner and
#: the paper's headline planner.  (LEF/ILP/ATP stay excluded — their
#: selection layers are the known quadratic wall, which is a different
#: story from the planning-layer scaling this kernel measures.)
BIG_LADDER_PLANNERS = ("NTP", "EATP")

#: CI floor for the native search kernel's expansions/s over the pure-
#: python bucket-queue core, measured in-process on the same workload
#: (the PR-8 gate, written to ``BENCH_PR8.json``).  Recorded speedups
#: are 4-6x; the 3x floor is the ROADMAP target with margin for noisy
#: shared runners.  The gate only arms when the extension builds — the
#: pure-python CI job (``REPRO_KERNEL_BUILD=0``) skips it by design.
SMOKE_MIN_COMPILED_SPEEDUP = 3.0

#: CI floor for the sharded reservation structure's *memory* advantage
#: over the global dense table at the paper-scale audit load.  Memory —
#: not audit latency — is the quantity sharding optimises (see
#: ``bench_sharded_audit``); the recorded advantage is ~2.3-5.7x.
SMOKE_MIN_SHARDED_MEMORY_ADVANTAGE = 1.5

#: Rungs of the PR-8 kernel ladder: the paper-floor fleet sizes where a
#: planning-seconds drop from the native kernel must be measurable.
KERNEL_LADDER_FLEETS = (500, 1000, 3000)

#: Wall-clock ceiling of the ``--smoke`` 500-robot paper-floor rung.
#: With the native search *and* reservation-mutation kernels the
#: recorded NTP run drains in ~25 s on the dev machine (it was ~60 s
#: before PR 8, and did not finish in ten minutes before PR 6); the
#: ceiling is tightened to the post-kernel regime while still leaving
#: several-fold headroom for slow shared runners.
SMOKE_BIG_RUNG_CEILING_S = 150.0

#: CI floor for the compiled reservation-mutation loops (PR 9), on the
#: combined mutation tape (reserve + unreserve + purge seconds) per
#: table.  Recorded combined speedups span 1.5-2.6x across repeats on
#: the reference container (reserve/unreserve alone are consistently
#: 1.9-3.4x); the dense ST-graph is both the lowest and the noisiest
#: because its python bodies already lean on vectorised layer ops, so
#: the floor sits with margin below the weakest observed repeat rather
#: than the mean.  Full-horizon purge alone is ~1x by physics, not by a
#: kernel gap: ~90% of a loaded purge is CPython object deallocation
#: (measured against a raw ``dict.clear()`` of the same state), which
#: the compiled loop must pay identically.  The gate only arms when the
#: extension builds — the pure-python CI job runs the equivalence suite
#: instead.
SMOKE_MIN_RESERVATION_SPEEDUP = 1.4

#: The four production reservation structures the mutation kernel
#: accelerates (modes 1-4 of ``kernel_probe_spec``).
RESERVATION_TABLE_MAKERS = (
    ("cdt", lambda grid: ConflictDetectionTable()),
    ("sharded_cdt", lambda grid: ShardedConflictDetectionTable()),
    ("stgraph", lambda grid: SpatiotemporalGraph(grid)),
    ("sharded_stgraph", lambda grid: ShardedSpatiotemporalGraph()),
)

#: CI floor for the compiled heuristic-field flood (``bfs_fill``) over
#: the python deque flood on the obstructed paper floor (the PR-10
#: gate, written to ``BENCH_PR10.json``).  The recorded speedup is well
#: above the ISSUE's 5x target; the floor *is* the target — the flood
#: is pure C over the prepared adjacency capsule, so it does not sit
#: near the line the way mixed python/C loops do.
SMOKE_MIN_FIELD_SPEEDUP = 5.0

#: CI floor for the fused tier-0 entry point (``tier0_leg``: greedy
#: descent + bulk audit in one call) over the python
#: ``packed()``+``audit_chain`` pair on the same cold legs.
SMOKE_MIN_TIER0_SPEEDUP = 2.0

#: Rungs of the PR-10 live contrast: the fleet-ladder cells where
#: tier-0 legs dominate planning seconds (same rungs as the PR-5 gate).
TIER0_LADDER_FLEETS = (100, 200)


def _time_search(search_fn, make_table, rounds=30):
    """Total seconds and expansions for ``rounds`` sweeps of the endpoints."""
    table = make_table()
    crossing_traffic(table)
    # Warm-up: populates the per-goal field caches so both variants are
    # measured in their steady state (the seed has no cache to warm).
    for source, goal in SEARCH_ENDPOINTS:
        search_fn(GRID, table, source, goal, 0)
    expansions = 0
    started = time.perf_counter()
    for __ in range(rounds):
        for source, goal in SEARCH_ENDPOINTS:
            stats = SearchStats()
            search_fn(GRID, table, source, goal, 0, stats=stats)
            expansions += stats.expansions
    elapsed = time.perf_counter() - started
    return elapsed, expansions


def _calls_per_expansion(search_fn, make_table):
    """Python-level function calls per node expansion, via cProfile."""
    table = make_table()
    crossing_traffic(table)
    source, goal = SEARCH_ENDPOINTS[0]
    search_fn(GRID, table, source, goal, 0)  # warm field caches
    stats = SearchStats()
    profiler = cProfile.Profile()
    profiler.enable()
    search_fn(GRID, table, source, goal, 0, stats=stats)
    profiler.disable()
    calls = sum(entry.callcount for entry in profiler.getstats())
    return calls / max(1, stats.expansions)


def bench_st_astar(rounds=30):
    # Pinned to the pure-python core: this section records the *packed
    # rewrite's* gain over the seed.  The native kernel's gain over the
    # packed core is bench_search_kernels' number (BENCH_PR8.json).
    previous = search_kernel_name()
    set_search_kernel("python")
    try:
        seed_s, seed_exp = _time_search(legacy_find_path,
                                        LegacyConflictDetectionTable, rounds)
        packed_s, packed_exp = _time_search(find_path,
                                            ConflictDetectionTable, rounds)
    finally:
        set_search_kernel(previous)
    assert seed_exp == packed_exp, (
        f"expansion counts diverged: seed {seed_exp} vs packed {packed_exp}")
    set_search_kernel("python")
    try:
        seed_cpe = _calls_per_expansion(legacy_find_path,
                                        LegacyConflictDetectionTable)
        packed_cpe = _calls_per_expansion(find_path, ConflictDetectionTable)
    finally:
        set_search_kernel(previous)
    return {
        "workload": "3 endpoints x 30 rounds on 64x40 with crossing traffic",
        "expansions": packed_exp,
        "seed": {"seconds": seed_s,
                 "expansions_per_s": seed_exp / seed_s,
                 "calls_per_expansion": seed_cpe},
        "packed": {"seconds": packed_s,
                   "expansions_per_s": packed_exp / packed_s,
                   "calls_per_expansion": packed_cpe},
        "speedup": (packed_exp / packed_s) / (seed_exp / seed_s),
        "calls_per_expansion_ratio": seed_cpe / packed_cpe,
    }


def bench_search_kernels(rounds=30):
    """The PR-8 micro: ``st_astar.packed.expansions_per_s`` per kernel.

    Same workload as :func:`bench_st_astar`, run once under each search
    core selected via :func:`set_search_kernel` — so the recorded
    compiled-vs-python speedup is in-process and machine-independent.
    The expansion counts must agree exactly (the kernel is bit-identical
    by contract; the equivalence suite pins the full outcome).
    """
    compiled_available = build_and_load() is not None
    previous = search_kernel_name()
    results = {}
    try:
        for kernel in (("python", "compiled") if compiled_available
                       else ("python",)):
            set_search_kernel(kernel)
            seconds, expansions = _time_search(find_path,
                                               ConflictDetectionTable,
                                               rounds)
            results[kernel] = {"seconds": seconds,
                               "expansions": expansions,
                               "expansions_per_s": expansions / seconds}
    finally:
        set_search_kernel(previous)
    payload = {
        "workload": f"3 endpoints x {rounds} rounds on 64x40 with "
                    "crossing traffic, per search kernel",
        "compiled_available": compiled_available,
        "python": results["python"],
    }
    if compiled_available:
        assert (results["python"]["expansions"]
                == results["compiled"]["expansions"]), (
            "kernel expansion counts diverged: "
            f"python {results['python']['expansions']} vs "
            f"compiled {results['compiled']['expansions']}")
        payload["compiled"] = results["compiled"]
        payload["compiled_speedup"] = (
            results["compiled"]["expansions_per_s"]
            / results["python"]["expansions_per_s"])
    return payload


def _time_purges(make_table, rounds=12):
    """Mean seconds per periodic purge sweep (cadence-32 floors)."""
    total = 0.0
    n_purges = 0
    for __ in range(rounds):
        table = make_table()
        dense_traffic(table, GRID)
        floors = list(range(32, 833, 32))
        started = time.perf_counter()
        for floor in floors:
            table.purge_before(floor)
        total += time.perf_counter() - started
        n_purges += len(floors)
    return total / n_purges


def bench_purge():
    seed_latency = _time_purges(LegacyConflictDetectionTable)
    bucketed_latency = _time_purges(ConflictDetectionTable)
    return {
        "workload": "400 paths x 30 cells over an 830-tick horizon, "
                    "cadence-32 purge sweep",
        "seed": {"purge_latency_s": seed_latency},
        "bucketed": {"purge_latency_s": bucketed_latency},
        "speedup": seed_latency / bucketed_latency,
    }


def bench_table3(scale):
    from repro.experiments.table3 import run_table3

    started = time.perf_counter()
    packed_table = run_table3(scale=scale)
    packed_s = time.perf_counter() - started

    patches = seed_planner_patches()
    saved = [(target, name, getattr(target, name)) for target, name, __ in patches]
    try:
        for target, name, repl in patches:
            setattr(target, name, repl)
        started = time.perf_counter()
        seed_table = run_table3(scale=scale)
        seed_s = time.perf_counter() - started
    finally:
        for target, name, original in saved:
            setattr(target, name, original)

    identical = packed_table == seed_table
    return {
        "scale": scale,
        "makespans": packed_table,
        "seed_makespans": seed_table,
        "makespans_bit_identical": identical,
        "wall_s": packed_s,
        "seed_wall_s": seed_s,
        "speedup": seed_s / packed_s,
    }


class _RecordingUnusable(Exception):
    """A live recording the frozen per-tick engine cannot replay."""


def _bench_engine_rung(spec, planner_name="NTP"):
    """Record one live run, then replay it through both engines.

    The replay isolates the engine: both generations execute the identical
    mission stream with near-zero planner cost (see
    :mod:`repro.sim.replay`), so the wall-clock ratio is the engine's own
    speedup, not diluted by the spatiotemporal search the two stacks share
    byte-for-byte.

    Recordings that needed the windowed pipeline's fallback tiers are
    rejected (:class:`_RecordingUnusable`): partial legs and horizon
    replans postdate the frozen per-tick engine, which cannot execute
    them — and the kernel exists to compare the two engines on identical
    work, so the next planner in line records instead.
    """
    from repro.planners import PLANNERS
    from repro.sim._legacy_engine import LegacySimulation
    from repro.sim.engine import Simulation
    from repro.sim.replay import RecordingPlanner, ReplayPlanner
    from repro.sim.serialize import deterministic_view, result_to_dict

    state, items = spec.build()
    recorder = RecordingPlanner(PLANNERS[planner_name](state))
    started = time.perf_counter()
    live_result = Simulation(state, recorder, items).run()
    live_wall = time.perf_counter() - started

    fallback_legs = (recorder.stats.legs_windowed + recorder.stats.legs_wait)
    if fallback_legs:
        raise _RecordingUnusable(
            f"{planner_name} planned {fallback_legs} fallback leg(s) on "
            f"{spec.name}; the frozen per-tick engine cannot replay "
            f"partial legs")

    def replay(engine_cls):
        replay_state, replay_items = spec.build()
        planner = ReplayPlanner(replay_state, recorder.log)
        simulation = engine_cls(replay_state, planner, replay_items)
        begun = time.perf_counter()
        result = simulation.run()
        return time.perf_counter() - begun, result, simulation

    legacy_s, legacy_result, __ = replay(LegacySimulation)
    event_s, event_result, event_sim = replay(Simulation)
    if (deterministic_view(result_to_dict(legacy_result))
            != deterministic_view(result_to_dict(event_result))):
        raise SystemExit(
            f"engine replay diverged between legacy and event-driven "
            f"stacks on {spec.name}")

    def strip_memory(view):
        # A replay has no reservation structure (memory reads zero) and
        # plans no legs (the tier-0 fast-path counters read zero);
        # everything else must match the live run.
        view["metrics"]["peak_memory_bytes"] = 0
        for checkpoint in view["metrics"]["checkpoints"]:
            checkpoint["memory_bytes"] = 0
        view["metrics"]["fastpath"] = {}
        view["metrics"]["batch"] = {}
        return view

    if (strip_memory(deterministic_view(result_to_dict(live_result)))
            != strip_memory(deterministic_view(result_to_dict(event_result)))):
        raise SystemExit(
            f"replay diverged from the recorded live run on {spec.name}")

    makespan = legacy_result.metrics.makespan
    events = event_sim.events_processed
    return {
        "scenario": spec.name,
        "planner": planner_name,
        "n_robots": spec.n_robots,
        "makespan_ticks": makespan,
        "events": events,
        "quiet_tick_fraction": 1.0 - events / max(makespan, 1),
        "live_end_to_end_s": live_wall,
        "legacy": {"wall_s": legacy_s, "ticks_per_s": makespan / legacy_s},
        "event": {"wall_s": event_s, "ticks_per_s": makespan / event_s,
                  "events_per_s": events / event_s},
        "speedup": legacy_s / event_s,
        "results_identical": True,
    }


def bench_engine(scale=1.0, fleets=ENGINE_FLEETS,
                 planners=("NTP", "ATP")):
    """The PR-3 engine kernel: fleet-ladder rungs, legacy vs event replay.

    Each rung records with the first planner in ``planners`` whose live
    run stays entirely on the full-search tier — a run that needed the
    windowed pipeline's fallback legs (NTP's greedy dispatch boxes robots
    in on some mid-congestion rungs) produces partial legs the frozen
    per-tick engine cannot replay, so the rung falls back to the next
    planner and says so in its payload.
    """
    from repro.errors import PathNotFoundError
    from repro.workloads.datasets import fleet_ladder

    specs = fleet_ladder(scale=scale, fleets=fleets, large_fleets=())
    rungs = []
    for spec in specs:
        last_error = None
        for planner_name in planners:
            try:
                rungs.append(_bench_engine_rung(spec, planner_name))
                break
            except (PathNotFoundError, _RecordingUnusable) as error:
                last_error = error
        else:
            rungs.append({"scenario": spec.name, "n_robots": spec.n_robots,
                          "error": str(last_error)})
    return {
        "workload": f"fleet-ladder replay kernel at scale {scale:g}, "
                    f"planners {'/'.join(planners)}",
        "scale": scale,
        "rungs": rungs,
    }


def _ladder_cell(spec, planner_name):
    """One live (rung × planner) run with full planner-layer accounting."""
    from repro.planners import PLANNERS
    from repro.sim.engine import Simulation

    state, items = spec.build()
    planner = PLANNERS[planner_name](state)
    cell = {"scenario": spec.name, "planner": planner_name,
            "n_robots": spec.n_robots}
    started = time.perf_counter()
    try:
        result = Simulation(state, planner, items).run()
    except Exception as error:  # the gate reports, the caller decides
        cell["error"] = f"{type(error).__name__}: {error}"
        cell["wall_s"] = time.perf_counter() - started
        return cell
    stats = planner.stats
    cell.update({
        "wall_s": time.perf_counter() - started,
        "makespan_ticks": result.metrics.makespan,
        "selection_s": stats.selection_seconds,
        "planning_s": stats.planning_seconds,
        "legs": {"planned": stats.legs_planned, "full": stats.legs_full,
                 "windowed": stats.legs_windowed, "wait": stats.legs_wait},
        "horizon_replans": stats.horizon_replans,
        "search_expansions": stats.search_expansions,
    })
    return cell


def bench_fleet_ladder(scale=1.0, fleets=LADDER_FLEETS,
                       planners=LADDER_PLANNERS):
    """The PR-4 planner-layer kernel: every planner up the fleet ladder.

    Runs each (rung × planner) cell *live* — planner and search included,
    unlike the replay-isolated engine kernel — and records per-cell
    selection/planning seconds plus the fallback-tier histogram of the
    windowed planning pipeline.  Before PR 4 this sweep was impossible:
    NTP died on Fleet-50 and EATP on Fleet-200 with
    ``PathNotFoundError``, and LEF/ILP were excluded outright.
    """
    from repro.workloads.datasets import fleet_ladder

    specs = fleet_ladder(scale=scale, fleets=fleets, large_fleets=())
    cells = [_ladder_cell(spec, planner_name)
             for spec in specs for planner_name in planners]
    return {
        "workload": f"fleet-ladder live planner kernel at scale {scale:g}, "
                    f"planners {'/'.join(planners)}",
        "scale": scale,
        "cells": cells,
    }


def _fastpath_cell(spec, planner_name, free_flow):
    """One live rung run with the tier-0 fast path on or off."""
    from repro.config import PlannerConfig
    from repro.planners import PLANNERS
    from repro.sim.engine import Simulation

    state, items = spec.build()
    planner = PLANNERS[planner_name](state,
                                     PlannerConfig(free_flow=free_flow))
    started = time.perf_counter()
    result = Simulation(state, planner, items).run()
    wall = time.perf_counter() - started
    stats = planner.stats
    return {
        "makespan_ticks": result.metrics.makespan,
        "wall_s": wall,
        "planning_s": stats.planning_seconds,
        "selection_s": stats.selection_seconds,
        "legs_planned": stats.legs_planned,
        "legs_free_flow": stats.legs_free_flow,
        "fastpath_audit_rejects": stats.fastpath_audit_rejects,
        "fastpath_misses": stats.fastpath_misses,
        "search_expansions": stats.search_expansions,
    }


def bench_planning_fastpath(scale=1.0, fleets=FASTPATH_FLEETS,
                            planners=FASTPATH_PLANNERS):
    """The PR-5 kernel: live planning seconds with tier 0 off vs. on.

    ``free_flow=False`` is exactly the PR-4 fallback chain (every leg
    pays a full spatiotemporal search); ``free_flow=True`` adds the
    tier-0 free-flow fast path in front of it.  Both runs share the
    bucket-queue search core, so the recorded speedup isolates the fast
    path itself; the search-core gain over the seed is the ``st_astar``
    section's number.  Makespans must be bit-identical between the two
    configurations — the fast path is provably behaviour-neutral — and
    the per-cell payload records the check.

    The python search kernel is pinned for both configurations: the
    fast path's value is *skipping a search*, so the native kernel
    making searches ~7x cheaper legitimately compresses the measured
    contrast below the PR-5 floor.  Pinning keeps this gate guarding
    the fast-path machinery itself (the kernel's own gate is
    ``bench_search_kernels``).
    """
    from repro.workloads.datasets import fleet_ladder

    specs = fleet_ladder(scale=scale, fleets=fleets, large_fleets=())
    cells = []
    previous = search_kernel_name()
    set_search_kernel("python")
    try:
        for spec in specs:
            for planner_name in planners:
                chain = _fastpath_cell(spec, planner_name, free_flow=False)
                fast = _fastpath_cell(spec, planner_name, free_flow=True)
                attempts = (fast["legs_free_flow"]
                            + fast["fastpath_audit_rejects"]
                            + fast["fastpath_misses"])
                cells.append({
                    "scenario": spec.name,
                    "planner": planner_name,
                    "n_robots": spec.n_robots,
                    "pr4_chain": chain,
                    "fastpath": fast,
                    "planning_speedup":
                        chain["planning_s"] / max(fast["planning_s"], 1e-9),
                    "wall_speedup":
                        chain["wall_s"] / max(fast["wall_s"], 1e-9),
                    "hit_rate":
                        fast["legs_free_flow"] / max(attempts, 1),
                    "makespans_bit_identical":
                        chain["makespan_ticks"] == fast["makespan_ticks"],
                })
    finally:
        set_search_kernel(previous)
    return {
        "workload": f"fleet-ladder live planning kernel at scale "
                    f"{scale:g}, tier-0 fast path off vs on, planners "
                    f"{'/'.join(planners)}",
        "scale": scale,
        "cells": cells,
    }


def report_fastpath(fastpath, out_path):
    """Write the fast-path report and print one line per cell.

    Returns the cells violating a hard invariant or the speedup floor so
    the smoke gate can fail the build on them.
    """
    report = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "planning_fastpath": fastpath,
    }
    FsPath(out_path).write_text(json.dumps(report, indent=2) + "\n")
    failed = []
    for cell in fastpath["cells"]:
        label = f"{cell['scenario']:>10} {cell['planner']:>4}"
        fast = cell["fastpath"]
        print(f"fastpath : {label} plan "
              f"{cell['pr4_chain']['planning_s']:6.2f}s -> "
              f"{fast['planning_s']:6.2f}s "
              f"({cell['planning_speedup']:.2f}x, floor "
              f"{SMOKE_MIN_FASTPATH_SPEEDUP}x) "
              f"hit rate {cell['hit_rate']:.0%} "
              f"({fast['legs_free_flow']}/{fast['legs_planned']} legs, "
              f"{fast['fastpath_audit_rejects']} rejects, "
              f"{fast['fastpath_misses']} misses) "
              f"identical={cell['makespans_bit_identical']}")
        if (not cell["makespans_bit_identical"]
                or cell["planning_speedup"] < SMOKE_MIN_FASTPATH_SPEEDUP):
            failed.append(cell)
    print(f"wrote {out_path}")
    return failed


def run_profile(scale, fleet=200, planner_name="NTP", top=20,
                out_path="BENCH_PROFILE.txt"):
    """cProfile one live fleet-ladder rung; print *and file* the hot spots.

    The starting point for perf work: a cumulative-time top list of the
    live Fleet-200 NTP run (the fleet ladder's most search-bound cell),
    so the next optimisation argues from data instead of guesses.  The
    same top-``top`` table is written to ``out_path`` so CI (or a
    colleague's run) leaves a diffable artifact instead of a scrollback
    buffer.
    """
    import io
    import pstats

    from repro.planners import PLANNERS
    from repro.sim.engine import Simulation
    from repro.workloads.datasets import fleet_ladder

    spec = fleet_ladder(scale=scale, fleets=(fleet,), large_fleets=())[0]
    state, items = spec.build()
    planner = PLANNERS[planner_name](state)
    print(f"profiling the live {spec.name} {planner_name} run at "
          f"scale {scale:g} ...")
    profiler = cProfile.Profile()
    profiler.enable()
    result = Simulation(state, planner, items).run()
    profiler.disable()
    header = (f"live {spec.name} {planner_name} run at scale {scale:g}: "
              f"makespan {result.metrics.makespan:,} ticks, planning "
              f"{planner.stats.planning_seconds:.2f}s, selection "
              f"{planner.stats.selection_seconds:.2f}s; top {top} by "
              f"cumulative time:")
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative")
    stats.print_stats(top)
    table = buffer.getvalue()
    print(header)
    print(table)
    FsPath(out_path).write_text(header + "\n" + table)
    print(f"wrote {out_path}")


def _big_ladder_cell(spec, planner_name):
    """One paper-floor rung run with PR-6 accounting (time + memory)."""
    import resource

    from repro.planners import PLANNERS
    from repro.sim.engine import Simulation

    state, items = spec.build()
    planner = PLANNERS[planner_name](state)
    cell = {"scenario": spec.name, "planner": planner_name,
            "n_robots": spec.n_robots,
            "floor": f"{spec.width}x{spec.height}",
            "sharded_reservations": planner.sharded_reservations,
            "batch_planning": planner.batch_planning}
    started = time.perf_counter()
    try:
        result = Simulation(state, planner, items).run()
    except Exception as error:  # the gate reports, the caller decides
        cell["error"] = f"{type(error).__name__}: {error}"
        cell["wall_s"] = time.perf_counter() - started
        return cell
    stats = planner.stats
    cell.update({
        "wall_s": time.perf_counter() - started,
        "makespan_ticks": result.metrics.makespan,
        "selection_s": stats.selection_seconds,
        "planning_s": stats.planning_seconds,
        "legs": {"planned": stats.legs_planned,
                 "free_flow": stats.legs_free_flow,
                 "full": stats.legs_full, "windowed": stats.legs_windowed,
                 "wait": stats.legs_wait},
        "rescued_legs": stats.rescued_legs,
        "fastpath_audit_rejects": stats.fastpath_audit_rejects,
        "batched_wakes": stats.batched_wakes,
        "batched_legs": stats.batched_legs,
        "batch_conflicts": stats.batch_conflicts,
        "search_expansions": stats.search_expansions,
        "search_kernel": search_kernel_name(),
        "searches": {"compiled": stats.searches_compiled,
                     "python": stats.searches_python},
        "reserves": {"compiled": getattr(stats, "reserves_compiled", 0),
                     "python": getattr(stats, "reserves_python", 0)},
        "purges": {"compiled": getattr(stats, "purges_compiled", 0),
                   "python": getattr(stats, "purges_python", 0)},
        "peak_memory_bytes": result.metrics.peak_memory_bytes,
        # Process-wide high watermark (KB on Linux).  Monotone across
        # cells — only the first cell to reach a level "pays" it — so
        # read it as a per-run ceiling, not a per-cell delta.
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    })
    return cell


def bench_big_ladder(fleets=BIG_LADDER_FLEETS, planners=BIG_LADDER_PLANNERS):
    """The PR-6 kernel: the paper-true 541×302 floor up the big ladder.

    Every cell runs live at scale 1 on the paper's Real-Large floor
    dimensions — the regime the paper excluded as "too slow to execute"
    — with the paper-scale machinery auto-on: region-sharded reservation
    structures, batched planner wakes with optimistic commit, the
    wait-following descent rescue, and deep-tie full search.  Records
    per-rung planning/selection seconds, the tier histogram, the PR-6
    counters and both memory gauges (the planner-structure metric and
    the process ``ru_maxrss`` high watermark).
    """
    from repro.workloads.datasets import fleet_ladder

    specs = fleet_ladder(scale=1.0, fleets=(), large_fleets=tuple(fleets))
    cells = [_big_ladder_cell(spec, planner_name)
             for spec in specs for planner_name in planners]
    return {
        "workload": "paper-floor (541x302) big-ladder live kernel, "
                    f"planners {'/'.join(planners)}",
        "fleets": list(fleets),
        "cells": cells,
    }


def bench_kernel_ladder(fleets=KERNEL_LADDER_FLEETS, planners=("NTP",)):
    """The PR-8 ladder: paper-floor rungs under each search kernel.

    Each (rung × planner) cell runs live twice — once with the pure-
    python search core pinned, once with the native kernel — so the
    recorded ``planning_speedup`` isolates the kernel itself on the
    exact regime the ROADMAP targets (the 541×302 floor the paper
    excluded).  Makespans must be bit-identical between the two runs:
    the kernel changes how fast searches run, never what they return.
    """
    from repro.workloads.datasets import fleet_ladder

    if build_and_load() is None:
        return {"workload": "paper-floor kernel ladder",
                "compiled_available": False, "cells": []}
    specs = fleet_ladder(scale=1.0, fleets=(), large_fleets=tuple(fleets))
    previous = search_kernel_name()
    cells = []
    try:
        for spec in specs:
            for planner_name in planners:
                cell = {"scenario": spec.name, "planner": planner_name,
                        "n_robots": spec.n_robots}
                for kernel in ("python", "compiled"):
                    set_search_kernel(kernel)
                    cell[kernel] = _big_ladder_cell(spec, planner_name)
                if "error" not in cell["python"] \
                        and "error" not in cell["compiled"]:
                    cell["planning_speedup"] = (
                        cell["python"]["planning_s"]
                        / max(cell["compiled"]["planning_s"], 1e-9))
                    cell["wall_speedup"] = (
                        cell["python"]["wall_s"]
                        / max(cell["compiled"]["wall_s"], 1e-9))
                    cell["makespans_bit_identical"] = (
                        cell["python"]["makespan_ticks"]
                        == cell["compiled"]["makespan_ticks"])
                cells.append(cell)
    finally:
        set_search_kernel(previous)
    return {
        "workload": "paper-floor (541x302) ladder, python vs compiled "
                    f"search kernel, planners {'/'.join(planners)}",
        "compiled_available": True,
        "fleets": list(fleets),
        "cells": cells,
    }


def report_kernels(kernels, out_path):
    """Write the PR-8 report and print one line per section.

    Returns the failing items (expansion-throughput floor, makespan
    divergence, or a rung that errored) so the smoke gate can fail the
    build on them.
    """
    report = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "search_kernels": kernels["search_kernels"],
    }
    if "kernel_ladder" in kernels:
        report["kernel_ladder"] = kernels["kernel_ladder"]
    FsPath(out_path).write_text(json.dumps(report, indent=2) + "\n")
    failed = []
    micro = kernels["search_kernels"]
    if micro["compiled_available"]:
        print(f"kernel   : compiled "
              f"{micro['compiled']['expansions_per_s']:,.0f} exp/s vs "
              f"python {micro['python']['expansions_per_s']:,.0f} exp/s "
              f"— {micro['compiled_speedup']:.2f}x "
              f"(floor {SMOKE_MIN_COMPILED_SPEEDUP}x)")
        if micro["compiled_speedup"] < SMOKE_MIN_COMPILED_SPEEDUP:
            failed.append({"section": "search_kernels",
                           "speedup": micro["compiled_speedup"]})
    else:
        print("kernel   : native kernel unavailable — pure-python core "
              f"at {micro['python']['expansions_per_s']:,.0f} exp/s "
              "(speedup gate skipped)")
    for cell in kernels.get("kernel_ladder", {}).get("cells", []):
        label = f"{cell['scenario']:>10} {cell['planner']:>4}"
        if "planning_speedup" not in cell:
            failed.append(cell)
            error = (cell.get("python", {}).get("error")
                     or cell.get("compiled", {}).get("error"))
            print(f"kernel   : {label} FAILED — {error}")
            continue
        print(f"kernel   : {label} ({cell['n_robots']:>4} robots) plan "
              f"{cell['python']['planning_s']:7.1f}s -> "
              f"{cell['compiled']['planning_s']:7.1f}s "
              f"({cell['planning_speedup']:.2f}x, wall "
              f"{cell['wall_speedup']:.2f}x) "
              f"identical={cell['makespans_bit_identical']}")
        if not cell["makespans_bit_identical"]:
            failed.append(cell)
    print(f"wrote {out_path}")
    return failed


def bench_sharded_audit(n_paths=400, n_audits=400, seed=20220606):
    """Sharded-vs-global reservation micro on the paper-true floor.

    Loads both spatiotemporal-graph variants with the same pseudo-random
    staircase legs, then times ``reserve_path`` over the load and
    ``audit_path`` over a fresh batch of legs on each.  Per-probe the
    sharded audit is *expected* to trail the global one by ~10-25%
    (``audit_speedup`` below 1): a tile-dict indirection sits in front
    of every bytearray index.  That is not the quantity sharding
    optimises — the global table densifies every intermediate 163 KB
    layer on this floor, so sharding wins ``reserve_speedup`` and,
    decisively, ``memory_advantage``; that trade is why the planner gate
    (``Planner.sharded_reservations``) arms sharding only at paper scale
    and keeps the global table below the gate, where the audit constant
    is the only term that matters.  Verdict equality over every audited
    leg rides along as a correctness check.
    """
    grid = Grid(541, 302)
    rng = random.Random(seed)

    def staircase(t0):
        (x0, y0), (x1, y1) = ((rng.randrange(541), rng.randrange(302))
                              for _ in range(2))
        cells = [(x0, y0)]
        while (x0, y0) != (x1, y1):
            if x0 != x1 and (y0 == y1 or rng.random() < 0.5):
                x0 += 1 if x1 > x0 else -1
            else:
                y0 += 1 if y1 > y0 else -1
            cells.append((x0, y0))
        return Path.from_cells(cells, t0)

    load = [staircase(rng.randrange(64)) for _ in range(n_paths)]
    probes = [staircase(rng.randrange(64)) for _ in range(n_audits)]
    timings = {}
    verdicts = {}
    for label, table in (("global", SpatiotemporalGraph(grid)),
                         ("sharded", ShardedSpatiotemporalGraph())):
        started = time.perf_counter()
        for path in load:
            table.reserve_path(path)
        reserve_s = time.perf_counter() - started
        started = time.perf_counter()
        verdicts[label] = [table.audit_path(path) for path in probes]
        timings[label] = {
            "reserve_s": reserve_s,
            "audit_s": time.perf_counter() - started,
            "memory_bytes": table.memory_bytes(),
        }
    return {
        "workload": f"{n_paths} reserved + {n_audits} audited staircase "
                    "legs on the 541x302 floor, global vs sharded "
                    "spatiotemporal graph",
        "global": timings["global"],
        "sharded": timings["sharded"],
        "reserve_speedup": (timings["global"]["reserve_s"]
                            / max(timings["sharded"]["reserve_s"], 1e-9)),
        # Expected < 1 (tile indirection); see the docstring.  The gates
        # below are the quantities sharding exists to win.
        "audit_speedup": (timings["global"]["audit_s"]
                          / max(timings["sharded"]["audit_s"], 1e-9)),
        "memory_advantage": (timings["global"]["memory_bytes"]
                             / max(timings["sharded"]["memory_bytes"], 1)),
        "verdicts_identical": verdicts["global"] == verdicts["sharded"],
    }


def _staircase_paths(rng, n, width=541, height=302, t_span=64):
    """``n`` pseudo-random staircase legs on a ``width``×``height`` floor.

    Same leg shape the sharded-audit micro uses: monotone x/y staircases
    between two uniform endpoints, departing at a uniform tick in
    ``[0, t_span)`` — long diagonal sweeps that touch hundreds of
    vertices each, the load profile the mutation loops see at paper
    scale.
    """
    paths = []
    for _ in range(n):
        (x0, y0), (x1, y1) = ((rng.randrange(width), rng.randrange(height))
                              for _ in range(2))
        cells = [(x0, y0)]
        while (x0, y0) != (x1, y1):
            if x0 != x1 and (y0 == y1 or rng.random() < 0.5):
                x0 += 1 if x1 > x0 else -1
            else:
                y0 += 1 if y1 > y0 else -1
            cells.append((x0, y0))
        paths.append(Path.from_cells(cells, rng.randrange(t_span)))
    return paths


#: Tick offset between purge-phase reloads of the mutation micro — past
#: every staircase horizon (t0 < 64 plus ≤ ~850 staircase steps), so
#: each round's legs land wholly above the previous round's purge floor.
_PURGE_ROUND_SPAN = 2048


def _time_mutations(make_table, warmup, load, probes, purge_rounds=4):
    """Time the PR-9 mutation loops on one reservation table.

    Measures steady-state throughput — the regime the planner lives in:

    * an untimed ``warmup`` pass first materialises the tick buckets /
      dense layers the legs cross, so the timed reserve pass measures
      the per-step mutation loop rather than one-time container
      allocation (identical python work under either kernel);
    * reserve → audit → unreserve-every-other-leg run over the warm
      table, the op mix one planner wake cycle generates;
    * purge is timed over ``purge_rounds`` full-horizon purges, each on
      freshly reloaded state (the load re-reserved one
      ``_PURGE_ROUND_SPAN`` higher per round, untimed), so every timed
      call tears down a loaded table instead of re-checking a drained
      floor.

    The mid-tape and end states both re-check the PR-9 incremental
    counters (``live_counts``/``memory_bytes``) against a from-scratch
    ``recount``, so the timing harness doubles as an equivalence proof
    on the exact states the timings produced.

    Cyclic GC is paused for the duration: the loads allocate enough
    containers to trip gen-2 collections mid-timing, and a single pass
    landing inside the (milliseconds-long) purge window is a 2x outlier
    on that op.  Nothing here needs the collector — the tables are
    acyclic and refcount-freed.
    """
    import gc

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return _time_mutations_inner(make_table, warmup, load, probes,
                                     purge_rounds)
    finally:
        if gc_was_enabled:
            gc.enable()


def _time_mutations_inner(make_table, warmup, load, probes, purge_rounds):
    table = make_table()
    for path in warmup:
        table.reserve_path(path)

    started = time.perf_counter()
    for path in load:
        table.reserve_path(path)
    reserve_s = time.perf_counter() - started

    started = time.perf_counter()
    verdicts = [table.audit_path(path) for path in probes]
    audit_s = time.perf_counter() - started

    victims = load[::2]
    started = time.perf_counter()
    for path in victims:
        table.unreserve_path(path)
    unreserve_s = time.perf_counter() - started

    mid_counts = table.live_counts()
    mid_ok = (mid_counts == table.recount()
              and table.memory_bytes() == mid_counts["memory_bytes"])

    # Round 1 tears down the tape's own end state; later rounds tear
    # down a fresh full reload of the load legs, re-reserved one span
    # above the new floor (above it, so the dense graph materialises
    # only the reloaded window, never the purged gap).
    purge_s = 0.0
    for round_index in range(1, purge_rounds + 1):
        shift = round_index * _PURGE_ROUND_SPAN
        started = time.perf_counter()
        table.purge_before(shift)
        purge_s += time.perf_counter() - started
        if round_index < purge_rounds:
            for path in load:
                table.reserve_path(Path.from_cells(
                    [(x, y) for _, x, y in path.steps],
                    path.steps[0][0] + shift))

    counts = table.live_counts()
    recount = table.recount()
    return {
        "reserve_s": reserve_s, "reserve_ops": len(load),
        "reserve_ops_per_s": len(load) / max(reserve_s, 1e-9),
        "audit_s": audit_s, "audit_ops": len(probes),
        "audit_ops_per_s": len(probes) / max(audit_s, 1e-9),
        "unreserve_s": unreserve_s, "unreserve_ops": len(victims),
        "unreserve_ops_per_s": len(victims) / max(unreserve_s, 1e-9),
        "purge_s": purge_s, "purge_ops": purge_rounds,
        "purge_ops_per_s": purge_rounds / max(purge_s, 1e-9),
        "mutation_kernel": getattr(table, "mutation_kernel", ""),
        "mid_live_counts": mid_counts,
        "live_counts": counts,
        "memory_bytes": table.memory_bytes(),
        "counts_match_recount": (mid_ok and counts == recount
                                 and table.memory_bytes()
                                 == recount["memory_bytes"]),
        "verdicts": verdicts,
    }


def bench_reservation_mutations(n_paths=300, n_audits=300, seed=20220808):
    """The PR-9 micro: compiled vs python mutation loops, per table.

    Runs the same staircase op tape through all four production
    reservation structures on the paper-true 541×302 floor, once under
    the pure-python mutation bodies and once under the native kernel
    (selection via ``set_search_kernel`` — one switch governs search and
    mutations alike).  Records per-op throughput and speedups, and
    checks three identities per table: audit verdicts agree across
    kernels, the end-state live counters agree across kernels, and each
    kernel's incremental counters agree with a from-scratch recount.
    """
    workload = (f"{n_paths} reserved / {n_audits} audited / "
                f"{(n_paths + 1) // 2} unreserved warm staircase legs + "
                "4 full-horizon purges over reloaded state on the 541x302 "
                "floor, python vs compiled mutation kernel, all four "
                "production tables")
    if build_and_load() is None:
        return {"workload": workload, "compiled_available": False,
                "tables": {}}
    grid = Grid(541, 302)
    previous = search_kernel_name()
    tables = {}
    try:
        for name, make in RESERVATION_TABLE_MAKERS:
            per_kernel = {}
            for kernel in ("python", "compiled"):
                set_search_kernel(kernel)
                rng = random.Random(seed)
                warmup = _staircase_paths(rng, max(20, n_paths // 5))
                load = _staircase_paths(rng, n_paths)
                probes = _staircase_paths(rng, n_audits)
                per_kernel[kernel] = _time_mutations(
                    lambda: make(grid), warmup, load, probes)
            entry = {"state_identical": (
                per_kernel["python"].pop("verdicts")
                == per_kernel["compiled"].pop("verdicts")
                and per_kernel["python"]["mid_live_counts"]
                == per_kernel["compiled"]["mid_live_counts"]
                and per_kernel["python"]["live_counts"]
                == per_kernel["compiled"]["live_counts"]
                and per_kernel["python"]["memory_bytes"]
                == per_kernel["compiled"]["memory_bytes"]
                and per_kernel["python"]["counts_match_recount"]
                and per_kernel["compiled"]["counts_match_recount"])}
            for op in ("reserve", "unreserve", "purge", "audit"):
                entry[f"{op}_speedup"] = (
                    per_kernel["python"][f"{op}_s"]
                    / max(per_kernel["compiled"][f"{op}_s"], 1e-9))
            # The gated number: the whole mutation tape (reserve +
            # unreserve + purge), the mix one planner wake generates.
            entry["mutation_speedup"] = (
                sum(per_kernel["python"][f"{op}_s"]
                    for op in ("reserve", "unreserve", "purge"))
                / max(sum(per_kernel["compiled"][f"{op}_s"]
                          for op in ("reserve", "unreserve", "purge")), 1e-9))
            entry.update(per_kernel)
            tables[name] = entry
    finally:
        set_search_kernel(previous)
    return {"workload": workload, "compiled_available": True,
            "tables": tables}


def bench_pr9_ladder(fleets=KERNEL_LADDER_FLEETS, baseline="BENCH_PR8.json"):
    """The PR-9 ladder: compiled paper-floor rungs pinned to PR-8.

    One live NTP run per rung under the full native kernel (search +
    mutations).  Where ``baseline`` (the PR-8 kernel-ladder report) is
    on disk, each rung's makespan is pinned to the recorded compiled
    cell — the mutation kernel changes how fast reservations commit,
    never what the planner decides — and the recorded wall seconds show
    what the compiled mutation loops bought end to end.
    """
    from repro.workloads.datasets import fleet_ladder

    if build_and_load() is None:
        return {"workload": "paper-floor PR-9 ladder",
                "compiled_available": False, "cells": []}
    pins = {}
    baseline_file = FsPath(baseline)
    if baseline_file.exists():
        recorded = json.loads(baseline_file.read_text())
        for cell in recorded.get("kernel_ladder", {}).get("cells", []):
            makespan = cell.get("compiled", {}).get("makespan_ticks")
            if makespan is not None:
                pins[cell["n_robots"]] = makespan
        # The PR-9 report's own ladder records compiled cells directly.
        for cell in recorded.get("pr9_ladder", {}).get("cells", []):
            makespan = cell.get("makespan_ticks")
            if makespan is not None:
                pins[cell["n_robots"]] = makespan
    specs = fleet_ladder(scale=1.0, fleets=(), large_fleets=tuple(fleets))
    previous = search_kernel_name()
    cells = []
    try:
        set_search_kernel("compiled")
        for spec in specs:
            cell = _big_ladder_cell(spec, "NTP")
            pin = pins.get(spec.n_robots)
            if pin is not None and "makespan_ticks" in cell:
                cell["pr8_makespan_ticks"] = pin
                cell["makespan_matches_pr8"] = cell["makespan_ticks"] == pin
            cells.append(cell)
    finally:
        set_search_kernel(previous)
    return {
        "workload": "paper-floor (541x302) ladder under the compiled "
                    "search+mutation kernel, NTP, makespans pinned to "
                    f"{baseline}",
        "compiled_available": True,
        "fleets": list(fleets),
        "cells": cells,
    }


#: Obstructed paper-true floor of the PR-10 field micro: isolated
#: pillars force the *eager* int32-field regime (an unobstructed floor
#: this size serves lazy Manhattan flats, which never flood at all).
def _obstructed_paper_floor():
    blocked = {(x, y) for x in range(10, 531, 7) for y in range(10, 292, 9)}
    return Grid(541, 302, blocked=blocked)


def bench_field_kernels(n_goals=24, seed=20221010):
    """The PR-10 field micro: ``bfs_fill`` vs the python deque flood.

    Floods the same ``n_goals`` random passable goals on the obstructed
    paper-true floor under each field kernel (selection via
    ``set_search_kernel`` — the one switch governs search, mutations,
    fields and descents alike).  The buffers must be bit-identical per
    goal; the recorded speedup is in-process and machine-independent.
    """
    from repro.warehouse.grid import set_field_kernel

    compiled_available = build_and_load() is not None
    grid = _obstructed_paper_floor()
    rng = random.Random(seed)
    passable = [cell for cell in grid.cells()]
    goals = rng.sample(passable, n_goals)
    infinity = grid.n_cells + 1
    results = {}
    buffers = {}
    previous = search_kernel_name()
    try:
        for kernel in (("python", "compiled") if compiled_available
                       else ("python",)):
            set_search_kernel(kernel)
            if kernel == "python":
                set_field_kernel(None)  # belt and braces: pure flood
            started = time.perf_counter()
            flats = [grid.distance_flat(goal, unreached=infinity)
                     for goal in goals]
            seconds = time.perf_counter() - started
            buffers[kernel] = flats
            results[kernel] = {"seconds": seconds,
                               "floods_per_s": n_goals / max(seconds, 1e-9),
                               "cells_per_s": (n_goals * grid.n_cells
                                               / max(seconds, 1e-9))}
    finally:
        set_search_kernel(previous)
    payload = {
        "workload": f"{n_goals} BFS field floods on the obstructed "
                    "541x302 paper floor, python deque vs native bfs_fill",
        "n_cells": grid.n_cells,
        "compiled_available": compiled_available,
        "python": results["python"],
    }
    if compiled_available:
        payload["compiled"] = results["compiled"]
        payload["compiled_speedup"] = (results["python"]["seconds"]
                                       / max(results["compiled"]["seconds"],
                                             1e-9))
        payload["buffers_bit_identical"] = (buffers["python"]
                                            == buffers["compiled"])
    return payload


def bench_tier0_fused(n_legs=400, seed=20221011):
    """The PR-10 descent micro: ``tier0_leg`` vs the python pair.

    Runs the same cold leg tape — ``n_legs`` distinct (source, goal)
    pairs on the 64x40 floor under crossing traffic — through the
    python tier-0 body (greedy ``packed()`` walk + ``audit_chain``) and
    through the fused native entry point, per production table.  Every
    pair is distinct, so the python memo never hits: both sides pay the
    full descent+audit, which is exactly the work the fusion collapses
    into one call.  Outcome equivalence (verdict + payload) rides along
    as a correctness check on the timed tape itself.

    Cyclic GC is paused around the timed passes for the same reason
    ``_time_mutations`` pauses it: the loaded tables hold enough
    containers that a single gen-2 collection landing inside a
    milliseconds-long timed pass reads as a several-fold outlier on
    that pass.
    """
    import gc

    from repro.pathfinding.free_flow import (FreeFlowPathCache,
                                             set_descent_kernel)
    from repro.pathfinding.heuristics import HeuristicFieldCache

    compiled_available = build_and_load() is not None
    workload = (f"{n_legs} cold descent+audit legs on 64x40 with crossing "
                "traffic, python packed()+audit_chain vs fused tier0_leg, "
                "all four production tables")
    if not compiled_available:
        return {"workload": workload, "compiled_available": False,
                "tables": {}}
    rng = random.Random(seed)
    passable = list(GRID.cells())
    legs = set()
    while len(legs) < n_legs:
        legs.add(tuple(rng.sample(passable, 2)))
    legs = sorted(legs)
    previous = search_kernel_name()
    tables = {}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        set_search_kernel("compiled")
        for name, make in RESERVATION_TABLE_MAKERS:
            table = make(GRID)
            crossing_traffic(table)
            heuristics = HeuristicFieldCache(GRID)
            cache = FreeFlowPathCache(GRID, heuristics)
            for goal in {goal for __, goal in legs}:
                heuristics.field(goal)  # warm fields for both sides

            # Python pair: the tier-0 body the pipeline runs without
            # the kernel — walk the chain, then bulk-audit it.
            set_descent_kernel(None)
            python_outcomes = []
            started = time.perf_counter()
            for source, goal in legs:
                chain = cache._walk(source, goal)
                if chain is None:
                    python_outcomes.append((0, None))
                elif table.audit_chain(0, chain, len(chain.cells) - 1):
                    python_outcomes.append((1, chain.cells))
                else:
                    python_outcomes.append((3, chain.cells))
            python_s = time.perf_counter() - started

            set_descent_kernel(build_and_load())
            fused_outcomes = []
            started = time.perf_counter()
            for source, goal in legs:
                verdict, payload, __, __, __ = cache.kernel_leg(
                    table, 0, source, goal, lambda goal: (None, 0))
                fused_outcomes.append((verdict, payload))
            fused_s = time.perf_counter() - started

            # Verdict-1 payloads differ by representation (timed steps
            # vs cells); compare verdicts there and cells elsewhere.
            identical = all(
                pv == fv and (pv == 1 or tuple(p_pay or ())
                              == tuple(f_pay or ()))
                for (pv, p_pay), (fv, f_pay)
                in zip(python_outcomes, fused_outcomes))
            tables[name] = {
                "python_s": python_s,
                "fused_s": fused_s,
                "legs_per_s_python": n_legs / max(python_s, 1e-9),
                "legs_per_s_fused": n_legs / max(fused_s, 1e-9),
                "fused_speedup": python_s / max(fused_s, 1e-9),
                "outcomes_identical": identical,
            }
    finally:
        set_search_kernel(previous)
        if gc_was_enabled:
            gc.enable()
    return {"workload": workload, "compiled_available": True,
            "tables": tables}


def _tier0_ladder_cell(spec, planner_name, compiled_tier0):
    """One live rung with the field+descent kernels on or off.

    Both runs keep the compiled search and mutation kernels (the PR-8/9
    planes); only the new PR-10 planes toggle, so the contrast isolates
    what native fields + the fused descent bought on top.
    """
    from repro.pathfinding.free_flow import set_descent_kernel
    from repro.planners import PLANNERS
    from repro.sim.engine import Simulation
    from repro.warehouse.grid import set_field_kernel

    set_search_kernel("compiled")
    if not compiled_tier0:
        set_field_kernel(None)
        set_descent_kernel(None)
    state, items = spec.build()
    planner = PLANNERS[planner_name](state)
    started = time.perf_counter()
    result = Simulation(state, planner, items).run()
    wall = time.perf_counter() - started
    stats = planner.stats
    return {
        "makespan_ticks": result.metrics.makespan,
        "wall_s": wall,
        "planning_s": stats.planning_seconds,
        "selection_s": stats.selection_seconds,
        "legs_planned": stats.legs_planned,
        "legs_free_flow": stats.legs_free_flow,
        "descents": {"compiled": stats.descents_compiled,
                     "python": stats.descents_python},
    }


def bench_tier0_ladder(scale=1.0, fleets=TIER0_LADDER_FLEETS,
                       planners=("NTP", "EATP")):
    """The PR-10 live contrast: fleet-ladder rungs, tier-0 plane toggled.

    Measured in-process — the PR-9 configuration (compiled search +
    mutations, python field/descent bodies) against the full PR-10
    stack — so the recorded planning-seconds improvement is machine-
    independent.  Makespans must be bit-identical: the tier-0 kernels
    change how fast legs plan, never what they decide.
    """
    from repro.workloads.datasets import fleet_ladder

    if build_and_load() is None:
        return {"workload": "fleet-ladder tier-0 kernel contrast",
                "compiled_available": False, "cells": []}
    specs = fleet_ladder(scale=scale, fleets=fleets, large_fleets=())
    previous = search_kernel_name()
    cells = []
    try:
        for spec in specs:
            for planner_name in planners:
                pr9 = _tier0_ladder_cell(spec, planner_name, False)
                pr10 = _tier0_ladder_cell(spec, planner_name, True)
                cells.append({
                    "scenario": spec.name,
                    "planner": planner_name,
                    "n_robots": spec.n_robots,
                    "tier0_python": pr9,
                    "tier0_compiled": pr10,
                    "planning_speedup": (pr9["planning_s"]
                                         / max(pr10["planning_s"], 1e-9)),
                    "wall_speedup": (pr9["wall_s"]
                                     / max(pr10["wall_s"], 1e-9)),
                    "makespans_bit_identical": (pr9["makespan_ticks"]
                                                == pr10["makespan_ticks"]),
                })
    finally:
        set_search_kernel(previous)
    return {
        "workload": f"fleet-ladder live contrast at scale {scale:g}, "
                    "compiled search+mutations throughout, python vs "
                    "compiled field+descent planes, planners "
                    f"{'/'.join(planners)}",
        "compiled_available": True,
        "scale": scale,
        "cells": cells,
    }


def _private_dirty_kb():
    """This process's private-dirty footprint (KB), via smaps_rollup.

    Private pages are the quantity arena sharing eliminates: a worker
    flooding its own fields dirties ~650 KB per paper-floor goal, while
    an arena attacher maps the same physical pages every sibling maps
    (they show up as shared, not private).  Plain ``ru_maxrss`` cannot
    see the difference — resident shared pages count there too.
    """
    try:
        with open("/proc/self/smaps_rollup") as fh:
            for line in fh:
                if line.startswith("Private_Dirty:"):
                    return int(line.split()[1])
    except OSError:
        return None
    return None


def _arena_sharing_worker(mode, handle, grid_reduce, goals, queue):
    """One matrix-style worker: materialise every field, report memory."""
    from repro.pathfinding.heuristics import (HeuristicFieldCache,
                                              attach_field_arena)

    cls, args = grid_reduce
    grid = cls(*args)
    heuristics = HeuristicFieldCache(grid)
    if mode == "arena":
        heuristics.attach_arena(attach_field_arena(handle))
    before = _private_dirty_kb()
    total = 0
    for goal in goals:
        field = heuristics.field(goal)
        # Touch every page the way a planner's searches would.
        total += field.flat[0] + field.flat[len(field.flat) - 1]
    after = _private_dirty_kb()
    queue.put({"mode": mode, "checksum": total,
               "private_dirty_delta_kb": (None if before is None
                                          else after - before),
               "field_nbytes": sum(
                   field.nbytes for field in heuristics._fields.values())})


def bench_field_arena_sharing(n_goals=12, workers=3, seed=20221012):
    """The PR-10 arena micro: worker RSS with shared vs duplicated fields.

    Spawns ``workers`` matrix-style worker processes twice over the same
    ``n_goals`` eager paper-floor fields — once attaching the shared
    :class:`FieldArena` (what ``run_matrix --workers N`` now ships via
    initargs) and once flooding locally (the pre-arena behaviour) — and
    records each worker's private-dirty delta.  Shared fields live in
    one shared-memory block mapped by every worker, so the arena
    workers' private growth must stay far below the local flooders'.
    """
    import multiprocessing

    from repro.pathfinding.heuristics import FieldArena

    grid = _obstructed_paper_floor()
    rng = random.Random(seed)
    goals = rng.sample(list(grid.cells()), n_goals)
    arena = FieldArena.build(grid, goals)
    context = multiprocessing.get_context("spawn")
    results = {"arena": [], "local": []}
    try:
        for mode in ("arena", "local"):
            queue = context.Queue()
            procs = [context.Process(
                target=_arena_sharing_worker,
                args=(mode, arena.handle(), grid.__reduce__(), goals, queue))
                for __ in range(workers)]
            for proc in procs:
                proc.start()
            for __ in procs:
                # A bounded wait so one crashed worker fails the micro
                # loudly instead of deadlocking the whole bench run.
                results[mode].append(queue.get(timeout=300))
            for proc in procs:
                proc.join(timeout=60)
    finally:
        arena.close()
    checksums = {entry["checksum"] for entries in results.values()
                 for entry in entries}
    payload = {
        "workload": f"{workers} spawned workers x {n_goals} eager fields "
                    "on the obstructed 541x302 paper floor, shared arena "
                    "vs per-worker floods",
        "arena_block_bytes": 4 * grid.n_cells * n_goals,
        "checksums_identical": len(checksums) == 1,
        "per_worker_field_nbytes": {
            mode: [entry["field_nbytes"] for entry in entries]
            for mode, entries in results.items()},
    }
    deltas = {mode: [entry["private_dirty_delta_kb"] for entry in entries]
              for mode, entries in results.items()}
    payload["private_dirty_delta_kb"] = deltas
    if all(delta is not None
           for mode_deltas in deltas.values() for delta in mode_deltas):
        arena_peak = max(deltas["arena"])
        local_peak = max(deltas["local"])
        payload["duplication_ratio"] = (local_peak
                                        / max(arena_peak, 1))
        payload["fields_shared"] = (arena_peak
                                    < 0.5 * (4 * grid.n_cells * n_goals
                                             / 1024))
    return payload


def report_fields(fields, out_path):
    """Write the PR-10 report and print one line per section.

    Returns the failing items — a field-flood speedup under
    ``SMOKE_MIN_FIELD_SPEEDUP``, a fused-descent table under
    ``SMOKE_MIN_TIER0_SPEEDUP`` or with diverging outcomes, a ladder
    cell whose makespan moved, or arena workers whose private memory
    shows duplicated fields — so the smoke gate can fail the build.
    """
    report = {
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    report.update(fields)
    FsPath(out_path).write_text(json.dumps(report, indent=2) + "\n")
    failed = []
    micro = fields["field_kernels"]
    if micro["compiled_available"]:
        print(f"fields   : flood {micro['python']['floods_per_s']:.1f}/s "
              f"python -> {micro['compiled']['floods_per_s']:.1f}/s "
              f"compiled — {micro['compiled_speedup']:.2f}x "
              f"(floor {SMOKE_MIN_FIELD_SPEEDUP}x) "
              f"identical={micro['buffers_bit_identical']}")
        if (micro["compiled_speedup"] < SMOKE_MIN_FIELD_SPEEDUP
                or not micro["buffers_bit_identical"]):
            failed.append({"section": "field_kernels",
                           "speedup": micro["compiled_speedup"],
                           "identical": micro["buffers_bit_identical"]})
    else:
        print("fields   : native kernel unavailable — python flood at "
              f"{micro['python']['floods_per_s']:.1f} floods/s "
              "(speedup gate skipped)")
    for name, entry in fields["tier0_fused"].get("tables", {}).items():
        print(f"fields   : {name:>16} fused descent+audit "
              f"{entry['fused_speedup']:5.2f}x "
              f"({entry['legs_per_s_python']:,.0f} -> "
              f"{entry['legs_per_s_fused']:,.0f} legs/s; floor "
              f"{SMOKE_MIN_TIER0_SPEEDUP}x) "
              f"identical={entry['outcomes_identical']}")
        if (entry["fused_speedup"] < SMOKE_MIN_TIER0_SPEEDUP
                or not entry["outcomes_identical"]):
            failed.append({"section": "tier0_fused", "table": name,
                           "speedup": entry["fused_speedup"],
                           "identical": entry["outcomes_identical"]})
    for cell in fields.get("tier0_ladder", {}).get("cells", []):
        label = f"{cell['scenario']:>10} {cell['planner']:>4}"
        compiled = cell["tier0_compiled"]
        print(f"fields   : {label} plan "
              f"{cell['tier0_python']['planning_s']:6.2f}s -> "
              f"{compiled['planning_s']:6.2f}s "
              f"({cell['planning_speedup']:.2f}x, "
              f"{compiled['descents']['compiled']} compiled descents) "
              f"identical={cell['makespans_bit_identical']}")
        if not cell["makespans_bit_identical"]:
            failed.append(cell)
    arena = fields.get("field_arena")
    if arena is not None:
        ratio = arena.get("duplication_ratio")
        print(f"fields   : arena sharing — private-dirty deltas "
              f"{arena['private_dirty_delta_kb']} KB "
              f"(block {arena['arena_block_bytes'] / 1e6:.1f} MB, "
              f"ratio {ratio if ratio is None else f'{ratio:.1f}x'}) "
              f"shared={arena.get('fields_shared')} "
              f"checksums={arena['checksums_identical']}")
        if (not arena["checksums_identical"]
                or arena.get("fields_shared") is False):
            failed.append({"section": "field_arena",
                           "shared": arena.get("fields_shared"),
                           "checksums": arena["checksums_identical"]})
    print(f"wrote {out_path}")
    return failed


def report_reservations(reservations, out_path):
    """Write the PR-9 report and print one line per table and rung.

    Returns the failing items — a table whose compiled reserve or purge
    speedup is under ``SMOKE_MIN_RESERVATION_SPEEDUP``, any cross-kernel
    or counter divergence, a rung that errored, or a rung whose makespan
    drifted from the PR-8 pin — so the smoke gate can fail the build.
    """
    report = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "reservation_mutations": reservations["reservation_mutations"],
    }
    if "pr9_ladder" in reservations:
        report["pr9_ladder"] = reservations["pr9_ladder"]
    FsPath(out_path).write_text(json.dumps(report, indent=2) + "\n")
    failed = []
    micro = reservations["reservation_mutations"]
    if not micro["compiled_available"]:
        print("reserve  : native kernel unavailable — pure-python mutation "
              "loops only (speedup gate skipped)")
    for name, entry in micro["tables"].items():
        print(f"reserve  : {name:>16} mutation {entry['mutation_speedup']:5.2f}x "
              f"(reserve {entry['reserve_speedup']:5.2f}x "
              f"unreserve {entry['unreserve_speedup']:5.2f}x "
              f"purge {entry['purge_speedup']:5.2f}x "
              f"audit {entry['audit_speedup']:5.2f}x; floor "
              f"{SMOKE_MIN_RESERVATION_SPEEDUP}x on mutation) "
              f"identical={entry['state_identical']}")
        if not entry["state_identical"]:
            failed.append({"section": "reservation_mutations",
                           "table": name, "reason": "state diverged"})
        if entry["mutation_speedup"] < SMOKE_MIN_RESERVATION_SPEEDUP:
            failed.append({"section": "reservation_mutations", "table": name,
                           "mutation_speedup": entry["mutation_speedup"]})
    for cell in reservations.get("pr9_ladder", {}).get("cells", []):
        label = f"{cell['scenario']:>10} {cell['planner']:>4}"
        if "error" in cell:
            failed.append(cell)
            print(f"reserve  : {label} FAILED — {cell['error']}")
            continue
        pinned = cell.get("makespan_matches_pr8")
        pin_note = ("unpinned" if pinned is None
                    else f"matches_pr8={pinned}")
        reserves = cell.get("reserves", {})
        print(f"reserve  : {label} ({cell['n_robots']:>4} robots) wall "
              f"{cell['wall_s']:7.1f}s plan {cell['planning_s']:7.1f}s "
              f"makespan {cell['makespan_ticks']} ({pin_note}, "
              f"{reserves.get('compiled', 0)} compiled commits)")
        if pinned is False:
            failed.append(cell)
    print(f"wrote {out_path}")
    return failed


def report_big_ladder(big, out_path):
    """Write the PR-6 report and print one line per cell.

    Returns the failed cells (error, or over the smoke ceiling when one
    is attached) so the smoke gate can fail the build on them.
    """
    report = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "big_ladder": big,
    }
    FsPath(out_path).write_text(json.dumps(report, indent=2) + "\n")
    failed = []
    ceiling = big.get("ceiling_s")
    for cell in big["cells"]:
        label = f"{cell['scenario']:>10} {cell['planner']:>4}"
        if "error" in cell:
            failed.append(cell)
            print(f"bigladder: {label} FAILED — {cell['error']}")
            continue
        print(f"bigladder: {label} ({cell['n_robots']:>4} robots) "
              f"makespan={cell['makespan_ticks']:>6,} "
              f"wall={cell['wall_s']:7.1f}s "
              f"plan={cell['planning_s']:7.1f}s "
              f"select={cell['selection_s']:5.1f}s "
              f"rescued={cell['rescued_legs']} "
              f"batch={cell['batched_legs']}/{cell['batch_conflicts']} "
              f"peak={cell['peak_memory_bytes'] / 1e6:.0f}MB "
              f"rss={cell['ru_maxrss_kb'] / 1024:.0f}MB")
        if ceiling is not None and cell["wall_s"] > ceiling:
            failed.append(cell)
            print(f"bigladder: {label} over the {ceiling:.0f}s smoke "
                  "ceiling")
    print(f"wrote {out_path}")
    return failed


def report_ladder(ladder, out_path):
    """Write the ladder report and print one line per cell."""
    report = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "fleet_ladder": ladder,
    }
    FsPath(out_path).write_text(json.dumps(report, indent=2) + "\n")
    failed = []
    for cell in ladder["cells"]:
        label = f"{cell['scenario']:>10} {cell['planner']:>4}"
        if "error" in cell:
            failed.append(cell)
            print(f"ladder   : {label} FAILED — {cell['error']}")
            continue
        legs = cell["legs"]
        fallbacks = legs["windowed"] + legs["wait"]
        print(f"ladder   : {label} makespan={cell['makespan_ticks']:>6,} "
              f"wall={cell['wall_s']:6.2f}s "
              f"select={cell['selection_s']:6.2f}s "
              f"plan={cell['planning_s']:6.2f}s "
              f"fallback legs={fallbacks} "
              f"(windowed {legs['windowed']}, wait {legs['wait']}, "
              f"replans {cell['horizon_replans']})")
    print(f"wrote {out_path}")
    return failed


def write_engine_report(engine, out_path):
    report = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "engine": engine,
    }
    FsPath(out_path).write_text(json.dumps(report, indent=2) + "\n")
    return report


def report_engine(engine, out_path):
    """Write the engine report and print one line per rung.

    Rungs that no recording planner could drain carry an ``error`` key
    instead of timings; they are reported, not crashed on.
    """
    write_engine_report(engine, out_path)
    for rung in engine["rungs"]:
        if "error" in rung:
            print(f"engine   : {rung['scenario']:>10} "
                  f"({rung['n_robots']:>3} robots) FAILED to record — "
                  f"{rung['error']}")
            continue
        print(f"engine   : {rung['scenario']:>10} ({rung['n_robots']:>3} "
              f"robots) {rung['legacy']['wall_s']:.3f}s -> "
              f"{rung['event']['wall_s']:.3f}s "
              f"({rung['speedup']:.1f}x, "
              f"{rung['event']['events_per_s']:,.0f} events/s, "
              f"{rung['quiet_tick_fraction']:.0%} quiet ticks)")
    print(f"wrote {out_path}")


def bench_soak(smoke=False):
    """The PR-7 service-mode soak (see :mod:`repro.experiments.soak`).

    Smoke uses the CI-sized spec; the full run streams
    ``SOAK_DURATION_TICKS`` ticks.  Both include the mid-run
    checkpoint→restore→continue bit-identity proof.
    """
    if smoke:
        spec = smoke_spec()
    else:
        spec = SoakSpec(duration=SOAK_DURATION_TICKS, window_ticks=5_000)
    start = time.perf_counter()
    report = run_soak(spec)
    report["wall_s"] = time.perf_counter() - start
    report["smoke"] = smoke
    return report


def report_soak(report, out_path):
    """Write the soak report; returns True when a gate failed."""
    FsPath(out_path).write_text(json.dumps(report, indent=2, sort_keys=True)
                                + "\n")
    print(render_soak(report))
    print(f"wrote {out_path}")
    return not soak_ok(report)


def run_smoke(engine_out="BENCH_PR3.json", ladder_out="BENCH_PR4.json",
              fastpath_out="BENCH_PR5.json", big_out="BENCH_PR6.json",
              soak_out="BENCH_PR7.json", kernel_out="BENCH_PR8.json",
              pr9_out="BENCH_PR9.json", fields_out="BENCH_PR10.json"):
    """The CI regression gate: quick benchmarks, hard floors.

    Four gates: the PR-1 packed-search speedup over the in-process seed
    (the floor also guards the PR-5 bucket-queue rewrite of the same
    kernel), the PR-3 event-engine speedup over the in-process frozen
    per-tick engine on a reduced-scale 200-robot fleet-ladder rung (plus
    an absolute ``events_per_s`` backstop), the PR-4 full-fleet-ladder
    completion gate — all five planners must drain the 200-robot rung
    with no ``PathNotFoundError`` escaping the windowed pipeline — and
    the PR-5 fast-path gate: live planning seconds on the Fleet-100/200
    rungs must improve by ``SMOKE_MIN_FASTPATH_SPEEDUP`` over the PR-4
    chain run in-process with tier 0 disabled, with bit-identical
    makespans.  The engine, ladder and fast-path numbers are written to
    ``engine_out`` / ``ladder_out`` / ``fastpath_out`` so CI can upload
    them as workflow artifacts.
    """
    st = bench_st_astar(rounds=8)
    print(f"smoke st_astar: {st['packed']['expansions_per_s']:,.0f} exp/s "
          f"(seed {st['seed']['expansions_per_s']:,.0f}) — "
          f"{st['speedup']:.2f}x vs in-process seed "
          f"(floor {SMOKE_MIN_SEARCH_SPEEDUP}x)")
    if st["speedup"] < SMOKE_MIN_SEARCH_SPEEDUP:
        raise SystemExit(
            f"st_astar.packed.expansions_per_s regressed: speedup "
            f"{st['speedup']:.2f}x < {SMOKE_MIN_SEARCH_SPEEDUP}x floor")

    # The PR-8 gate: the native kernel must clear the ROADMAP's 3x
    # expansions/s floor over the pure-python core.  The smoke report
    # carries the micro only; the paper-floor kernel ladder is the full
    # run's (or --kernel-only's) job.
    kernels = {"search_kernels": bench_search_kernels(rounds=8)}
    kernels["search_kernels"]["smoke"] = True
    failed = report_kernels(kernels, kernel_out)
    if failed:
        raise SystemExit(
            f"native-kernel gate failed: compiled speedup below "
            f"{SMOKE_MIN_COMPILED_SPEEDUP}x floor")

    # The PR-9 gate: the compiled reservation-mutation loops must at
    # least double reserve and purge throughput over the pure-python
    # bodies on the paper floor, with cross-kernel state identical and
    # incremental counters matching a recount.  The smoke report carries
    # the micro only; the pinned paper-floor ladder is the full run's
    # (or --reservations-only's) job.
    reservations = {"reservation_mutations":
                    bench_reservation_mutations(n_paths=120, n_audits=120)}
    reservations["reservation_mutations"]["smoke"] = True
    failed = report_reservations(reservations, pr9_out)
    if failed:
        raise SystemExit(
            f"reservation-kernel gate failed: {failed}")

    # The PR-10 gate: the native field flood must clear the 5x floor
    # over the python deque flood, the fused tier-0 entry point the 2x
    # floor over the python descent+audit pair, and the live Fleet-200
    # contrast must improve planning seconds with bit-identical
    # makespans.  The paper-floor ladder pin and the arena RSS micro
    # are the full run's (or --fields-only's) job.
    fields = {"field_kernels": bench_field_kernels(n_goals=8),
              "tier0_fused": bench_tier0_fused(n_legs=300),
              "tier0_ladder": bench_tier0_ladder(scale=0.35, fleets=(200,)),
              "smoke": True}
    failed = report_fields(fields, fields_out)
    if failed:
        raise SystemExit(f"tier-0 field/descent kernel gate failed: {failed}")

    engine = bench_engine(scale=0.35, fleets=(200,))
    engine["smoke"] = True
    write_engine_report(engine, engine_out)
    rung = engine["rungs"][0]
    if "error" in rung:
        raise SystemExit(
            f"engine smoke could not record {rung['scenario']}: "
            f"{rung['error']}")
    events_per_s = rung["event"]["events_per_s"]
    print(f"smoke engine  : {events_per_s:,.0f} events/s, "
          f"{rung['speedup']:.2f}x vs in-process frozen engine on "
          f"{rung['scenario']} ({rung['n_robots']} robots) — floors "
          f"{SMOKE_MIN_ENGINE_SPEEDUP}x / "
          f"{SMOKE_MIN_ENGINE_EVENTS_PER_S:,} events/s; wrote {engine_out}")
    if rung["speedup"] < SMOKE_MIN_ENGINE_SPEEDUP:
        raise SystemExit(
            f"engine regressed: replay speedup {rung['speedup']:.2f}x < "
            f"{SMOKE_MIN_ENGINE_SPEEDUP}x floor")
    if events_per_s < SMOKE_MIN_ENGINE_EVENTS_PER_S:
        raise SystemExit(
            f"engine.events_per_s regressed: {events_per_s:,.0f} < "
            f"{SMOKE_MIN_ENGINE_EVENTS_PER_S:,} floor")

    ladder = bench_fleet_ladder(scale=0.35, fleets=(200,))
    ladder["smoke"] = True
    failed = report_ladder(ladder, ladder_out)
    if failed:
        names = [f"{cell['scenario']}/{cell['planner']}" for cell in failed]
        raise SystemExit(
            f"fleet-ladder completion gate failed: {names} did not drain "
            f"the 200-robot rung")

    fastpath = bench_planning_fastpath(scale=0.35)
    fastpath["smoke"] = True
    failed = report_fastpath(fastpath, fastpath_out)
    if failed:
        names = [f"{cell['scenario']}/{cell['planner']}" for cell in failed]
        raise SystemExit(
            f"fast-path gate failed on {names}: planning speedup below "
            f"{SMOKE_MIN_FASTPATH_SPEEDUP}x or makespan diverged from "
            f"the tier-0-off chain")

    # The PR-6 gate: the paper-true 541×302 floor's 500-robot rung must
    # drain end to end under the wall-clock ceiling — the regime the
    # paper excluded, which pre-PR-6 did not finish in ten minutes.
    big = bench_big_ladder(fleets=(500,), planners=("NTP",))
    big["smoke"] = True
    big["ceiling_s"] = SMOKE_BIG_RUNG_CEILING_S
    big["sharded_audit"] = bench_sharded_audit()
    failed = report_big_ladder(big, big_out)
    if failed:
        names = [f"{cell['scenario']}/{cell['planner']}" for cell in failed]
        raise SystemExit(
            f"paper-floor gate failed: {names} did not drain the "
            f"500-robot rung under {SMOKE_BIG_RUNG_CEILING_S:.0f}s")
    audit = big["sharded_audit"]
    print(f"sharded  : reserve {audit['reserve_speedup']:.2f}x, audit "
          f"{audit['audit_speedup']:.2f}x (sub-1 by design: tile "
          f"indirection), memory {audit['memory_advantage']:.1f}x "
          f"(floor {SMOKE_MIN_SHARDED_MEMORY_ADVANTAGE}x), "
          f"verdicts identical={audit['verdicts_identical']}")
    if not audit["verdicts_identical"]:
        raise SystemExit(
            "sharded-vs-global audit verdicts diverged in the PR-6 micro")
    if audit["memory_advantage"] < SMOKE_MIN_SHARDED_MEMORY_ADVANTAGE:
        raise SystemExit(
            f"sharded reservation memory advantage regressed: "
            f"{audit['memory_advantage']:.2f}x < "
            f"{SMOKE_MIN_SHARDED_MEMORY_ADVANTAGE}x floor")

    # The PR-7 gate: a bounded service-mode soak must hold the
    # reservation footprint flat and survive a mid-run
    # checkpoint→restore→continue with a bit-identical final view.
    if report_soak(bench_soak(smoke=True), soak_out):
        raise SystemExit(
            "service-mode soak gate failed: reservation memory grew past "
            "the flat envelope or the restored run diverged")
    print("smoke gates passed")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.35,
                        help="Table III dataset scale (default 0.35, the "
                             "benchmark harness scale)")
    parser.add_argument("--out", default="BENCH_PR1.json",
                        help="output path (default BENCH_PR1.json)")
    parser.add_argument("--engine-out", default="BENCH_PR3.json",
                        help="output path of the engine kernel report "
                             "(default BENCH_PR3.json)")
    parser.add_argument("--ladder-out", default="BENCH_PR4.json",
                        help="output path of the planner-layer fleet-"
                             "ladder report (default BENCH_PR4.json)")
    parser.add_argument("--fastpath-out", default="BENCH_PR5.json",
                        help="output path of the tier-0 fast-path "
                             "planning kernel report (default "
                             "BENCH_PR5.json)")
    parser.add_argument("--big-out", default="BENCH_PR6.json",
                        help="output path of the paper-floor big-ladder "
                             "report (default BENCH_PR6.json)")
    parser.add_argument("--soak-out", default="BENCH_PR7.json",
                        help="output path of the service-mode soak report "
                             "(default BENCH_PR7.json)")
    parser.add_argument("--kernel-out", default="BENCH_PR8.json",
                        help="output path of the native-kernel report "
                             "(default BENCH_PR8.json)")
    parser.add_argument("--pr9-out", default="BENCH_PR9.json",
                        help="output path of the reservation-mutation "
                             "kernel report (default BENCH_PR9.json)")
    parser.add_argument("--fields-out", default="BENCH_PR10.json",
                        help="output path of the tier-0 field/descent "
                             "kernel report (default BENCH_PR10.json)")
    parser.add_argument("--fields-only", action="store_true",
                        help="run only the PR-10 micros (native field "
                             "flood vs python, fused tier-0 descent+audit "
                             "vs the python pair, the live fleet-ladder "
                             "contrast, the paper-floor ladder pinned to "
                             "BENCH_PR9.json, and the shared-arena worker "
                             "RSS micro) and write BENCH_PR10.json")
    parser.add_argument("--reservations-only", action="store_true",
                        help="run only the PR-9 reservation-mutation "
                             "micro (reserve/unreserve/purge/audit ops/s "
                             "per table, python vs compiled) plus the "
                             "compiled paper-floor ladder pinned to the "
                             "BENCH_PR8.json makespans, and write "
                             "BENCH_PR9.json")
    parser.add_argument("--kernel-only", action="store_true",
                        help="run only the native-kernel micro plus the "
                             "paper-floor kernel ladder (500/1000/3000 "
                             "robots, python vs compiled) and write "
                             "BENCH_PR8.json")
    parser.add_argument("--kernel-fleets", default=None,
                        help="comma-separated rungs of the --kernel-only "
                             "ladder (default 500,1000,3000)")
    parser.add_argument("--soak-only", action="store_true",
                        help="run only the service-mode soak "
                             f"({SOAK_DURATION_TICKS:,} ticks of stream, "
                             "checkpoint/restore proof) and write "
                             "BENCH_PR7.json")
    parser.add_argument("--big-only", action="store_true",
                        help="run only the paper-floor big ladder "
                             "(541x302, 500/1000/3000 robots, NTP+EATP) "
                             "plus the sharded-audit micro and write "
                             "BENCH_PR6.json")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile the live Fleet-200 NTP run at "
                             "--engine-scale, print the top-20 "
                             "cumulative hot spots and write them to "
                             "--profile-out, then exit")
    parser.add_argument("--profile-out", default="BENCH_PROFILE.txt",
                        help="file the --profile top list is written to "
                             "(default BENCH_PROFILE.txt)")
    parser.add_argument("--engine-scale", type=float, default=1.0,
                        help="fleet-ladder scale of the full engine "
                             "benchmark (default 1.0, the paper-scale "
                             "floor; --smoke always uses 0.35)")
    parser.add_argument("--ladder-only", action="store_true",
                        help="run only the planner-layer fleet ladder "
                             "and write BENCH_PR4.json")
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-fast CI gate: fail if the packed "
                             "search speedup drops below "
                             f"{SMOKE_MIN_SEARCH_SPEEDUP}x or the engine "
                             f"speedup below {SMOKE_MIN_ENGINE_SPEEDUP}x; "
                             "writes only the engine report")
    parser.add_argument("--engine-only", action="store_true",
                        help="run only the engine kernel and write "
                             "BENCH_PR3.json (leaves BENCH_PR1.json "
                             "untouched)")
    args = parser.parse_args(argv)

    if args.profile:
        run_profile(args.engine_scale, out_path=args.profile_out)
        return

    if args.smoke:
        run_smoke(args.engine_out, args.ladder_out, args.fastpath_out,
                  args.big_out, args.soak_out, args.kernel_out,
                  args.pr9_out, args.fields_out)
        return

    if args.fields_only:
        fields = {"field_kernels": bench_field_kernels(),
                  "tier0_fused": bench_tier0_fused(),
                  "tier0_ladder": bench_tier0_ladder(),
                  "pr10_ladder": bench_pr9_ladder(fleets=(500,),
                                                  baseline="BENCH_PR9.json"),
                  "field_arena": bench_field_arena_sharing()}
        failed = report_fields(fields, args.fields_out)
        for cell in fields["pr10_ladder"].get("cells", []):
            pinned = cell.get("makespan_matches_pr8")
            print(f"fields   : {cell['scenario']:>10} paper-floor wall "
                  f"{cell.get('wall_s', 0):7.1f}s plan "
                  f"{cell.get('planning_s', 0):7.1f}s makespan "
                  f"{cell.get('makespan_ticks')} "
                  f"(matches_pr9={pinned})")
            if pinned is False or "error" in cell:
                failed.append(cell)
        if failed:
            raise SystemExit(f"tier-0 field/descent gates failed: {failed}")
        return

    if args.reservations_only:
        fleets = (tuple(int(n) for n in args.kernel_fleets.split(","))
                  if args.kernel_fleets else KERNEL_LADDER_FLEETS)
        reservations = {"reservation_mutations": bench_reservation_mutations(),
                        "pr9_ladder": bench_pr9_ladder(fleets=fleets)}
        failed = report_reservations(reservations, args.pr9_out)
        if failed:
            raise SystemExit(f"reservation-kernel gates failed: {failed}")
        return

    if args.kernel_only:
        fleets = (tuple(int(n) for n in args.kernel_fleets.split(","))
                  if args.kernel_fleets else KERNEL_LADDER_FLEETS)
        kernels = {"search_kernels": bench_search_kernels(),
                   "kernel_ladder": bench_kernel_ladder(fleets=fleets)}
        failed = report_kernels(kernels, args.kernel_out)
        if failed:
            raise SystemExit(f"native-kernel gates failed: {failed}")
        return

    if args.soak_only:
        if report_soak(bench_soak(), args.soak_out):
            raise SystemExit("service-mode soak gate failed")
        return

    if args.engine_only:
        report_engine(bench_engine(scale=args.engine_scale), args.engine_out)
        return

    if args.ladder_only:
        report_ladder(bench_fleet_ladder(scale=args.engine_scale),
                      args.ladder_out)
        return

    if args.big_only:
        big = bench_big_ladder()
        big["sharded_audit"] = bench_sharded_audit()
        report_big_ladder(big, args.big_out)
        return

    report = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "st_astar": bench_st_astar(),
        "purge": bench_purge(),
        "table3": bench_table3(args.scale),
    }
    FsPath(args.out).write_text(json.dumps(report, indent=2) + "\n")

    report_engine(bench_engine(scale=args.engine_scale), args.engine_out)
    report_ladder(bench_fleet_ladder(scale=args.engine_scale),
                  args.ladder_out)
    report_fastpath(bench_planning_fastpath(scale=args.engine_scale),
                    args.fastpath_out)
    big = bench_big_ladder()
    big["sharded_audit"] = bench_sharded_audit()
    report_big_ladder(big, args.big_out)
    kernels = {"search_kernels": bench_search_kernels(),
               "kernel_ladder": bench_kernel_ladder()}
    report_kernels(kernels, args.kernel_out)
    report_reservations(
        {"reservation_mutations": bench_reservation_mutations()},
        args.pr9_out)
    if report_soak(bench_soak(), args.soak_out):
        raise SystemExit("service-mode soak gate failed")

    st, purge, t3 = report["st_astar"], report["purge"], report["table3"]
    print(f"st_astar : {st['packed']['expansions_per_s']:,.0f} exp/s "
          f"(seed {st['seed']['expansions_per_s']:,.0f}) — "
          f"{st['speedup']:.2f}x, "
          f"{st['calls_per_expansion_ratio']:.1f}x fewer calls/expansion")
    print(f"purge    : {purge['bucketed']['purge_latency_s'] * 1e6:,.1f} µs "
          f"(seed {purge['seed']['purge_latency_s'] * 1e6:,.1f} µs) — "
          f"{purge['speedup']:.2f}x")
    print(f"table3   : {t3['wall_s']:.1f}s vs seed {t3['seed_wall_s']:.1f}s "
          f"(scale {t3['scale']}), makespans identical: "
          f"{t3['makespans_bit_identical']}")
    if not t3["makespans_bit_identical"]:
        raise SystemExit("Table III makespans diverged from the seed stack")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
