#!/usr/bin/env python
"""Record the PR-1 performance trajectory into ``BENCH_PR1.json``.

Measures the packed-integer search core and the tick-bucketed reservation
purge **head-to-head against the frozen seed implementations**
(``repro.pathfinding._legacy``) in one process, so the recorded speedups
cannot be an artefact of machine drift between runs.  Three sections:

* ``st_astar`` — expansions/sec of the spatiotemporal A* micro-kernel
  (the Fig. 11 hot loop), plus Python-level function calls per expansion
  measured with cProfile.
* ``purge`` — latency of the periodic reservation *update* on a CDT
  loaded with dense traffic (the Sec. VI-B operation the bucketing fixes).
* ``table3`` — end-to-end Table III wall-time at a reduced scale, with a
  bit-identity check of every planner's makespan between the two stacks.

Run from the repo root::

    PYTHONPATH=src python scripts/bench_kernels.py [--scale 0.35] [--out BENCH_PR1.json]

Future PRs: re-run before and after touching the pathfinding package and
keep ``st_astar.packed.expansions_per_s`` from regressing.

``--smoke`` is the CI gate: a seconds-fast subset (reduced rounds, no
end-to-end Table III timing) that fails the build when the packed search
core's speedup over the in-process seed implementation falls below
``SMOKE_MIN_SEARCH_SPEEDUP``.  Comparing against the seed *in the same
process* keeps the gate machine-independent — absolute expansions/sec
vary across runners, the relative speedup does not.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import platform
import sys
import time
from pathlib import Path as FsPath

_REPO = FsPath(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO / "src"))
sys.path.insert(0, str(_REPO / "benchmarks"))

from _bench_common import crossing_traffic, dense_traffic  # noqa: E402
from repro.pathfinding._legacy import (LegacyConflictDetectionTable,  # noqa: E402
                                       legacy_find_path,
                                       seed_planner_patches)
from repro.pathfinding.cdt import ConflictDetectionTable  # noqa: E402
from repro.pathfinding.st_astar import SearchStats, find_path  # noqa: E402
from repro.warehouse.grid import Grid  # noqa: E402

GRID = Grid(64, 40)
SEARCH_ENDPOINTS = [((0, 0), (60, 35)), ((63, 0), (2, 38)), ((5, 20), (58, 4))]

#: The recorded PR-1 speedup is ~2.8x; CI fails below this floor (margin
#: for noisy shared runners).
SMOKE_MIN_SEARCH_SPEEDUP = 1.5


def _time_search(search_fn, make_table, rounds=30):
    """Total seconds and expansions for ``rounds`` sweeps of the endpoints."""
    table = make_table()
    crossing_traffic(table)
    # Warm-up: populates the per-goal field caches so both variants are
    # measured in their steady state (the seed has no cache to warm).
    for source, goal in SEARCH_ENDPOINTS:
        search_fn(GRID, table, source, goal, 0)
    expansions = 0
    started = time.perf_counter()
    for __ in range(rounds):
        for source, goal in SEARCH_ENDPOINTS:
            stats = SearchStats()
            search_fn(GRID, table, source, goal, 0, stats=stats)
            expansions += stats.expansions
    elapsed = time.perf_counter() - started
    return elapsed, expansions


def _calls_per_expansion(search_fn, make_table):
    """Python-level function calls per node expansion, via cProfile."""
    table = make_table()
    crossing_traffic(table)
    source, goal = SEARCH_ENDPOINTS[0]
    search_fn(GRID, table, source, goal, 0)  # warm field caches
    stats = SearchStats()
    profiler = cProfile.Profile()
    profiler.enable()
    search_fn(GRID, table, source, goal, 0, stats=stats)
    profiler.disable()
    calls = sum(entry.callcount for entry in profiler.getstats())
    return calls / max(1, stats.expansions)


def bench_st_astar(rounds=30):
    seed_s, seed_exp = _time_search(legacy_find_path,
                                    LegacyConflictDetectionTable, rounds)
    packed_s, packed_exp = _time_search(find_path, ConflictDetectionTable,
                                        rounds)
    assert seed_exp == packed_exp, (
        f"expansion counts diverged: seed {seed_exp} vs packed {packed_exp}")
    seed_cpe = _calls_per_expansion(legacy_find_path,
                                    LegacyConflictDetectionTable)
    packed_cpe = _calls_per_expansion(find_path, ConflictDetectionTable)
    return {
        "workload": "3 endpoints x 30 rounds on 64x40 with crossing traffic",
        "expansions": packed_exp,
        "seed": {"seconds": seed_s,
                 "expansions_per_s": seed_exp / seed_s,
                 "calls_per_expansion": seed_cpe},
        "packed": {"seconds": packed_s,
                   "expansions_per_s": packed_exp / packed_s,
                   "calls_per_expansion": packed_cpe},
        "speedup": (packed_exp / packed_s) / (seed_exp / seed_s),
        "calls_per_expansion_ratio": seed_cpe / packed_cpe,
    }


def _time_purges(make_table, rounds=12):
    """Mean seconds per periodic purge sweep (cadence-32 floors)."""
    total = 0.0
    n_purges = 0
    for __ in range(rounds):
        table = make_table()
        dense_traffic(table, GRID)
        floors = list(range(32, 833, 32))
        started = time.perf_counter()
        for floor in floors:
            table.purge_before(floor)
        total += time.perf_counter() - started
        n_purges += len(floors)
    return total / n_purges


def bench_purge():
    seed_latency = _time_purges(LegacyConflictDetectionTable)
    bucketed_latency = _time_purges(ConflictDetectionTable)
    return {
        "workload": "400 paths x 30 cells over an 830-tick horizon, "
                    "cadence-32 purge sweep",
        "seed": {"purge_latency_s": seed_latency},
        "bucketed": {"purge_latency_s": bucketed_latency},
        "speedup": seed_latency / bucketed_latency,
    }


def bench_table3(scale):
    from repro.experiments.table3 import run_table3

    started = time.perf_counter()
    packed_table = run_table3(scale=scale)
    packed_s = time.perf_counter() - started

    patches = seed_planner_patches()
    saved = [(target, name, getattr(target, name)) for target, name, __ in patches]
    try:
        for target, name, repl in patches:
            setattr(target, name, repl)
        started = time.perf_counter()
        seed_table = run_table3(scale=scale)
        seed_s = time.perf_counter() - started
    finally:
        for target, name, original in saved:
            setattr(target, name, original)

    identical = packed_table == seed_table
    return {
        "scale": scale,
        "makespans": packed_table,
        "seed_makespans": seed_table,
        "makespans_bit_identical": identical,
        "wall_s": packed_s,
        "seed_wall_s": seed_s,
        "speedup": seed_s / packed_s,
    }


def run_smoke():
    """The CI regression gate: quick search benchmark, hard floor."""
    st = bench_st_astar(rounds=8)
    print(f"smoke st_astar: {st['packed']['expansions_per_s']:,.0f} exp/s "
          f"(seed {st['seed']['expansions_per_s']:,.0f}) — "
          f"{st['speedup']:.2f}x vs in-process seed "
          f"(floor {SMOKE_MIN_SEARCH_SPEEDUP}x)")
    if st["speedup"] < SMOKE_MIN_SEARCH_SPEEDUP:
        raise SystemExit(
            f"st_astar.packed.expansions_per_s regressed: speedup "
            f"{st['speedup']:.2f}x < {SMOKE_MIN_SEARCH_SPEEDUP}x floor")
    print("smoke gate passed")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.35,
                        help="Table III dataset scale (default 0.35, the "
                             "benchmark harness scale)")
    parser.add_argument("--out", default="BENCH_PR1.json",
                        help="output path (default BENCH_PR1.json)")
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-fast CI gate: fail if the packed "
                             "search speedup drops below "
                             f"{SMOKE_MIN_SEARCH_SPEEDUP}x; writes no file")
    args = parser.parse_args(argv)

    if args.smoke:
        run_smoke()
        return

    report = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "st_astar": bench_st_astar(),
        "purge": bench_purge(),
        "table3": bench_table3(args.scale),
    }
    FsPath(args.out).write_text(json.dumps(report, indent=2) + "\n")

    st, purge, t3 = report["st_astar"], report["purge"], report["table3"]
    print(f"st_astar : {st['packed']['expansions_per_s']:,.0f} exp/s "
          f"(seed {st['seed']['expansions_per_s']:,.0f}) — "
          f"{st['speedup']:.2f}x, "
          f"{st['calls_per_expansion_ratio']:.1f}x fewer calls/expansion")
    print(f"purge    : {purge['bucketed']['purge_latency_s'] * 1e6:,.1f} µs "
          f"(seed {purge['seed']['purge_latency_s'] * 1e6:,.1f} µs) — "
          f"{purge['speedup']:.2f}x")
    print(f"table3   : {t3['wall_s']:.1f}s vs seed {t3['seed_wall_s']:.1f}s "
          f"(scale {t3['scale']}), makespans identical: "
          f"{t3['makespans_bit_identical']}")
    if not t3["makespans_bit_identical"]:
        raise SystemExit("Table III makespans diverged from the seed stack")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
