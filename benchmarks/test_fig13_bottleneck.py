"""Benchmark E7 — regenerate Fig. 13 (bottleneck variation case study).

Runs the adaptive planner on the surge workload with the bottleneck trace
enabled and asserts the paper's observation: the fulfilment bottleneck
starts in transport and migrates toward queuing as item volume builds,
while processing cost grows and then flattens.
"""

from _bench_common import run_once

from repro.experiments.fig13 import render_fig13, run_fig13


def test_fig13_bottleneck(benchmark):
    report = run_once(benchmark, run_fig13, scale=0.6, window=150)
    print()
    print(render_fig13(report))

    assert report.migrated, (
        "the transport→queuing bottleneck migration must be observed")
    assert report.timeline[0] == "transport", (
        "with few items the bottleneck starts in transport")
    assert report.cum_queuing > 0 and report.cum_processing > 0
