"""Micro-benchmarks of the hot kernels (repeated-timing, pytest-benchmark).

These isolate the per-call costs the end-to-end figures aggregate:
spatial A*, spatiotemporal A* against both reservation structures, the
cache-aided finisher, conflict probes, reservation purges, heuristic-field
builds, and the two selection strategies.

``scripts/bench_kernels.py`` runs the same scenarios (shared via
``_bench_common``) head-to-head against the frozen seed implementations
and records the speedups in ``BENCH_PR1.json``.
"""

import pytest
from _bench_common import crossing_traffic, dense_traffic

from repro.config import PlannerConfig
from repro.pathfinding.astar import shortest_path
from repro.pathfinding.cache import ShortestPathCache, make_wait_finisher
from repro.pathfinding.cdt import ConflictDetectionTable
from repro.pathfinding.heuristics import HeuristicFieldCache
from repro.pathfinding.spatiotemporal_graph import SpatiotemporalGraph
from repro.pathfinding.st_astar import find_path
from repro.planners import EfficientAdaptiveTaskPlanner, NaiveTaskPlanner
from repro.warehouse.entities import Item
from repro.warehouse.grid import Grid
from repro.warehouse.knn import StaticRackKNN
from repro.warehouse.layout import build_layout
from repro.warehouse.state import WarehouseState

GRID = Grid(64, 40)


def test_spatial_astar(benchmark):
    benchmark(shortest_path, GRID, (0, 0), (63, 39))


def test_st_astar_on_cdt(benchmark):
    table = ConflictDetectionTable()
    crossing_traffic(table)
    benchmark(find_path, GRID, table, (0, 0), (60, 35), 0)


def test_st_astar_on_stgraph(benchmark):
    table = SpatiotemporalGraph(GRID)
    crossing_traffic(table)
    benchmark(find_path, GRID, table, (0, 0), (60, 35), 0)


def test_st_astar_with_cache_finisher(benchmark):
    table = ConflictDetectionTable()
    crossing_traffic(table)
    cache = ShortestPathCache(GRID, threshold=12)
    goal = (60, 35)

    def search():
        finisher = make_wait_finisher(cache, goal, table)
        return find_path(GRID, table, (0, 0), goal, 0,
                         finisher=finisher, finisher_trigger=12)

    benchmark(search)


def test_st_astar_with_heuristic_field(benchmark):
    table = ConflictDetectionTable()
    crossing_traffic(table)
    field = HeuristicFieldCache(GRID).field((60, 35))
    benchmark(find_path, GRID, table, (0, 0), (60, 35), 0, field)


def test_heuristic_field_build(benchmark):
    cache = HeuristicFieldCache(GRID)

    def build():
        cache._fields.clear()  # force the BFS, not the memo hit
        return cache.field((60, 35))

    benchmark(build)


def test_cdt_purge(benchmark):
    def setup():
        table = ConflictDetectionTable()
        dense_traffic(table, GRID)
        return (table,), {}

    benchmark.pedantic(lambda table: table.purge_before(400),
                       setup=setup, rounds=20)


def test_stgraph_purge(benchmark):
    def setup():
        table = SpatiotemporalGraph(GRID)
        dense_traffic(table, GRID, n_paths=120, horizon=300)
        return (table,), {}

    benchmark.pedantic(lambda table: table.purge_before(150),
                       setup=setup, rounds=20)


def test_cdt_probe(benchmark):
    table = ConflictDetectionTable()
    crossing_traffic(table)
    benchmark(table.move_allowed, 10, (25, 5), (26, 5))


def test_stgraph_probe(benchmark):
    table = SpatiotemporalGraph(GRID)
    crossing_traffic(table)
    benchmark(table.move_allowed, 10, (25, 5), (26, 5))


def test_knn_probe(benchmark):
    layout = build_layout(64, 40, n_racks=200, n_pickers=16)
    index = StaticRackKNN(layout.rack_homes, 64, 40, k=8)
    benchmark(index.nearest, (30, 20))


def _loaded_state(n_loaded=40):
    layout = build_layout(64, 40, n_racks=200, n_pickers=16)
    state = WarehouseState.from_layout(layout, n_robots=20)
    for i in range(n_loaded):
        state.deliver_item(Item(i, i * 5 % 200, 0, 25))
    return state


def test_selection_ntp(benchmark):
    state = _loaded_state()
    planner = NaiveTaskPlanner(state)
    racks = state.selectable_racks()
    robots = state.idle_robots()
    benchmark(planner._select, 0, racks, robots)


def test_selection_eatp_flip(benchmark):
    state = _loaded_state()
    planner = EfficientAdaptiveTaskPlanner(state, PlannerConfig())
    racks = state.selectable_racks()
    robots = state.idle_robots()
    benchmark(planner._select_flipped, racks, robots)
