"""Micro-benchmarks of the hot kernels (repeated-timing, pytest-benchmark).

These isolate the per-call costs the end-to-end figures aggregate:
spatial A*, spatiotemporal A* against both reservation structures, the
cache-aided finisher, conflict probes, reservation purges, heuristic-field
builds, the two selection strategies, and the two PR-5 pieces measured
independently — the bucket queue vs. ``heapq`` on an identical push/pop
stream, and tier-0 descent+audit vs. the full search on the same leg.

``scripts/bench_kernels.py`` runs the same scenarios (shared via
``_bench_common``) head-to-head against the frozen seed implementations
and records the speedups in ``BENCH_PR1.json``.
"""

import heapq

import pytest
from _bench_common import crossing_traffic, dense_traffic

from repro.config import PlannerConfig
from repro.pathfinding.astar import shortest_path
from repro.pathfinding.cache import ShortestPathCache, make_wait_finisher
from repro.pathfinding.cdt import ConflictDetectionTable
from repro.pathfinding.free_flow import FreeFlowPathCache
from repro.pathfinding.heuristics import HeuristicFieldCache
from repro.pathfinding.paths import Path
from repro.pathfinding.spatiotemporal_graph import SpatiotemporalGraph
from repro.pathfinding.st_astar import find_path
from repro.planners import EfficientAdaptiveTaskPlanner, NaiveTaskPlanner
from repro.warehouse.entities import Item
from repro.warehouse.grid import Grid
from repro.warehouse.knn import StaticRackKNN
from repro.warehouse.layout import build_layout
from repro.warehouse.state import WarehouseState

GRID = Grid(64, 40)


def test_spatial_astar(benchmark):
    benchmark(shortest_path, GRID, (0, 0), (63, 39))


def test_st_astar_on_cdt(benchmark):
    table = ConflictDetectionTable()
    crossing_traffic(table)
    benchmark(find_path, GRID, table, (0, 0), (60, 35), 0)


def test_st_astar_on_stgraph(benchmark):
    table = SpatiotemporalGraph(GRID)
    crossing_traffic(table)
    benchmark(find_path, GRID, table, (0, 0), (60, 35), 0)


def test_st_astar_with_cache_finisher(benchmark):
    table = ConflictDetectionTable()
    crossing_traffic(table)
    cache = ShortestPathCache(GRID, threshold=12)
    goal = (60, 35)

    def search():
        finisher = make_wait_finisher(cache, goal, table)
        return find_path(GRID, table, (0, 0), goal, 0,
                         finisher=finisher, finisher_trigger=12)

    benchmark(search)


def test_st_astar_with_heuristic_field(benchmark):
    table = ConflictDetectionTable()
    crossing_traffic(table)
    field = HeuristicFieldCache(GRID).field((60, 35))
    benchmark(find_path, GRID, table, (0, 0), (60, 35), 0, field)


#: Shared push/pop stream for the two open-set kernels: f drifts upward
#: in small steps and never sinks below the pop frontier — the
#: monotone-f pattern a consistent heuristic over unit edge costs forces
#: on the search — with two pushes per pop (branching factor > 1).
_QUEUE_OPS = 30_000


def _queue_stream():
    for i in range(_QUEUE_OPS):
        yield (i >> 4) + (i & 3), i  # (raw f, payload)


def test_open_set_heapq(benchmark):
    """The pre-PR-5 open set: tuple entries through ``heapq``."""

    def run():
        heap = []
        tie = 0
        frontier = 0  # f of the last pop; pushes clamp to it (monotone f)
        drained = 0
        pushes = 0
        for f, payload in _queue_stream():
            if f < frontier:
                f = frontier
            heapq.heappush(heap, (f, tie, payload))
            tie += 1
            pushes += 1
            if pushes & 1:
                entry = heapq.heappop(heap)
                frontier = entry[0]
                drained += entry[2]
        while heap:
            drained += heapq.heappop(heap)[2]
        return drained

    benchmark(run)


def test_open_set_bucket_queue(benchmark):
    """The PR-5 open set: per-f FIFO buckets, bare-int appends."""

    def run():
        buckets = [[]]
        f_off = 0  # the pop frontier; pushes clamp to it (monotone f)
        pos = 0
        open_size = 0
        drained = 0
        pushes = 0
        for f, payload in _queue_stream():
            if f < f_off:
                f = f_off
            while f >= len(buckets):
                buckets.append([])
            buckets[f].append(payload)
            open_size += 1
            pushes += 1
            if pushes & 1:
                bucket = buckets[f_off]
                while pos >= len(bucket):
                    f_off += 1
                    bucket = buckets[f_off]
                    pos = 0
                drained += bucket[pos]
                pos += 1
                open_size -= 1
        while open_size:
            bucket = buckets[f_off]
            while pos >= len(bucket):
                f_off += 1
                bucket = buckets[f_off]
                pos = 0
            drained += bucket[pos]
            pos += 1
            open_size -= 1
        return drained

    benchmark(run)


def test_free_flow_descent_extract(benchmark):
    """Tier-0 path extraction (fresh walk, no memo): the O(d) piece."""
    cache = FreeFlowPathCache(GRID, HeuristicFieldCache(GRID))
    cache.descent((0, 0), (60, 35))  # warm the heuristic field

    benchmark(cache._walk, (0, 0), (60, 35))


def test_free_flow_descent_memoised(benchmark):
    """Tier-0 extraction at steady state: one dict hit per leg."""
    cache = FreeFlowPathCache(GRID, HeuristicFieldCache(GRID))
    cache.descent((0, 0), (60, 35))

    benchmark(cache.descent, (0, 0), (60, 35))


def test_free_flow_audit(benchmark):
    """The bulk conflict audit of a descent path against live traffic.

    Descent+audit against ``test_st_astar_with_heuristic_field`` (the
    same endpoints) is the tier-0-vs-tier-1 comparison: the two PR-5
    pieces are measurable independently.
    """
    table = ConflictDetectionTable()
    crossing_traffic(table)
    cache = FreeFlowPathCache(GRID, HeuristicFieldCache(GRID))
    cells = cache.descent((0, 0), (60, 35))
    path = Path.from_cells(cells, start_time=0)

    benchmark(table.audit_path, path)


def test_heuristic_field_build(benchmark):
    cache = HeuristicFieldCache(GRID)

    def build():
        cache._fields.clear()  # force the BFS, not the memo hit
        return cache.field((60, 35))

    benchmark(build)


def test_cdt_purge(benchmark):
    def setup():
        table = ConflictDetectionTable()
        dense_traffic(table, GRID)
        return (table,), {}

    benchmark.pedantic(lambda table: table.purge_before(400),
                       setup=setup, rounds=20)


def test_stgraph_purge(benchmark):
    def setup():
        table = SpatiotemporalGraph(GRID)
        dense_traffic(table, GRID, n_paths=120, horizon=300)
        return (table,), {}

    benchmark.pedantic(lambda table: table.purge_before(150),
                       setup=setup, rounds=20)


def test_cdt_probe(benchmark):
    table = ConflictDetectionTable()
    crossing_traffic(table)
    benchmark(table.move_allowed, 10, (25, 5), (26, 5))


def test_stgraph_probe(benchmark):
    table = SpatiotemporalGraph(GRID)
    crossing_traffic(table)
    benchmark(table.move_allowed, 10, (25, 5), (26, 5))


def test_knn_probe(benchmark):
    layout = build_layout(64, 40, n_racks=200, n_pickers=16)
    index = StaticRackKNN(layout.rack_homes, 64, 40, k=8)
    benchmark(index.nearest, (30, 20))


def _loaded_state(n_loaded=40):
    layout = build_layout(64, 40, n_racks=200, n_pickers=16)
    state = WarehouseState.from_layout(layout, n_robots=20)
    for i in range(n_loaded):
        state.deliver_item(Item(i, i * 5 % 200, 0, 25))
    return state


def test_selection_ntp(benchmark):
    state = _loaded_state()
    planner = NaiveTaskPlanner(state)
    racks = state.selectable_racks()
    robots = state.idle_robots()
    benchmark(planner._select, 0, racks, robots)


def test_selection_eatp_flip(benchmark):
    state = _loaded_state()
    planner = EfficientAdaptiveTaskPlanner(state, PlannerConfig())
    racks = state.selectable_racks()
    robots = state.idle_robots()
    benchmark(planner._select_flipped, racks, robots)
