"""Benchmark E8 — the Sec. III-B adversarial construction (Fig. 4).

Regenerates the two-picker drip-feed workload and asserts the mechanism
behind the Ω(k) competitive-ratio argument: greedy dispatch shuttles the
far rack once per item while the adaptive planner batches, so the greedy
trip count scales with k and its items flow slower.
"""

from _bench_common import run_once

from repro.experiments.badcase import run_bad_case


def test_badcase_greedy_shuttle(benchmark):
    result = run_once(benchmark, run_bad_case, k=10)
    print()
    for name, outcome in result.outcomes.items():
        print(f"  {name}: makespan={outcome.makespan} "
              f"rack0_trips={outcome.rack0_trips} "
              f"mean_flow={outcome.mean_flow_time:.1f}")

    assert result.outcomes["NTP"].rack0_trips >= 8, (
        "greedy must shuttle the drip-fed rack roughly once per item")
    assert result.outcomes["ATP"].rack0_trips <= 6, (
        "the adaptive planner must batch the drip-fed rack")
    assert result.shuttle_ratio >= 1.5
    assert result.flow_penalty >= 1.0
