"""Benchmark E6 — regenerate Fig. 12 (memory consumption).

Prints the MC series and asserts the paper's claim: EATP's conflict
detection table keeps its footprint below the planners that carry the
dense time-expanded reservation graph.
"""

from _bench_common import SHAPE_SCALE, run_once

from repro.experiments.fig12 import render_fig12, run_fig12


def test_fig12_memory(benchmark):
    data = run_once(benchmark, run_fig12, scale=SHAPE_SCALE)
    print()
    print(render_fig12(data))

    for dataset, series in data.items():
        peaks = {s.planner: s.peak_kib for s in series}
        graph_planners = [p for p in ("NTP", "LEF", "ILP", "ATP")
                          if p in peaks]
        assert all(peaks["EATP"] < peaks[p] * 1.02 for p in graph_planners), (
            f"{dataset}: the CDT should keep EATP's footprint at or below "
            f"the spatiotemporal-graph planners (got {peaks})")
