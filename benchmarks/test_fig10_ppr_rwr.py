"""Benchmark E2/E3 — regenerate Fig. 10 (PPR and RWR series).

Prints the checkpoint series for every dataset and asserts the paper's
shape: the adaptive planners end with the highest picker processing rate
(they finish the same work in less time) and their rates are valid
fractions throughout.
"""

from _bench_common import BENCH_SCALE, run_once

from repro.experiments.fig10 import render_fig10, run_fig10


def test_fig10_ppr_rwr(benchmark):
    data = run_once(benchmark, run_fig10, scale=BENCH_SCALE)
    print()
    print(render_fig10(data))

    for dataset, series in data.items():
        finals_ppr = {s.planner: s.ppr[-1] for s in series if s.ppr}
        best_adaptive = max(finals_ppr.get("ATP", 0.0),
                            finals_ppr.get("EATP", 0.0))
        assert best_adaptive >= finals_ppr["NTP"], (
            f"{dataset}: adaptive PPR should beat NTP "
            f"(got {finals_ppr})")
        for s in series:
            assert all(0.0 <= v <= 1.0 for v in s.ppr)
            assert all(0.0 <= v <= 1.0 for v in s.rwr)
            assert s.items == sorted(s.items)
