"""Benchmarks A1–A4 — the ablations DESIGN.md calls out.

Each ablation prints its sweep table and asserts the design claim it
isolates:

* A1 (δ): moderate bootstrap (δ ≤ 0.4) trains effectively — the paper's
  Sec. V-D observation.
* A2 (L): enabling the cache produces cache-finished legs and does not
  hurt makespan materially.
* A3 (K): widening the flip-requesting probe improves makespan toward the
  ATP level, at higher selection cost.
* A4: swapping the CDT for the dense spatiotemporal graph inflates the
  reservation footprint with no makespan benefit.
"""

from _bench_common import BENCH_SCALE, run_once

from repro.experiments.ablations import (sweep_cache_threshold, sweep_delta,
                                         sweep_knn, sweep_reservation)


def test_ablation_a1_delta(benchmark):
    points = run_once(benchmark, sweep_delta,
                      values=(0.0, 0.1, 0.2, 0.4, 0.8, 1.0),
                      scale=BENCH_SCALE)
    print()
    for p in points:
        print(f"  delta={p.value}: makespan={p.makespan}")
    by_delta = {p.value: p.makespan for p in points}
    # The paper: δ < 0.4 contributes to effective training.  Pure greedy
    # (δ=1, i.e. NTP-with-updates) must not beat the mixed regime.
    best_mixed = min(by_delta[d] for d in (0.1, 0.2, 0.4))
    assert best_mixed <= by_delta[1.0], (
        f"mixed bootstrap should beat pure greedy (got {by_delta})")


def test_ablation_a2_cache_threshold(benchmark):
    points = run_once(benchmark, sweep_cache_threshold,
                      values=(0, 4, 8, 12, 20), scale=BENCH_SCALE)
    print()
    for p in points:
        print(f"  L={p.value}: makespan={p.makespan} "
              f"finish_rate={p.extra['cache_finish_rate']:.2f} "
              f"ptc={p.planning_seconds:.3f}s")
    off = points[0]
    widest = points[-1]
    assert off.extra["cache_finish_rate"] == 0.0
    assert widest.extra["cache_finish_rate"] > 0.3, (
        "a wide cache should finish a substantial share of legs")
    assert widest.makespan <= off.makespan * 1.15, (
        "cache-aiding trades little solution quality")


def test_ablation_a3_knn(benchmark):
    points = run_once(benchmark, sweep_knn, values=(1, 3, 8, 16),
                      scale=BENCH_SCALE)
    print()
    for p in points:
        print(f"  K={p.value}: makespan={p.makespan} "
              f"stc={p.selection_seconds:.3f}s")
    narrow = points[0]
    wide = points[-1]
    assert wide.makespan <= narrow.makespan, (
        "a wider probe should not plan worse than a blinkered one")


def test_ablation_a4_reservation(benchmark):
    swap = run_once(benchmark, sweep_reservation, scale=0.6)
    print()
    for label, p in swap.items():
        print(f"  {label}: makespan={p.makespan} "
              f"reservation={p.extra['reservation_kib']:.0f}KiB")
    assert (swap["CDT"].extra["reservation_kib"]
            < swap["STGraph"].extra["reservation_kib"]), (
        "the CDT must be smaller than the dense time-expanded graph")
    assert swap["CDT"].makespan <= swap["STGraph"].makespan * 1.05, (
        "the CDT answers identically, so makespan must not degrade")
