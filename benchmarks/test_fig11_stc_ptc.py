"""Benchmark E4/E5 — regenerate Fig. 11 (selection and planning time).

Prints the cumulative STC/PTC series and asserts the efficiency shapes:
flip requesting keeps EATP's selection cost below ATP's, and the
cache-aided CDT search keeps EATP's planning cost at or below every
A*-on-spatiotemporal-graph planner.
"""

from _bench_common import SHAPE_SCALE, run_once

from repro.config import PlannerConfig
from repro.experiments.fig11 import render_fig11, run_fig11
from repro.pathfinding import st_astar


def test_fig11_stc_ptc(benchmark):
    # The shape claims compare the paper's *per-planner* efficiency
    # designs (flip requesting, cache-aided CDT search).  The tier-0
    # free-flow fast path is a cross-cutting accelerator that collapses
    # PTC for every planner alike, leaving tiny noise-dominated totals
    # that jitter across the 1.10x margin — so the contrast is measured
    # with it pinned off, exactly like the seed-comparison benches.
    # The native search kernel is pinned off for the same reason: it
    # compresses the interpreter-bound expansion loop that dominates
    # plain ST-A*, while EATP's residual cost (the cache walk in the
    # finisher tail) stays in python — so under the compiled core the
    # PTC contrast measures kernel coverage, not the paper's Sec. VI-B
    # design.  The compiled-vs-python contrast itself is benchmarked in
    # scripts/bench_kernels.py.
    previous = st_astar.search_kernel_name()
    st_astar.set_search_kernel("python")
    try:
        data = run_once(benchmark, run_fig11, scale=SHAPE_SCALE,
                        planner_config=PlannerConfig(free_flow=False))
    finally:
        st_astar.set_search_kernel(
            "compiled" if previous == "compiled" else "python")
    print()
    print(render_fig11(data))

    # Wall-clock comparisons jitter per dataset under machine load, so the
    # shape claims are asserted on the totals across all datasets.
    total_stc = {"ATP": 0.0, "EATP": 0.0}
    total_ptc = {"ATP": 0.0, "EATP": 0.0}
    for dataset, series in data.items():
        for s in series:
            if s.planner in total_stc and s.stc_seconds:
                total_stc[s.planner] += s.stc_seconds[-1]
                total_ptc[s.planner] += s.ptc_seconds[-1]
            # Cumulative counters never decrease.
            assert s.stc_seconds == sorted(s.stc_seconds)
            assert s.ptc_seconds == sorted(s.ptc_seconds)
    assert total_stc["EATP"] < total_stc["ATP"], (
        f"flip requesting should cut selection time (got {total_stc})")
    assert total_ptc["EATP"] <= total_ptc["ATP"] * 1.10, (
        f"cache-aided planning should not cost more than plain ST-A* "
        f"(got {total_ptc})")
