"""Shared configuration for the benchmark harness.

Every paper table/figure has one benchmark module that (a) regenerates the
artefact — printing the same rows/series the paper reports — and (b)
asserts the qualitative *shape* the paper claims.  Regenerators run once
(``pedantic`` single round): they are end-to-end experiments, not
micro-kernels.  The ``micro_*`` modules contain proper repeated-timing
micro-benchmarks of the hot kernels.

``BENCH_SCALE`` trades fidelity for wall-clock; 0.35 keeps the whole
harness to a few minutes while preserving every qualitative shape.
"""

from repro.pathfinding.paths import Path

BENCH_SCALE = 0.35

#: Larger scale for the two shapes that only emerge with enough floor
#: (the global-sort STC gap and the CDT memory gap).
SHAPE_SCALE = 0.6


def run_once(benchmark, fn, *args, **kwargs):
    """Run an end-to-end regenerator exactly once under the benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


# -- shared micro-kernel workloads -----------------------------------------
#
# Defined once so the pytest micro-kernels and scripts/bench_kernels.py
# (which records the same scenarios head-to-head against the frozen seed)
# cannot drift apart.

def crossing_traffic(table, n=12):
    """The spatiotemporal-search workload: crossing lane reservations."""
    for i in range(n):
        cells = [(x, 3 + 2 * i % 30) for x in range(0, 50)]
        table.reserve_path(Path.from_cells(cells, start_time=i * 3))


def dense_traffic(table, grid, n_paths=400, horizon=800):
    """The purge workload: many live reservations over a long horizon."""
    for i in range(n_paths):
        row = 1 + i % (grid.height - 2)
        x0 = (7 * i) % (grid.width - 30)
        cells = [(x, row) for x in range(x0, x0 + 30)]
        table.reserve_path(
            Path.from_cells(cells, start_time=(13 * i) % horizon))
