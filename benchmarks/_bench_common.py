"""Shared configuration for the benchmark harness.

Every paper table/figure has one benchmark module that (a) regenerates the
artefact — printing the same rows/series the paper reports — and (b)
asserts the qualitative *shape* the paper claims.  Regenerators run once
(``pedantic`` single round): they are end-to-end experiments, not
micro-kernels.  The ``micro_*`` modules contain proper repeated-timing
micro-benchmarks of the hot kernels.

``BENCH_SCALE`` trades fidelity for wall-clock; 0.35 keeps the whole
harness to a few minutes while preserving every qualitative shape.
"""

BENCH_SCALE = 0.35

#: Larger scale for the two shapes that only emerge with enough floor
#: (the global-sort STC gap and the CDT memory gap).
SHAPE_SCALE = 0.6


def run_once(benchmark, fn, *args, **kwargs):
    """Run an end-to-end regenerator exactly once under the benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
