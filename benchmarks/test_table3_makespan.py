"""Benchmark E1 — regenerate Table III (makespan on all four datasets).

Prints the table in the paper's layout and asserts its qualitative shape:
the adaptive planners (ATP/EATP) beat every baseline on every dataset,
EATP stays within a few percent of ATP, and NTP — the extended state of
the art the paper's headline 37.1% is measured against — is the weakest
on the large bursty workloads.
"""

from _bench_common import BENCH_SCALE, run_once

from repro.experiments.table3 import render_table3, run_table3


def test_table3_makespan(benchmark):
    table = run_once(benchmark, run_table3, scale=BENCH_SCALE)
    print()
    print(render_table3(table))

    for dataset, makespans in table.items():
        ours = min(makespans["ATP"], makespans["EATP"])
        baselines = [v for p, v in makespans.items()
                     if p in ("NTP", "LEF", "ILP")]
        assert ours <= min(baselines) * 1.02, (
            f"{dataset}: adaptive planners should at least match every "
            f"baseline (got {makespans})")
        assert makespans["EATP"] <= makespans["ATP"] * 1.20, (
            f"{dataset}: EATP should stay close to ATP")

    # The paper's Table III dashes: LEF/ILP skipped on Real-Large.
    assert "LEF" not in table["Real-Large"]

    # Headline shape on the largest dataset: a double-digit gain vs NTP.
    large = table["Real-Large"]
    gain = (large["NTP"] - large["ATP"]) / large["NTP"]
    assert gain > 0.10, f"expected >10% gain over NTP, got {gain:.1%}"
