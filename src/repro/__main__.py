"""Command-line entry point: ``python -m repro <experiment> [options]``.

A thin dispatcher over the experiment regenerators, so the whole
evaluation can be driven without writing Python:

    python -m repro table3 --scale 0.5 --workers 4
    python -m repro fig10 --dataset Syn-A
    python -m repro fig13
    python -m repro badcase --k 10
    python -m repro ablations --which a4
    python -m repro matrix --family fleet-ladder --workers 4 --results-dir results
    python -m repro soak --planner EATP --duration 20000
"""

from __future__ import annotations

import sys

from .experiments import (ablations, badcase, fig10, fig11, fig12, fig13,
                          matrix, soak, table3)

_COMMANDS = {
    "table3": table3.main,
    "fig10": fig10.main,
    "fig11": fig11.main,
    "fig12": fig12.main,
    "fig13": fig13.main,
    "badcase": badcase.main,
    "ablations": ablations.main,
    "matrix": matrix.main,
    "soak": soak.main,
}


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help") or args[0] not in _COMMANDS:
        names = ", ".join(sorted(_COMMANDS))
        print(f"usage: python -m repro <experiment> [options]\n"
              f"experiments: {names}")
        return 0 if args and args[0] in ("-h", "--help") else 2
    command, rest = args[0], args[1:]
    _COMMANDS[command](rest)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
