"""Frozen seed implementations of the search core and reservations.

These are verbatim copies of the tuple-based spatiotemporal A* and the
pre-bucketing reservation structures as they stood before the
packed-integer rewrite.  They exist for two purposes only:

* **Equivalence testing** — ``tests/test_packed_equivalence.py`` asserts
  the packed core returns paths of identical length (bit-identical steps
  on open floors) and that both reservation structures answer every probe
  the same way.
* **Same-run benchmarking** — ``scripts/bench_kernels.py`` measures the
  packed core and the bucketed purge against these references in one
  process, so BENCH_PR1.json records a speedup that is not an artefact of
  machine drift between runs.

Do not use them anywhere else, and do not "fix" them: their value is
staying exactly what the seed shipped.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..errors import PathNotFoundError
from ..types import Cell, Tick
from ..warehouse.grid import Grid
from .heuristics import Heuristic, manhattan_heuristic
from .paths import Path
from .st_astar import SearchStats


def legacy_find_path(grid: Grid, reservation, source: Cell,
                     goal: Cell, start_time: Tick,
                     heuristic: Optional[Heuristic] = None,
                     max_expansions: int = 200_000,
                     finisher=None,
                     finisher_trigger: int = 0,
                     stats: Optional[SearchStats] = None) -> Path:
    """The seed's tuple-keyed spatiotemporal A* (see module docstring)."""
    grid.require_passable(source)
    grid.require_passable(goal)
    h = heuristic if heuristic is not None else manhattan_heuristic(goal)
    if stats is None:
        stats = SearchStats()

    if source == goal:
        return Path(((start_time, source[0], source[1]),))

    tie = count()
    start = (source, start_time)
    open_heap: List[Tuple[int, int, Tuple[Cell, Tick]]] = [
        (h(source), next(tie), start)]
    g_score: Dict[Tuple[Cell, Tick], int] = {start: 0}
    parent: Dict[Tuple[Cell, Tick], Tuple[Cell, Tick]] = {}
    closed = set()

    while open_heap:
        stats.peak_open = max(stats.peak_open, len(open_heap))
        __, __, node = heapq.heappop(open_heap)
        if node in closed:
            continue
        closed.add(node)
        cell, t = node
        stats.expansions += 1
        if stats.expansions > max_expansions:
            raise PathNotFoundError(
                source, goal, f"search budget {max_expansions} exhausted")

        if cell == goal:
            return _legacy_reconstruct(parent, node, start_time)

        if finisher is not None and 0 < h(cell) <= finisher_trigger:
            tail = finisher(cell, t)
            if tail is not None:
                stats.cache_finished = True
                head = _legacy_reconstruct(parent, node, start_time)
                return head.concat(Path(tuple(tail)))

        g_next = g_score[node] + 1
        for nxt in _legacy_successors(grid, cell):
            if not reservation.move_allowed(t, cell, nxt):
                continue
            nxt_node = (nxt, t + 1)
            if nxt_node in closed:
                continue
            best = g_score.get(nxt_node)
            if best is None or g_next < best:
                g_score[nxt_node] = g_next
                parent[nxt_node] = node
                stats.generated += 1
                heapq.heappush(open_heap,
                               (g_next + h(nxt), next(tie), nxt_node))
    raise PathNotFoundError(source, goal, "open set exhausted")


def _legacy_successors(grid: Grid, cell: Cell):
    yield cell
    yield from grid.neighbours(cell)


def _legacy_reconstruct(parent: Dict, node: Tuple[Cell, Tick],
                        start_time: Tick) -> Path:
    steps = []
    while True:
        (x, y), t = node
        steps.append((t, x, y))
        if node not in parent:
            break
        node = parent[node]
    steps.reverse()
    assert steps[0][0] == start_time
    return Path(tuple(steps))


class _LegacyEdgeMixin:
    """The seed's flat-set edge bookkeeping (rebuilt wholesale on purge)."""

    def __init__(self) -> None:
        self._edges: Set[Tuple[Tick, Cell, Cell]] = set()

    def _edge_free(self, t: Tick, source: Cell, target: Cell) -> bool:
        return (t, target, source) not in self._edges

    def _reserve_edges(self, path: Path) -> None:
        steps = path.steps
        for (t0, x0, y0), (__, x1, y1) in zip(steps, steps[1:]):
            if (x0, y0) != (x1, y1):
                self._edges.add((t0, (x0, y0), (x1, y1)))

    def _purge_edges(self, t: Tick) -> None:
        self._edges = {edge for edge in self._edges if edge[0] >= t}

    def _edges_memory(self) -> int:
        return 64 + 100 * len(self._edges)


class LegacyConflictDetectionTable(_LegacyEdgeMixin):
    """The seed's per-cell timestamp-set CDT (O(live cells) purge)."""

    def __init__(self) -> None:
        _LegacyEdgeMixin.__init__(self)
        self._cells: Dict[Cell, Set[Tick]] = {}
        self._floor: Tick = 0

    def is_free(self, t: Tick, cell: Cell) -> bool:
        if t < self._floor:
            return True
        times = self._cells.get(cell)
        return times is None or t not in times

    def edge_free(self, t: Tick, source: Cell, target: Cell) -> bool:
        return self._edge_free(t, source, target)

    def reserve_path(self, path: Path) -> None:
        for (t, x, y) in path:
            if t >= self._floor:
                self._cells.setdefault((x, y), set()).add(t)
        self._reserve_edges(path)

    def purge_before(self, t: Tick) -> None:
        self._floor = max(self._floor, t)
        empty = []
        for cell, times in self._cells.items():
            stale = [s for s in times if s < t]
            for s in stale:
                times.discard(s)
            if not times:
                empty.append(cell)
        for cell in empty:
            del self._cells[cell]
        self._purge_edges(t)

    def memory_bytes(self) -> int:
        entries = sum(len(times) for times in self._cells.values())
        return 64 + 100 * len(self._cells) + 32 * entries + self._edges_memory()

    def move_allowed(self, t: Tick, source: Cell, target: Cell) -> bool:
        if not self.is_free(t + 1, target):
            return False
        if source == target:
            return True
        return self.edge_free(t, source, target)

    @property
    def n_reservations(self) -> int:
        return sum(len(times) for times in self._cells.values())

    @property
    def n_cells_touched(self) -> int:
        return len(self._cells)


def seed_planner_patches():
    """``(target, attribute, replacement)`` triples for a seed planner stack.

    Applying these (``setattr`` or ``monkeypatch.setattr``) reverts the
    planner layer to the seed configuration end-to-end: the tuple-based
    search core, per-leg ``manhattan_heuristic`` closures (no field
    cache), the pre-bucketing reservation structures, and no tier-0
    free-flow fast path (the chain's class switch is flipped off, so the
    patched ``_find_leg`` really runs the seed search for every leg —
    the legacy reservation structures also predate the bulk
    ``audit_path`` the fast path needs).  Used by the end-to-end
    equivalence test and ``scripts/bench_kernels.py``.
    """
    from ..planners import base as base_mod
    from ..planners import eatp as eatp_mod
    from . import pipeline as pipeline_mod
    from .cache import make_wait_finisher

    def _seed_find_leg(self, t, source, goal):
        search_stats = SearchStats()
        path = legacy_find_path(
            self.grid, self.reservation, source, goal, t,
            heuristic=manhattan_heuristic(goal),
            max_expansions=self.config.max_search_expansions,
            stats=search_stats)
        self._absorb_search_stats(search_stats)
        return path

    def _seed_eatp_find_leg(self, t, source, goal):
        search_stats = SearchStats()
        finisher = None
        trigger = 0
        if self.cache.threshold > 0:
            finisher = make_wait_finisher(self.cache, goal, self.reservation)
            trigger = self.cache.threshold
        path = legacy_find_path(
            self.grid, self.reservation, source, goal, t,
            heuristic=manhattan_heuristic(goal),
            max_expansions=self.config.max_search_expansions,
            finisher=finisher, finisher_trigger=trigger,
            stats=search_stats)
        self._absorb_search_stats(search_stats)
        return path

    return [
        (base_mod.Planner, "_find_leg", _seed_find_leg),
        (eatp_mod.EfficientAdaptiveTaskPlanner, "_find_leg",
         _seed_eatp_find_leg),
        (base_mod, "SpatiotemporalGraph", LegacySpatiotemporalGraph),
        (eatp_mod, "ConflictDetectionTable", LegacyConflictDetectionTable),
        (pipeline_mod.FallbackChain, "free_flow_enabled", False),
    ]


class LegacySpatiotemporalGraph(_LegacyEdgeMixin):
    """The seed's dense time-expanded graph with flat-set edges."""

    def __init__(self, grid: Grid) -> None:
        _LegacyEdgeMixin.__init__(self)
        self._grid = grid
        self._layers: Dict[Tick, np.ndarray] = {}
        self._floor: Tick = 0

    def _layer(self, t: Tick) -> np.ndarray:
        layer = self._layers.get(t)
        if layer is None:
            high = max(self._layers, default=self._floor)
            for step in range(min(t, self._floor), max(t, high) + 1):
                if step >= self._floor and step not in self._layers:
                    self._layers[step] = np.zeros(
                        (self._grid.width, self._grid.height), dtype=np.uint8)
            layer = self._layers[t]
        return layer

    def is_free(self, t: Tick, cell: Cell) -> bool:
        if t < self._floor:
            return True
        layer = self._layers.get(t)
        if layer is None:
            return True
        return not bool(layer[cell])

    def edge_free(self, t: Tick, source: Cell, target: Cell) -> bool:
        return self._edge_free(t, source, target)

    def reserve_path(self, path: Path) -> None:
        for (t, x, y) in path:
            if t >= self._floor:
                self._layer(t)[x, y] = 1
        self._reserve_edges(path)

    def purge_before(self, t: Tick) -> None:
        self._floor = max(self._floor, t)
        for stale in [step for step in self._layers if step < t]:
            del self._layers[stale]
        self._purge_edges(t)

    def memory_bytes(self) -> int:
        layers = sum(layer.nbytes for layer in self._layers.values())
        return layers + self._edges_memory()

    def move_allowed(self, t: Tick, source: Cell, target: Cell) -> bool:
        if not self.is_free(t + 1, target):
            return False
        if source == target:
            return True
        return self.edge_free(t, source, target)

    @property
    def n_layers(self) -> int:
        return len(self._layers)
