"""Spatial A* — conflict-oblivious shortest paths on the grid.

Used to build the EATP shortest-path cache (Sec. VI-B) and as a distance
oracle.  Classic textbook A* (Hart–Nilsson–Raphael [11]) with the
Manhattan heuristic by default; ties broken FIFO so paths are
deterministic for a given grid.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Dict, List, Optional

from ..errors import PathNotFoundError
from ..types import Cell
from ..warehouse.grid import Grid
from .heuristics import Heuristic, manhattan_heuristic


def shortest_path(grid: Grid, source: Cell, goal: Cell,
                  heuristic: Optional[Heuristic] = None) -> List[Cell]:
    """Return a shortest cell sequence from ``source`` to ``goal``.

    Parameters
    ----------
    grid:
        The passability grid.
    source, goal:
        Endpoints; both must be passable.
    heuristic:
        Admissible lower bound on remaining distance; defaults to
        Manhattan, which is exact on obstacle-free layouts.

    Raises
    ------
    PathNotFoundError
        If ``goal`` is unreachable from ``source``.
    """
    grid.require_passable(source)
    grid.require_passable(goal)
    if source == goal:
        return [source]
    h = heuristic if heuristic is not None else manhattan_heuristic(goal)

    tie = count()
    open_heap: List = [(h(source), next(tie), source)]
    g_score: Dict[Cell, int] = {source: 0}
    parent: Dict[Cell, Cell] = {}
    closed = set()

    while open_heap:
        __, __, cell = heapq.heappop(open_heap)
        if cell == goal:
            return _reconstruct(parent, cell)
        if cell in closed:
            continue
        closed.add(cell)
        g_next = g_score[cell] + 1
        for nxt in grid.neighbours(cell):
            if nxt in closed:
                continue
            best = g_score.get(nxt)
            if best is None or g_next < best:
                g_score[nxt] = g_next
                parent[nxt] = cell
                heapq.heappush(open_heap, (g_next + h(nxt), next(tie), nxt))
    raise PathNotFoundError(source, goal, "disconnected grid")


def shortest_distance(grid: Grid, source: Cell, goal: Cell) -> int:
    """Length (in moves) of a shortest path; raises if unreachable."""
    return len(shortest_path(grid, source, goal)) - 1


def _reconstruct(parent: Dict[Cell, Cell], cell: Cell) -> List[Cell]:
    out = [cell]
    while cell in parent:
        cell = parent[cell]
        out.append(cell)
    out.reverse()
    return out
