"""Conflict definitions and validators (paper Sec. II, Fig. 3).

Two kinds of conflict make a set of paths infeasible:

* **single-grid conflict** — two paths occupy the same cell at the same
  time;
* **inter-grid (swap) conflict** — two paths traverse the same edge in
  opposite directions in the same tick.

These validators are the ground truth the whole pathfinding stack is tested
against: every reservation structure must reject exactly the moves these
functions flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..types import Cell, Tick
from .paths import Path


class ConflictKind(Enum):
    """The two conflict flavours of Def. 5."""

    SINGLE_GRID = "single-grid"
    INTER_GRID = "inter-grid"


@dataclass(frozen=True)
class Conflict:
    """A detected conflict between two paths.

    ``first``/``second`` are the indices of the clashing paths in the input
    sequence; ``time`` is the tick of the clash (for an inter-grid conflict,
    the tick at which the swap completes); ``cell`` is the contested cell
    (for inter-grid, the cell the *first* path moves into).
    """

    kind: ConflictKind
    first: int
    second: int
    time: Tick
    cell: Cell


def find_conflicts(paths: Sequence[Path]) -> List[Conflict]:
    """Return every pairwise conflict among ``paths``.

    O(total path length) via hashing: we index cell occupancy and directed
    edge traversals per tick, then report collisions.  Paths may start at
    different times; only overlapping ticks can conflict.
    """
    conflicts: List[Conflict] = []
    occupancy: Dict[Tuple[Tick, Cell], int] = {}
    # Directed edge (t, from, to) -> path index; a swap is the reverse edge
    # in the same tick.
    edges: Dict[Tuple[Tick, Cell, Cell], int] = {}

    for index, path in enumerate(paths):
        previous: Optional[Tuple[Tick, Cell]] = None
        for (t, x, y) in path:
            cell = (x, y)
            key = (t, cell)
            other = occupancy.get(key)
            if other is not None and other != index:
                conflicts.append(Conflict(ConflictKind.SINGLE_GRID,
                                          other, index, t, cell))
            else:
                occupancy[key] = index
            if previous is not None:
                pt, pcell = previous
                if pcell != cell:
                    swap = edges.get((pt, cell, pcell))
                    if swap is not None and swap != index:
                        conflicts.append(Conflict(ConflictKind.INTER_GRID,
                                                  swap, index, t, cell))
                    edges[(pt, pcell, cell)] = index
            previous = (t, cell)
    return conflicts


def is_conflict_free(paths: Sequence[Path]) -> bool:
    """Whether a set of paths satisfies Def. 5's conflict-freedom."""
    return not find_conflicts(paths)


def paths_conflict(a: Path, b: Path) -> bool:
    """Whether two individual paths conflict (convenience for tests)."""
    return not is_conflict_free([a, b])
