"""Conflict-free path finding: A*, spatiotemporal A*, reservations, cache."""

from .astar import shortest_distance, shortest_path
from .cache import ShortestPathCache, follow_with_waits, make_wait_finisher
from .cdt import ConflictDetectionTable
from .conflicts import (Conflict, ConflictKind, find_conflicts,
                        is_conflict_free, paths_conflict)
from .heuristics import (HeuristicField, HeuristicFieldCache,
                         manhattan_heuristic, true_distance_heuristic)
from .paths import Path
from .reservation import ReservationTable
from .spatiotemporal_graph import SpatiotemporalGraph
from .st_astar import SearchStats, find_path

__all__ = [
    "Conflict",
    "ConflictDetectionTable",
    "ConflictKind",
    "HeuristicField",
    "HeuristicFieldCache",
    "Path",
    "ReservationTable",
    "SearchStats",
    "ShortestPathCache",
    "SpatiotemporalGraph",
    "find_conflicts",
    "find_path",
    "follow_with_waits",
    "is_conflict_free",
    "make_wait_finisher",
    "manhattan_heuristic",
    "paths_conflict",
    "shortest_distance",
    "shortest_path",
    "true_distance_heuristic",
]
