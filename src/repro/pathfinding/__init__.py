"""Conflict-free path finding: A*, spatiotemporal A*, reservations, cache."""

from .astar import shortest_distance, shortest_path
from .cache import ShortestPathCache, follow_with_waits, make_wait_finisher
from .cdt import ConflictDetectionTable
from .conflicts import (Conflict, ConflictKind, find_conflicts,
                        is_conflict_free, paths_conflict)
from .free_flow import FreeFlowPathCache
from .heuristics import (HeuristicField, HeuristicFieldCache,
                         manhattan_heuristic, true_distance_heuristic)
from .paths import Path
from .pipeline import (FASTPATH_AUDIT_REJECT, FASTPATH_HIT, FASTPATH_MISS,
                       FASTPATH_OFF, TIER_FREE_FLOW, TIER_FULL, TIER_WAIT,
                       TIER_WINDOWED, TIERS, FallbackChain, LegPlan)
from .reservation import ReservationTable
from .spatiotemporal_graph import SpatiotemporalGraph
from .st_astar import (SEARCH_BUDGET, SEARCH_COMPLETE, SEARCH_EXHAUSTED,
                       SearchOutcome, SearchRequest, SearchStats, find_path,
                       search)

__all__ = [
    "Conflict",
    "ConflictDetectionTable",
    "ConflictKind",
    "FASTPATH_AUDIT_REJECT",
    "FASTPATH_HIT",
    "FASTPATH_MISS",
    "FASTPATH_OFF",
    "FallbackChain",
    "FreeFlowPathCache",
    "HeuristicField",
    "HeuristicFieldCache",
    "LegPlan",
    "Path",
    "ReservationTable",
    "SEARCH_BUDGET",
    "SEARCH_COMPLETE",
    "SEARCH_EXHAUSTED",
    "SearchOutcome",
    "SearchRequest",
    "SearchStats",
    "ShortestPathCache",
    "SpatiotemporalGraph",
    "TIERS",
    "TIER_FREE_FLOW",
    "TIER_FULL",
    "TIER_WAIT",
    "TIER_WINDOWED",
    "find_conflicts",
    "find_path",
    "search",
    "follow_with_waits",
    "is_conflict_free",
    "make_wait_finisher",
    "manhattan_heuristic",
    "paths_conflict",
    "shortest_distance",
    "shortest_path",
    "true_distance_heuristic",
]
