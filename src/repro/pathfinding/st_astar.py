"""Spatiotemporal A* — conflict-free single-robot search (paper Sec. V-C).

Searches over ``(cell, t)`` states with five actions (four moves + wait)
against a :class:`~repro.pathfinding.reservation.ReservationTable`, so the
returned path conflicts with none of the previously planned ones.  This is
the prioritised-planning search that every planner in the paper (NTP, LEF,
ILP, ATP, EATP) uses for its path-finding step; only the reservation
structure and the cache-aided finisher differ between them.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import count
from typing import Dict, List, Optional, Tuple

from ..errors import PathNotFoundError
from ..types import Cell, Tick
from ..warehouse.grid import Grid
from .heuristics import Heuristic, manhattan_heuristic
from .paths import Path
from .reservation import ReservationTable


@dataclass
class SearchStats:
    """Per-search counters surfaced for efficiency experiments.

    Attributes
    ----------
    expansions:
        Nodes popped from the open set.
    generated:
        Nodes pushed onto the open set.
    cache_finished:
        True when the cache-aided finisher produced the tail of the path
        (EATP only); lets the L-ablation report the cache hit rate.
    peak_open:
        Largest size reached by the open set, the quantity the paper says
        the cache "notably reduces".
    """

    expansions: int = 0
    generated: int = 0
    cache_finished: bool = False
    peak_open: int = 0


def find_path(grid: Grid, reservation: ReservationTable, source: Cell,
              goal: Cell, start_time: Tick,
              heuristic: Optional[Heuristic] = None,
              max_expansions: int = 200_000,
              finisher=None,
              finisher_trigger: int = 0,
              stats: Optional[SearchStats] = None) -> Path:
    """Find a conflict-free timed path from ``source`` (at ``start_time``).

    Parameters
    ----------
    grid:
        Spatial passability.
    reservation:
        Already-planned paths to avoid (single-grid + swap conflicts).
    source, goal:
        Spatial endpoints.
    start_time:
        Tick at which the robot sits on ``source``.
    heuristic:
        Admissible remaining-distance bound (default: Manhattan).
    max_expansions:
        Abort threshold; exceeded means livelock, reported as
        :class:`~repro.errors.PathNotFoundError`.
    finisher:
        Optional cache-aided finisher (Sec. VI-B): called as
        ``finisher(cell, t)`` once the popped node's h-value is
        ``<= finisher_trigger``; if it returns timed steps, the search
        short-circuits and appends them.
    finisher_trigger:
        The L threshold of Sec. VI-B (``0`` disables the finisher).
    stats:
        Optional mutable counters filled during the search.

    Returns
    -------
    Path
        Timed path starting at ``(start_time, *source)`` and ending on
        ``goal``; conflict-free w.r.t. ``reservation``.

    Raises
    ------
    PathNotFoundError
        If the search budget is exhausted.
    """
    grid.require_passable(source)
    grid.require_passable(goal)
    h = heuristic if heuristic is not None else manhattan_heuristic(goal)
    if stats is None:
        stats = SearchStats()

    if source == goal:
        return Path(((start_time, source[0], source[1]),))

    tie = count()
    start = (source, start_time)
    open_heap: List[Tuple[int, int, Tuple[Cell, Tick]]] = [
        (h(source), next(tie), start)]
    g_score: Dict[Tuple[Cell, Tick], int] = {start: 0}
    parent: Dict[Tuple[Cell, Tick], Tuple[Cell, Tick]] = {}
    closed = set()

    while open_heap:
        stats.peak_open = max(stats.peak_open, len(open_heap))
        __, __, node = heapq.heappop(open_heap)
        if node in closed:
            continue
        closed.add(node)
        cell, t = node
        stats.expansions += 1
        if stats.expansions > max_expansions:
            raise PathNotFoundError(
                source, goal, f"search budget {max_expansions} exhausted")

        if cell == goal:
            return _reconstruct(parent, node, start_time)

        if finisher is not None and 0 < h(cell) <= finisher_trigger:
            tail = finisher(cell, t)
            if tail is not None:
                stats.cache_finished = True
                head = _reconstruct(parent, node, start_time)
                return head.concat(Path(tuple(tail)))

        g_next = g_score[node] + 1
        for nxt in _successors(grid, cell):
            if not reservation.move_allowed(t, cell, nxt):
                continue
            nxt_node = (nxt, t + 1)
            if nxt_node in closed:
                continue
            best = g_score.get(nxt_node)
            if best is None or g_next < best:
                g_score[nxt_node] = g_next
                parent[nxt_node] = node
                stats.generated += 1
                heapq.heappush(open_heap,
                               (g_next + h(nxt), next(tie), nxt_node))
    raise PathNotFoundError(source, goal, "open set exhausted")


def _successors(grid: Grid, cell: Cell):
    """Wait plus the passable cardinal moves."""
    yield cell
    yield from grid.neighbours(cell)


def _reconstruct(parent: Dict, node: Tuple[Cell, Tick],
                 start_time: Tick) -> Path:
    steps = []
    while True:
        (x, y), t = node
        steps.append((t, x, y))
        if node not in parent:
            break
        node = parent[node]
    steps.reverse()
    assert steps[0][0] == start_time
    return Path(tuple(steps))
