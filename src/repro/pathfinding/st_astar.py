"""Spatiotemporal A* — conflict-free single-robot search (paper Sec. V-C).

Searches over ``(cell, t)`` states with five actions (four moves + wait)
against a :class:`~repro.pathfinding.reservation.ReservationTable`, so the
returned path conflicts with none of the previously planned ones.  This is
the prioritised-planning search that every planner in the paper (NTP, LEF,
ILP, ATP, EATP) uses for its path-finding step; only the reservation
structure and the cache-aided finisher differ between them.

The core runs entirely on **packed integers**: a state is ``t · (W·H) + x ·
H + y`` (one machine int instead of a nested ``((x, y), t)`` tuple), so
queue entries, g-scores and parents are plain-int keyed, successor
generation is one indexed read of the grid's precomputed adjacency table,
conflict probes go through the reservation structure's packed-key fast
path, and h-values are flat-list lookups.  Stale queue entries are skipped
by g-dominance, which replaces the seed's closed set and its redundant
re-check at generation time.  For any *consistent* heuristic — Manhattan
and the exact BFS fields both are — expansion order, tie breaking and the
search statistics are bit-identical to the tuple-based seed implementation
(kept in ``_legacy.py`` as the equivalence reference).  An inconsistent
custom heuristic may re-expand states the seed's closed set would have
frozen; the seed's answer there was arbitrary, not better.

Two queue/bookkeeping backends implement that contract:

* The **bucket-queue core** (:func:`_search_packed`) runs whenever the
  heuristic is one of the library's own consistent fields (the default
  Manhattan field or a cached exact :class:`~repro.pathfinding.heuristics.
  HeuristicField`).  Unit edge costs make f monotone non-decreasing and
  f-deltas small bounded integers, so the open set is a Dial-style array
  of per-f FIFO lists — ``push`` is one ``list.append`` of a bare int (no
  tuple allocation, no heap sift) and ``pop`` advances a cursor.  FIFO
  order within an f-bucket reproduces the heap's ``(f, tie)`` ordering
  bit for bit.  G-scores and parents live in **epoch-stamped flat
  arrays** indexed by the packed state relative to ``start_time``; the
  arrays belong to a per-grid-shape :class:`_Workspace` reused by every
  search (a bumped epoch invalidates old entries), so steady-state
  searches allocate nothing but the returned path.
* The **heap core** (:func:`_search_heap`) keeps the classic
  ``heapq``-plus-dict machinery for arbitrary caller-supplied heuristics
  (lazy callables, custom ``flat`` objects), whose consistency the
  bucket queue cannot assume.  Planner traffic never takes this path.

Two calling conventions coexist:

* :func:`search` is the bounded, recoverable API the planning pipeline
  uses: a :class:`SearchRequest` in, a :class:`SearchOutcome` out.  A
  search that exhausts its budget or its open set *returns* an outcome
  carrying the failure status and the full :class:`SearchStats` — it
  never raises — so callers can fall back (windowed search, wait in
  place) instead of dying mid-run.
* :func:`find_path` is the historical raising wrapper (same signature as
  the seed): failure raises :class:`~repro.errors.PathNotFoundError`
  with the search stats attached.

**Windowed mode** (``horizon=W``): conflict probes are applied only to
moves that arrive within ``W`` ticks of the start — beyond the window the
search sees an empty reservation table and, guided by the exact cached
heuristic field, marches conflict-obliviously to the goal.  This bounds
the conflict-aware state space to ``W`` time layers (the WHCA* idea) while
keeping the search *bit-identical* to the full search whenever no
reservation is probed — on an empty table the two modes run the same
instructions.  The caller is responsible for only *committing* (reserving
and executing) the conflict-checked prefix and replanning at the horizon;
see :mod:`repro.pathfinding.pipeline`.
"""

from __future__ import annotations

import heapq
from array import array
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import (PAPER_SCALE_MIN_CELLS, SEARCH_KERNEL_CHOICES,
                      search_kernel_choice)
from ..errors import ConfigurationError, PathNotFoundError
from ..types import Cell, Tick
from ..warehouse.grid import Grid, set_field_kernel
from ._kernel import load_compiled as _load_compiled
from .free_flow import set_descent_kernel
from .heuristics import Heuristic, HeuristicField, _LazyManhattanFlat
from .paths import Path
from .reservation import ReservationTable, set_mutation_kernel

#: Sentinel "probe everything" horizon — any tick comparison loses to it.
_NO_HORIZON = 1 << 62


@dataclass
class SearchStats:
    """Per-search counters surfaced for efficiency experiments.

    Attributes
    ----------
    expansions:
        Nodes popped from the open set.
    generated:
        Nodes pushed onto the open set.
    cache_finished:
        True when the cache-aided finisher produced the tail of the path
        (EATP only); lets the L-ablation report the cache hit rate.
    peak_open:
        Largest size reached by the open set, the quantity the paper says
        the cache "notably reduces".
    budget:
        The expansion budget that was in force (diagnostic; set by the
        packed core, left 0 by the frozen seed core).
    kernel:
        Which expansion loop answered this search: ``"compiled"`` (the
        native C kernel), ``"python"`` (the pure-python cores), or ``""``
        when no search loop ran at all (synthetic stats such as the
        tier-0 free-flow fast path's).  The two kernels are bit-identical
        in every other field; this one exists so planner stats and benches
        can report which core actually executed.
    """

    expansions: int = 0
    generated: int = 0
    cache_finished: bool = False
    peak_open: int = 0
    budget: int = 0
    kernel: str = ""


#: Outcome statuses of one spatiotemporal search.
SEARCH_COMPLETE = "complete"      #: goal reached; path attached
SEARCH_BUDGET = "budget"          #: expansion budget exhausted
SEARCH_EXHAUSTED = "exhausted"    #: open set died (start is boxed in)


@dataclass(frozen=True)
class SearchRequest:
    """One bounded path-finding problem, as plain data plus hooks.

    Attributes
    ----------
    source, goal:
        Spatial endpoints.
    start_time:
        Tick at which the robot sits on ``source``.
    horizon:
        ``None`` runs the classic full search.  An integer ``W`` enables
        windowed mode: conflict probes apply only to moves arriving at or
        before ``start_time + W``; beyond that the search is
        conflict-oblivious and the caller must replan at the horizon.
    max_expansions:
        Abort threshold; exceeding it yields a :data:`SEARCH_BUDGET`
        outcome rather than livelocking.
    finisher, finisher_trigger:
        The cache-aided finisher hook (Sec. VI-B), as in
        :func:`find_path`; ``finisher_trigger=0`` disables it.
    """

    source: Cell
    goal: Cell
    start_time: Tick
    horizon: Optional[int] = None
    max_expansions: int = 200_000
    finisher: Optional[Callable] = None
    finisher_trigger: int = 0

    @property
    def probe_limit(self) -> Tick:
        """Last tick at which arrivals are conflict-probed."""
        if self.horizon is None:
            return _NO_HORIZON
        return self.start_time + self.horizon


@dataclass
class SearchOutcome:
    """What one search produced — success or a *recoverable* failure.

    Attributes
    ----------
    request:
        The request this outcome answers.
    status:
        :data:`SEARCH_COMPLETE`, :data:`SEARCH_BUDGET` or
        :data:`SEARCH_EXHAUSTED`.
    path:
        The timed path (only for :data:`SEARCH_COMPLETE`).  In windowed
        mode its tail beyond ``request.probe_limit`` is conflict-oblivious
        and must not be committed without replanning.
    stats:
        The search's counters, present on every outcome — failures keep
        their diagnostics.
    """

    request: SearchRequest
    status: str
    path: Optional[Path]
    stats: SearchStats

    @property
    def ok(self) -> bool:
        return self.status == SEARCH_COMPLETE

    def error(self) -> PathNotFoundError:
        """The exception the raising wrapper surfaces for this failure."""
        reason = ("search budget {} exhausted".format(self.stats.budget)
                  if self.status == SEARCH_BUDGET else "open set exhausted")
        return PathNotFoundError(self.request.source, self.request.goal,
                                 reason, stats=self.stats)


# -- kernel selection ---------------------------------------------------------

#: The compiled ``_stsearch`` module when loaded, else ``None``.
_COMPILED = None

#: The active kernel name: ``"compiled"`` or ``"python"``.
_KERNEL = "python"


def set_search_kernel(choice: str) -> str:
    """Select the search kernel; returns the resolved kernel name.

    ``choice`` follows the ``REPRO_KERNEL`` contract (see
    :func:`repro.config.search_kernel_choice`): ``auto`` probes for the
    compiled extension and falls back to pure python silently;
    ``compiled`` raises :class:`~repro.errors.ConfigurationError` when the
    extension is absent (an explicit demand must not degrade silently);
    ``python`` forces the pure-python cores.  Tests and benches call this
    directly to pin a kernel; normal runs inherit the environment default
    resolved at import.
    """
    global _COMPILED, _KERNEL
    if choice not in SEARCH_KERNEL_CHOICES:
        raise ConfigurationError(
            f"search kernel must be one of {SEARCH_KERNEL_CHOICES}, "
            f"got {choice!r}")
    if choice != "python" and _COMPILED is None:
        _COMPILED = _load_compiled(refresh=True)
    if choice == "compiled" and _COMPILED is None:
        raise ConfigurationError(
            "REPRO_KERNEL=compiled but the native kernel is not built; "
            "run scripts/build_kernel.py (or python setup.py build_ext "
            "--inplace in src/repro/pathfinding/_kernel) or use "
            "REPRO_KERNEL=auto|python")
    _KERNEL = ("compiled"
               if choice == "compiled"
               or (choice == "auto" and _COMPILED is not None)
               else "python")
    # One REPRO_KERNEL switch governs every compiled plane: the
    # reservation tables' mutation bodies, the heuristic-field flood and
    # the fused tier-0 descent all follow the search-kernel selection.
    # Each setter rejects modules predating its own ABI, so a stale
    # artefact degrades per-plane (pure-python mutations / floods /
    # descents) while still accelerating whatever it does support.
    active = _COMPILED if _KERNEL == "compiled" else None
    set_mutation_kernel(active)
    set_field_kernel(active)
    set_descent_kernel(active)
    return _KERNEL


def search_kernel_name() -> str:
    """The kernel currently answering searches (``compiled``/``python``)."""
    return _KERNEL


#: Import-probe at module load, honouring the environment override.
set_search_kernel(search_kernel_choice())


def search(grid: Grid, reservation: ReservationTable,
           request: SearchRequest,
           heuristic: Optional[Heuristic] = None,
           stats: Optional[SearchStats] = None) -> SearchOutcome:
    """Run one spatiotemporal search to a :class:`SearchOutcome`.

    Never raises for exhaustion: a failed search returns an outcome whose
    ``status`` names the failure and whose ``stats`` carry the counters.
    See the module docstring for the windowed-mode contract and for the
    two queue backends this dispatches between; both produce bit-identical
    expansions, paths and statistics for consistent heuristics.
    """
    source, goal = request.source, request.goal
    start_time = request.start_time
    grid.require_passable(source)
    grid.require_passable(goal)
    if stats is None:
        stats = SearchStats()
    stats.budget = request.max_expansions

    if source == goal:
        # No expansion loop runs, so no kernel tag (stats.kernel == "").
        return SearchOutcome(request, SEARCH_COMPLETE,
                             Path(((start_time, source[0], source[1]),)),
                             stats)
    stats.kernel = "python"

    hfield = _heuristic_field(grid, goal, heuristic)
    library_field = heuristic is None or isinstance(heuristic, HeuristicField)
    if _KERNEL == "compiled" and library_field:
        # The native kernel handles exactly the searches whose heuristics
        # the library controls (flat list fields and the lazy Manhattan
        # field — both consistent by construction); arbitrary callables
        # keep the pure-python heap core below.  Dispatch covers all
        # three python regimes — flat bucket queue, overflow restart, and
        # paper-scale deep ties — with bit-identical results.
        h_spec = _kernel_h_spec(hfield)
        if h_spec is not None:
            use_flat = (grid.n_cells < PAPER_SCALE_MIN_CELLS
                        and hfield[source[0] * grid.height + source[1]]
                        < _MAX_LAYERS)
            return _search_compiled(grid, reservation, request, hfield,
                                    h_spec, stats, use_flat)
    if (library_field
            and grid.n_cells < PAPER_SCALE_MIN_CELLS
            and hfield[source[0] * grid.height + source[1]] < _MAX_LAYERS):
        # The library's own fields are consistent by construction (exact
        # BFS distances or Manhattan), which the bucket queue requires
        # for its monotone-f invariant.  Two classes of search skip the
        # bucket queue for the bit-identical heap core up front: legs
        # whose h-value alone guarantees a _WorkspaceOverflow restart
        # (the goal cannot pop under the layer cap), and paper-scale
        # floors, where even one _CHUNK_LAYERS workspace slab is tens of
        # millions of entries (~¾ GB at the 541×302 cap) for searches
        # the free-flow tiers make rare anyway.
        snapshot = (stats.expansions, stats.generated, stats.peak_open)
        try:
            return _search_packed(grid, reservation, request, hfield, stats)
        except _WorkspaceOverflow:
            # A deep, sparse search (a long wait chain out-waiting a
            # blockade): the flat arrays scale with *time depth* times
            # n_cells, not with touched states, so past the layer cap
            # the dict-backed heap core — bit-identical for these
            # heuristics and O(generated states) in memory — restarts
            # the search instead.
            stats.expansions, stats.generated, stats.peak_open = snapshot
    return _search_heap(grid, reservation, request, hfield, stats)


#: Time-layer granularity of workspace growth: allocating this many
#: layers at once keeps the amortised growth cost negligible while a
#: fresh workspace stays a few hundred kilobytes on paper-scale grids.
_CHUNK_LAYERS = 64

#: Hard cap on workspace depth, in time layers.  The flat arrays cost
#: ``3 · 8 B`` per (layer, cell) pair whether or not a state is touched,
#: so a sparse search out-waiting a multi-thousand-tick blockade would
#: otherwise grow (and permanently retain) hundreds of megabytes for a
#: few thousand expansions.  Every plateau-shaped search the planners
#: issue fits comfortably (leg durations plus fallback waits are well
#: under 192 ticks); the rare deeper search restarts on the heap core
#: via :class:`_WorkspaceOverflow`, with identical results.  Retained
#: footprint is bounded at ``192 · n_cells · 24 B`` (~12 MB on the
#: 64×40 Real-Large floor).
_MAX_LAYERS = 192


class _WorkspaceOverflow(Exception):
    """A search outgrew the workspace layer cap; restart on the heap core."""


class _Workspace:
    """Per-grid-shape scratch arrays for the bucket-queue search core.

    ``g``/``gen``/``parent`` are flat lists over *relative* packed states
    ``(t - start_time) · n_cells + ci``.  ``gen[rel] == epoch`` marks an
    entry as written by the current search — bumping ``epoch`` invalidates
    every previous search's entries in O(1), so the arrays are never
    cleared, only grown.  ``buckets[f - f0]`` holds generated states in
    FIFO push order per f-value (a Dial / bucket priority queue); used
    buckets are emptied when a search finishes, so the list skeletons are
    reused too.
    """

    __slots__ = ("n_cells", "size", "g", "gen", "parent", "epoch",
                 "buckets", "active")

    def __init__(self, n_cells: int) -> None:
        self.n_cells = n_cells
        self.size = 0
        self.g: List[int] = []
        self.gen: List[int] = []
        self.parent: List[int] = []
        self.epoch = 0
        self.buckets: List[List[int]] = []
        self.active = False

    def grow(self, rel: int) -> None:
        """Ensure the state arrays cover relative index ``rel``.

        Callers guarantee ``rel`` respects the :data:`_MAX_LAYERS` cap;
        growth steps in :data:`_CHUNK_LAYERS` slabs, clipped to the cap.
        """
        cap = _MAX_LAYERS * self.n_cells
        need = rel + 1 - self.size
        chunk = min(max(need, _CHUNK_LAYERS * self.n_cells),
                    cap - self.size)
        filler = [0] * chunk
        self.g.extend(filler)
        self.gen.extend(filler)
        self.parent.extend(filler)
        self.size += chunk


#: One workspace per grid *shape* — grids that differ only in blocked
#: cells share scratch space (the arrays carry no grid content).
_WORKSPACES: Dict[Tuple[int, int], _Workspace] = {}

#: Cap on retained workspaces across distinct grid shapes, so a process
#: sweeping many scenario sizes (a matrix family across scales, a
#: long-lived worker reused across datasets) stays bounded — the same
#: hygiene every other cache in this package applies.
_WORKSPACE_CAP = 8


def _workspace(grid: Grid) -> _Workspace:
    key = (grid.width, grid.height)
    ws = _WORKSPACES.get(key)
    if ws is None:
        if len(_WORKSPACES) >= _WORKSPACE_CAP:
            _WORKSPACES.clear()
        ws = _WORKSPACES[key] = _Workspace(grid.n_cells)
    if ws.active:
        # Re-entrant search (a finisher hook that searches, a test doing
        # something exotic): correctness over reuse — hand out a
        # throwaway workspace instead of corrupting the live one.
        return _Workspace(grid.n_cells)
    return ws


def _grid_capsule(grid: Grid):
    """The grid's prepared adjacency capsule for the native kernel.

    Lives on the grid itself (one flattening per grid, shared by search,
    field flood and tier-0 descent); see :meth:`Grid.kernel_capsule`.
    """
    return grid.kernel_capsule(_COMPILED)


def _kernel_h_spec(hfield):
    """Native heuristic encoding, or ``None`` when the kernel declines.

    Mode 0 indexes a plain list field; mode 1 computes Manhattan distance
    natively from the goal coordinates (the lazy paper-scale field, whose
    ``__getitem__`` the hot loop must not call back into); mode 2 reads
    an int32 buffer (the eager BFS fields' ``array('i')`` flats and the
    shared arena's memoryviews) through the buffer protocol, zero-copy.
    Anything else — the ``_LazyField`` adapter over arbitrary callables —
    stays on the pure-python heap core.
    """
    if type(hfield) is list:
        return 0, hfield
    if isinstance(hfield, _LazyManhattanFlat):
        return 1, (hfield._gx, hfield._gy)
    if getattr(_COMPILED, "KERNEL_ABI", 0) >= 3:
        # Buffer heuristics arrived with ABI 3; a stale binary declines
        # them here and the python cores (which index buffers and lists
        # identically) answer instead.
        if isinstance(hfield, array) and hfield.typecode == "i":
            return 2, hfield
        if isinstance(hfield, memoryview) and hfield.format == "i":
            return 2, hfield
    return None


def _search_compiled(grid: Grid, reservation: ReservationTable,
                     request: SearchRequest, hfield,
                     h_spec, stats: SearchStats,
                     use_flat: bool) -> SearchOutcome:
    """Dispatch one search to the native kernel.

    Mirrors the python routing exactly: ``use_flat`` selects the flat
    epoch-stamped backend (== ``_search_packed``), a layer-cap overflow
    restarts on the hash backend with the stats snapshot semantics of the
    python :class:`_WorkspaceOverflow` handler (== ``_search_heap``), and
    paper-scale floors run the hash backend with deep-tie ordering.  The
    kernel returns raw counters; this wrapper folds them into ``stats``
    the same way the python cores' ``finally`` blocks do.
    """
    source, goal = request.source, request.goal
    height = grid.height
    source_ci = source[0] * height + source[1]
    goal_ci = goal[0] * height + goal[1]
    deep = grid.n_cells >= PAPER_SCALE_MIN_CELLS
    h_mode, h_arg = h_spec
    mode, probe_a, probe_b, tile_bits = reservation.kernel_probe_spec()
    capsule = _grid_capsule(grid)
    stats.kernel = "compiled"

    status, steps, tail, expansions, generated, peak_open = _COMPILED.run(
        capsule, mode, probe_a, probe_b, tile_bits, h_mode, h_arg,
        source_ci, goal_ci, request.start_time, request.probe_limit,
        request.max_expansions, request.finisher, request.finisher_trigger,
        1 if use_flat else 0, 1 if deep else 0,
        _MAX_LAYERS, _CHUNK_LAYERS, stats.expansions, stats.peak_open)
    if status == 3:
        # Flat workspace hit the layer cap: the deep, sparse search
        # restarts on the hash backend from the same stats snapshot,
        # exactly like the python _WorkspaceOverflow handler (the first
        # attempt's counters are discarded wholesale).
        status, steps, tail, expansions, generated, peak_open = (
            _COMPILED.run(
                capsule, mode, probe_a, probe_b, tile_bits, h_mode, h_arg,
                source_ci, goal_ci, request.start_time, request.probe_limit,
                request.max_expansions, request.finisher,
                request.finisher_trigger, 0, 1 if deep else 0,
                _MAX_LAYERS, _CHUNK_LAYERS, stats.expansions,
                stats.peak_open))

    stats.expansions = expansions
    stats.generated += generated
    stats.peak_open = peak_open
    if status == 0:
        return SearchOutcome(request, SEARCH_COMPLETE, Path(tuple(steps)),
                             stats)
    if status == 4:
        stats.cache_finished = True
        head = Path(tuple(steps))
        return SearchOutcome(request, SEARCH_COMPLETE,
                             head.concat(Path(tuple(tail))), stats)
    if status == 1:
        return SearchOutcome(request, SEARCH_BUDGET, None, stats)
    return SearchOutcome(request, SEARCH_EXHAUSTED, None, stats)


def _search_packed(grid: Grid, reservation: ReservationTable,
                   request: SearchRequest, hfield: Sequence[int],
                   stats: SearchStats) -> SearchOutcome:
    """The bucket-queue core (consistent flat-field heuristics only).

    Bit-identical to :func:`_search_heap` — and therefore to the frozen
    seed — in expansion order, tie breaking, produced path and counters:
    FIFO within an f-bucket is exactly the heap's ``(f, tie)`` order, and
    the stale-entry test ``g + h != f`` is g-dominance restated (a
    superseding push strictly lowered g, hence f).
    """
    source, goal = request.source, request.goal
    start_time = request.start_time
    height = grid.height
    n_cells = grid.width * height
    adjacency = grid.adjacency
    cell_keys = grid.cell_keys
    max_expansions = request.max_expansions
    finisher = request.finisher
    finisher_trigger = request.finisher_trigger
    probe_limit = request.probe_limit

    vertex_free = reservation.is_free_packed
    edge_free = reservation.edge_free_packed
    res_buckets = reservation.packed_buckets()
    if res_buckets is not None:
        vertex_buckets, edge_buckets = res_buckets

    ws = _workspace(grid)
    ws.epoch = epoch = ws.epoch + 1
    ws.active = True
    g_arr, gen, parent, fbuckets = ws.g, ws.gen, ws.parent, ws.buckets
    size = ws.size

    source_ci = source[0] * height + source[1]
    goal_ci = goal[0] * height + goal[1]
    h0 = hfield[source_ci]

    if size < n_cells:
        ws.grow(n_cells - 1)
        size = ws.size
    if not fbuckets:
        fbuckets.append([])

    gen[source_ci] = epoch
    g_arr[source_ci] = 0
    parent[source_ci] = -1
    bucket = fbuckets[0]
    bucket.append(source_ci)
    hi_f = 0       # highest f-offset bucket used (for cleanup)
    f_off = 0      # bucket cursor: f of the entries being consumed, - h0
    f_abs = h0     # absolute f at the cursor
    pos = 0        # read position inside the current bucket
    open_size = 1  # pushes minus pops == len(open_heap) of the heap core

    expansions = stats.expansions
    generated = 0
    peak_open = stats.peak_open

    try:
        while open_size:
            while pos >= len(bucket):
                f_off += 1
                if f_off > hi_f:  # unreachable for a consistent field
                    raise AssertionError(
                        "bucket queue underflow: heuristic field is not "
                        "consistent")
                bucket = fbuckets[f_off]
                f_abs += 1
                pos = 0
            if open_size > peak_open:
                peak_open = open_size
            rel = bucket[pos]
            pos += 1
            open_size -= 1
            t_rel, ci = divmod(rel, n_cells)
            h_ci = hfield[ci]
            g = g_arr[rel]
            if g + h_ci != f_abs:
                continue  # dominated by a later, cheaper push
            expansions += 1
            if expansions > max_expansions:
                return SearchOutcome(request, SEARCH_BUDGET, None, stats)

            if ci == goal_ci:
                return SearchOutcome(
                    request, SEARCH_COMPLETE,
                    _reconstruct_packed(parent, rel, n_cells, height,
                                        start_time),
                    stats)

            if finisher is not None and 0 < h_ci <= finisher_trigger:
                tail = finisher(divmod(ci, height), start_time + t_rel)
                if tail is not None:
                    stats.cache_finished = True
                    head = _reconstruct_packed(parent, rel, n_cells, height,
                                               start_time)
                    return SearchOutcome(request, SEARCH_COMPLETE,
                                         head.concat(Path(tuple(tail))),
                                         stats)

            g_next = g + 1
            t1 = start_time + t_rel + 1
            nxt_base = rel - ci + n_cells
            if nxt_base + n_cells > size:
                if t_rel + 2 > _MAX_LAYERS:
                    raise _WorkspaceOverflow()
                ws.grow(nxt_base + n_cells - 1)
                size = ws.size
            source_key = cell_keys[ci]
            guarded = t1 <= probe_limit
            base_f = g_next - h0  # successor bucket = base_f + h(successor)

            # Successor generation, wait first then the adjacency row —
            # the same order (and the same two probe styles) as the heap
            # core; see its comment block.
            if res_buckets is not None:
                occupied = vertex_buckets.get(t1) if guarded else None
                swaps = edge_buckets.get(t1 - 1) if guarded else None
                if occupied is None or source_key not in occupied:
                    nrel = nxt_base + ci
                    if gen[nrel] != epoch or g_next < g_arr[nrel]:
                        gen[nrel] = epoch
                        g_arr[nrel] = g_next
                        parent[nrel] = rel
                        generated += 1
                        open_size += 1
                        nf = base_f + h_ci
                        while hi_f < nf:
                            hi_f += 1
                            if hi_f == len(fbuckets):
                                fbuckets.append([])
                        fbuckets[nf].append(nrel)
                for nci, nkey in adjacency[ci]:
                    if occupied is not None and nkey in occupied:
                        continue
                    if (swaps is not None
                            and ((nkey << 32) | source_key) in swaps):
                        continue
                    nrel = nxt_base + nci
                    if gen[nrel] != epoch or g_next < g_arr[nrel]:
                        gen[nrel] = epoch
                        g_arr[nrel] = g_next
                        parent[nrel] = rel
                        generated += 1
                        open_size += 1
                        nf = base_f + hfield[nci]
                        while hi_f < nf:
                            hi_f += 1
                            if hi_f == len(fbuckets):
                                fbuckets.append([])
                        fbuckets[nf].append(nrel)
            else:
                if not guarded or vertex_free(t1, source_key):
                    nrel = nxt_base + ci
                    if gen[nrel] != epoch or g_next < g_arr[nrel]:
                        gen[nrel] = epoch
                        g_arr[nrel] = g_next
                        parent[nrel] = rel
                        generated += 1
                        open_size += 1
                        nf = base_f + h_ci
                        while hi_f < nf:
                            hi_f += 1
                            if hi_f == len(fbuckets):
                                fbuckets.append([])
                        fbuckets[nf].append(nrel)
                for nci, nkey in adjacency[ci]:
                    if (not guarded
                            or (vertex_free(t1, nkey)
                                and edge_free(t1 - 1, source_key, nkey))):
                        nrel = nxt_base + nci
                        if gen[nrel] != epoch or g_next < g_arr[nrel]:
                            gen[nrel] = epoch
                            g_arr[nrel] = g_next
                            parent[nrel] = rel
                            generated += 1
                            open_size += 1
                            nf = base_f + hfield[nci]
                            while hi_f < nf:
                                hi_f += 1
                                if hi_f == len(fbuckets):
                                    fbuckets.append([])
                            fbuckets[nf].append(nrel)
        return SearchOutcome(request, SEARCH_EXHAUSTED, None, stats)
    finally:
        stats.expansions = expansions
        stats.generated += generated
        stats.peak_open = peak_open
        for used in fbuckets[:hi_f + 1]:
            del used[:]
        ws.active = False


def _reconstruct_packed(parent: Sequence[int], rel: int, n_cells: int,
                        height: int, start_time: Tick) -> Path:
    steps: List = []
    while rel >= 0:
        t_rel, ci = divmod(rel, n_cells)
        x, y = divmod(ci, height)
        steps.append((start_time + t_rel, x, y))
        rel = parent[rel]
    steps.reverse()
    assert steps[0][0] == start_time
    return Path(tuple(steps))


def _search_heap(grid: Grid, reservation: ReservationTable,
                 request: SearchRequest, hfield,
                 stats: SearchStats) -> SearchOutcome:
    """The heap core: arbitrary (possibly lazy) heuristics.

    The pre-bucket-queue packed implementation, kept for heuristics whose
    consistency is not guaranteed — exactly as fast as it ever was, and
    still bit-identical to the seed for consistent inputs.
    """
    source, goal = request.source, request.goal
    start_time = request.start_time
    height = grid.height
    n_cells = grid.width * height
    adjacency = grid.adjacency
    cell_keys = grid.cell_keys
    max_expansions = request.max_expansions
    finisher = request.finisher
    finisher_trigger = request.finisher_trigger
    probe_limit = request.probe_limit

    vertex_free = reservation.is_free_packed
    edge_free = reservation.edge_free_packed
    buckets = reservation.packed_buckets()
    if buckets is not None:
        vertex_buckets, edge_buckets = buckets
    push = heapq.heappush
    pop = heapq.heappop

    source_ci = source[0] * height + source[1]
    goal_ci = goal[0] * height + goal[1]
    start_state = start_time * n_cells + source_ci

    # Heap entries are (f, depth, tie, g, state): with ``depth`` pinned
    # to 0 the f/tie order matches the seed exactly (FIFO among equal
    # f).  On paper-scale floors ``depth = -g`` breaks f-ties toward the
    # *deepest* node instead: unit costs make every f-optimal staircase
    # equally long, so FIFO order breadth-explores the whole O(d²)
    # plateau between source and goal, while prefer-deeper dives down a
    # single staircase and backtracks only where a reservation blocks
    # it — near-linear expansions on open floors, with the returned path
    # still optimal (tie-breaking never affects A* admissibility).  The
    # 541×302 floor puts d in the hundreds, exactly where the plateau is
    # the "too slow to execute" wall; sub-gate searches keep the
    # seed-identical order.
    deep_ties = n_cells >= PAPER_SCALE_MIN_CELLS
    open_heap = [(hfield[source_ci], 0, 0, 0, start_state)]
    tie = 1
    g_score: Dict[int, int] = {start_state: 0}
    parent: Dict[int, int] = {}

    expansions = stats.expansions
    generated = 0
    peak_open = stats.peak_open

    try:
        while open_heap:
            if len(open_heap) > peak_open:
                peak_open = len(open_heap)
            __, __, __, g, state = pop(open_heap)
            if g > g_score[state]:
                continue  # dominated by a later, cheaper push
            expansions += 1
            if expansions > max_expansions:
                return SearchOutcome(request, SEARCH_BUDGET, None, stats)
            t, ci = divmod(state, n_cells)

            if ci == goal_ci:
                return SearchOutcome(
                    request, SEARCH_COMPLETE,
                    _reconstruct(parent, state, n_cells, height, start_time),
                    stats)

            if finisher is not None:
                h = hfield[ci]
                if 0 < h <= finisher_trigger:
                    tail = finisher(divmod(ci, height), t)
                    if tail is not None:
                        stats.cache_finished = True
                        head = _reconstruct(parent, state, n_cells, height,
                                            start_time)
                        return SearchOutcome(request, SEARCH_COMPLETE,
                                             head.concat(Path(tuple(tail))),
                                             stats)

            g_next = g + 1
            depth = -g_next if deep_ties else 0
            t1 = t + 1
            next_base = t1 * n_cells
            source_key = cell_keys[ci]
            guarded = t1 <= probe_limit

            # Successor generation, wait first then the adjacency row —
            # the same order as the seed.  Two probe styles: when the
            # reservation structure is tick-bucketed (CDT), fetch this
            # tick's vertex/edge sets once and test membership with bare
            # ``in``; otherwise go through the packed probe methods.
            # Past the windowed-mode probe limit both styles degrade to
            # "everything free" without touching the reservation.
            if buckets is not None:
                occupied = vertex_buckets.get(t1) if guarded else None
                swaps = edge_buckets.get(t) if guarded else None
                if occupied is None or source_key not in occupied:
                    nxt_state = next_base + ci
                    best = g_score.get(nxt_state)
                    if best is None or g_next < best:
                        g_score[nxt_state] = g_next
                        parent[nxt_state] = state
                        generated += 1
                        push(open_heap,
                             (g_next + hfield[ci], depth, tie, g_next,
                              nxt_state))
                        tie += 1
                for nci, nkey in adjacency[ci]:
                    if occupied is not None and nkey in occupied:
                        continue
                    if (swaps is not None
                            and ((nkey << 32) | source_key) in swaps):
                        continue
                    nxt_state = next_base + nci
                    best = g_score.get(nxt_state)
                    if best is None or g_next < best:
                        g_score[nxt_state] = g_next
                        parent[nxt_state] = state
                        generated += 1
                        push(open_heap,
                             (g_next + hfield[nci], depth, tie, g_next,
                              nxt_state))
                        tie += 1
            else:
                # Wait in place (the fifth action) — vertex check only.
                if not guarded or vertex_free(t1, source_key):
                    nxt_state = next_base + ci
                    best = g_score.get(nxt_state)
                    if best is None or g_next < best:
                        g_score[nxt_state] = g_next
                        parent[nxt_state] = state
                        generated += 1
                        push(open_heap,
                             (g_next + hfield[ci], depth, tie, g_next,
                              nxt_state))
                        tie += 1

                for nci, nkey in adjacency[ci]:
                    if (not guarded
                            or (vertex_free(t1, nkey)
                                and edge_free(t, source_key, nkey))):
                        nxt_state = next_base + nci
                        best = g_score.get(nxt_state)
                        if best is None or g_next < best:
                            g_score[nxt_state] = g_next
                            parent[nxt_state] = state
                            generated += 1
                            push(open_heap,
                                 (g_next + hfield[nci], depth, tie, g_next,
                                  nxt_state))
                            tie += 1
        return SearchOutcome(request, SEARCH_EXHAUSTED, None, stats)
    finally:
        stats.expansions = expansions
        stats.generated += generated
        stats.peak_open = peak_open


def find_path(grid: Grid, reservation: ReservationTable, source: Cell,
              goal: Cell, start_time: Tick,
              heuristic: Optional[Heuristic] = None,
              max_expansions: int = 200_000,
              finisher=None,
              finisher_trigger: int = 0,
              stats: Optional[SearchStats] = None,
              horizon: Optional[int] = None) -> Path:
    """Find a conflict-free timed path from ``source`` (at ``start_time``).

    The historical raising convention over :func:`search` (the seed's
    signature, plus the optional ``horizon``).

    Parameters
    ----------
    grid:
        Spatial passability.
    reservation:
        Already-planned paths to avoid (single-grid + swap conflicts).
    source, goal:
        Spatial endpoints.
    start_time:
        Tick at which the robot sits on ``source``.
    heuristic:
        Admissible remaining-distance bound (default: Manhattan).  A
        :class:`~repro.pathfinding.heuristics.HeuristicField` (or any
        object with a ``flat`` list of length W·H) is consumed directly;
        a plain callable is evaluated lazily — once per cell the search
        touches, memoised for the duration of the call.
    max_expansions:
        Abort threshold; exceeded means livelock, reported as
        :class:`~repro.errors.PathNotFoundError`.
    finisher:
        Optional cache-aided finisher (Sec. VI-B): called as
        ``finisher(cell, t)`` once the popped node's h-value is
        ``<= finisher_trigger``; if it returns timed steps, the search
        short-circuits and appends them.
    finisher_trigger:
        The L threshold of Sec. VI-B (``0`` disables the finisher).
    stats:
        Optional mutable counters filled during the search.
    horizon:
        Optional windowed-mode horizon ``W`` (see :func:`search`).

    Returns
    -------
    Path
        Timed path starting at ``(start_time, *source)`` and ending on
        ``goal``; conflict-free w.r.t. ``reservation`` wherever probes
        were in force (everywhere, unless ``horizon`` was given).

    Raises
    ------
    PathNotFoundError
        If the search budget or the open set is exhausted; the search
        stats ride along on the exception.
    """
    request = SearchRequest(source=source, goal=goal, start_time=start_time,
                            horizon=horizon, max_expansions=max_expansions,
                            finisher=finisher,
                            finisher_trigger=finisher_trigger)
    outcome = search(grid, reservation, request, heuristic=heuristic,
                     stats=stats)
    if not outcome.ok:
        raise outcome.error()
    return outcome.path


def _heuristic_field(grid: Grid, goal: Cell,
                     heuristic: Optional[Heuristic]) -> Sequence[int]:
    """Resolve ``heuristic`` into an h-field indexed by cell index."""
    if heuristic is None:
        return grid.manhattan_field(goal)
    flat = getattr(heuristic, "flat", None)
    if flat is not None:
        field_height = getattr(heuristic, "_height", None)
        if (len(flat) != grid.n_cells
                or (field_height is not None
                    and field_height != grid.height)):
            raise ValueError(
                "heuristic field was built for a different grid "
                f"({len(flat)} cells, height {field_height}) than the one "
                f"being searched ({grid.n_cells} cells, height {grid.height})")
        return flat
    return _LazyField(heuristic, grid.height)


class _LazyField:
    """Index adapter over a plain callable heuristic, memoised per cell.

    Keeps the seed's lazy evaluation for arbitrary callables — h is
    computed only for cells the search actually touches, once each —
    while presenting the ``field[ci]`` interface the core indexes.
    """

    __slots__ = ("_heuristic", "_height", "_memo")

    def __init__(self, heuristic: Heuristic, height: int) -> None:
        self._heuristic = heuristic
        self._height = height
        self._memo: Dict[int, int] = {}

    def __getitem__(self, ci: int) -> int:
        h = self._memo.get(ci)
        if h is None:
            h = self._heuristic(divmod(ci, self._height))
            self._memo[ci] = h
        return h


def _reconstruct(parent: Dict[int, int], state: int, n_cells: int,
                 height: int, start_time: Tick) -> Path:
    steps: List = []
    while state is not None:
        t, ci = divmod(state, n_cells)
        x, y = divmod(ci, height)
        steps.append((t, x, y))
        state = parent.get(state)
    steps.reverse()
    assert steps[0][0] == start_time
    return Path(tuple(steps))
