"""Conflict Detection Table (paper Sec. VI-B) and its region-sharded twin.

Nothing is stored for free (cell, time) pairs, so the footprint tracks the
number of live reservations instead of the time horizon.  The paper reports
this drops the reservation space from O((HW)²) to O(HW) while keeping O(1)
conflict probes; Fig. 12 is the resulting memory gap and the A4 ablation in
this repo reproduces it directly.

Layout: reservations live in per-tick buckets of packed cell keys
(``x << 16 | y``).  A probe is two O(1) hits (tick bucket, then key); the
periodic *update* deletes whole passed buckets in O(ticks purged), where
the seed's per-cell timestamp sets forced a scan of every live cell.  The
packed keys are also exactly what the packed-integer spatiotemporal A*
core probes with, so the search's hot loop never materialises a tuple.

Supports the three operations of Sec. VI-B: conflict *search* (``is_free``
/ ``edge_free``), *insertion* (``reserve_path``) and the periodic *update*
that deletes passed timestamps (``purge_before``).

Two additions on top of the paper's structure, both behaviour-neutral:

* **Vectorised bulk audits** (:class:`_ProbeIndex`).  The tier-0
  free-flow fast path audits whole candidate paths far more often than it
  reserves, and ``bench_kernels --profile`` shows the per-step
  dict-get/set-probe loop of ``audit_path`` dominating fast-path cost on
  large floors.  Both CDT variants can therefore mirror every live
  reservation into an append-mostly sorted int64 index of combined
  ``(tick, vertex)`` / ``(tick, edge)`` probe integers and answer bulk
  audits with two ``searchsorted`` passes.  The probes are bit-identical
  to the bucket probes (the index mirrors insertions and purges exactly);
  the pure-python bucket walk is retained as the fallback when numpy is
  missing, ticks overflow the packing, or an edge is not a cardinal move.
  The index only pays for itself on large floors, where audited legs run
  hundreds of steps — on the small historical floors the per-step upkeep
  in ``reserve_path`` and the array building per audit cost more than the
  dict walks they replace — so the global table ships with it *off*
  (``vector_audit=False``, the seed's exact per-step behaviour) and the
  planners switch it on alongside the rest of the paper-scale machinery.
* **Region sharding** (:class:`ShardedConflictDetectionTable`).  The
  global table keys buckets by tick alone, so the periodic purge and the
  O(live ticks) ``memory_bytes`` sum walk state belonging to the whole
  fleet.  The sharded variant partitions the tick buckets into fixed-size
  spatial tiles so every operation touches only the tiles a leg crosses,
  and tracks entry counts incrementally so ``memory_bytes`` — called once
  per simulation event for the MC metric — is O(1).  Same probes, same
  answers; the equivalence suite pins the two variants bit-identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..types import CELL_KEY_MASK, CELL_KEY_SHIFT, Cell, Tick
from . import reservation as _rsv
from .paths import Path
from .reservation import (CHAIN_TICK_LIMIT, DIR_CODES, EDGE_TICK_SHIFT,
                          VERTEX_TICK_SHIFT, PackedChain, ReservationTable,
                          _EdgeMixin, _stale_ticks, tile_of_key)

try:  # optional acceleration; the bucket-walk fallback stays bit-identical
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

#: Below this many path steps the python bucket walk beats building numpy
#: arrays; both sides are bit-identical so the cutoff is pure tuning.
_VECTOR_MIN_STEPS = 16


class _ProbeIndex:
    """A sorted int64 membership index over combined probe integers.

    Maintains the invariant "a combined integer is present iff the
    corresponding (tick, vertex|edge) reservation is live", split into a
    sorted numpy array plus a small unsorted pending tail so insertions
    stay O(1) amortised.  Purges advance a floor; because the combined
    packing is tick-major, everything below the floor is a sorted-array
    prefix and pending strays are filtered at the next compaction (they
    can never match a probe, which always carries a tick at or above the
    purge floor).
    """

    __slots__ = ("_sorted", "_pending", "_pending_arr", "_floor")

    #: Pending-tail length that triggers a merge into the sorted array.
    _MERGE_AT = 8192

    def __init__(self) -> None:
        self._sorted = _np.empty(0, dtype=_np.int64)
        self._pending: List[int] = []
        self._pending_arr = None
        self._floor = 0

    def add(self, combined: int) -> None:
        self._pending.append(combined)
        self._pending_arr = None
        if len(self._pending) >= self._MERGE_AT:
            self._compact()

    def add_many(self, values) -> None:
        """Bulk :meth:`add` — one list extend per committed path (the
        compiled mutation kernel returns a whole path's fresh probes at
        once)."""
        self._pending.extend(values)
        self._pending_arr = None
        if len(self._pending) >= self._MERGE_AT:
            self._compact()

    def drop_below(self, combined_floor: int) -> None:
        if combined_floor > self._floor:
            self._floor = combined_floor
            left = int(_np.searchsorted(self._sorted, combined_floor))
            if left:
                self._sorted = self._sorted[left:]
            if self._pending:
                # Probes *at* purged ticks must answer free, exactly like
                # the emptied buckets, so the unsorted tail is filtered
                # eagerly too (it is at most ``_MERGE_AT`` long).
                self._pending = [value for value in self._pending
                                 if value >= combined_floor]
                self._pending_arr = None

    def _compact(self) -> None:
        merged = _np.concatenate(
            (self._sorted, _np.array(self._pending, dtype=_np.int64)))
        self._pending = []
        self._pending_arr = None
        merged.sort()
        left = int(_np.searchsorted(merged, self._floor))
        self._sorted = merged[left:] if left else merged

    def any_hit(self, probes) -> bool:
        """Whether any combined probe in the int64 array is present."""
        haystack = self._sorted
        if haystack.size:
            slots = _np.searchsorted(haystack, probes)
            inside = slots < haystack.size
            if inside.any() and (
                    haystack[slots[inside]] == probes[inside]).any():
                return True
        if self._pending:
            pending = self._pending_arr
            if pending is None:
                pending = self._pending_arr = _np.array(
                    self._pending, dtype=_np.int64)
            if _np.isin(probes, pending).any():
                return True
        return False


class _VectorAuditMixin:
    """Shared vectorised ``audit_path`` / ``audit_chain`` for CDT variants.

    Hosts the two probe indexes and the translation from paths/chains to
    combined probe arrays.  The owning class feeds the vertex index from
    its ``reserve_path`` (via :meth:`_note_vertex`), wires
    ``self._edge_note`` to :meth:`_note_edge`, and advances both floors
    from ``purge_before`` (via :meth:`_drop_indexes_below`).  Any input
    the packing cannot represent (no numpy, tick overflow, a non-cardinal
    edge) permanently poisons the indexes and every audit falls back to
    the bit-identical bucket walk.
    """

    def _init_indexes(self, vector_audit: bool = True) -> None:
        if not vector_audit or _np is None:
            self._vindex = self._eindex = None
        else:
            self._vindex = _ProbeIndex()
            self._eindex = _ProbeIndex()
            self._edge_note = self._note_edge

    def _poison_indexes(self) -> None:
        self._vindex = self._eindex = None
        self._edge_note = None

    def _note_vertex(self, t: Tick, key: int) -> None:
        if t >= CHAIN_TICK_LIMIT:
            self._poison_indexes()
            return
        self._vindex.add((t << VERTEX_TICK_SHIFT) | key)

    def _note_edge(self, t0: Tick, x0: int, y0: int, x1: int, y1: int) -> None:
        key0 = (x0 << CELL_KEY_SHIFT) | y0
        key1 = (x1 << CELL_KEY_SHIFT) | y1
        code = DIR_CODES.get(key1 - key0)
        if code is None or t0 >= CHAIN_TICK_LIMIT:
            self._poison_indexes()
            return
        self._eindex.add((t0 << EDGE_TICK_SHIFT) | (key0 << 2) | code)

    def _drop_indexes_below(self, t: Tick) -> None:
        if self._vindex is not None:
            self._vindex.drop_below(t << VERTEX_TICK_SHIFT)
            self._eindex.drop_below(t << EDGE_TICK_SHIFT)

    def _fold_kernel_probes(self, vprobes, eprobes, poison: bool) -> None:
        """Feed the probes a compiled ``reserve_path`` collected.

        The kernel mirrors the per-insertion ``_note_vertex``/``_note_edge``
        calls by returning the fresh probes in bulk; a poisoned batch (tick
        overflow or a non-cardinal edge) kills the indexes exactly like the
        per-call path would.
        """
        if self._vindex is None:
            return
        if poison:
            self._poison_indexes()
            return
        if vprobes:
            self._vindex.add_many(vprobes)
        if eprobes:
            self._eindex.add_many(eprobes)

    # -- bulk audits ---------------------------------------------------------

    def audit_chain(self, t: Tick, chain: PackedChain, limit: int) -> bool:
        vindex = self._vindex
        vshift = chain.vshift
        if (vindex is None or vshift is None or limit < 1
                or t + limit >= CHAIN_TICK_LIMIT):
            return ReservationTable.audit_chain(self, t, chain, limit)
        if vindex.any_hit((t << VERTEX_TICK_SHIFT) + vshift[1:limit + 1]):
            return False
        return not self._eindex.any_hit(
            (t << EDGE_TICK_SHIFT) + chain.eshift[:limit])

    def audit_path(self, path: Path) -> bool:
        steps = path.steps
        if (self._vindex is None or len(steps) <= _VECTOR_MIN_STEPS
                or steps[-1][0] >= CHAIN_TICK_LIMIT):
            return self._audit_path_buckets(path)
        vertex_probes: List[int] = []
        edge_probes: List[int] = []
        previous_t = steps[0][0]
        previous_key = (steps[0][1] << CELL_KEY_SHIFT) | steps[0][2]
        for (t, x, y) in steps[1:]:
            key = (x << CELL_KEY_SHIFT) | y
            vertex_probes.append((t << VERTEX_TICK_SHIFT) | key)
            if key != previous_key:
                # The swap probe looks for the stored *opposing* traversal
                # target -> source, encoded (target_key, direction back).
                code = DIR_CODES.get(previous_key - key)
                if code is None:
                    return self._audit_path_buckets(path)
                edge_probes.append(
                    (previous_t << EDGE_TICK_SHIFT) | (key << 2) | code)
            previous_t, previous_key = t, key
        if self._vindex.any_hit(_np.array(vertex_probes, dtype=_np.int64)):
            return False
        if edge_probes and self._eindex.any_hit(
                _np.array(edge_probes, dtype=_np.int64)):
            return False
        return True

    def _audit_path_buckets(self, path: Path) -> bool:
        """The pure-python fallback; overridden per storage layout."""
        return ReservationTable.audit_path(self, path)


class ConflictDetectionTable(_VectorAuditMixin, _EdgeMixin, ReservationTable):
    """Sparse tick-bucketed packed reservations (the compact structure).

    ``vector_audit`` opts into the numpy probe indexes; it defaults off
    because on the small historical floors the per-step index upkeep and
    per-audit array building cost more than the dict walks they replace
    (the planners enable it at paper scale, where audited legs run
    hundreds of steps).
    """

    def __init__(self, vector_audit: bool = False) -> None:
        _EdgeMixin.__init__(self)
        #: t -> set of packed cell keys reserved at t.
        self._buckets: Dict[Tick, Set[int]] = {}
        self._floor: Tick = 0
        self._n_entries = 0
        self.mutation_stamp = 0
        self._init_indexes(vector_audit)

    # -- ReservationTable -----------------------------------------------------

    def is_free(self, t: Tick, cell: Cell) -> bool:
        bucket = self._buckets.get(t)
        return bucket is None or (
            (cell[0] << CELL_KEY_SHIFT) | cell[1]) not in bucket

    def is_free_packed(self, t: Tick, key: int) -> bool:
        bucket = self._buckets.get(t)
        return bucket is None or key not in bucket

    def edge_free(self, t: Tick, source: Cell, target: Cell) -> bool:
        return self._edge_free(t, source, target)

    edge_free_packed = _EdgeMixin._edge_free_packed

    def packed_buckets(self):
        return self._buckets, self._edge_buckets

    def kernel_probe_spec(self):
        # Mode 1: {tick: set(packed key)} vertices, {tick: set(edge)} swaps.
        return 1, self._buckets, self._edge_buckets, 0

    def reserve_path(self, path: Path,
                     horizon: Optional[Tick] = None) -> None:
        self.mutation_stamp += 1
        kernel = _rsv._MUTATION_MODULE
        if kernel is not None:
            self.mutation_kernel = "compiled"
            (added, _, _, e_added, _, vprobes, eprobes,
             poison) = kernel.reserve_path(
                1, self._buckets, self._edge_buckets, 0, 0, 0, path.steps,
                -1 if horizon is None else horizon, self._floor,
                self._edge_floor, 0, self._vindex is not None)
            self._n_entries += added
            self._n_edges += e_added
            self._fold_kernel_probes(vprobes, eprobes, poison)
            return
        self.mutation_kernel = "python"
        buckets = self._buckets
        floor = self._floor
        vindex = self._vindex
        for (t, x, y) in path.steps:
            if horizon is not None and t > horizon:
                break  # consecutive timestamps: everything after is later
            if t >= floor:
                key = (x << CELL_KEY_SHIFT) | y
                bucket = buckets.get(t)
                if bucket is None:
                    bucket = buckets[t] = set()
                if key not in bucket:
                    bucket.add(key)
                    self._n_entries += 1
                    if vindex is not None:
                        if t >= CHAIN_TICK_LIMIT:
                            self._poison_indexes()
                            vindex = None
                        else:
                            vindex.add((t << VERTEX_TICK_SHIFT) | key)
        self._reserve_edges(path, horizon)

    def unreserve_path(self, path: Path,
                       horizon: Optional[Tick] = None) -> None:
        self.mutation_stamp += 1
        if self._vindex is not None:
            self._poison_indexes()  # the probe index is append-only
        kernel = _rsv._MUTATION_MODULE
        if kernel is not None:
            self.mutation_kernel = "compiled"
            removed, _, _, e_removed = kernel.unreserve_path(
                1, self._buckets, self._edge_buckets, 0, 0, path.steps,
                -1 if horizon is None else horizon, self._floor,
                self._edge_floor)
            self._n_entries -= removed
            self._n_edges -= e_removed
            return
        self.mutation_kernel = "python"
        buckets = self._buckets
        floor = self._floor
        for (t, x, y) in path.steps:
            if horizon is not None and t > horizon:
                break  # consecutive timestamps: everything after is later
            if t >= floor:
                key = (x << CELL_KEY_SHIFT) | y
                bucket = buckets.get(t)
                if bucket is not None and key in bucket:
                    bucket.discard(key)
                    self._n_entries -= 1
                    if not bucket:
                        del buckets[t]
        self._unreserve_edges(path, horizon)

    def purge_before(self, t: Tick) -> None:
        """The periodic *update* operation: delete all passed timestamps."""
        self.mutation_stamp += 1
        kernel = _rsv._MUTATION_MODULE
        if kernel is not None:
            self.mutation_kernel = "compiled"
            removed, _, _, e_removed = kernel.purge_before(
                1, self._buckets, self._edge_buckets, 0, t, self._floor,
                self._edge_floor)
            if t > self._floor:
                self._n_entries -= removed
                self._floor = t
                self._drop_indexes_below(t)
            if t > self._edge_floor:
                self._n_edges -= e_removed
                self._edge_floor = t
            return
        self.mutation_kernel = "python"
        if t > self._floor:
            buckets = self._buckets
            for tick in _stale_ticks(buckets, self._floor, t):
                bucket = buckets.pop(tick, None)
                if bucket is not None:
                    self._n_entries -= len(bucket)
            self._floor = t
            self._drop_indexes_below(t)
        self._purge_edges(t)

    def memory_bytes(self) -> int:
        # ~32 B per packed key in a set of small ints plus ~100 B per tick
        # bucket (dict slot + set header) — measured Python container
        # costs, consistent across runs and with the seed's estimate.
        # Entry counts are tracked incrementally so this stays O(1): the
        # simulation engine charges the MC metric on every event.
        return (64 + 100 * len(self._buckets) + 32 * self._n_entries
                + self._edges_memory())

    def _audit_path_buckets(self, path: Path) -> bool:
        kernel = _rsv._MUTATION_MODULE
        if kernel is not None:
            return kernel.audit_path(1, self._buckets, self._edge_buckets,
                                     0, 0, path.steps)
        return ReservationTable.audit_path(self, path)

    def recount(self):
        """Walk the buckets and recompute every incremental counter."""
        counts = {"reservations": sum(len(bucket)
                                      for bucket in self._buckets.values()),
                  "ticks_live": len(self._buckets)}
        counts.update(self._recount_edge_state())
        counts["memory_bytes"] = (
            64 + 100 * counts["ticks_live"] + 32 * counts["reservations"]
            + 64 + 100 * counts["edges"] + 64 * counts["edge_ticks"])
        return counts

    # -- introspection ----------------------------------------------------------

    @property
    def n_reservations(self) -> int:
        """Total number of live (cell, time) reservations."""
        return self._n_entries

    @property
    def n_cells_touched(self) -> int:
        """Number of cells with at least one live reservation."""
        touched: Set[int] = set()
        for bucket in self._buckets.values():
            touched |= bucket
        return len(touched)

    @property
    def n_ticks_live(self) -> int:
        """Number of ticks holding at least one reservation."""
        return len(self._buckets)

    def live_counts(self):
        counts = {"reservations": self._n_entries,
                  "ticks_live": len(self._buckets)}
        counts.update(self._edge_live_counts())
        counts["memory_bytes"] = self.memory_bytes()
        return counts


class ShardedConflictDetectionTable(_VectorAuditMixin, _EdgeMixin,
                                    ReservationTable):
    """The CDT with tick buckets partitioned into fixed-size spatial tiles.

    ``_tiles[tile][t]`` is the set of packed cell keys reserved at ``t``
    within one ``2**tile_bits``-cell-square region of the floor, so
    ``reserve_path``/``audit_path`` touch only the tiles the leg crosses
    (with a last-tile memo — consecutive steps almost always stay inside
    one tile) and the periodic purge walks each tile's own live ticks
    instead of one fleet-wide tick sequence.  Entry and bucket counts are
    tracked incrementally so ``memory_bytes`` is O(1) per call.

    Probe-for-probe equivalent to :class:`ConflictDetectionTable` — the
    key sets are merely partitioned — which the sharded-vs-global property
    suite pins on randomized cross-tile traffic.  Directed edges stay in
    the tick-keyed :class:`~repro.pathfinding.reservation._EdgeMixin`
    buckets: every edge operation is already O(1) per probe and O(ticks)
    per purge, so tiling them would add a second tile lookup per move for
    nothing.

    ``packed_buckets`` answers ``None`` (the layout is no longer one dict
    per tick), so the packed A* core probes through the ``*_packed``
    methods — slightly slower per probe, which the tier-0 fast path and
    the vectorised bulk audits more than absorb on the large floors this
    table is selected for.
    """

    def __init__(self, tile_bits: int = 5) -> None:
        _EdgeMixin.__init__(self)
        self._tile_bits = tile_bits
        #: tile id -> (t -> set of packed cell keys reserved at t).
        self._tiles: Dict[int, Dict[Tick, Set[int]]] = {}
        self._floor: Tick = 0
        self._n_entries = 0
        self._n_tick_buckets = 0
        self.mutation_stamp = 0
        self._init_indexes()

    @property
    def tile_bits(self) -> int:
        """log2 of the tile edge length."""
        return self._tile_bits

    # -- ReservationTable -----------------------------------------------------

    def is_free(self, t: Tick, cell: Cell) -> bool:
        return self.is_free_packed(
            t, (cell[0] << CELL_KEY_SHIFT) | cell[1])

    def is_free_packed(self, t: Tick, key: int) -> bool:
        tile = self._tiles.get(tile_of_key(key, self._tile_bits))
        if tile is None:
            return True
        bucket = tile.get(t)
        return bucket is None or key not in bucket

    def edge_free(self, t: Tick, source: Cell, target: Cell) -> bool:
        return self._edge_free(t, source, target)

    edge_free_packed = _EdgeMixin._edge_free_packed

    def kernel_probe_spec(self):
        # Mode 3: {tile: {tick: set(packed key)}} vertices, shared swaps.
        return 3, self._tiles, self._edge_buckets, self._tile_bits

    def reserve_path(self, path: Path,
                     horizon: Optional[Tick] = None) -> None:
        self.mutation_stamp += 1
        kernel = _rsv._MUTATION_MODULE
        if kernel is not None:
            self.mutation_kernel = "compiled"
            (added, buckets_added, _, e_added, _, vprobes, eprobes,
             poison) = kernel.reserve_path(
                3, self._tiles, self._edge_buckets, self._tile_bits, 0, 0,
                path.steps, -1 if horizon is None else horizon,
                self._floor, self._edge_floor, 0, self._vindex is not None)
            self._n_entries += added
            self._n_tick_buckets += buckets_added
            self._n_edges += e_added
            self._fold_kernel_probes(vprobes, eprobes, poison)
            return
        self.mutation_kernel = "python"
        tiles = self._tiles
        bits = self._tile_bits
        floor = self._floor
        vindex = self._vindex
        last_tile_id = -1
        tile: Dict[Tick, Set[int]] = {}
        for (t, x, y) in path.steps:
            if horizon is not None and t > horizon:
                break  # consecutive timestamps: everything after is later
            if t < floor:
                continue
            key = (x << CELL_KEY_SHIFT) | y
            tile_id = tile_of_key(key, bits)
            if tile_id != last_tile_id:
                tile = tiles.get(tile_id)
                if tile is None:
                    tile = tiles[tile_id] = {}
                last_tile_id = tile_id
            bucket = tile.get(t)
            if bucket is None:
                bucket = tile[t] = set()
                self._n_tick_buckets += 1
            if key not in bucket:
                bucket.add(key)
                self._n_entries += 1
                if vindex is not None:
                    if t >= CHAIN_TICK_LIMIT:
                        self._poison_indexes()
                        vindex = None
                    else:
                        vindex.add((t << VERTEX_TICK_SHIFT) | key)
        self._reserve_edges(path, horizon)

    def unreserve_path(self, path: Path,
                       horizon: Optional[Tick] = None) -> None:
        self.mutation_stamp += 1
        if self._vindex is not None:
            self._poison_indexes()  # the probe index is append-only
        kernel = _rsv._MUTATION_MODULE
        if kernel is not None:
            self.mutation_kernel = "compiled"
            removed, buckets_removed, _, e_removed = kernel.unreserve_path(
                3, self._tiles, self._edge_buckets, self._tile_bits, 0,
                path.steps, -1 if horizon is None else horizon,
                self._floor, self._edge_floor)
            self._n_entries -= removed
            self._n_tick_buckets -= buckets_removed
            self._n_edges -= e_removed
            return
        self.mutation_kernel = "python"
        tiles = self._tiles
        bits = self._tile_bits
        floor = self._floor
        for (t, x, y) in path.steps:
            if horizon is not None and t > horizon:
                break  # consecutive timestamps: everything after is later
            if t < floor:
                continue
            key = (x << CELL_KEY_SHIFT) | y
            tile_id = tile_of_key(key, bits)
            tile = tiles.get(tile_id)
            if tile is None:
                continue
            bucket = tile.get(t)
            if bucket is not None and key in bucket:
                bucket.discard(key)
                self._n_entries -= 1
                if not bucket:
                    del tile[t]
                    self._n_tick_buckets -= 1
                    if not tile:
                        del tiles[tile_id]
        self._unreserve_edges(path, horizon)

    def purge_before(self, t: Tick) -> None:
        self.mutation_stamp += 1
        kernel = _rsv._MUTATION_MODULE
        if kernel is not None:
            self.mutation_kernel = "compiled"
            removed, buckets_removed, _, e_removed = kernel.purge_before(
                3, self._tiles, self._edge_buckets, self._tile_bits, t,
                self._floor, self._edge_floor)
            if t > self._floor:
                self._n_entries -= removed
                self._n_tick_buckets -= buckets_removed
                self._floor = t
                self._drop_indexes_below(t)
            if t > self._edge_floor:
                self._n_edges -= e_removed
                self._edge_floor = t
            return
        self.mutation_kernel = "python"
        if t > self._floor:
            floor = self._floor
            for tile_id, tile in list(self._tiles.items()):
                for tick in _stale_ticks(tile, floor, t):
                    bucket = tile.pop(tick, None)
                    if bucket is not None:
                        self._n_entries -= len(bucket)
                        self._n_tick_buckets -= 1
                if not tile:
                    del self._tiles[tile_id]
            self._floor = t
            self._drop_indexes_below(t)
        self._purge_edges(t)

    def memory_bytes(self) -> int:
        # Same accounting as the global CDT (the keys are merely
        # partitioned) plus one dict header per live tile.
        return (64 + 100 * self._n_tick_buckets + 32 * self._n_entries
                + 64 * len(self._tiles) + self._edges_memory())

    def recount(self):
        """Walk every tile and recompute the incremental counters."""
        entries = 0
        buckets = 0
        for tile in self._tiles.values():
            buckets += len(tile)
            for bucket in tile.values():
                entries += len(bucket)
        counts = {"reservations": entries, "ticks_live": buckets,
                  "tiles_live": len(self._tiles)}
        counts.update(self._recount_edge_state())
        counts["memory_bytes"] = (
            64 + 100 * counts["ticks_live"] + 32 * counts["reservations"]
            + 64 * counts["tiles_live"]
            + 64 + 100 * counts["edges"] + 64 * counts["edge_ticks"])
        return counts

    def _audit_path_buckets(self, path: Path) -> bool:
        """Bucket-walk audit: packed probes with a last-tile memo."""
        kernel = _rsv._MUTATION_MODULE
        if kernel is not None:
            return kernel.audit_path(3, self._tiles, self._edge_buckets,
                                     self._tile_bits, 0, path.steps)
        tiles = self._tiles
        bits = self._tile_bits
        edge_buckets = self._edge_buckets
        steps = path.steps
        last_tile_id = -1
        tile: Optional[Dict[Tick, Set[int]]] = None
        previous = steps[0]
        for step in steps[1:]:
            t0, x0, y0 = previous
            t1, x1, y1 = step
            key1 = (x1 << CELL_KEY_SHIFT) | y1
            tile_id = tile_of_key(key1, bits)
            if tile_id != last_tile_id:
                tile = tiles.get(tile_id)
                last_tile_id = tile_id
            if tile is not None:
                occupied = tile.get(t1)
                if occupied is not None and key1 in occupied:
                    return False
            if x0 != x1 or y0 != y1:
                swaps = edge_buckets.get(t0)
                if (swaps is not None
                        and ((key1 << 32)
                             | ((x0 << CELL_KEY_SHIFT) | y0)) in swaps):
                    return False
            previous = step
        return True

    # -- introspection ----------------------------------------------------------

    @property
    def n_reservations(self) -> int:
        """Total number of live (cell, time) reservations."""
        return self._n_entries

    @property
    def n_tiles_live(self) -> int:
        """Number of tiles holding at least one reservation."""
        return len(self._tiles)

    @property
    def n_ticks_live(self) -> int:
        """Number of (tile, tick) buckets holding reservations."""
        return self._n_tick_buckets

    def live_counts(self):
        counts = {"reservations": self._n_entries,
                  "ticks_live": self._n_tick_buckets,
                  "tiles_live": len(self._tiles)}
        counts.update(self._edge_live_counts())
        counts["memory_bytes"] = self.memory_bytes()
        return counts
