"""Conflict Detection Table (paper Sec. VI-B).

One entry per grid cell holding the *set of reserved timestamps* — nothing
is stored for free (cell, time) pairs, so the footprint tracks the number of
live reservations instead of the time horizon.  The paper reports this
drops the reservation space from O((HW)²) to O(HW) while keeping O(1)
conflict probes; Fig. 12 is the resulting memory gap and the A4 ablation in
this repo reproduces it directly.

Supports the three operations of Sec. VI-B: conflict *search* (``is_free`` /
``edge_free``), *insertion* (``reserve_path``) and the periodic *update*
that deletes passed timestamps (``purge_before``).
"""

from __future__ import annotations

from typing import Dict, Set

from ..types import Cell, Tick
from .paths import Path
from .reservation import ReservationTable, _EdgeMixin


class ConflictDetectionTable(_EdgeMixin, ReservationTable):
    """Sparse per-cell timestamp sets (the paper's compact structure)."""

    def __init__(self) -> None:
        _EdgeMixin.__init__(self)
        self._cells: Dict[Cell, Set[Tick]] = {}
        self._floor: Tick = 0

    # -- ReservationTable -----------------------------------------------------

    def is_free(self, t: Tick, cell: Cell) -> bool:
        if t < self._floor:
            return True
        times = self._cells.get(cell)
        return times is None or t not in times

    def edge_free(self, t: Tick, source: Cell, target: Cell) -> bool:
        return self._edge_free(t, source, target)

    def reserve_path(self, path: Path) -> None:
        for (t, x, y) in path:
            if t >= self._floor:
                self._cells.setdefault((x, y), set()).add(t)
        self._reserve_edges(path)

    def purge_before(self, t: Tick) -> None:
        """The periodic *update* operation: delete all passed timestamps."""
        self._floor = max(self._floor, t)
        empty = []
        for cell, times in self._cells.items():
            stale = [s for s in times if s < t]
            for s in stale:
                times.discard(s)
            if not times:
                empty.append(cell)
        for cell in empty:
            del self._cells[cell]
        self._purge_edges(t)

    def memory_bytes(self) -> int:
        # ~32 B per timestamp in a set of small ints plus ~100 B per cell
        # entry (dict slot + key tuple + set header) — measured Python
        # container costs, consistent across runs.
        entries = sum(len(times) for times in self._cells.values())
        return 64 + 100 * len(self._cells) + 32 * entries + self._edges_memory()

    # -- introspection ----------------------------------------------------------

    @property
    def n_reservations(self) -> int:
        """Total number of live (cell, time) reservations."""
        return sum(len(times) for times in self._cells.values())

    @property
    def n_cells_touched(self) -> int:
        """Number of cells with at least one live reservation."""
        return len(self._cells)
