"""Conflict Detection Table (paper Sec. VI-B).

Nothing is stored for free (cell, time) pairs, so the footprint tracks the
number of live reservations instead of the time horizon.  The paper reports
this drops the reservation space from O((HW)²) to O(HW) while keeping O(1)
conflict probes; Fig. 12 is the resulting memory gap and the A4 ablation in
this repo reproduces it directly.

Layout: reservations live in per-tick buckets of packed cell keys
(``x << 16 | y``).  A probe is two O(1) hits (tick bucket, then key); the
periodic *update* deletes whole passed buckets in O(ticks purged), where
the seed's per-cell timestamp sets forced a scan of every live cell.  The
packed keys are also exactly what the packed-integer spatiotemporal A*
core probes with, so the search's hot loop never materialises a tuple.

Supports the three operations of Sec. VI-B: conflict *search* (``is_free``
/ ``edge_free``), *insertion* (``reserve_path``) and the periodic *update*
that deletes passed timestamps (``purge_before``).  The bulk
``audit_path`` of the tier-0 free-flow fast path is inherited from
:class:`~repro.pathfinding.reservation.ReservationTable`, whose
implementation runs on this structure's :meth:`packed_buckets` — one dict
hit per tick, bare ``in`` per packed key, the same fast path the search
core probes with.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..types import CELL_KEY_SHIFT, Cell, Tick
from .paths import Path
from .reservation import ReservationTable, _EdgeMixin, _stale_ticks


class ConflictDetectionTable(_EdgeMixin, ReservationTable):
    """Sparse tick-bucketed packed reservations (the compact structure)."""

    def __init__(self) -> None:
        _EdgeMixin.__init__(self)
        #: t -> set of packed cell keys reserved at t.
        self._buckets: Dict[Tick, Set[int]] = {}
        self._floor: Tick = 0

    # -- ReservationTable -----------------------------------------------------

    def is_free(self, t: Tick, cell: Cell) -> bool:
        bucket = self._buckets.get(t)
        return bucket is None or (
            (cell[0] << CELL_KEY_SHIFT) | cell[1]) not in bucket

    def is_free_packed(self, t: Tick, key: int) -> bool:
        bucket = self._buckets.get(t)
        return bucket is None or key not in bucket

    def edge_free(self, t: Tick, source: Cell, target: Cell) -> bool:
        return self._edge_free(t, source, target)

    edge_free_packed = _EdgeMixin._edge_free_packed

    def packed_buckets(self):
        return self._buckets, self._edge_buckets

    def reserve_path(self, path: Path,
                     horizon: Optional[Tick] = None) -> None:
        buckets = self._buckets
        floor = self._floor
        for (t, x, y) in path.steps:
            if horizon is not None and t > horizon:
                break  # consecutive timestamps: everything after is later
            if t >= floor:
                bucket = buckets.get(t)
                if bucket is None:
                    bucket = buckets[t] = set()
                bucket.add((x << CELL_KEY_SHIFT) | y)
        self._reserve_edges(path, horizon)

    def purge_before(self, t: Tick) -> None:
        """The periodic *update* operation: delete all passed timestamps."""
        if t > self._floor:
            buckets = self._buckets
            for tick in _stale_ticks(buckets, self._floor, t):
                buckets.pop(tick, None)
            self._floor = t
        self._purge_edges(t)

    def memory_bytes(self) -> int:
        # ~32 B per packed key in a set of small ints plus ~100 B per tick
        # bucket (dict slot + set header) — measured Python container
        # costs, consistent across runs and with the seed's estimate.
        entries = sum(len(bucket) for bucket in self._buckets.values())
        return (64 + 100 * len(self._buckets) + 32 * entries
                + self._edges_memory())

    # -- introspection ----------------------------------------------------------

    @property
    def n_reservations(self) -> int:
        """Total number of live (cell, time) reservations."""
        return sum(len(bucket) for bucket in self._buckets.values())

    @property
    def n_cells_touched(self) -> int:
        """Number of cells with at least one live reservation."""
        touched: Set[int] = set()
        for bucket in self._buckets.values():
            touched |= bucket
        return len(touched)

    @property
    def n_ticks_live(self) -> int:
        """Number of ticks holding at least one reservation."""
        return len(self._buckets)
