"""The spatiotemporal-graph reservation structure (paper Sec. V-C).

The time-expanded graph duplicates the spatial grid at every timestep
(Fig. 7): a vertex is a ``(t, x, y)`` triple.  The paper's criticism —
which Fig. 12 quantifies — is its memory appetite: the structure grows a
*full* H×W layer per live timestep, O((HW)²) in the worst case, regardless
of how sparsely the layer is actually occupied.

To reproduce that behaviour honestly, this implementation materialises a
dense boolean occupancy layer (one byte per cell) for **every** timestep
between the purge floor and the latest reserved step, exactly as a literal
time-expanded graph does.  The CDT (``cdt.py``) keeps only the occupied
entries and is the paper's fix.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..types import Cell, Tick
from ..warehouse.grid import Grid
from .paths import Path
from .reservation import ReservationTable, _EdgeMixin


class SpatiotemporalGraph(_EdgeMixin, ReservationTable):
    """Dense time-expanded reservation layers (the memory-heavy baseline).

    Parameters
    ----------
    grid:
        The spatial grid being expanded over time.
    """

    def __init__(self, grid: Grid) -> None:
        _EdgeMixin.__init__(self)
        self._grid = grid
        #: t -> dense (width, height) uint8 occupancy layer.
        self._layers: Dict[Tick, np.ndarray] = {}
        self._floor: Tick = 0

    def _layer(self, t: Tick) -> np.ndarray:
        """Materialise (densely!) the layer for timestep ``t``.

        Materialising every intermediate layer up to ``t`` is what makes
        this structure faithful to a literal time-expanded graph — and what
        makes it lose Fig. 12.
        """
        layer = self._layers.get(t)
        if layer is None:
            # A real time-expanded graph has *every* timestep's copy of the
            # grid, so create all missing layers up to t, not just t's.
            high = max(self._layers, default=self._floor)
            for step in range(min(t, self._floor), max(t, high) + 1):
                if step >= self._floor and step not in self._layers:
                    self._layers[step] = np.zeros(
                        (self._grid.width, self._grid.height), dtype=np.uint8)
            layer = self._layers[t]
        return layer

    # -- ReservationTable ----------------------------------------------------

    def is_free(self, t: Tick, cell: Cell) -> bool:
        if t < self._floor:
            return True
        layer = self._layers.get(t)
        if layer is None:
            return True
        return not bool(layer[cell])

    def edge_free(self, t: Tick, source: Cell, target: Cell) -> bool:
        return self._edge_free(t, source, target)

    def reserve_path(self, path: Path) -> None:
        for (t, x, y) in path:
            if t >= self._floor:
                self._layer(t)[x, y] = 1
        self._reserve_edges(path)

    def purge_before(self, t: Tick) -> None:
        self._floor = max(self._floor, t)
        for stale in [step for step in self._layers if step < t]:
            del self._layers[stale]
        self._purge_edges(t)

    def memory_bytes(self) -> int:
        layers = sum(layer.nbytes for layer in self._layers.values())
        return layers + self._edges_memory()

    # -- introspection ---------------------------------------------------------

    @property
    def n_layers(self) -> int:
        """Number of materialised time layers (each a full grid copy)."""
        return len(self._layers)
