"""The spatiotemporal-graph reservation structure (paper Sec. V-C).

The time-expanded graph duplicates the spatial grid at every timestep
(Fig. 7): a vertex is a ``(t, x, y)`` triple.  The paper's criticism —
which Fig. 12 quantifies — is its memory appetite: the structure grows a
*full* H×W layer per live timestep, O((HW)²) in the worst case, regardless
of how sparsely the layer is actually occupied.

To reproduce that behaviour honestly, this implementation materialises a
dense occupancy layer (one byte per cell, a ``bytearray`` indexed by cell
index ``x·H + y``) for **every** timestep between the purge floor and the
latest reserved step, exactly as a literal time-expanded graph does.  The
CDT (``cdt.py``) keeps only the occupied entries and is the paper's fix.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..types import CELL_KEY_MASK, CELL_KEY_SHIFT, Cell, Tick
from ..warehouse.grid import Grid
from . import reservation as _rsv
from .paths import Path
from .reservation import ReservationTable, _EdgeMixin, tile_of_cell


class SpatiotemporalGraph(_EdgeMixin, ReservationTable):
    """Dense time-expanded reservation layers (the memory-heavy baseline).

    Parameters
    ----------
    grid:
        The spatial grid being expanded over time.
    """

    def __init__(self, grid: Grid) -> None:
        _EdgeMixin.__init__(self)
        self._grid = grid
        #: t -> dense one-byte-per-cell occupancy layer (cell-indexed).
        self._layers: Dict[Tick, bytearray] = {}
        self._floor: Tick = 0
        #: Highest materialised layer tick; only meaningful while
        #: ``_layers`` is non-empty.  The layers are always dense over
        #: ``[_floor, _high]`` (``_layer`` densifies every gap and the
        #: purge only trims from below), so tracking the top incrementally
        #: replaces the ``max()`` scan that dominated reserve-loop
        #: self-time at paper scale.
        self._high: Tick = 0
        self.mutation_stamp = 0

    def _layer(self, t: Tick) -> bytearray:
        """Materialise (densely!) the layer for timestep ``t``.

        Materialising every intermediate layer up to ``t`` is what makes
        this structure faithful to a literal time-expanded graph — and what
        makes it lose Fig. 12.
        """
        layer = self._layers.get(t)
        if layer is None:
            # A real time-expanded graph has *every* timestep's copy of the
            # grid, so create all missing layers up to t, not just t's.
            n_cells = self._grid.n_cells
            high = self._high if self._layers else self._floor
            for step in range(min(t, self._floor), max(t, high) + 1):
                if step >= self._floor and step not in self._layers:
                    self._layers[step] = bytearray(n_cells)
            self._high = max(t, high)
            layer = self._layers[t]
        return layer

    # -- ReservationTable ----------------------------------------------------

    def is_free(self, t: Tick, cell: Cell) -> bool:
        if t < self._floor:
            return True
        layer = self._layers.get(t)
        if layer is None:
            return True
        return not layer[cell[0] * self._grid.height + cell[1]]

    def is_free_packed(self, t: Tick, key: int) -> bool:
        # Layers below the floor are evicted, so a miss means free either
        # way — no separate floor check needed on the fast path.
        layer = self._layers.get(t)
        if layer is None:
            return True
        return not layer[(key >> CELL_KEY_SHIFT) * self._grid.height
                         + (key & CELL_KEY_MASK)]

    def edge_free(self, t: Tick, source: Cell, target: Cell) -> bool:
        return self._edge_free(t, source, target)

    edge_free_packed = _EdgeMixin._edge_free_packed

    def kernel_probe_spec(self):
        # Mode 2: {tick: bytearray[cell index]} layers, shared swaps.
        return 2, self._layers, self._edge_buckets, 0

    def reserve_path(self, path: Path,
                     horizon: Optional[Tick] = None) -> None:
        self.mutation_stamp += 1
        kernel = _rsv._MUTATION_MODULE
        if kernel is not None:
            self.mutation_kernel = "compiled"
            high = self._high if self._layers else self._floor - 1
            res = kernel.reserve_path(
                2, self._layers, self._edge_buckets, 0, self._grid.height,
                self._grid.n_cells, path.steps,
                -1 if horizon is None else horizon, self._floor,
                self._edge_floor, high, False)
            if self._layers:
                self._high = res[4]
            self._n_edges += res[3]
            return
        self.mutation_kernel = "python"
        height = self._grid.height
        floor = self._floor
        layers = self._layers
        get = layers.get
        for (t, x, y) in path:
            if horizon is not None and t > horizon:
                break  # consecutive timestamps: everything after is later
            if t >= floor:
                layer = get(t)
                if layer is None:
                    layer = self._layer(t)
                layer[x * height + y] = 1
        self._reserve_edges(path, horizon)

    def unreserve_path(self, path: Path,
                       horizon: Optional[Tick] = None) -> None:
        self.mutation_stamp += 1
        kernel = _rsv._MUTATION_MODULE
        if kernel is not None:
            self.mutation_kernel = "compiled"
            res = kernel.unreserve_path(
                2, self._layers, self._edge_buckets, 0, self._grid.height,
                path.steps, -1 if horizon is None else horizon,
                self._floor, self._edge_floor)
            self._n_edges -= res[3]
            return
        self.mutation_kernel = "python"
        # Layers stay materialised: a time-expanded graph keeps every
        # timestep's grid copy; only the occupancy bytes are cleared.
        height = self._grid.height
        floor = self._floor
        get = self._layers.get
        for (t, x, y) in path:
            if horizon is not None and t > horizon:
                break  # consecutive timestamps: everything after is later
            if t >= floor:
                layer = get(t)
                if layer is not None:
                    layer[x * height + y] = 0
        self._unreserve_edges(path, horizon)

    def audit_path(self, path: Path) -> bool:
        """Bulk conflict audit for the tier-0 free-flow fast path.

        The dense-layer native form of
        :meth:`~repro.pathfinding.reservation.ReservationTable.audit_path`:
        one ``bytearray`` index per arrival (a missing layer means free —
        layers below the floor are evicted) plus the shared tick-bucketed
        swap probe.
        """
        kernel = _rsv._MUTATION_MODULE
        if kernel is not None:
            return kernel.audit_path(2, self._layers, self._edge_buckets,
                                     0, self._grid.height, path.steps)
        height = self._grid.height
        layers = self._layers
        edge_buckets = self._edge_buckets
        steps = path.steps
        previous = steps[0]
        for step in steps[1:]:
            t0, x0, y0 = previous
            t1, x1, y1 = step
            layer = layers.get(t1)
            if layer is not None and layer[x1 * height + y1]:
                return False
            if x0 != x1 or y0 != y1:
                swaps = edge_buckets.get(t0)
                if (swaps is not None
                        and ((((x1 << CELL_KEY_SHIFT) | y1) << 32)
                             | ((x0 << CELL_KEY_SHIFT) | y0)) in swaps):
                    return False
            previous = step
        return True

    def purge_before(self, t: Tick) -> None:
        self.mutation_stamp += 1
        kernel = _rsv._MUTATION_MODULE
        if kernel is not None:
            self.mutation_kernel = "compiled"
            res = kernel.purge_before(
                2, self._layers, self._edge_buckets, 0, t, self._floor,
                self._edge_floor)
            self._floor = max(self._floor, t)
            if t > self._edge_floor:
                self._n_edges -= res[3]
                self._edge_floor = t
            return
        self.mutation_kernel = "python"
        self._floor = max(self._floor, t)
        for stale in [step for step in self._layers if step < t]:
            del self._layers[stale]
        self._purge_edges(t)

    def memory_bytes(self) -> int:
        # One byte per cell per layer — identical accounting to the seed's
        # uint8 ndarray layers.  Every layer is exactly ``n_cells`` long,
        # so the per-layer sum collapses to one O(1) multiply.
        return (len(self._layers) * self._grid.n_cells
                + self._edges_memory())

    def recount(self):
        """Walk the layers and recompute the footprint from scratch."""
        counts = {"layers": len(self._layers)}
        counts.update(self._recount_edge_state())
        counts["memory_bytes"] = (
            sum(len(layer) for layer in self._layers.values())
            + 64 + 100 * counts["edges"] + 64 * counts["edge_ticks"])
        return counts

    # -- introspection ---------------------------------------------------------

    @property
    def n_layers(self) -> int:
        """Number of materialised time layers (each a full grid copy)."""
        return len(self._layers)

    def live_counts(self):
        counts = {"layers": len(self._layers)}
        counts.update(self._edge_live_counts())
        counts["memory_bytes"] = self.memory_bytes()
        return counts


class ShardedSpatiotemporalGraph(_EdgeMixin, ReservationTable):
    """The ST graph with each time layer partitioned into spatial tiles.

    ``_layers[t][tile]`` is a dense one-byte-per-cell occupancy block for
    one ``2**tile_bits``-cell-square region of the floor at timestep
    ``t``; a tile block is materialised only when a reservation first
    lands in it.  That abandons the global structure's deliberate
    paper-faithful behaviour of densifying *every* cell of *every*
    intermediate layer — which is exactly the point: on the paper-true
    541×302 floor a single dense layer is 163 KB and a 3 000-robot run
    keeps hundreds of layers live, while the tiles a fleet actually
    crosses at the far end of its planning horizon are sparse.  The
    global :class:`SpatiotemporalGraph` remains the Fig. 12 baseline; the
    sharded variant exists to let the NTP/ATP family *execute* the
    paper's excluded Real-Large regime, and the equivalence suite pins
    its probe answers bit-identical to the global table's.

    Tile blocks are indexed ``((x & mask) << bits) | (y & mask)``; no
    grid reference is needed (tiling is pure coordinate arithmetic),
    which also keeps the table cheaply picklable for the in-run batch
    pool.  Directed edges stay in the shared tick-keyed edge buckets for
    the same reason as the sharded CDT.  Byte counts are tracked
    incrementally so ``memory_bytes`` — charged per simulation event —
    is O(1).
    """

    def __init__(self, tile_bits: int = 5) -> None:
        _EdgeMixin.__init__(self)
        self._tile_bits = tile_bits
        self._tile_mask = (1 << tile_bits) - 1
        self._tile_cells = 1 << (2 * tile_bits)
        #: t -> (tile id -> dense per-tile occupancy block).
        self._layers: Dict[Tick, Dict[int, bytearray]] = {}
        self._floor: Tick = 0
        self._n_tile_layers = 0
        self.mutation_stamp = 0

    @property
    def tile_bits(self) -> int:
        """log2 of the tile edge length."""
        return self._tile_bits

    def _tile_slot(self, x: int, y: int) -> int:
        mask = self._tile_mask
        return ((x & mask) << self._tile_bits) | (y & mask)

    # -- ReservationTable ----------------------------------------------------

    def is_free(self, t: Tick, cell: Cell) -> bool:
        layer = self._layers.get(t)
        if layer is None:
            return True
        x, y = cell
        tile = layer.get(tile_of_cell(x, y, self._tile_bits))
        if tile is None:
            return True
        return not tile[self._tile_slot(x, y)]

    def is_free_packed(self, t: Tick, key: int) -> bool:
        layer = self._layers.get(t)
        if layer is None:
            return True
        x = key >> CELL_KEY_SHIFT
        y = key & CELL_KEY_MASK
        tile = layer.get(tile_of_cell(x, y, self._tile_bits))
        if tile is None:
            return True
        return not tile[self._tile_slot(x, y)]

    def edge_free(self, t: Tick, source: Cell, target: Cell) -> bool:
        return self._edge_free(t, source, target)

    edge_free_packed = _EdgeMixin._edge_free_packed

    def kernel_probe_spec(self):
        # Mode 4: {tick: {tile: bytearray[tile slot]}} layers, shared swaps.
        return 4, self._layers, self._edge_buckets, self._tile_bits

    def reserve_path(self, path: Path,
                     horizon: Optional[Tick] = None) -> None:
        self.mutation_stamp += 1
        kernel = _rsv._MUTATION_MODULE
        if kernel is not None:
            self.mutation_kernel = "compiled"
            res = kernel.reserve_path(
                4, self._layers, self._edge_buckets, self._tile_bits, 0,
                self._tile_cells, path.steps,
                -1 if horizon is None else horizon, self._floor,
                self._edge_floor, 0, False)
            self._n_tile_layers += res[2]
            self._n_edges += res[3]
            return
        self.mutation_kernel = "python"
        layers = self._layers
        bits = self._tile_bits
        floor = self._floor
        last = None
        tile: Optional[bytearray] = None
        for (t, x, y) in path:
            if horizon is not None and t > horizon:
                break  # consecutive timestamps: everything after is later
            if t < floor:
                continue
            tile_id = tile_of_cell(x, y, bits)
            if (t, tile_id) != last:
                layer = layers.get(t)
                if layer is None:
                    layer = layers[t] = {}
                tile = layer.get(tile_id)
                if tile is None:
                    tile = layer[tile_id] = bytearray(self._tile_cells)
                    self._n_tile_layers += 1
                last = (t, tile_id)
            tile[self._tile_slot(x, y)] = 1
        self._reserve_edges(path, horizon)

    def unreserve_path(self, path: Path,
                       horizon: Optional[Tick] = None) -> None:
        self.mutation_stamp += 1
        kernel = _rsv._MUTATION_MODULE
        if kernel is not None:
            self.mutation_kernel = "compiled"
            res = kernel.unreserve_path(
                4, self._layers, self._edge_buckets, self._tile_bits, 0,
                path.steps, -1 if horizon is None else horizon,
                self._floor, self._edge_floor)
            self._n_edges -= res[3]
            return
        self.mutation_kernel = "python"
        # Materialised tile blocks persist (mirroring the dense global
        # table); only the occupancy bytes are cleared.
        layers = self._layers
        bits = self._tile_bits
        floor = self._floor
        for (t, x, y) in path:
            if horizon is not None and t > horizon:
                break  # consecutive timestamps: everything after is later
            if t < floor:
                continue
            layer = layers.get(t)
            if layer is None:
                continue
            tile = layer.get(tile_of_cell(x, y, bits))
            if tile is not None:
                tile[self._tile_slot(x, y)] = 0
        self._unreserve_edges(path, horizon)

    def audit_path(self, path: Path) -> bool:
        """Bulk conflict audit: one tile probe per arrival plus the shared
        tick-bucketed swap probe (mirrors the global table's native
        audit, restricted to the tiles the path crosses)."""
        kernel = _rsv._MUTATION_MODULE
        if kernel is not None:
            return kernel.audit_path(4, self._layers, self._edge_buckets,
                                     self._tile_bits, 0, path.steps)
        layers = self._layers
        bits = self._tile_bits
        edge_buckets = self._edge_buckets
        steps = path.steps
        previous = steps[0]
        for step in steps[1:]:
            t0, x0, y0 = previous
            t1, x1, y1 = step
            layer = layers.get(t1)
            if layer is not None:
                tile = layer.get(tile_of_cell(x1, y1, bits))
                if tile is not None and tile[self._tile_slot(x1, y1)]:
                    return False
            if x0 != x1 or y0 != y1:
                swaps = edge_buckets.get(t0)
                if (swaps is not None
                        and ((((x1 << CELL_KEY_SHIFT) | y1) << 32)
                             | ((x0 << CELL_KEY_SHIFT) | y0)) in swaps):
                    return False
            previous = step
        return True

    def purge_before(self, t: Tick) -> None:
        self.mutation_stamp += 1
        kernel = _rsv._MUTATION_MODULE
        if kernel is not None:
            self.mutation_kernel = "compiled"
            res = kernel.purge_before(
                4, self._layers, self._edge_buckets, self._tile_bits, t,
                self._floor, self._edge_floor)
            self._floor = max(self._floor, t)
            self._n_tile_layers -= res[2]
            if t > self._edge_floor:
                self._n_edges -= res[3]
                self._edge_floor = t
            return
        self.mutation_kernel = "python"
        self._floor = max(self._floor, t)
        layers = self._layers
        for stale in [step for step in layers if step < t]:
            self._n_tile_layers -= len(layers[stale])
            del layers[stale]
        self._purge_edges(t)

    def memory_bytes(self) -> int:
        # One byte per *materialised tile* cell — the same accounting
        # unit as the global table, restricted to the blocks that exist.
        return self._n_tile_layers * self._tile_cells + self._edges_memory()

    def recount(self):
        """Walk the layers and recompute the incremental counters."""
        counts = {"layers": len(self._layers),
                  "tile_layers": sum(len(layer)
                                     for layer in self._layers.values())}
        counts.update(self._recount_edge_state())
        counts["memory_bytes"] = (
            counts["tile_layers"] * self._tile_cells
            + 64 + 100 * counts["edges"] + 64 * counts["edge_ticks"])
        return counts

    # -- introspection -------------------------------------------------------

    @property
    def n_layers(self) -> int:
        """Number of timesteps holding at least one materialised tile."""
        return len(self._layers)

    @property
    def n_tile_layers(self) -> int:
        """Number of materialised (timestep, tile) blocks."""
        return self._n_tile_layers

    def live_counts(self):
        counts = {"layers": len(self._layers),
                  "tile_layers": self._n_tile_layers}
        counts.update(self._edge_live_counts())
        counts["memory_bytes"] = self.memory_bytes()
        return counts
