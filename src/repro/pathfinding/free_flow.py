"""Tier-0 free-flow path extraction: greedy descent on exact h-fields.

The planning pipeline's dominant cost is the full spatiotemporal A\\*
(tier 1): even on a floor where a leg meets *no* conflict, A\\* guided by
an exact heuristic still pops every f-optimal state generated before the
goal — the whole shortest-path plateau between source and goal, which on
open floors is the source–goal bounding rectangle, O(d²) expansions for a
length-d leg.  But the exact cached
:class:`~repro.pathfinding.heuristics.HeuristicField` is a *gradient*: at
every cell with ``h > 0`` at least one passable neighbour has ``h - 1``
(the field is an exact BFS distance), so following the first such
neighbour walks a shortest path to the goal in O(d).

Crucially, picking the **first descending neighbour in adjacency order**
reproduces the search's tie-breaking exactly.  In the packed A\\* core,
ties among equal f break FIFO by generation order, and successors are
generated wait-first then along the grid's adjacency row.  On an empty
reservation table the f-optimal plateau is explored in BFS layer order;
by induction the i-th cell of the greedy descent is the *first* state
generated in layer i, hence the first expanded, hence the parent the
reconstruction follows.  The same induction survives any reservation
pattern that leaves the descent path itself conflict-free — removing
other states from the plateau can only move the descent states earlier.
So::

    descent conflict-free  ⇒  full ST-A* returns exactly the descent

which is what lets tier 0 answer without searching: extract the descent
in O(d), bulk-audit it against the reservation structures
(:meth:`~repro.pathfinding.reservation.ReservationTable.audit_path`), and
on any hit fall through to the unchanged tier-1 search.  Behaviour is
provably identical either way; only the cycle count changes.

:class:`FreeFlowPathCache` memoises the descents per ``(source, goal)``
pair — goals (rack homes, picker stations) recur thousands of times per
run and sources concentrate on the same cells, so steady-state extraction
is one dict hit.  Descents depend only on the immutable grid and the
goal, never on reservations, so the cache needs no traffic-driven
invalidation; the explicit :meth:`~FreeFlowPathCache.invalidate` /
:meth:`~FreeFlowPathCache.clear` hooks exist for callers that rebuild
heuristic caches (the owning
:class:`~repro.pathfinding.heuristics.HeuristicFieldCache` calls
``clear`` when its own field cache resets).
"""

from __future__ import annotations

from array import array
from typing import Dict, Optional, Tuple

from ..types import Cell
from ..warehouse.grid import Grid
from .heuristics import HeuristicFieldCache, _LazyManhattanFlat
from .reservation import PackedChain

#: Distinguishes "memoised as unreachable" from "not memoised".
_MISSING = object()

#: Minimum compiled-module ABI carrying the fused tier-0 entry point
#: (``tier0_leg``: greedy descent + bulk audit in one call).
DESCENT_KERNEL_ABI = 3

#: The loaded ``_stsearch`` module when the fused tier-0 kernel is
#: active, else ``None`` (python descent + audit pair).  Set by
#: :func:`repro.pathfinding.st_astar.set_search_kernel`.
_DESCENT_MODULE = None


def set_descent_kernel(module) -> None:
    """Select the fused tier-0 kernel (``None`` = python pair).

    A module predating :data:`DESCENT_KERNEL_ABI` is silently rejected,
    mirroring the mutation/field kernels' staleness handling: search
    may stay compiled while tier 0 falls back to the python bodies.
    """
    global _DESCENT_MODULE
    if module is not None and \
            getattr(module, "KERNEL_ABI", 0) < DESCENT_KERNEL_ABI:
        module = None
    _DESCENT_MODULE = module


def descent_kernel_name() -> str:
    """Which tier-0 implementation is active."""
    return "compiled" if _DESCENT_MODULE is not None else "python"


class FreeFlowPathCache:
    """Memoised free-flow (reservation-oblivious) shortest cell chains.

    Parameters
    ----------
    grid:
        Spatial passability; supplies the adjacency rows whose order
        fixes the descent tie-breaking.
    heuristics:
        The owning planner's exact per-goal field cache; every descent
        reads (and, for a fresh goal, builds) the goal's field through it.
    """

    #: Cap on memoised (source, goal) chains before the cache resets;
    #: sources and goals are bounded sets in practice (rack homes,
    #: pickers, horizon-replan cells), so this only guards pathological
    #: callers sweeping pairs across the whole floor.
    _ENTRY_CAP = 4096

    def __init__(self, grid: Grid, heuristics: HeuristicFieldCache) -> None:
        self._grid = grid
        self._heuristics = heuristics
        self._chains: Dict[Tuple[Cell, Cell], Optional[PackedChain]] = {}
        #: Total cells across memoised chains, tracked incrementally so
        #: ``memory_bytes`` — sampled per checkpoint — never walks the
        #: memo.  ``recount`` is the walk-from-scratch verification twin.
        self._chain_cells = 0
        #: Memo bookkeeping (distinct from the planner-level fast-path
        #: hit/miss counters, which classify *legs*): how many descent
        #: requests were answered from the memo vs. walked fresh.
        self.memo_hits = 0
        self.memo_misses = 0
        heuristics.add_invalidation_listener(self.clear)

    def packed(self, source: Cell, goal: Cell) -> Optional[PackedChain]:
        """The greedy-descent chain ``source → goal``, memoised and packed.

        The :class:`~repro.pathfinding.reservation.PackedChain` carries
        the cell tuple plus the precomputed packed-key/flat-index/probe
        representations the bulk audits consume; ``None`` when ``goal``
        is spatially unreachable from ``source``.
        """
        key = (source, goal)
        chain = self._chains.get(key, _MISSING)
        if chain is not _MISSING:
            self.memo_hits += 1
            return chain
        self.memo_misses += 1
        if len(self._chains) >= self._ENTRY_CAP:
            self._chains.clear()
            self._chain_cells = 0
        chain = self._walk(source, goal)
        self._chains[key] = chain
        if chain is not None:
            self._chain_cells += len(chain)
        return chain

    def descent(self, source: Cell,
                goal: Cell) -> Optional[Tuple[Cell, ...]]:
        """The greedy-descent cell chain ``source → goal``, memoised.

        Returns the cell sequence (including both endpoints) of the
        shortest path the full ST-A\\* would return on an empty
        reservation table, or ``None`` when ``goal`` is spatially
        unreachable from ``source``.
        """
        chain = self.packed(source, goal)
        return None if chain is None else chain.cells

    def kernel_leg(self, reservation, t: int, source: Cell, goal: Cell,
                   finisher_factory):
        """One fused native call: greedy descent + bulk reservation audit.

        Returns ``None`` when the kernel declines — no compiled module,
        a generic (mode-0) probe spec, or a foreign field representation
        — and the caller runs the python tier-0 body instead.  Otherwise
        ``(verdict, payload, j, finisher, trigger)`` where the verdict
        mirrors ``tier0_leg``: 0 unreachable (payload ``None``), 1
        conflict-free (payload the timed steps), 2 head prefix ``j``
        audited clean for the finisher (payload the cell chain), 3 audit
        reject (payload the cell chain, for the rescue tier).

        The compiled path deliberately bypasses the ``packed()`` memo:
        the walk itself is cheap in C, and skipping the memo keeps the
        per-call cost flat.  Observable planning behaviour is identical
        to the python tier (pinned by the equivalence suite); only the
        memo's internal hit counters differ between kernels.
        """
        module = _DESCENT_MODULE
        if module is None:
            return None
        mode, vertex_obj, edge_obj, tile_bits = \
            reservation.kernel_probe_spec()
        if mode == 0:
            return None  # generic callables: python tier handles them
        grid = self._grid
        height = grid.height
        flat = self._heuristics.field(goal).flat
        sci = source[0] * height + source[1]
        if isinstance(flat, _LazyManhattanFlat):
            h_mode, h_arg = 1, None
        elif isinstance(flat, (array, memoryview)):
            # Match the python call order: an unreachable leg answers
            # MISS without ever consulting the finisher factory.
            if flat[sci] > grid.n_cells:
                return (0, None, 0, None, 0)
            h_mode, h_arg = 2, flat
        else:
            return None  # foreign field representation: python tier
        finisher, trigger = finisher_factory(goal)
        eff_trigger = trigger if finisher is not None else 0
        verdict, payload, j = module.tier0_leg(
            grid.kernel_capsule(module), mode, vertex_obj, edge_obj,
            tile_bits, h_mode, h_arg, sci,
            goal[0] * height + goal[1], t, eff_trigger)
        return verdict, payload, j, finisher, trigger

    def _walk(self, source: Cell, goal: Cell) -> Optional[PackedChain]:
        flat = self._heuristics.field(goal).flat
        if isinstance(flat, _LazyManhattanFlat):
            # Paper-scale unobstructed floors carry the lazy Manhattan
            # field; the descent on it has a closed form (below) that
            # skips ~3 python ``flat[nci]`` probes per step — the
            # dominant cost of a fresh walk at fleet scale.
            return self._walk_manhattan(source, goal)
        return self._walk_generic(source, goal, flat)

    def _walk_manhattan(self, source: Cell,
                        goal: Cell) -> Optional[PackedChain]:
        """Closed form of :meth:`_walk_generic` on a Manhattan field.

        The generic walk takes, at every cell, the *first* neighbour in
        adjacency order whose field value descends.  Adjacency rows list
        ``+x, -x, +y, -y`` (bounds-filtered, order preserved), and on an
        unobstructed floor a Manhattan-descending move is always in
        bounds — so the first descending neighbour is the ``x`` move
        toward the goal while one exists, then the ``y`` move: the whole
        chain is "all of x, then all of y".  Bit-identity with the
        generic loop on the same field is pinned by the tier-0 suite.
        """
        height = self._grid.height
        cell_keys = self._grid.cell_keys
        sx, sy = source
        gx, gy = goal
        cells = [(x, sy) for x in range(sx, gx, 1 if gx > sx else -1)]
        cells += [(gx, y) for y in range(sy, gy, 1 if gy > sy else -1)]
        cells.append(goal)
        indices = [x * height + y for x, y in cells]
        return PackedChain(tuple(cells),
                           [cell_keys[ci] for ci in indices], indices)

    def _walk_generic(self, source: Cell, goal: Cell,
                      flat) -> Optional[PackedChain]:
        grid = self._grid
        height = grid.height
        ci = source[0] * height + source[1]
        h = flat[ci]
        if h > grid.n_cells:
            return None  # the field's unreachable marker
        adjacency = grid.adjacency
        cell_keys = grid.cell_keys
        cells = [source]
        keys = [cell_keys[ci]]
        indices = [ci]
        append = cells.append
        while h:
            h -= 1
            for nci, nkey in adjacency[ci]:
                if flat[nci] == h:
                    ci = nci
                    keys.append(nkey)
                    indices.append(nci)
                    break
            else:  # pragma: no cover — exact fields always descend
                return None
            append(divmod(ci, height))
        return PackedChain(tuple(cells), keys, indices)

    # -- invalidation hooks -------------------------------------------------

    def invalidate(self, goal: Cell) -> None:
        """Drop every memoised chain toward ``goal``."""
        for key in [key for key in self._chains if key[1] == goal]:
            chain = self._chains.pop(key)
            if chain is not None:
                self._chain_cells -= len(chain)

    def clear(self) -> None:
        """Drop every memoised chain (field-cache reset hook)."""
        self._chains.clear()
        self._chain_cells = 0

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._chains)

    def memory_bytes(self) -> int:
        """Approximate footprint (observability; deliberately excluded
        from the Fig. 12 MC metric like the heuristic-field cache — it is
        a cross-cutting acceleration, not one of the paper's per-planner
        structures).  O(1): chain cells are counted as chains are
        memoised and dropped."""
        return 64 + 100 * len(self._chains) + 16 * self._chain_cells

    def live_counts(self) -> Dict[str, int]:
        """Occupancy counters, mirroring the reservation structures."""
        return {"chains": len(self._chains),
                "chain_cells": self._chain_cells,
                "memory_bytes": self.memory_bytes()}

    def recount(self) -> Dict[str, int]:
        """Recompute :meth:`live_counts` by walking the memo (debug)."""
        cells = sum(len(chain) for chain in self._chains.values()
                    if chain is not None)
        return {"chains": len(self._chains),
                "chain_cells": cells,
                "memory_bytes": 64 + 100 * len(self._chains) + 16 * cells}
