"""Cache-aided path finding (paper Sec. VI-B).

Two pieces:

* :class:`ShortestPathCache` — memoised conflict-*oblivious* shortest paths
  for goals within Manhattan distance ``L``.  The paper initialises "all
  shortest paths with length ≤ L"; materialising every pair eagerly would
  dwarf the structures the CDT saves, so we memoise on first use, which is
  behaviourally identical (every hit after the first is O(path length)) and
  is reported in the memory metric like any other structure.

* :func:`make_wait_finisher` — the policy that turns a cached spatial path
  into a conflict-free tail: follow the cached cells, *waiting in place*
  whenever the next step would conflict, until the robot reaches the goal
  (Sec. VI-B: "let the robot wait till there is no conflict to move next
  steps along the shortest path").
"""

from __future__ import annotations

import array

from typing import Dict, List, Optional, Tuple

from ..errors import PathNotFoundError
from ..types import Cell, Tick, manhattan
from ..warehouse.grid import Grid
from .astar import shortest_path
from .reservation import ReservationTable


class ShortestPathCache:
    """Memoised spatial shortest paths for nearby (≤ L) goal cells.

    Paths are stored packed — two ``int16`` per cell in a ``bytes``
    blob — so a cached path costs ~4 bytes per cell instead of a Python
    tuple per cell.  Decoding on lookup is a single ``array`` scan,
    negligible next to the A* search the cache replaces.
    """

    #: Class-level default so checkpoints pickled before the field
    #: oracle existed restore cleanly (the planner re-attaches).
    _fields = None

    def __init__(self, grid: Grid, threshold: int) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self._grid = grid
        self.threshold = threshold
        self._paths: Dict[Tuple[Cell, Cell], bytes] = {}
        self._blob_bytes = 0
        self.hits = 0
        self.misses = 0
        self._fields = None

    def attach_fields(self, heuristics) -> None:
        """Let cached BFS fields answer unreachability in O(1).

        ``heuristics`` is the owning planner's
        :class:`~repro.pathfinding.heuristics.HeuristicFieldCache`.  A
        miss whose goal already has an eager (int32-buffer) field —
        memoised or arena-backed; :meth:`peek` never floods one — reads
        ``flat[source]`` instead of running the spatial A* flood that
        :func:`~repro.pathfinding.astar.shortest_path` performs before
        concluding "disconnected".  Reachable pairs still take the
        identical search, so cached paths are bit-identical with or
        without the oracle.
        """
        self._fields = heuristics

    def __getstate__(self):
        # The field cache holds invalidation closures (unpicklable) and
        # is rebuilt by the owning planner on restore, which re-attaches.
        state = self.__dict__.copy()
        state["_fields"] = None
        return state

    def _known_unreachable(self, source: Cell, goal: Cell) -> bool:
        if self._fields is None:
            return False
        field = self._fields.peek(goal)
        if field is None:
            return False
        flat = field.flat
        if not isinstance(flat, (array.array, memoryview)):
            # Lazy Manhattan flats carry no reachability information.
            return False
        return flat[source[0] * self._grid.height
                    + source[1]] > self._grid.n_cells

    @staticmethod
    def _pack(cells) -> bytes:
        flat = array.array("h")
        for x, y in cells:
            flat.append(x)
            flat.append(y)
        return flat.tobytes()

    @staticmethod
    def _unpack(blob: bytes) -> Tuple[Cell, ...]:
        flat = array.array("h")
        flat.frombytes(blob)
        return tuple((flat[i], flat[i + 1]) for i in range(0, len(flat), 2))

    def lookup(self, source: Cell, goal: Cell) -> Optional[Tuple[Cell, ...]]:
        """Cached shortest cell sequence, or None if beyond the threshold."""
        if manhattan(source, goal) > self.threshold:
            return None
        key = (source, goal)
        cached = self._paths.get(key)
        if cached is not None:
            self.hits += 1
            return self._unpack(cached)
        self.misses += 1
        if self._known_unreachable(source, goal):
            # The goal's exact BFS field already proves disconnection;
            # skip the A* flood that would rediscover it the hard way.
            raise PathNotFoundError(source, goal, "disconnected grid")
        cells = tuple(shortest_path(self._grid, source, goal))
        blob = self._pack(cells)
        self._paths[key] = blob
        self._blob_bytes += len(blob)
        return cells

    def __len__(self) -> int:
        return len(self._paths)

    def memory_bytes(self) -> int:
        """Approximate footprint (for the MC metric).

        Blob bytes are tracked incrementally at insertion, so the value —
        identical to summing the stored blobs — is O(1) per call; the
        simulation engine charges it on every processed event.
        """
        return 64 + 150 * len(self._paths) + self._blob_bytes

    def live_counts(self) -> Dict[str, int]:
        """Live-state counters for the soak harness's flatness series."""
        return {"entries": len(self._paths),
                "blob_bytes": self._blob_bytes,
                "memory_bytes": self.memory_bytes()}

    def recount(self) -> Dict[str, int]:
        """Recompute :meth:`live_counts` by walking the blobs (debug)."""
        blob_bytes = sum(len(blob) for blob in self._paths.values())
        return {"entries": len(self._paths),
                "blob_bytes": blob_bytes,
                "memory_bytes": 64 + 150 * len(self._paths) + blob_bytes}


def follow_with_waits(reservation: ReservationTable, cells: Tuple[Cell, ...],
                      start_time: Tick,
                      max_wait_per_step: int = 64,
                      max_total_wait: Optional[int] = None
                      ) -> Optional[List[Tuple[int, int, int]]]:
    """Walk ``cells`` starting at ``start_time``, waiting out conflicts.

    Returns the timed steps (including the initial ``(start_time, *cells[0])``)
    or ``None`` when the tail cannot be derived cheaply — some step would
    require waiting longer than ``max_wait_per_step`` ticks, the waits
    accumulated across the whole tail would exceed ``max_total_wait``
    (default: ``max_wait_per_step``), or the waiting cell itself gets
    reserved.  The caller then falls back to plain spatiotemporal A*.

    The total-wait cap is the dense-traffic livelock guard: on a congested
    floor every step of the cached path can individually stay under the
    per-step cap while the tail as a whole degenerates into hundreds of
    ticks of waiting — a "path" that parks the robot on a contested cell
    for ages, invites further conflicts, and starves the very search the
    cache was meant to shortcut.  Past the cap the tail is not a shortcut
    any more, so the finisher declines and the search (or its fallback
    chain) decides.
    """
    if max_total_wait is None:
        max_total_wait = max_wait_per_step
    t = start_time
    steps: List[Tuple[int, int, int]] = [(t, cells[0][0], cells[0][1])]
    current = cells[0]
    total_waited = 0
    for nxt in cells[1:]:
        waited = 0
        while not reservation.move_allowed(t, current, nxt):
            if waited >= max_wait_per_step or total_waited >= max_total_wait:
                return None
            if not reservation.is_free(t + 1, current):
                # Cannot even hold position: bail out to full search.
                return None
            t += 1
            waited += 1
            total_waited += 1
            steps.append((t, current[0], current[1]))
        t += 1
        steps.append((t, nxt[0], nxt[1]))
        current = nxt
    return steps


def make_wait_finisher(cache: ShortestPathCache, goal: Cell,
                       reservation: ReservationTable,
                       max_wait_per_step: int = 64,
                       max_total_wait: Optional[int] = None):
    """Build the Sec. VI-B finisher hook for one spatiotemporal search.

    The returned callable matches the ``finisher(cell, t)`` contract of
    :func:`~repro.pathfinding.st_astar.find_path`: once A* pops a node
    within the cache threshold of ``goal``, extract the cached shortest
    path and derive the conflict-free tail by waiting where needed.
    """

    def finisher(cell: Cell, t: Tick):
        cells = cache.lookup(cell, goal)
        if cells is None:
            return None
        return follow_with_waits(reservation, cells, t, max_wait_per_step,
                                 max_total_wait)

    return finisher
