"""The windowed-horizon leg-planning pipeline: a recoverable fallback chain.

Every planner's path-finding step used to be one unbounded spatiotemporal
A* call that could *throw* mid-run — on the paper-scale fleet ladder a
robot dispatched from a cell that other robots' committed paths sweep
through is boxed in (its own cell is reserved at ``t + 1`` and every
neighbouring move is a vertex or swap conflict), the open set dies, and
the whole experiment fell over with ``PathNotFoundError``.  This module
turns the single call into a chain of bounded, recoverable tiers:

1. **Full ST-A*** — the classic conflict-aware search to the goal,
   unchanged (and bit-identical to the seed) whenever it succeeds, which
   on uncongested floors is always.
2. **Windowed ST-A*** — conflict-aware only up to a rolling horizon of
   ``W = config.search_horizon`` ticks, conflict-oblivious (guided by the
   exact cached heuristic field) beyond it.  Only the conflict-checked
   prefix is committed to the reservation structure (a *windowed commit*,
   see :meth:`~repro.pathfinding.reservation.ReservationTable.reserve_path`)
   and executed; the simulator replans when the robot reaches the horizon.
3. **Reservation-aware wait in place** — when even the window is
   unreachable (the robot is boxed in), hold position: wait out the free
   run of the current cell (committed), or — when traffic is planned
   straight through the cell — sit tight uncommitted until the first tick
   the cell is probe-free, exactly as an *idle* robot (which is never
   reserved) already does, then let the replan try again.

Exhaustion therefore becomes a :class:`LegPlan` that says which tier
answered, never an exception escaping a run.  Tier-1 results are
byte-identical to the pre-pipeline behaviour, so runs that never needed a
fallback (the golden traces, the engine-equivalence suites) are unchanged.

**Tier 0 — the free-flow fast path** — runs ahead of the whole chain:
extract the leg's free-flow shortest path by greedy descent on the cached
exact heuristic field (O(path length), tie-broken exactly like the full
search — see :mod:`repro.pathfinding.free_flow`), bulk-audit it against
the reservation structures
(:meth:`~repro.pathfinding.reservation.ReservationTable.audit_path`), and
serve the leg without searching when the audit finds no conflict.  Any
hit — or any case tier 0 cannot prove byte-identical (tiny expansion
budgets, a declining cache finisher) — drops straight into the unchanged
tier-1 search, so the chain's observable behaviour is *provably*
unchanged: a fast-path leg is the byte-identical path tier 1 would have
produced, and every other leg still goes through tier 1.  Each planned
leg records its fast-path outcome (:data:`FASTPATH_HIT` /
:data:`FASTPATH_MISS` / :data:`FASTPATH_AUDIT_REJECT` /
:data:`FASTPATH_RESCUE` / :data:`FASTPATH_OFF`) for the planner's
hit-rate counters.

**Tier 0.5 — the wait-following rescue** — sits between the audit and
the full search *at paper scale only*: a descent whose audit hits a
reservation is walked again with waits inserted wherever the next move
conflicts (:func:`~repro.pathfinding.cache.follow_with_waits`, the
Sec. VI-B policy applied from the start cell).  O(path + waits) versus
the full search's O(distance²) plateau; the rescued path may differ
from the search optimum, so below :data:`~repro.config.
PAPER_SCALE_MIN_CELLS` the rescue stays off and rejects fall into the
byte-identical tier-1 search as before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..config import PAPER_SCALE_MIN_CELLS
from ..errors import PathNotFoundError
from ..types import Cell, Tick
from ..warehouse.grid import Grid
from .cache import follow_with_waits
from .free_flow import FreeFlowPathCache
from .heuristics import HeuristicFieldCache
from .paths import Path
from .reservation import ReservationTable
from .st_astar import SearchRequest, SearchStats, search

#: Fallback-chain tiers, in attempt order.
TIER_FREE_FLOW = "free_flow"
TIER_FULL = "full"
TIER_WINDOWED = "windowed"
TIER_WAIT = "wait"
TIERS = (TIER_FREE_FLOW, TIER_FULL, TIER_WINDOWED, TIER_WAIT)

#: Per-leg fast-path outcomes (tier 0's own accounting).
FASTPATH_HIT = "hit"                    #: tier 0 served the leg
FASTPATH_MISS = "miss"                  #: no auditable candidate produced
FASTPATH_AUDIT_REJECT = "audit_reject"  #: candidate hit a reservation
FASTPATH_RESCUE = "rescue"              #: audit hit, wait-following rescued
FASTPATH_OFF = "off"                    #: tier 0 not attempted (disabled)


@dataclass
class LegPlan:
    """One leg's plan: the executable path plus its commit instructions.

    Attributes
    ----------
    path:
        The timed path the mission executes.  ``complete`` tells whether
        it reaches the requested goal; a partial path (windowed prefix or
        a wait) ends early and the simulator replans from its last step
        (the *horizon replan*).
    tier:
        Which chain tier produced the plan (:data:`TIER_FULL`,
        :data:`TIER_WINDOWED` or :data:`TIER_WAIT`).
    complete:
        Whether ``path`` ends on the requested goal.
    commit_path:
        What to insert into the reservation structure.  For a windowed
        plan this is the full search result, committed only up to
        ``commit_until`` — reserving through the structure's windowed
        commit keeps the two representations (executed prefix, reserved
        prefix) provably in lockstep.
    commit_until:
        Absolute windowed-commit bound for ``commit_path`` (``None``
        commits the whole path).
    search_stats:
        Stats of the chain's *fallback* searches (tier 1 absorbs its own
        on success), for the caller to fold into its counters.
    fastpath:
        What tier 0 did for this leg (:data:`FASTPATH_HIT`,
        :data:`FASTPATH_MISS`, :data:`FASTPATH_AUDIT_REJECT` or
        :data:`FASTPATH_OFF`) — the input of the planner's fast-path
        hit-rate counters.
    descent_kernel:
        Which tier-0 implementation attempted the leg (``"compiled"``
        for the fused native call, ``"python"`` for the descent + audit
        pair, ``""`` when tier 0 was off) — the input of the planner's
        ``descents_compiled`` / ``descents_python`` counters.
    """

    path: Path
    tier: str
    complete: bool
    commit_path: Path
    commit_until: Optional[Tick] = None
    search_stats: Tuple[SearchStats, ...] = ()
    fastpath: str = FASTPATH_OFF
    descent_kernel: str = ""


class FallbackChain:
    """The three-tier leg planner shared by every planner subclass.

    Parameters
    ----------
    grid, reservation, heuristics, config:
        The owning planner's world, conflict structure, per-goal exact
        heuristic-field cache and :class:`~repro.config.PlannerConfig`.
    full_search:
        Tier 1 as a callable ``(t, source, goal) -> Path`` raising
        :class:`~repro.errors.PathNotFoundError` on exhaustion.  Passed
        as a callable (not inlined) because it is the planner's historic
        ``_find_leg`` extension point — EATP's cache-aided variant and
        the frozen-seed benchmark patches all hook it.
    finisher_factory:
        ``goal -> (finisher, trigger)`` supplying the cache-aided
        finisher for the windowed tier (EATP); ``(None, 0)`` disables.
    free_flow:
        The tier-0 descent cache.  Built fresh over ``grid`` and
        ``heuristics`` when not supplied (the planner base passes its
        own so the cache is introspectable per planner).
    """

    #: Process-wide tier-0 kill switch.  The frozen-seed benchmark
    #: patches (:func:`repro.pathfinding._legacy.seed_planner_patches`)
    #: flip it off so a patched ``_find_leg`` really runs the seed search
    #: for every leg; per-run control goes through ``config.free_flow``.
    free_flow_enabled = True

    def __init__(self, grid: Grid, reservation: ReservationTable,
                 heuristics: HeuristicFieldCache, config,
                 full_search: Callable[[Tick, Cell, Cell], Path],
                 finisher_factory: Callable[[Cell], tuple],
                 free_flow: Optional[FreeFlowPathCache] = None) -> None:
        self.grid = grid
        self.reservation = reservation
        self.heuristics = heuristics
        self.config = config
        self.full_search = full_search
        self.finisher_factory = finisher_factory
        self.free_flow = (free_flow if free_flow is not None
                          else FreeFlowPathCache(grid, heuristics))
        self.rescue_enabled = (
            config.free_flow_rescue
            if config.free_flow_rescue is not None
            else grid.n_cells >= PAPER_SCALE_MIN_CELLS)

    def plan_leg(self, t: Tick, source: Cell, goal: Cell) -> LegPlan:
        """Plan one leg through the chain.

        Always returns a plan when the goal is spatially reachable at
        all; a goal no path can *ever* reach (disconnected floor) still
        raises :class:`~repro.errors.PathNotFoundError` immediately —
        waiting and replanning cannot conjure a corridor, and looping
        until the simulator's ``max_ticks`` guard would bury the real
        error.
        """
        leg, fastpath, dkernel = self._free_flow_leg(t, source, goal)
        if leg is not None:
            leg.descent_kernel = dkernel
            return leg
        try:
            path = self.full_search(t, source, goal)
            return LegPlan(path=path, tier=TIER_FULL, complete=True,
                           commit_path=path, fastpath=fastpath,
                           descent_kernel=dkernel)
        except PathNotFoundError as error:
            if self.heuristics.distance(source, goal) > self.grid.n_cells:
                raise  # unreachable regardless of reservations: fail fast
            collected = (error.stats,) if error.stats is not None else ()
        leg, collected = self._windowed_leg(t, source, goal, collected)
        if leg is None:
            leg = self._wait_leg(t, source, goal, collected)
        leg.fastpath = fastpath
        leg.descent_kernel = dkernel
        return leg

    # -- tier 0: free-flow fast path -------------------------------------------

    def _free_flow_leg(self, t: Tick, source: Cell, goal: Cell):
        """Try to serve the leg without searching.

        Returns ``(leg | None, outcome, kernel)`` where ``kernel`` is
        ``"compiled"`` when the fused native tier-0 call attempted the
        leg, ``"python"`` for the descent + audit pair, ``""`` when
        tier 0 was off.

        Emits a plan only when the result is *provably* byte-identical to
        what tier 1 would return (see :mod:`repro.pathfinding.free_flow`):

        * the greedy descent exists and its audit finds no conflict — on
          a conflict-free descent the full search's FIFO plateau
          exploration reconstructs exactly this chain;
        * with a cache finisher in force (EATP), the finisher is invoked
          at the same ``(cell, tick)`` the full search would first
          trigger it — the first expanded node whose h-value enters the
          trigger band is the descent cell ``h == trigger`` (or the
          source when the whole leg is inside the band) — and only a
          returned tail with a conflict-free head is emitted;
        * the expansion budget provably cannot interrupt the full search
          before the goal pops (it is at least the plateau-size bound
          ``n_cells``); tiny test budgets disable tier 0 outright.
        """
        config = self.config
        if not (self.free_flow_enabled and config.free_flow
                and config.max_search_expansions >= self.grid.n_cells):
            return None, FASTPATH_OFF, ""
        fused = self.free_flow.kernel_leg(self.reservation, t, source,
                                          goal, self.finisher_factory)
        if fused is not None:
            leg, fastpath = self._kernel_fastpath(t, fused)
            return leg, fastpath, "compiled"
        chain = self.free_flow.packed(source, goal)
        if chain is None:
            # unreachable: tier 1 fails fast
            return None, FASTPATH_MISS, "python"
        cells = chain.cells
        finisher, trigger = self.finisher_factory(goal)
        k = len(cells) - 1
        search_stats: Tuple[SearchStats, ...] = ()
        if finisher is not None and trigger > 0 and k > 0:
            j = k - trigger if k > trigger else 0
            # Audit the head *before* consulting the finisher: on a
            # conflicted head the full search deviates and triggers the
            # finisher elsewhere (or not at all), so calling it here
            # would mutate the shortest-path cache — and its memory
            # metric — in ways a tier-0-off run never would.  The chain
            # audit probes exactly what ``audit_path`` would on the head
            # prefix, without materialising a timed path for a candidate
            # that may be rejected.
            if not self.reservation.audit_chain(t, chain, j):
                rescued = self._rescue_leg(t, cells)
                if rescued is not None:
                    return rescued, FASTPATH_RESCUE, "python"
                return None, FASTPATH_AUDIT_REJECT, "python"
            tail = finisher(cells[j], t + j)
            if tail is None:
                # The full search would keep expanding past the first
                # trigger and may finish through a *later* finisher call
                # off the descent chain — not reproducible in O(d).
                return None, FASTPATH_MISS, "python"
            path = Path.from_cells(cells[:j + 1], t).concat(Path(tuple(tail)))
            stats = SearchStats(cache_finished=True,
                                budget=config.max_search_expansions)
            search_stats = (stats,)
        else:
            if not self.reservation.audit_chain(t, chain, k):
                rescued = self._rescue_leg(t, cells)
                if rescued is not None:
                    return rescued, FASTPATH_RESCUE, "python"
                return None, FASTPATH_AUDIT_REJECT, "python"
            path = Path.from_cells(cells, t)
        leg = LegPlan(path=path, tier=TIER_FREE_FLOW, complete=True,
                      commit_path=path, search_stats=search_stats,
                      fastpath=FASTPATH_HIT)
        return leg, FASTPATH_HIT, "python"

    def _kernel_fastpath(self, t: Tick, fused):
        """Translate a fused ``tier0_leg`` verdict into the tier-0 result.

        Mirrors the python branches below step for step: verdict 1 is a
        served leg, 2 hands the audited head to the finisher, 3 tries
        the rescue then rejects, 0 is a miss.  The emitted paths are
        bit-identical to the python tier's (the kernel builds the same
        timed tuples ``Path.from_cells`` would).
        """
        verdict, payload, j, finisher, trigger = fused
        if verdict == 0:
            return None, FASTPATH_MISS
        if verdict == 3:
            rescued = self._rescue_leg(t, payload)
            if rescued is not None:
                return rescued, FASTPATH_RESCUE
            return None, FASTPATH_AUDIT_REJECT
        if verdict == 2:
            tail = finisher(payload[j], t + j)
            if tail is None:
                return None, FASTPATH_MISS
            path = Path.from_cells(payload[:j + 1], t).concat(
                Path(tuple(tail)))
            stats = SearchStats(cache_finished=True,
                                budget=self.config.max_search_expansions)
            leg = LegPlan(path=path, tier=TIER_FREE_FLOW, complete=True,
                          commit_path=path, search_stats=(stats,),
                          fastpath=FASTPATH_HIT)
            return leg, FASTPATH_HIT
        path = Path(tuple(payload))
        leg = LegPlan(path=path, tier=TIER_FREE_FLOW, complete=True,
                      commit_path=path, fastpath=FASTPATH_HIT)
        return leg, FASTPATH_HIT

    # -- tier 0.5: wait-following rescue of a conflicted descent ---------------

    def _rescue_leg(self, t: Tick, cells: Tuple[Cell, ...]):
        """Wait-follow a conflicted descent chain; a LegPlan or None.

        The Sec. VI-B finisher policy applied from the start cell: walk
        the descent's cells, waiting in place wherever the next move is
        reserved.  O(path + waits) where the full search the reject
        would otherwise fall into explores an O(distance²) f-optimal
        plateau — on the paper-true 541×302 floor that plateau is
        hundreds of thousands of probes per leg, which is exactly the
        cost wall behind the paper's "too slow to execute" exclusion.

        The rescued path is conflict-free but need not match the full
        search's optimum, so the rescue runs only above the paper-scale
        gate (or under an explicit ``free_flow_rescue=True``); below the
        gate a reject still drops into the byte-identical tier-1 search.
        Declines (``None``) when the walk exceeds the configured wait
        caps or cannot even hold position — congestion bad enough that
        the search tiers should decide.
        """
        if not self.rescue_enabled:
            return None
        steps = follow_with_waits(self.reservation, cells, t,
                                  self.config.rescue_wait_per_step,
                                  self.config.rescue_total_wait)
        if steps is None:
            return None
        path = Path(tuple(steps))
        return LegPlan(path=path, tier=TIER_FREE_FLOW, complete=True,
                       commit_path=path, fastpath=FASTPATH_RESCUE)

    # -- tier 2: windowed ST-A* -------------------------------------------------

    def _windowed_leg(self, t: Tick, source: Cell, goal: Cell,
                      collected: Tuple[SearchStats, ...]):
        window = self.config.search_horizon
        finisher, trigger = self.finisher_factory(goal)
        stats = SearchStats()
        request = SearchRequest(
            source=source, goal=goal, start_time=t, horizon=window,
            max_expansions=self.config.max_search_expansions,
            finisher=finisher, finisher_trigger=trigger)
        outcome = search(self.grid, self.reservation, request,
                         heuristic=self.heuristics.field(goal), stats=stats)
        collected = collected + (stats,)
        if not outcome.ok:
            # Boxed in even within the window (or the bounded search blew
            # its budget): the wait tier takes over, stats ride along.
            return None, collected
        boundary = t + window
        prefix = outcome.path.truncate_at(boundary)
        leg = LegPlan(path=prefix, tier=TIER_WINDOWED,
                      complete=prefix.goal == goal
                      and prefix.end_time == outcome.path.end_time,
                      commit_path=outcome.path, commit_until=boundary,
                      search_stats=collected)
        return leg, collected

    # -- tier 3: reservation-aware wait in place ------------------------------

    def _wait_leg(self, t: Tick, source: Cell, goal: Cell,
                  collected: Tuple[SearchStats, ...]) -> LegPlan:
        free_run = self._free_run(source, t)
        if free_run > 0:
            # Hold the cell for its conflict-free run (bounded by the
            # replan backoff) and commit the wait like any other path.
            duration = free_run
            commit_until = None
        else:
            # Boxed: committed traffic is planned straight through this
            # cell.  That overlap is a pre-existing modelling hole —
            # reservations never see parked robots, so the other robot's
            # plan already swept through this physically occupied cell
            # at planning time.  The robot stays put (it has nowhere
            # legal to go); commit only the start step and replan at the
            # first tick the cell is free — the soonest a legal plan can
            # exist.  Note the recorded wait path makes the pre-existing
            # overlap *visible* to path audits (`find_conflicts`), which
            # is deliberate: an idle robot hides the same co-occupancy
            # only because it records no path at all.
            duration = self._first_free_wait(source, t)
            commit_until = t
        path = Path.waiting(source, t, duration)
        return LegPlan(path=path, tier=TIER_WAIT, complete=False,
                       commit_path=path, commit_until=commit_until,
                       search_stats=collected)

    def _free_run(self, source: Cell, t: Tick) -> int:
        """Ticks the robot can legally hold ``source`` starting at t+1."""
        cap = self.config.fallback_wait_ticks
        is_free = self.reservation.is_free
        run = 0
        while run < cap and is_free(t + run + 1, source):
            run += 1
        return run

    def _first_free_wait(self, source: Cell, t: Tick) -> int:
        """Wait duration until ``source`` is first probe-free again."""
        is_free = self.reservation.is_free
        for delta in range(1, self.config.search_horizon + 1):
            if is_free(t + delta, source):
                return delta
        return self.config.fallback_wait_ticks
