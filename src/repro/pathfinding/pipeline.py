"""The windowed-horizon leg-planning pipeline: a recoverable fallback chain.

Every planner's path-finding step used to be one unbounded spatiotemporal
A* call that could *throw* mid-run — on the paper-scale fleet ladder a
robot dispatched from a cell that other robots' committed paths sweep
through is boxed in (its own cell is reserved at ``t + 1`` and every
neighbouring move is a vertex or swap conflict), the open set dies, and
the whole experiment fell over with ``PathNotFoundError``.  This module
turns the single call into a chain of bounded, recoverable tiers:

1. **Full ST-A*** — the classic conflict-aware search to the goal,
   unchanged (and bit-identical to the seed) whenever it succeeds, which
   on uncongested floors is always.
2. **Windowed ST-A*** — conflict-aware only up to a rolling horizon of
   ``W = config.search_horizon`` ticks, conflict-oblivious (guided by the
   exact cached heuristic field) beyond it.  Only the conflict-checked
   prefix is committed to the reservation structure (a *windowed commit*,
   see :meth:`~repro.pathfinding.reservation.ReservationTable.reserve_path`)
   and executed; the simulator replans when the robot reaches the horizon.
3. **Reservation-aware wait in place** — when even the window is
   unreachable (the robot is boxed in), hold position: wait out the free
   run of the current cell (committed), or — when traffic is planned
   straight through the cell — sit tight uncommitted until the first tick
   the cell is probe-free, exactly as an *idle* robot (which is never
   reserved) already does, then let the replan try again.

Exhaustion therefore becomes a :class:`LegPlan` that says which tier
answered, never an exception escaping a run.  Tier-1 results are
byte-identical to the pre-pipeline behaviour, so runs that never needed a
fallback (the golden traces, the engine-equivalence suites) are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..errors import PathNotFoundError
from ..types import Cell, Tick
from ..warehouse.grid import Grid
from .heuristics import HeuristicFieldCache
from .paths import Path
from .reservation import ReservationTable
from .st_astar import SearchRequest, SearchStats, search

#: Fallback-chain tiers, in attempt order.
TIER_FULL = "full"
TIER_WINDOWED = "windowed"
TIER_WAIT = "wait"
TIERS = (TIER_FULL, TIER_WINDOWED, TIER_WAIT)


@dataclass
class LegPlan:
    """One leg's plan: the executable path plus its commit instructions.

    Attributes
    ----------
    path:
        The timed path the mission executes.  ``complete`` tells whether
        it reaches the requested goal; a partial path (windowed prefix or
        a wait) ends early and the simulator replans from its last step
        (the *horizon replan*).
    tier:
        Which chain tier produced the plan (:data:`TIER_FULL`,
        :data:`TIER_WINDOWED` or :data:`TIER_WAIT`).
    complete:
        Whether ``path`` ends on the requested goal.
    commit_path:
        What to insert into the reservation structure.  For a windowed
        plan this is the full search result, committed only up to
        ``commit_until`` — reserving through the structure's windowed
        commit keeps the two representations (executed prefix, reserved
        prefix) provably in lockstep.
    commit_until:
        Absolute windowed-commit bound for ``commit_path`` (``None``
        commits the whole path).
    search_stats:
        Stats of the chain's *fallback* searches (tier 1 absorbs its own
        on success), for the caller to fold into its counters.
    """

    path: Path
    tier: str
    complete: bool
    commit_path: Path
    commit_until: Optional[Tick] = None
    search_stats: Tuple[SearchStats, ...] = ()


class FallbackChain:
    """The three-tier leg planner shared by every planner subclass.

    Parameters
    ----------
    grid, reservation, heuristics, config:
        The owning planner's world, conflict structure, per-goal exact
        heuristic-field cache and :class:`~repro.config.PlannerConfig`.
    full_search:
        Tier 1 as a callable ``(t, source, goal) -> Path`` raising
        :class:`~repro.errors.PathNotFoundError` on exhaustion.  Passed
        as a callable (not inlined) because it is the planner's historic
        ``_find_leg`` extension point — EATP's cache-aided variant and
        the frozen-seed benchmark patches all hook it.
    finisher_factory:
        ``goal -> (finisher, trigger)`` supplying the cache-aided
        finisher for the windowed tier (EATP); ``(None, 0)`` disables.
    """

    def __init__(self, grid: Grid, reservation: ReservationTable,
                 heuristics: HeuristicFieldCache, config,
                 full_search: Callable[[Tick, Cell, Cell], Path],
                 finisher_factory: Callable[[Cell], tuple]) -> None:
        self.grid = grid
        self.reservation = reservation
        self.heuristics = heuristics
        self.config = config
        self.full_search = full_search
        self.finisher_factory = finisher_factory

    def plan_leg(self, t: Tick, source: Cell, goal: Cell) -> LegPlan:
        """Plan one leg through the chain.

        Always returns a plan when the goal is spatially reachable at
        all; a goal no path can *ever* reach (disconnected floor) still
        raises :class:`~repro.errors.PathNotFoundError` immediately —
        waiting and replanning cannot conjure a corridor, and looping
        until the simulator's ``max_ticks`` guard would bury the real
        error.
        """
        try:
            path = self.full_search(t, source, goal)
            return LegPlan(path=path, tier=TIER_FULL, complete=True,
                           commit_path=path)
        except PathNotFoundError as error:
            if self.heuristics.distance(source, goal) > self.grid.n_cells:
                raise  # unreachable regardless of reservations: fail fast
            collected = (error.stats,) if error.stats is not None else ()
        leg, collected = self._windowed_leg(t, source, goal, collected)
        if leg is None:
            leg = self._wait_leg(t, source, goal, collected)
        return leg

    # -- tier 2: windowed ST-A* -------------------------------------------------

    def _windowed_leg(self, t: Tick, source: Cell, goal: Cell,
                      collected: Tuple[SearchStats, ...]):
        window = self.config.search_horizon
        finisher, trigger = self.finisher_factory(goal)
        stats = SearchStats()
        request = SearchRequest(
            source=source, goal=goal, start_time=t, horizon=window,
            max_expansions=self.config.max_search_expansions,
            finisher=finisher, finisher_trigger=trigger)
        outcome = search(self.grid, self.reservation, request,
                         heuristic=self.heuristics.field(goal), stats=stats)
        collected = collected + (stats,)
        if not outcome.ok:
            # Boxed in even within the window (or the bounded search blew
            # its budget): the wait tier takes over, stats ride along.
            return None, collected
        boundary = t + window
        prefix = outcome.path.truncate_at(boundary)
        leg = LegPlan(path=prefix, tier=TIER_WINDOWED,
                      complete=prefix.goal == goal
                      and prefix.end_time == outcome.path.end_time,
                      commit_path=outcome.path, commit_until=boundary,
                      search_stats=collected)
        return leg, collected

    # -- tier 3: reservation-aware wait in place ------------------------------

    def _wait_leg(self, t: Tick, source: Cell, goal: Cell,
                  collected: Tuple[SearchStats, ...]) -> LegPlan:
        free_run = self._free_run(source, t)
        if free_run > 0:
            # Hold the cell for its conflict-free run (bounded by the
            # replan backoff) and commit the wait like any other path.
            duration = free_run
            commit_until = None
        else:
            # Boxed: committed traffic is planned straight through this
            # cell.  That overlap is a pre-existing modelling hole —
            # reservations never see parked robots, so the other robot's
            # plan already swept through this physically occupied cell
            # at planning time.  The robot stays put (it has nowhere
            # legal to go); commit only the start step and replan at the
            # first tick the cell is free — the soonest a legal plan can
            # exist.  Note the recorded wait path makes the pre-existing
            # overlap *visible* to path audits (`find_conflicts`), which
            # is deliberate: an idle robot hides the same co-occupancy
            # only because it records no path at all.
            duration = self._first_free_wait(source, t)
            commit_until = t
        path = Path.waiting(source, t, duration)
        return LegPlan(path=path, tier=TIER_WAIT, complete=False,
                       commit_path=path, commit_until=commit_until,
                       search_stats=collected)

    def _free_run(self, source: Cell, t: Tick) -> int:
        """Ticks the robot can legally hold ``source`` starting at t+1."""
        cap = self.config.fallback_wait_ticks
        is_free = self.reservation.is_free
        run = 0
        while run < cap and is_free(t + run + 1, source):
            run += 1
        return run

    def _first_free_wait(self, source: Cell, t: Tick) -> int:
        """Wait duration until ``source`` is first probe-free again."""
        is_free = self.reservation.is_free
        for delta in range(1, self.config.search_horizon + 1):
            if is_free(t + delta, source):
                return delta
        return self.config.fallback_wait_ticks
