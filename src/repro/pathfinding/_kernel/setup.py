"""Setuptools build for the native search kernel (documented route).

    cd src/repro/pathfinding/_kernel && python setup.py build_ext --inplace

The repo's own tooling (tests, benches, CI) uses ``build.py`` instead,
which drives the C compiler directly and needs no build backend; both
produce the same ``_stsearch`` artefact in this directory.
"""

from setuptools import Extension, setup

setup(
    name="repro-stsearch-kernel",
    version="1.0",
    ext_modules=[
        Extension(
            "_stsearch",
            sources=["_stsearchmodule.c"],
            extra_compile_args=["-O2"],
        )
    ],
)
