/* _stsearch — native expansion loop for repro.pathfinding.st_astar.
 *
 * Implements the packed-integer spatiotemporal A* core (bucket queue,
 * epoch-stamped flat workspace, per-tick reservation probes) in C, with
 * results bit-identical to the pure-python cores in st_astar.py:
 *
 *   - flat + FIFO   == _search_packed   (sub-gate floors, layer-capped)
 *   - hash + FIFO   == _search_heap, deep_ties=False  (overflow restarts)
 *   - hash + deep   == _search_heap, deep_ties=True   (paper-scale floors)
 *
 * "Bit-identical" covers expansion order, tie breaking, the produced
 * path, and every SearchStats counter.  The FIFO bucket order reproduces
 * the heap's (f, tie) order; the deep-tie order (f, -g, tie) is realised
 * as per-f sub-buckets indexed by h = f - g, consumed smallest-h (i.e.
 * deepest-g) first, FIFO within a sub-bucket.  The stale-entry test
 * ``g_best + h != f_bucket`` is the same g-dominance restatement the
 * python cores use.
 *
 * Reservation probes run natively for the library's own structures
 * (probe modes 1-4 below) and through the generic packed-probe callables
 * otherwise (mode 0), so third-party ReservationTable subclasses keep
 * working unmodified.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define GRID_CAPSULE_NAME "repro.pathfinding._kernel.grid"

/* Cell-key packing, mirrored from repro.types (x << 16 | y). */
#define CELL_KEY_SHIFT 16
#define CELL_KEY_MASK 0xFFFF

/* Probe modes, mirrored from ReservationTable.kernel_probe_spec(). */
enum {
    PROBE_CALLABLE = 0,     /* (is_free_packed, edge_free_packed)        */
    PROBE_CDT = 1,          /* ({t: set(key)}, {t: set(edge)})           */
    PROBE_DENSE = 2,        /* ({t: bytearray[ci]}, {t: set(edge)})      */
    PROBE_TILED_SET = 3,    /* ({tile: {t: set(key)}}, {t: set(edge)})   */
    PROBE_TILED_DENSE = 4,  /* ({t: {tile: bytearray}}, {t: set(edge)})  */
};

/* run() statuses, mapped to SearchOutcome by the python wrapper. */
enum {
    ST_COMPLETE = 0,
    ST_BUDGET = 1,
    ST_EXHAUSTED = 2,
    ST_OVERFLOW = 3,   /* flat workspace hit the layer cap: restart on hash */
    ST_FINISHER = 4,   /* finisher produced the tail; head steps attached */
};

/* ------------------------------------------------------------------ */
/* Prepared grid: flattened adjacency + cached per-cell key objects.   */
/* ------------------------------------------------------------------ */

typedef struct {
    Py_ssize_t n_cells;
    int64_t height;
    Py_ssize_t *adj_off;   /* n_cells + 1 offsets into adj_nci/adj_nkey */
    int32_t *adj_nci;
    int64_t *adj_nkey;
    int64_t *cell_keys;
    PyObject **key_objs;   /* owned PyLong per cell's packed key */
} GridData;

static void
grid_capsule_destroy(PyObject *capsule)
{
    GridData *gd = PyCapsule_GetPointer(capsule, GRID_CAPSULE_NAME);
    if (gd == NULL)
        return;
    if (gd->key_objs != NULL) {
        for (Py_ssize_t i = 0; i < gd->n_cells; i++)
            Py_XDECREF(gd->key_objs[i]);
        PyMem_Free(gd->key_objs);
    }
    PyMem_Free(gd->adj_off);
    PyMem_Free(gd->adj_nci);
    PyMem_Free(gd->adj_nkey);
    PyMem_Free(gd->cell_keys);
    PyMem_Free(gd);
}

static PyObject *
stsearch_prepare_grid(PyObject *self, PyObject *args)
{
    long long height;
    PyObject *adjacency, *cell_keys;
    if (!PyArg_ParseTuple(args, "LOO", &height, &adjacency, &cell_keys))
        return NULL;

    PyObject *adj_fast = PySequence_Fast(adjacency, "adjacency not a sequence");
    if (adj_fast == NULL)
        return NULL;
    PyObject *keys_fast = PySequence_Fast(cell_keys, "cell_keys not a sequence");
    if (keys_fast == NULL) {
        Py_DECREF(adj_fast);
        return NULL;
    }

    Py_ssize_t n_cells = PySequence_Fast_GET_SIZE(keys_fast);
    if (PySequence_Fast_GET_SIZE(adj_fast) != n_cells) {
        PyErr_SetString(PyExc_ValueError,
                        "adjacency and cell_keys length mismatch");
        goto parse_fail;
    }

    GridData *gd = PyMem_Calloc(1, sizeof(GridData));
    if (gd == NULL) {
        PyErr_NoMemory();
        goto parse_fail;
    }
    gd->n_cells = n_cells;
    gd->height = (int64_t)height;

    Py_ssize_t total = 0;
    for (Py_ssize_t i = 0; i < n_cells; i++) {
        Py_ssize_t row_len = PySequence_Size(
            PySequence_Fast_GET_ITEM(adj_fast, i));
        if (row_len < 0)
            goto gd_fail;
        total += row_len;
    }

    gd->adj_off = PyMem_Malloc((n_cells + 1) * sizeof(Py_ssize_t));
    gd->adj_nci = PyMem_Malloc((total ? total : 1) * sizeof(int32_t));
    gd->adj_nkey = PyMem_Malloc((total ? total : 1) * sizeof(int64_t));
    gd->cell_keys = PyMem_Malloc((n_cells ? n_cells : 1) * sizeof(int64_t));
    gd->key_objs = PyMem_Calloc((n_cells ? n_cells : 1), sizeof(PyObject *));
    if (gd->adj_off == NULL || gd->adj_nci == NULL || gd->adj_nkey == NULL
            || gd->cell_keys == NULL || gd->key_objs == NULL) {
        PyErr_NoMemory();
        goto gd_fail;
    }

    Py_ssize_t at = 0;
    for (Py_ssize_t i = 0; i < n_cells; i++) {
        gd->adj_off[i] = at;
        PyObject *key_obj = PySequence_Fast_GET_ITEM(keys_fast, i);
        int64_t key = (int64_t)PyLong_AsLongLong(key_obj);
        if (key == -1 && PyErr_Occurred())
            goto gd_fail;
        gd->cell_keys[i] = key;
        Py_INCREF(key_obj);
        gd->key_objs[i] = key_obj;

        PyObject *row = PySequence_Fast(
            PySequence_Fast_GET_ITEM(adj_fast, i), "adjacency row");
        if (row == NULL)
            goto gd_fail;
        Py_ssize_t row_len = PySequence_Fast_GET_SIZE(row);
        for (Py_ssize_t j = 0; j < row_len; j++) {
            PyObject *pair = PySequence_Fast_GET_ITEM(row, j);
            PyObject *pair_fast = PySequence_Fast(pair, "adjacency pair");
            if (pair_fast == NULL || PySequence_Fast_GET_SIZE(pair_fast) != 2) {
                Py_XDECREF(pair_fast);
                Py_DECREF(row);
                if (!PyErr_Occurred())
                    PyErr_SetString(PyExc_ValueError, "bad adjacency pair");
                goto gd_fail;
            }
            long long nci = PyLong_AsLongLong(
                PySequence_Fast_GET_ITEM(pair_fast, 0));
            long long nkey = PyLong_AsLongLong(
                PySequence_Fast_GET_ITEM(pair_fast, 1));
            Py_DECREF(pair_fast);
            if (PyErr_Occurred()) {
                Py_DECREF(row);
                goto gd_fail;
            }
            gd->adj_nci[at] = (int32_t)nci;
            gd->adj_nkey[at] = (int64_t)nkey;
            at++;
        }
        Py_DECREF(row);
    }
    gd->adj_off[n_cells] = at;

    PyObject *capsule = PyCapsule_New(gd, GRID_CAPSULE_NAME,
                                      grid_capsule_destroy);
    if (capsule == NULL)
        goto gd_fail;
    Py_DECREF(adj_fast);
    Py_DECREF(keys_fast);
    return capsule;

gd_fail:
    if (gd->key_objs != NULL)
        for (Py_ssize_t i = 0; i < n_cells; i++)
            Py_XDECREF(gd->key_objs[i]);
    PyMem_Free(gd->adj_off);
    PyMem_Free(gd->adj_nci);
    PyMem_Free(gd->adj_nkey);
    PyMem_Free(gd->cell_keys);
    PyMem_Free(gd->key_objs);
    PyMem_Free(gd);
parse_fail:
    Py_DECREF(adj_fast);
    Py_DECREF(keys_fast);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* Open-set containers.                                                */
/* ------------------------------------------------------------------ */

typedef struct {           /* one FIFO list of packed rel-states */
    int64_t *items;
    Py_ssize_t len, cap, pos;
} Bucket;

typedef struct {           /* per-f bucket array (FIFO / seed order) */
    Bucket *b;
    Py_ssize_t len, cap;
} BArray;

typedef struct {           /* per-f sub-buckets by h (deep-tie order) */
    Bucket *by_h;
    Py_ssize_t h_len, h_cap;
    int64_t lo_h;          /* smallest h with possibly-unread entries */
    int64_t live;          /* unread entries across all sub-buckets */
} FBucket;

typedef struct {
    FBucket *b;
    Py_ssize_t len, cap;
} FBArray;

static int
bucket_push(Bucket *bk, int64_t value)
{
    if (bk->len == bk->cap) {
        Py_ssize_t ncap = bk->cap ? bk->cap * 2 : 8;
        int64_t *ni = PyMem_Realloc(bk->items, ncap * sizeof(int64_t));
        if (ni == NULL)
            return -1;
        bk->items = ni;
        bk->cap = ncap;
    }
    bk->items[bk->len++] = value;
    return 0;
}

static int
barray_ensure(BArray *ba, Py_ssize_t f)
{
    if (f < ba->len)
        return 0;
    if (f >= ba->cap) {
        Py_ssize_t ncap = ba->cap ? ba->cap : 16;
        while (ncap <= f)
            ncap *= 2;
        Bucket *nb = PyMem_Realloc(ba->b, ncap * sizeof(Bucket));
        if (nb == NULL)
            return -1;
        ba->b = nb;
        ba->cap = ncap;
    }
    memset(ba->b + ba->len, 0, (f + 1 - ba->len) * sizeof(Bucket));
    ba->len = f + 1;
    return 0;
}

static void
barray_free_items(BArray *ba)
{
    for (Py_ssize_t i = 0; i < ba->len; i++)
        PyMem_Free(ba->b[i].items);
    PyMem_Free(ba->b);
    ba->b = NULL;
    ba->len = ba->cap = 0;
}

static int
fbarray_ensure(FBArray *fa, Py_ssize_t f)
{
    if (f < fa->len)
        return 0;
    if (f >= fa->cap) {
        Py_ssize_t ncap = fa->cap ? fa->cap : 16;
        while (ncap <= f)
            ncap *= 2;
        FBucket *nb = PyMem_Realloc(fa->b, ncap * sizeof(FBucket));
        if (nb == NULL)
            return -1;
        fa->b = nb;
        fa->cap = ncap;
    }
    for (Py_ssize_t i = fa->len; i <= f; i++) {
        memset(&fa->b[i], 0, sizeof(FBucket));
        fa->b[i].lo_h = INT64_MAX;
    }
    fa->len = f + 1;
    return 0;
}

static int
fbucket_ensure_h(FBucket *fb, Py_ssize_t h)
{
    if (h < fb->h_len)
        return 0;
    if (h >= fb->h_cap) {
        Py_ssize_t ncap = fb->h_cap ? fb->h_cap : 8;
        while (ncap <= h)
            ncap *= 2;
        Bucket *nb = PyMem_Realloc(fb->by_h, ncap * sizeof(Bucket));
        if (nb == NULL)
            return -1;
        fb->by_h = nb;
        fb->h_cap = ncap;
    }
    memset(fb->by_h + fb->h_len, 0, (h + 1 - fb->h_len) * sizeof(Bucket));
    fb->h_len = h + 1;
    return 0;
}

static void
fbarray_free(FBArray *fa)
{
    for (Py_ssize_t i = 0; i < fa->len; i++) {
        FBucket *fb = &fa->b[i];
        for (Py_ssize_t h = 0; h < fb->h_len; h++)
            PyMem_Free(fb->by_h[h].items);
        PyMem_Free(fb->by_h);
    }
    PyMem_Free(fa->b);
    fa->b = NULL;
    fa->len = fa->cap = 0;
}

/* ------------------------------------------------------------------ */
/* Open-addressing int64 -> (g, parent) map for the hash backends.     */
/* ------------------------------------------------------------------ */

typedef struct {
    int64_t *keys;     /* -1 == empty (rel states are non-negative) */
    int64_t *g;
    int64_t *parent;
    Py_ssize_t cap, mask, used;
} HMap;

static int
hmap_init(HMap *m, Py_ssize_t cap)
{
    m->cap = cap;
    m->mask = cap - 1;
    m->used = 0;
    m->keys = PyMem_Malloc(cap * sizeof(int64_t));
    m->g = PyMem_Malloc(cap * sizeof(int64_t));
    m->parent = PyMem_Malloc(cap * sizeof(int64_t));
    if (m->keys == NULL || m->g == NULL || m->parent == NULL) {
        PyMem_Free(m->keys);
        PyMem_Free(m->g);
        PyMem_Free(m->parent);
        m->keys = m->g = m->parent = NULL;
        return -1;
    }
    memset(m->keys, 0xFF, cap * sizeof(int64_t));  /* all -1 */
    return 0;
}

static void
hmap_free(HMap *m)
{
    PyMem_Free(m->keys);
    PyMem_Free(m->g);
    PyMem_Free(m->parent);
    m->keys = m->g = m->parent = NULL;
}

static inline Py_ssize_t
hmap_slot(const HMap *m, int64_t key)
{
    uint64_t h = (uint64_t)key * 0x9E3779B97F4A7C15ULL;
    Py_ssize_t i = (Py_ssize_t)((h ^ (h >> 29)) & (uint64_t)m->mask);
    while (m->keys[i] != -1 && m->keys[i] != key)
        i = (i + 1) & m->mask;
    return i;
}

static int
hmap_grow(HMap *m)
{
    HMap bigger;
    if (hmap_init(&bigger, m->cap * 2) < 0)
        return -1;
    for (Py_ssize_t i = 0; i < m->cap; i++) {
        if (m->keys[i] == -1)
            continue;
        Py_ssize_t slot = hmap_slot(&bigger, m->keys[i]);
        bigger.keys[slot] = m->keys[i];
        bigger.g[slot] = m->g[i];
        bigger.parent[slot] = m->parent[i];
    }
    bigger.used = m->used;
    hmap_free(m);
    *m = bigger;
    return 0;
}

/* ------------------------------------------------------------------ */
/* Persistent flat workspace (epoch-stamped arrays + bucket skeletons) */
/* ------------------------------------------------------------------ */

typedef struct {
    Py_ssize_t n_cells;
    Py_ssize_t size;       /* allocated entries (layers * n_cells) */
    int64_t *g, *gen, *parent;
    int64_t epoch;
    BArray fifo;
    int active;
} Workspace;

static Workspace global_ws;  /* one shape slot; reset on shape change */

static void
ws_reset(Workspace *w, Py_ssize_t n_cells)
{
    PyMem_Free(w->g);
    PyMem_Free(w->gen);
    PyMem_Free(w->parent);
    barray_free_items(&w->fifo);
    memset(w, 0, sizeof(Workspace));
    w->n_cells = n_cells;
}

static int
ws_grow(Workspace *w, Py_ssize_t rel, int64_t max_layers,
        int64_t chunk_layers)
{
    Py_ssize_t cap = (Py_ssize_t)max_layers * w->n_cells;
    Py_ssize_t need = rel + 1 - w->size;
    Py_ssize_t chunk = (Py_ssize_t)chunk_layers * w->n_cells;
    if (need > chunk)
        chunk = need;
    if (chunk > cap - w->size)
        chunk = cap - w->size;
    Py_ssize_t nsize = w->size + chunk;
    int64_t *ng = PyMem_Realloc(w->g, nsize * sizeof(int64_t));
    if (ng == NULL)
        return -1;
    w->g = ng;
    int64_t *ngen = PyMem_Realloc(w->gen, nsize * sizeof(int64_t));
    if (ngen == NULL)
        return -1;
    w->gen = ngen;
    int64_t *np = PyMem_Realloc(w->parent, nsize * sizeof(int64_t));
    if (np == NULL)
        return -1;
    w->parent = np;
    memset(w->gen + w->size, 0, chunk * sizeof(int64_t));
    w->size = nsize;
    return 0;
}

/* ------------------------------------------------------------------ */
/* Reservation probes.                                                 */
/* ------------------------------------------------------------------ */

typedef struct {
    int mode;
    int tile_bits;
    PyObject *vertex_obj;  /* borrowed from args */
    PyObject *edge_obj;    /* borrowed from args */
    /* per-expansion context */
    int guarded;
    PyObject *occupied;    /* borrowed: mode 1 vertex set for t1 */
    const char *layer1;    /* mode 2 dense layer bytes for t1 */
    PyObject *layer_tiles; /* borrowed: mode 4 tile dict for t1 */
    PyObject *swaps;       /* borrowed: modes 1-4 edge set for t1 - 1 */
    PyObject *t1_obj;      /* owned */
    PyObject *t0_obj;      /* owned */
    int64_t memo_tile_id;  /* modes 3/4 last-tile memo */
    PyObject *memo_tile;   /* borrowed */
} Probe;

static inline int64_t
tile_of_key(int64_t key, int bits)
{
    return ((key >> (CELL_KEY_SHIFT + bits)) << CELL_KEY_SHIFT)
        | ((key & CELL_KEY_MASK) >> bits);
}

/* Fetch the per-tick context for one expansion.  Returns -1 on error. */
static int
probe_setup(Probe *p, int64_t t1, int guarded)
{
    p->guarded = guarded;
    p->occupied = NULL;
    p->layer1 = NULL;
    p->layer_tiles = NULL;
    p->swaps = NULL;
    p->t1_obj = NULL;
    p->t0_obj = NULL;
    if (p->mode == PROBE_TILED_DENSE)
        p->memo_tile_id = -1;  /* memo is per time layer */
    if (!guarded)
        return 0;
    p->t1_obj = PyLong_FromLongLong((long long)t1);
    if (p->t1_obj == NULL)
        return -1;
    p->t0_obj = PyLong_FromLongLong((long long)(t1 - 1));
    if (p->t0_obj == NULL)
        return -1;
    switch (p->mode) {
    case PROBE_CALLABLE:
        return 0;
    case PROBE_CDT:
        p->occupied = PyDict_GetItemWithError(p->vertex_obj, p->t1_obj);
        if (p->occupied == NULL && PyErr_Occurred())
            return -1;
        break;
    case PROBE_DENSE: {
        PyObject *layer = PyDict_GetItemWithError(p->vertex_obj, p->t1_obj);
        if (layer == NULL) {
            if (PyErr_Occurred())
                return -1;
        } else {
            if (!PyByteArray_Check(layer)) {
                PyErr_SetString(PyExc_TypeError,
                                "dense layer is not a bytearray");
                return -1;
            }
            p->layer1 = PyByteArray_AS_STRING(layer);
        }
        break;
    }
    case PROBE_TILED_SET:
        break;  /* tiles probed per cell */
    case PROBE_TILED_DENSE:
        p->layer_tiles = PyDict_GetItemWithError(p->vertex_obj, p->t1_obj);
        if (p->layer_tiles == NULL && PyErr_Occurred())
            return -1;
        break;
    }
    p->swaps = PyDict_GetItemWithError(p->edge_obj, p->t0_obj);
    if (p->swaps == NULL && PyErr_Occurred())
        return -1;
    return 0;
}

static void
probe_teardown(Probe *p)
{
    Py_CLEAR(p->t1_obj);
    Py_CLEAR(p->t0_obj);
    p->occupied = NULL;
    p->layer1 = NULL;
    p->layer_tiles = NULL;
    p->swaps = NULL;
}

/* Whether arriving on cell ``ci`` at t1 hits a vertex reservation.
 * Returns 1 blocked, 0 free, -1 error.  Callers skip when unguarded. */
static int
probe_vertex(Probe *p, const GridData *gd, Py_ssize_t ci)
{
    switch (p->mode) {
    case PROBE_CALLABLE: {
        PyObject *res = PyObject_CallFunctionObjArgs(
            p->vertex_obj, p->t1_obj, gd->key_objs[ci], NULL);
        if (res == NULL)
            return -1;
        int truthy = PyObject_IsTrue(res);
        Py_DECREF(res);
        if (truthy < 0)
            return -1;
        return !truthy;
    }
    case PROBE_CDT:
        if (p->occupied == NULL)
            return 0;
        return PySet_Contains(p->occupied, gd->key_objs[ci]);
    case PROBE_DENSE:
        return p->layer1 != NULL && p->layer1[ci] != 0;
    case PROBE_TILED_SET: {
        int64_t tile_id = tile_of_key(gd->cell_keys[ci], p->tile_bits);
        PyObject *tile;
        if (tile_id == p->memo_tile_id) {
            tile = p->memo_tile;
        } else {
            PyObject *tid = PyLong_FromLongLong((long long)tile_id);
            if (tid == NULL)
                return -1;
            tile = PyDict_GetItemWithError(p->vertex_obj, tid);
            Py_DECREF(tid);
            if (tile == NULL && PyErr_Occurred())
                return -1;
            p->memo_tile_id = tile_id;
            p->memo_tile = tile;
        }
        if (tile == NULL)
            return 0;
        PyObject *bucket = PyDict_GetItemWithError(tile, p->t1_obj);
        if (bucket == NULL)
            return PyErr_Occurred() ? -1 : 0;
        return PySet_Contains(bucket, gd->key_objs[ci]);
    }
    case PROBE_TILED_DENSE: {
        if (p->layer_tiles == NULL)
            return 0;
        int64_t key = gd->cell_keys[ci];
        int64_t tile_id = tile_of_key(key, p->tile_bits);
        PyObject *tile;
        if (tile_id == p->memo_tile_id) {
            tile = p->memo_tile;
        } else {
            PyObject *tid = PyLong_FromLongLong((long long)tile_id);
            if (tid == NULL)
                return -1;
            tile = PyDict_GetItemWithError(p->layer_tiles, tid);
            Py_DECREF(tid);
            if (tile == NULL && PyErr_Occurred())
                return -1;
            p->memo_tile_id = tile_id;
            p->memo_tile = tile;
        }
        if (tile == NULL)
            return 0;
        if (!PyByteArray_Check(tile)) {
            PyErr_SetString(PyExc_TypeError, "tile block is not a bytearray");
            return -1;
        }
        int64_t x = key >> CELL_KEY_SHIFT;
        int64_t y = key & CELL_KEY_MASK;
        int64_t mask = ((int64_t)1 << p->tile_bits) - 1;
        Py_ssize_t slot = (Py_ssize_t)(((x & mask) << p->tile_bits)
                                       | (y & mask));
        return PyByteArray_AS_STRING(tile)[slot] != 0;
    }
    }
    PyErr_SetString(PyExc_SystemError, "unknown probe mode");
    return -1;
}

/* Whether the move sci -> nci departing at t1 - 1 hits a swap.
 * Returns 1 blocked, 0 free, -1 error. */
static int
probe_edge(Probe *p, const GridData *gd, Py_ssize_t sci, Py_ssize_t nci)
{
    if (p->mode == PROBE_CALLABLE) {
        PyObject *res = PyObject_CallFunctionObjArgs(
            p->edge_obj, p->t0_obj, gd->key_objs[sci], gd->key_objs[nci],
            NULL);
        if (res == NULL)
            return -1;
        int truthy = PyObject_IsTrue(res);
        Py_DECREF(res);
        if (truthy < 0)
            return -1;
        return !truthy;
    }
    if (p->swaps == NULL)
        return 0;
    int64_t combined = (gd->cell_keys[nci] << 32) | gd->cell_keys[sci];
    PyObject *probe = PyLong_FromLongLong((long long)combined);
    if (probe == NULL)
        return -1;
    int hit = PySet_Contains(p->swaps, probe);
    Py_DECREF(probe);
    return hit;
}

/* ------------------------------------------------------------------ */
/* The search itself.                                                  */
/* ------------------------------------------------------------------ */

typedef struct {
    /* problem */
    const GridData *gd;
    int64_t height;
    Py_ssize_t n_cells;
    PyObject *hlist;       /* h_mode 0: list field (borrowed) */
    const int32_t *hbuf;   /* h_mode 2: int32 buffer field (borrowed) */
    int h_mode;            /* 0 list, 1 native Manhattan, 2 int32 buffer */
    int64_t gx, gy;        /* h_mode 1 goal coordinates */
    /* backends */
    int use_flat;          /* flat workspace vs hash map */
    int deep;              /* deep-tie sub-bucket order vs FIFO */
    Workspace *ws;         /* flat: the (global or temp) workspace */
    int ws_is_temp;
    int64_t epoch;
    int64_t max_layers, chunk_layers;
    HMap hm;
    BArray hash_fifo;      /* hash + FIFO open set */
    FBArray deepq;         /* hash + deep open set */
    int64_t hi_f;
    int64_t h0;
} Search;

static inline int64_t
heuristic_at(const Search *s, Py_ssize_t ci, int *err)
{
    if (s->h_mode == 1) {
        int64_t x = (int64_t)ci / s->height;
        int64_t y = (int64_t)ci % s->height;
        int64_t dx = x > s->gx ? x - s->gx : s->gx - x;
        int64_t dy = y > s->gy ? y - s->gy : s->gy - y;
        return dx + dy;
    }
    if (s->h_mode == 2)
        return (int64_t)s->hbuf[ci];
    PyObject *item = PyList_GET_ITEM(s->hlist, ci);
    int64_t h = (int64_t)PyLong_AsLongLong(item);
    if (h == -1 && PyErr_Occurred()) {
        *err = 1;
        return 0;
    }
    return h;
}

/* Record/improve a successor and push it at f-offset ``nf``.
 * ``h`` is the successor's heuristic (deep mode sub-bucket index).
 * Returns 1 pushed, 0 dominated, -1 error. */
static inline int
relax(Search *s, int64_t nrel, int64_t g_next, int64_t rel,
      int64_t nf, int64_t h)
{
    if (s->use_flat) {
        Workspace *w = s->ws;
        if (w->gen[nrel] == s->epoch && g_next >= w->g[nrel])
            return 0;
        w->gen[nrel] = s->epoch;
        w->g[nrel] = g_next;
        w->parent[nrel] = rel;
        if (barray_ensure(&w->fifo, (Py_ssize_t)nf) < 0)
            return -1;
        if (bucket_push(&w->fifo.b[nf], nrel) < 0)
            return -1;
    } else {
        if ((s->hm.used + 1) * 3 > s->hm.cap * 2 && hmap_grow(&s->hm) < 0)
            return -1;
        Py_ssize_t slot = hmap_slot(&s->hm, nrel);
        if (s->hm.keys[slot] == -1) {
            s->hm.keys[slot] = nrel;
            s->hm.used++;
        } else if (g_next >= s->hm.g[slot]) {
            return 0;
        }
        s->hm.g[slot] = g_next;
        s->hm.parent[slot] = rel;
        if (s->deep) {
            if (fbarray_ensure(&s->deepq, (Py_ssize_t)nf) < 0)
                return -1;
            FBucket *fb = &s->deepq.b[nf];
            if (fbucket_ensure_h(fb, (Py_ssize_t)h) < 0)
                return -1;
            if (bucket_push(&fb->by_h[h], nrel) < 0)
                return -1;
            fb->live++;
            if (h < fb->lo_h)
                fb->lo_h = h;
        } else {
            if (barray_ensure(&s->hash_fifo, (Py_ssize_t)nf) < 0)
                return -1;
            if (bucket_push(&s->hash_fifo.b[nf], nrel) < 0)
                return -1;
        }
    }
    if (nf > s->hi_f)
        s->hi_f = nf;
    return 1;
}

static PyObject *
reconstruct(const Search *s, int64_t rel, int64_t start_time)
{
    PyObject *steps = PyList_New(0);
    if (steps == NULL)
        return NULL;
    while (rel >= 0) {
        int64_t t_rel = rel / s->n_cells;
        int64_t ci = rel % s->n_cells;
        int64_t x = ci / s->height;
        int64_t y = ci % s->height;
        PyObject *step = Py_BuildValue("(LLL)",
                                       (long long)(start_time + t_rel),
                                       (long long)x, (long long)y);
        if (step == NULL || PyList_Append(steps, step) < 0) {
            Py_XDECREF(step);
            Py_DECREF(steps);
            return NULL;
        }
        Py_DECREF(step);
        if (s->use_flat) {
            rel = s->ws->parent[rel];
        } else {
            Py_ssize_t slot = hmap_slot(&s->hm, rel);
            rel = s->hm.parent[slot];
        }
    }
    if (PyList_Reverse(steps) < 0) {
        Py_DECREF(steps);
        return NULL;
    }
    return steps;
}

static PyObject *
stsearch_run(PyObject *self, PyObject *args)
{
    PyObject *capsule, *probe_a, *probe_b, *h_arg, *finisher;
    int probe_mode, tile_bits, h_mode, use_flat, deep;
    Py_ssize_t source_ci, goal_ci;
    long long start_time, probe_limit, max_expansions;
    long long finisher_trigger, max_layers, chunk_layers;
    long long init_expansions, init_peak_open;

    if (!PyArg_ParseTuple(
            args, "OiOOiiOnnLLLOLiiLLLL",
            &capsule, &probe_mode, &probe_a, &probe_b, &tile_bits,
            &h_mode, &h_arg, &source_ci, &goal_ci,
            &start_time, &probe_limit, &max_expansions,
            &finisher, &finisher_trigger, &use_flat, &deep,
            &max_layers, &chunk_layers, &init_expansions, &init_peak_open))
        return NULL;

    GridData *gd = PyCapsule_GetPointer(capsule, GRID_CAPSULE_NAME);
    if (gd == NULL)
        return NULL;

    /* Validate the probe spec shape up front, then trust it in the loop. */
    switch (probe_mode) {
    case PROBE_CALLABLE:
        if (!PyCallable_Check(probe_a) || !PyCallable_Check(probe_b)) {
            PyErr_SetString(PyExc_TypeError, "probe callables expected");
            return NULL;
        }
        break;
    case PROBE_CDT:
    case PROBE_DENSE:
    case PROBE_TILED_SET:
    case PROBE_TILED_DENSE:
        if (!PyDict_Check(probe_a) || !PyDict_Check(probe_b)) {
            PyErr_SetString(PyExc_TypeError, "probe dicts expected");
            return NULL;
        }
        break;
    default:
        PyErr_SetString(PyExc_ValueError, "unknown probe mode");
        return NULL;
    }

    Search s;
    memset(&s, 0, sizeof(Search));
    s.gd = gd;
    s.height = gd->height;
    s.n_cells = gd->n_cells;
    s.h_mode = h_mode;
    s.use_flat = use_flat;
    s.deep = deep;
    s.max_layers = max_layers;
    s.chunk_layers = chunk_layers;
    s.hi_f = 0;

    Py_buffer hview;
    int have_hview = 0;
    if (h_mode == 1) {
        long long gx, gy;
        if (!PyArg_ParseTuple(h_arg, "LL", &gx, &gy))
            return NULL;
        s.gx = (int64_t)gx;
        s.gy = (int64_t)gy;
    } else if (h_mode == 2) {
        if (PyObject_GetBuffer(h_arg, &hview, PyBUF_SIMPLE) < 0)
            return NULL;
        if (hview.len != (Py_ssize_t)(s.n_cells * sizeof(int32_t))) {
            PyBuffer_Release(&hview);
            PyErr_SetString(PyExc_TypeError,
                            "h buffer must hold n_cells int32 values");
            return NULL;
        }
        s.hbuf = (const int32_t *)hview.buf;
        have_hview = 1;
    } else {
        if (!PyList_Check(h_arg)
                || PyList_GET_SIZE(h_arg) != s.n_cells) {
            PyErr_SetString(PyExc_TypeError,
                            "h field must be a list of n_cells ints");
            return NULL;
        }
        s.hlist = h_arg;
    }

    Probe probe;
    memset(&probe, 0, sizeof(Probe));
    probe.mode = probe_mode;
    probe.tile_bits = tile_bits;
    probe.vertex_obj = probe_a;
    probe.edge_obj = probe_b;
    probe.memo_tile_id = -1;

    int herr = 0;
    s.h0 = heuristic_at(&s, source_ci, &herr);
    if (herr) {
        if (have_hview)
            PyBuffer_Release(&hview);
        return NULL;
    }

    /* Backend setup. */
    Workspace temp_ws;
    memset(&temp_ws, 0, sizeof(Workspace));
    if (use_flat) {
        Workspace *w = &global_ws;
        if (w->active) {
            /* Re-entrant search (a finisher that searches): hand out a
             * throwaway workspace rather than corrupting the live one.
             * This must be decided before any shape-change reset — the
             * outer search owns the global arrays right now. */
            temp_ws.n_cells = s.n_cells;
            w = &temp_ws;
            s.ws_is_temp = 1;
        } else if (w->n_cells != s.n_cells) {
            ws_reset(w, s.n_cells);
        }
        s.ws = w;
        w->epoch += 1;
        s.epoch = w->epoch;
        w->active = 1;
        if (w->size < s.n_cells
                && ws_grow(w, s.n_cells - 1, max_layers, chunk_layers) < 0) {
            w->active = 0;
            if (have_hview)
                PyBuffer_Release(&hview);
            return PyErr_NoMemory();
        }
        w->gen[source_ci] = s.epoch;
        w->g[source_ci] = 0;
        w->parent[source_ci] = -1;
        if (barray_ensure(&w->fifo, 0) < 0
                || bucket_push(&w->fifo.b[0], source_ci) < 0) {
            w->active = 0;
            if (have_hview)
                PyBuffer_Release(&hview);
            return PyErr_NoMemory();
        }
    } else {
        if (hmap_init(&s.hm, 4096) < 0) {
            if (have_hview)
                PyBuffer_Release(&hview);
            return PyErr_NoMemory();
        }
        Py_ssize_t slot = hmap_slot(&s.hm, source_ci);
        s.hm.keys[slot] = source_ci;
        s.hm.g[slot] = 0;
        s.hm.parent[slot] = -1;
        s.hm.used = 1;
        if (deep) {
            if (fbarray_ensure(&s.deepq, 0) < 0
                    || fbucket_ensure_h(&s.deepq.b[0], (Py_ssize_t)s.h0) < 0
                    || bucket_push(&s.deepq.b[0].by_h[s.h0], source_ci) < 0) {
                fbarray_free(&s.deepq);
                hmap_free(&s.hm);
                if (have_hview)
                    PyBuffer_Release(&hview);
                return PyErr_NoMemory();
            }
            s.deepq.b[0].live = 1;
            s.deepq.b[0].lo_h = s.h0;
        } else {
            if (barray_ensure(&s.hash_fifo, 0) < 0
                    || bucket_push(&s.hash_fifo.b[0], source_ci) < 0) {
                barray_free_items(&s.hash_fifo);
                hmap_free(&s.hm);
                if (have_hview)
                    PyBuffer_Release(&hview);
                return PyErr_NoMemory();
            }
        }
    }

    int64_t f_off = 0;           /* bucket cursor (f - h0) */
    int64_t f_abs = s.h0;        /* absolute f at the cursor */
    int64_t open_size = 1;
    int64_t expansions = (int64_t)init_expansions;
    int64_t generated = 0;
    int64_t peak_open = (int64_t)init_peak_open;
    int64_t loop_ticker = 0;

    int status = ST_EXHAUSTED;
    int64_t result_rel = -1;
    PyObject *steps = NULL;       /* owned on success */
    PyObject *finisher_tail = NULL;

    while (open_size > 0) {
        if (((++loop_ticker) & 0x3FFF) == 0 && PyErr_CheckSignals() < 0)
            goto fail;

        /* -- pop ------------------------------------------------------ */
        int64_t rel;
        if (s.deep) {
            while (f_off < s.deepq.len && s.deepq.b[f_off].live == 0) {
                f_off++;
                f_abs++;
            }
            if (f_off > s.hi_f || f_off >= s.deepq.len) {
                PyErr_SetString(PyExc_AssertionError,
                                "bucket queue underflow: heuristic field "
                                "is not consistent");
                goto fail;
            }
            FBucket *fb = &s.deepq.b[f_off];
            while (fb->lo_h < fb->h_len
                    && fb->by_h[fb->lo_h].pos >= fb->by_h[fb->lo_h].len)
                fb->lo_h++;
            if (fb->lo_h >= fb->h_len) {
                PyErr_SetString(PyExc_AssertionError,
                                "bucket queue underflow: heuristic field "
                                "is not consistent");
                goto fail;
            }
            Bucket *hb = &fb->by_h[fb->lo_h];
            if (open_size > peak_open)
                peak_open = open_size;
            rel = hb->items[hb->pos++];
            fb->live--;
        } else {
            BArray *ba = use_flat ? &s.ws->fifo : &s.hash_fifo;
            while (f_off < ba->len
                    && ba->b[f_off].pos >= ba->b[f_off].len) {
                f_off++;
                f_abs++;
            }
            if (f_off > s.hi_f || f_off >= ba->len) {
                PyErr_SetString(PyExc_AssertionError,
                                "bucket queue underflow: heuristic field "
                                "is not consistent");
                goto fail;
            }
            Bucket *bk = &ba->b[f_off];
            if (open_size > peak_open)
                peak_open = open_size;
            rel = bk->items[bk->pos++];
        }
        open_size--;

        int64_t t_rel = rel / s.n_cells;
        Py_ssize_t ci = (Py_ssize_t)(rel % s.n_cells);
        int64_t h_ci = heuristic_at(&s, ci, &herr);
        if (herr)
            goto fail;
        int64_t g;
        if (use_flat) {
            g = s.ws->g[rel];
        } else {
            Py_ssize_t slot = hmap_slot(&s.hm, rel);
            g = s.hm.g[slot];
        }
        if (g + h_ci != f_abs)
            continue;  /* dominated by a later, cheaper push */
        expansions++;
        if (expansions > max_expansions) {
            status = ST_BUDGET;
            goto done;
        }

        if (ci == (Py_ssize_t)goal_ci) {
            status = ST_COMPLETE;
            result_rel = rel;
            goto done;
        }

        if (finisher != Py_None && h_ci > 0 && h_ci <= finisher_trigger) {
            PyObject *cell = Py_BuildValue("(LL)",
                                           (long long)(ci / s.height),
                                           (long long)(ci % s.height));
            if (cell == NULL)
                goto fail;
            PyObject *t_obj = PyLong_FromLongLong(
                (long long)(start_time + t_rel));
            if (t_obj == NULL) {
                Py_DECREF(cell);
                goto fail;
            }
            PyObject *tail = PyObject_CallFunctionObjArgs(
                finisher, cell, t_obj, NULL);
            Py_DECREF(cell);
            Py_DECREF(t_obj);
            if (tail == NULL)
                goto fail;
            if (tail != Py_None) {
                status = ST_FINISHER;
                result_rel = rel;
                finisher_tail = tail;
                goto done;
            }
            Py_DECREF(tail);
        }

        int64_t g_next = g + 1;
        int64_t t1 = start_time + t_rel + 1;
        int64_t nxt_base = rel - ci + s.n_cells;
        if (use_flat && nxt_base + s.n_cells > s.ws->size) {
            if (t_rel + 2 > max_layers) {
                status = ST_OVERFLOW;
                goto done;
            }
            if (ws_grow(s.ws, (Py_ssize_t)(nxt_base + s.n_cells - 1),
                        max_layers, chunk_layers) < 0) {
                PyErr_NoMemory();
                goto fail;
            }
        }
        int guarded = t1 <= probe_limit;
        int64_t base_f = g_next - s.h0;

        if (probe_setup(&probe, t1, guarded) < 0)
            goto fail;

        /* Wait in place (the fifth action) — vertex check only. */
        int blocked = guarded ? probe_vertex(&probe, gd, ci) : 0;
        if (blocked < 0)
            goto expand_fail;
        if (!blocked) {
            int pushed = relax(&s, nxt_base + ci, g_next, rel,
                               base_f + h_ci, h_ci);
            if (pushed < 0) {
                PyErr_NoMemory();
                goto expand_fail;
            }
            if (pushed) {
                generated++;
                open_size++;
            }
        }

        /* The four moves, in adjacency order. */
        for (Py_ssize_t a = gd->adj_off[ci]; a < gd->adj_off[ci + 1]; a++) {
            Py_ssize_t nci = (Py_ssize_t)gd->adj_nci[a];
            if (guarded) {
                blocked = probe_vertex(&probe, gd, nci);
                if (blocked < 0)
                    goto expand_fail;
                if (blocked)
                    continue;
                blocked = probe_edge(&probe, gd, ci, nci);
                if (blocked < 0)
                    goto expand_fail;
                if (blocked)
                    continue;
            }
            int64_t nh = heuristic_at(&s, nci, &herr);
            if (herr)
                goto expand_fail;
            int pushed = relax(&s, nxt_base + nci, g_next, rel,
                               base_f + nh, nh);
            if (pushed < 0) {
                PyErr_NoMemory();
                goto expand_fail;
            }
            if (pushed) {
                generated++;
                open_size++;
            }
        }
        probe_teardown(&probe);
    }

done:
    if (result_rel >= 0) {
        steps = reconstruct(&s, result_rel, start_time);
        if (steps == NULL)
            goto fail;
    }
    {
        PyObject *out = Py_BuildValue(
            "iOOLLL", status,
            steps ? steps : Py_None,
            finisher_tail ? finisher_tail : Py_None,
            (long long)expansions, (long long)generated,
            (long long)peak_open);
        Py_XDECREF(steps);
        Py_XDECREF(finisher_tail);
        steps = NULL;
        finisher_tail = NULL;
        /* cleanup below runs with `out` ready */
        if (use_flat) {
            Workspace *w = s.ws;
            for (Py_ssize_t i = 0; i <= (Py_ssize_t)s.hi_f
                     && i < w->fifo.len; i++) {
                w->fifo.b[i].len = 0;
                w->fifo.b[i].pos = 0;
            }
            w->active = 0;
            if (s.ws_is_temp)
                ws_reset(&temp_ws, 0);
        } else {
            hmap_free(&s.hm);
            if (s.deep)
                fbarray_free(&s.deepq);
            else
                barray_free_items(&s.hash_fifo);
        }
        if (have_hview)
            PyBuffer_Release(&hview);
        return out;
    }

expand_fail:
    probe_teardown(&probe);
fail:
    Py_XDECREF(steps);
    Py_XDECREF(finisher_tail);
    if (use_flat) {
        Workspace *w = s.ws;
        if (w != NULL) {
            for (Py_ssize_t i = 0; i <= (Py_ssize_t)s.hi_f
                     && i < w->fifo.len; i++) {
                w->fifo.b[i].len = 0;
                w->fifo.b[i].pos = 0;
            }
            w->active = 0;
        }
        if (s.ws_is_temp)
            ws_reset(&temp_ws, 0);
    } else {
        hmap_free(&s.hm);
        if (s.deep)
            fbarray_free(&s.deepq);
        else
            barray_free_items(&s.hash_fifo);
    }
    if (have_hview)
        PyBuffer_Release(&hview);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* Reservation mutation kernel (ABI 2).                                */
/*                                                                     */
/* Compiled twins of the pure-python reserve/unreserve/purge/audit     */
/* bodies in cdt.py and spatiotemporal_graph.py.  The same probe-mode  */
/* numbering as the search kernel selects the container layout; the    */
/* python wrappers keep their incremental counters by folding in the   */
/* delta tuples these entry points return.  Bit-identity with the      */
/* python bodies is load-bearing: the equivalence suite pins the       */
/* final container contents and every returned delta.                  */
/* ------------------------------------------------------------------ */

/* Mirrors of the PackedChain probe packing in reservation.py. */
#define MUT_VERTEX_TICK_SHIFT 32
#define MUT_EDGE_TICK_SHIFT 34
#define MUT_CHAIN_TICK_LIMIT ((int64_t)1 << 28)

/* DIR_CODES: packed-key delta of a cardinal move -> 2-bit code. */
static inline int
mut_dir_code(int64_t delta)
{
    if (delta == ((int64_t)1 << CELL_KEY_SHIFT))
        return 0;
    if (delta == -((int64_t)1 << CELL_KEY_SHIFT))
        return 1;
    if (delta == 1)
        return 2;
    if (delta == -1)
        return 3;
    return -1;
}

typedef struct {
    Py_ssize_t n;
    int64_t *t;
    int64_t *x;
    int64_t *y;
} StepArray;

static void
steps_free(StepArray *sa)
{
    PyMem_Free(sa->t);
    sa->t = sa->x = sa->y = NULL;
    sa->n = 0;
}

/* Load ``path.steps`` — a sequence of (t, x, y) int triples — into flat
 * arrays so the mutation loops never touch the tuple objects again. */
static int
steps_load(PyObject *steps_obj, StepArray *sa)
{
    sa->t = sa->x = sa->y = NULL;
    sa->n = 0;
    PyObject *fast = PySequence_Fast(steps_obj, "steps is not a sequence");
    if (fast == NULL)
        return -1;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(fast);
    if (n > 0) {
        int64_t *buf = PyMem_Malloc(3 * (size_t)n * sizeof(int64_t));
        if (buf == NULL) {
            Py_DECREF(fast);
            PyErr_NoMemory();
            return -1;
        }
        sa->t = buf;
        sa->x = buf + n;
        sa->y = buf + 2 * n;
        PyObject **items = PySequence_Fast_ITEMS(fast);
        for (Py_ssize_t i = 0; i < n; i++) {
            PyObject *step = PySequence_Fast(items[i],
                                             "step is not a sequence");
            if (step == NULL)
                goto fail;
            if (PySequence_Fast_GET_SIZE(step) != 3) {
                Py_DECREF(step);
                PyErr_SetString(PyExc_ValueError,
                                "step is not a (t, x, y) triple");
                goto fail;
            }
            PyObject **fields = PySequence_Fast_ITEMS(step);
            sa->t[i] = (int64_t)PyLong_AsLongLong(fields[0]);
            sa->x[i] = (int64_t)PyLong_AsLongLong(fields[1]);
            sa->y[i] = (int64_t)PyLong_AsLongLong(fields[2]);
            Py_DECREF(step);
            if (PyErr_Occurred())
                goto fail;
        }
    }
    Py_DECREF(fast);
    sa->n = n;
    return 0;
fail:
    Py_DECREF(fast);
    steps_free(sa);
    return -1;
}

/* dict[t] -> set, created on demand.  Adds ``key_obj``; *fresh reports a
 * genuinely new member, *created a newly materialised bucket. */
static int
set_bucket_add(PyObject *dict, PyObject *t_obj, PyObject *key_obj,
               int *fresh, int *created)
{
    *fresh = 0;
    *created = 0;
    PyObject *bucket = PyDict_GetItemWithError(dict, t_obj);
    if (bucket == NULL) {
        if (PyErr_Occurred())
            return -1;
        bucket = PySet_New(NULL);
        if (bucket == NULL)
            return -1;
        if (PyDict_SetItem(dict, t_obj, bucket) < 0) {
            Py_DECREF(bucket);
            return -1;
        }
        Py_DECREF(bucket);  /* the dict keeps it alive */
        *created = 1;
    }
    if (!PySet_Check(bucket)) {
        PyErr_SetString(PyExc_TypeError, "tick bucket is not a set");
        return -1;
    }
    Py_ssize_t before = PySet_GET_SIZE(bucket);
    if (PySet_Add(bucket, key_obj) < 0)
        return -1;
    *fresh = PySet_GET_SIZE(bucket) != before;
    return 0;
}

/* Discard ``key_obj`` from dict[t]'s set bucket, dropping the bucket
 * when it empties.  Returns 0 absent, 1 removed, 2 removed + bucket
 * deleted, -1 error. */
static int
set_bucket_discard(PyObject *dict, PyObject *t_obj, PyObject *key_obj)
{
    PyObject *bucket = PyDict_GetItemWithError(dict, t_obj);
    if (bucket == NULL)
        return PyErr_Occurred() ? -1 : 0;
    if (!PySet_Check(bucket)) {
        PyErr_SetString(PyExc_TypeError, "tick bucket is not a set");
        return -1;
    }
    int removed = PySet_Discard(bucket, key_obj);
    if (removed <= 0)
        return removed;
    if (PySet_GET_SIZE(bucket) == 0) {
        if (PyDict_DelItem(dict, t_obj) < 0)
            return -1;
        return 2;
    }
    return 1;
}

static int
probe_list_append(PyObject *list, int64_t value)
{
    PyObject *obj = PyLong_FromLongLong((long long)value);
    if (obj == NULL)
        return -1;
    int rc = PyList_Append(list, obj);
    Py_DECREF(obj);
    return rc;
}

/* Materialise a zeroed dense layer (bytearray of ``n`` cells) at
 * dict[t].  Returns a borrowed reference, NULL on error. */
static PyObject *
dense_layer_new(PyObject *dict, PyObject *t_obj, Py_ssize_t n)
{
    PyObject *layer = PyByteArray_FromStringAndSize(NULL, n);
    if (layer == NULL)
        return NULL;
    memset(PyByteArray_AS_STRING(layer), 0, (size_t)n);
    if (PyDict_SetItem(dict, t_obj, layer) < 0) {
        Py_DECREF(layer);
        return NULL;
    }
    Py_DECREF(layer);
    return layer;  /* borrowed: the dict holds it */
}

static int
mut_check_args(int mode, PyObject *vertex_obj, PyObject *edge_obj)
{
    if (mode < PROBE_CDT || mode > PROBE_TILED_DENSE) {
        PyErr_SetString(PyExc_ValueError, "unknown mutation mode");
        return -1;
    }
    if (!PyDict_Check(vertex_obj) || !PyDict_Check(edge_obj)) {
        PyErr_SetString(PyExc_TypeError,
                        "vertex/edge containers must be dicts");
        return -1;
    }
    return 0;
}

static PyObject *
stsearch_reserve_path(PyObject *self, PyObject *args)
{
    (void)self;
    int mode, tile_bits, collect;
    PyObject *vertex_obj, *edge_obj, *steps_obj;
    long long height_ll, block_cells_ll, horizon_ll, vfloor_ll, efloor_ll,
        high_ll;
    if (!PyArg_ParseTuple(args, "iOOiLLOLLLLp:reserve_path",
                          &mode, &vertex_obj, &edge_obj, &tile_bits,
                          &height_ll, &block_cells_ll, &steps_obj,
                          &horizon_ll, &vfloor_ll, &efloor_ll, &high_ll,
                          &collect))
        return NULL;
    if (mut_check_args(mode, vertex_obj, edge_obj) < 0)
        return NULL;
    int64_t height = (int64_t)height_ll;
    Py_ssize_t block_cells = (Py_ssize_t)block_cells_ll;
    int64_t horizon = (int64_t)horizon_ll;  /* < 0 means None */
    int64_t vfloor = (int64_t)vfloor_ll;
    int64_t efloor = (int64_t)efloor_ll;
    int64_t high = (int64_t)high_ll;

    StepArray sa;
    if (steps_load(steps_obj, &sa) < 0)
        return NULL;

    int64_t v_added = 0, vbuckets_added = 0, tiles_added = 0, e_added = 0;
    int poison = 0;
    PyObject *vprobes = NULL, *eprobes = NULL;
    if (collect) {
        vprobes = PyList_New(0);
        eprobes = vprobes ? PyList_New(0) : NULL;
        if (eprobes == NULL)
            goto fail;
    }

    int64_t mask = ((int64_t)1 << tile_bits) - 1;
    int64_t memo_tile_id = -1;
    int64_t memo_t = -1;
    int memo_valid = 0;
    PyObject *memo_tile = NULL;  /* borrowed */

    /* -- vertex pass (mirrors each table's reserve_path body) -------- */
    for (Py_ssize_t i = 0; i < sa.n; i++) {
        int64_t t = sa.t[i];
        if (horizon >= 0 && t > horizon)
            break;  /* timestamps are consecutive; the rest is later */
        if (t < vfloor)
            continue;
        int64_t x = sa.x[i], y = sa.y[i];
        int64_t key = (x << CELL_KEY_SHIFT) | y;
        PyObject *t_obj = PyLong_FromLongLong((long long)t);
        if (t_obj == NULL)
            goto fail;
        int fresh = 0, created = 0;
        switch (mode) {
        case PROBE_CDT:
        case PROBE_TILED_SET: {
            PyObject *target = vertex_obj;
            if (mode == PROBE_TILED_SET) {
                int64_t tile_id = tile_of_key(key, tile_bits);
                if (!memo_valid || tile_id != memo_tile_id) {
                    PyObject *tid =
                        PyLong_FromLongLong((long long)tile_id);
                    if (tid == NULL)
                        goto step_fail;
                    memo_tile = PyDict_GetItemWithError(vertex_obj, tid);
                    if (memo_tile == NULL) {
                        if (PyErr_Occurred()) {
                            Py_DECREF(tid);
                            goto step_fail;
                        }
                        memo_tile = PyDict_New();
                        if (memo_tile == NULL
                            || PyDict_SetItem(vertex_obj, tid,
                                              memo_tile) < 0) {
                            Py_XDECREF(memo_tile);
                            Py_DECREF(tid);
                            goto step_fail;
                        }
                        Py_DECREF(memo_tile);  /* borrowed via dict */
                        tiles_added++;
                    }
                    Py_DECREF(tid);
                    memo_tile_id = tile_id;
                    memo_valid = 1;
                }
                target = memo_tile;
            }
            PyObject *key_obj = PyLong_FromLongLong((long long)key);
            if (key_obj == NULL)
                goto step_fail;
            int rc = set_bucket_add(target, t_obj, key_obj,
                                    &fresh, &created);
            Py_DECREF(key_obj);
            if (rc < 0)
                goto step_fail;
            vbuckets_added += created;
            if (fresh) {
                v_added++;
                if (collect) {
                    if (t >= MUT_CHAIN_TICK_LIMIT) {
                        poison = 1;
                        collect = 0;
                        Py_CLEAR(vprobes);
                        Py_CLEAR(eprobes);
                    } else if (probe_list_append(
                                   vprobes,
                                   (t << MUT_VERTEX_TICK_SHIFT)
                                   | key) < 0) {
                        goto step_fail;
                    }
                }
            }
            break;
        }
        case PROBE_DENSE: {
            PyObject *layer;
            if (t > high) {
                /* densify the gap, exactly like _layer() */
                for (int64_t step = high + 1; step < t; step++) {
                    if (step < vfloor)
                        continue;
                    PyObject *s_obj =
                        PyLong_FromLongLong((long long)step);
                    if (s_obj == NULL)
                        goto step_fail;
                    PyObject *have =
                        PyDict_GetItemWithError(vertex_obj, s_obj);
                    if (have == NULL) {
                        if (PyErr_Occurred()
                            || dense_layer_new(vertex_obj, s_obj,
                                               block_cells) == NULL) {
                            Py_DECREF(s_obj);
                            goto step_fail;
                        }
                        vbuckets_added++;
                    }
                    Py_DECREF(s_obj);
                }
                layer = dense_layer_new(vertex_obj, t_obj, block_cells);
                if (layer == NULL)
                    goto step_fail;
                vbuckets_added++;
                high = t;
            } else {
                layer = PyDict_GetItemWithError(vertex_obj, t_obj);
                if (layer == NULL) {
                    if (PyErr_Occurred())
                        goto step_fail;
                    layer = dense_layer_new(vertex_obj, t_obj,
                                            block_cells);
                    if (layer == NULL)
                        goto step_fail;
                    vbuckets_added++;
                }
            }
            if (!PyByteArray_Check(layer)) {
                PyErr_SetString(PyExc_TypeError,
                                "dense layer is not a bytearray");
                goto step_fail;
            }
            Py_ssize_t ci = (Py_ssize_t)(x * height + y);
            if (ci < 0 || ci >= PyByteArray_GET_SIZE(layer)) {
                PyErr_SetString(PyExc_IndexError,
                                "cell index outside dense layer");
                goto step_fail;
            }
            PyByteArray_AS_STRING(layer)[ci] = 1;
            break;
        }
        case PROBE_TILED_DENSE: {
            int64_t tile_id = tile_of_key(key, tile_bits);
            if (!memo_valid || t != memo_t || tile_id != memo_tile_id) {
                PyObject *layer =
                    PyDict_GetItemWithError(vertex_obj, t_obj);
                if (layer == NULL) {
                    if (PyErr_Occurred())
                        goto step_fail;
                    layer = PyDict_New();
                    if (layer == NULL
                        || PyDict_SetItem(vertex_obj, t_obj,
                                          layer) < 0) {
                        Py_XDECREF(layer);
                        goto step_fail;
                    }
                    Py_DECREF(layer);  /* borrowed via dict */
                }
                PyObject *tid = PyLong_FromLongLong((long long)tile_id);
                if (tid == NULL)
                    goto step_fail;
                memo_tile = PyDict_GetItemWithError(layer, tid);
                if (memo_tile == NULL) {
                    if (PyErr_Occurred()) {
                        Py_DECREF(tid);
                        goto step_fail;
                    }
                    memo_tile = dense_layer_new(layer, tid, block_cells);
                    if (memo_tile == NULL) {
                        Py_DECREF(tid);
                        goto step_fail;
                    }
                    tiles_added++;
                }
                Py_DECREF(tid);
                memo_t = t;
                memo_tile_id = tile_id;
                memo_valid = 1;
            }
            if (!PyByteArray_Check(memo_tile)) {
                PyErr_SetString(PyExc_TypeError,
                                "tile block is not a bytearray");
                goto step_fail;
            }
            Py_ssize_t slot =
                (Py_ssize_t)(((x & mask) << tile_bits) | (y & mask));
            if (slot < 0 || slot >= PyByteArray_GET_SIZE(memo_tile)) {
                PyErr_SetString(PyExc_IndexError,
                                "slot outside tile block");
                goto step_fail;
            }
            PyByteArray_AS_STRING(memo_tile)[slot] = 1;
            break;
        }
        }
        Py_DECREF(t_obj);
        continue;
step_fail:
        Py_DECREF(t_obj);
        goto fail;
    }

    /* -- edge pass (mirrors _EdgeMixin._reserve_edges) --------------- */
    for (Py_ssize_t i = 0; i + 1 < sa.n; i++) {
        int64_t t0 = sa.t[i];
        if (horizon >= 0 && t0 >= horizon)
            break;  /* timestamps are consecutive; the rest is later */
        int64_t x0 = sa.x[i], y0 = sa.y[i];
        int64_t x1 = sa.x[i + 1], y1 = sa.y[i + 1];
        if (t0 < efloor || (x0 == x1 && y0 == y1))
            continue;
        int64_t key0 = (x0 << CELL_KEY_SHIFT) | y0;
        int64_t key1 = (x1 << CELL_KEY_SHIFT) | y1;
        PyObject *t_obj = PyLong_FromLongLong((long long)t0);
        if (t_obj == NULL)
            goto fail;
        PyObject *key_obj =
            PyLong_FromLongLong((long long)((key0 << 32) | key1));
        if (key_obj == NULL) {
            Py_DECREF(t_obj);
            goto fail;
        }
        int fresh, created;
        int rc = set_bucket_add(edge_obj, t_obj, key_obj,
                                &fresh, &created);
        Py_DECREF(key_obj);
        Py_DECREF(t_obj);
        if (rc < 0)
            goto fail;
        if (fresh) {
            e_added++;
            if (collect) {
                int code = mut_dir_code(key1 - key0);
                if (code < 0 || t0 >= MUT_CHAIN_TICK_LIMIT) {
                    poison = 1;
                    collect = 0;
                    Py_CLEAR(vprobes);
                    Py_CLEAR(eprobes);
                } else if (probe_list_append(
                               eprobes,
                               (t0 << MUT_EDGE_TICK_SHIFT)
                               | (key0 << 2) | code) < 0) {
                    goto fail;
                }
            }
        }
    }
    steps_free(&sa);
    PyObject *out = Py_BuildValue(
        "LLLLLOOi",
        (long long)v_added, (long long)vbuckets_added,
        (long long)tiles_added, (long long)e_added, (long long)high,
        vprobes ? vprobes : Py_None, eprobes ? eprobes : Py_None,
        poison);
    Py_XDECREF(vprobes);
    Py_XDECREF(eprobes);
    return out;
fail:
    steps_free(&sa);
    Py_XDECREF(vprobes);
    Py_XDECREF(eprobes);
    return NULL;
}

static PyObject *
stsearch_unreserve_path(PyObject *self, PyObject *args)
{
    (void)self;
    int mode, tile_bits;
    PyObject *vertex_obj, *edge_obj, *steps_obj;
    long long height_ll, horizon_ll, vfloor_ll, efloor_ll;
    if (!PyArg_ParseTuple(args, "iOOiLOLLL:unreserve_path",
                          &mode, &vertex_obj, &edge_obj, &tile_bits,
                          &height_ll, &steps_obj, &horizon_ll,
                          &vfloor_ll, &efloor_ll))
        return NULL;
    if (mut_check_args(mode, vertex_obj, edge_obj) < 0)
        return NULL;
    int64_t height = (int64_t)height_ll;
    int64_t horizon = (int64_t)horizon_ll;  /* < 0 means None */
    int64_t vfloor = (int64_t)vfloor_ll;
    int64_t efloor = (int64_t)efloor_ll;

    StepArray sa;
    if (steps_load(steps_obj, &sa) < 0)
        return NULL;

    int64_t v_removed = 0, vbuckets_removed = 0, tiles_removed = 0;
    int64_t e_removed = 0;
    int64_t mask = ((int64_t)1 << tile_bits) - 1;

    /* -- vertex pass -------------------------------------------------- */
    for (Py_ssize_t i = 0; i < sa.n; i++) {
        int64_t t = sa.t[i];
        if (horizon >= 0 && t > horizon)
            break;
        if (t < vfloor)
            continue;
        int64_t x = sa.x[i], y = sa.y[i];
        int64_t key = (x << CELL_KEY_SHIFT) | y;
        PyObject *t_obj = PyLong_FromLongLong((long long)t);
        if (t_obj == NULL)
            goto fail;
        switch (mode) {
        case PROBE_CDT:
        case PROBE_TILED_SET: {
            PyObject *target = vertex_obj;
            PyObject *tid = NULL;
            if (mode == PROBE_TILED_SET) {
                tid = PyLong_FromLongLong(
                    (long long)tile_of_key(key, tile_bits));
                if (tid == NULL)
                    goto ustep_fail;
                target = PyDict_GetItemWithError(vertex_obj, tid);
                if (target == NULL) {
                    Py_DECREF(tid);
                    if (PyErr_Occurred())
                        goto ustep_fail;
                    break;  /* tile never materialised: nothing stored */
                }
            }
            PyObject *key_obj = PyLong_FromLongLong((long long)key);
            if (key_obj == NULL) {
                Py_XDECREF(tid);
                goto ustep_fail;
            }
            int rc = set_bucket_discard(target, t_obj, key_obj);
            Py_DECREF(key_obj);
            if (rc < 0) {
                Py_XDECREF(tid);
                goto ustep_fail;
            }
            if (rc >= 1)
                v_removed++;
            if (rc == 2) {
                vbuckets_removed++;
                if (mode == PROBE_TILED_SET
                    && PyDict_GET_SIZE(target) == 0) {
                    if (PyDict_DelItem(vertex_obj, tid) < 0) {
                        Py_DECREF(tid);
                        goto ustep_fail;
                    }
                    tiles_removed++;
                }
            }
            Py_XDECREF(tid);
            break;
        }
        case PROBE_DENSE: {
            PyObject *layer = PyDict_GetItemWithError(vertex_obj, t_obj);
            if (layer == NULL) {
                if (PyErr_Occurred())
                    goto ustep_fail;
                break;
            }
            if (!PyByteArray_Check(layer)) {
                PyErr_SetString(PyExc_TypeError,
                                "dense layer is not a bytearray");
                goto ustep_fail;
            }
            Py_ssize_t ci = (Py_ssize_t)(x * height + y);
            if (ci < 0 || ci >= PyByteArray_GET_SIZE(layer)) {
                PyErr_SetString(PyExc_IndexError,
                                "cell index outside dense layer");
                goto ustep_fail;
            }
            char *bytes = PyByteArray_AS_STRING(layer);
            if (bytes[ci]) {
                bytes[ci] = 0;
                v_removed++;
            }
            break;
        }
        case PROBE_TILED_DENSE: {
            PyObject *layer = PyDict_GetItemWithError(vertex_obj, t_obj);
            if (layer == NULL) {
                if (PyErr_Occurred())
                    goto ustep_fail;
                break;
            }
            PyObject *tid = PyLong_FromLongLong(
                (long long)tile_of_key(key, tile_bits));
            if (tid == NULL)
                goto ustep_fail;
            PyObject *tile = PyDict_GetItemWithError(layer, tid);
            Py_DECREF(tid);
            if (tile == NULL) {
                if (PyErr_Occurred())
                    goto ustep_fail;
                break;
            }
            if (!PyByteArray_Check(tile)) {
                PyErr_SetString(PyExc_TypeError,
                                "tile block is not a bytearray");
                goto ustep_fail;
            }
            Py_ssize_t slot =
                (Py_ssize_t)(((x & mask) << tile_bits) | (y & mask));
            if (slot < 0 || slot >= PyByteArray_GET_SIZE(tile)) {
                PyErr_SetString(PyExc_IndexError,
                                "slot outside tile block");
                goto ustep_fail;
            }
            char *bytes = PyByteArray_AS_STRING(tile);
            if (bytes[slot]) {
                bytes[slot] = 0;
                v_removed++;
            }
            break;
        }
        }
        Py_DECREF(t_obj);
        continue;
ustep_fail:
        Py_DECREF(t_obj);
        goto fail;
    }

    /* -- edge pass (same bounds as _reserve_edges) -------------------- */
    for (Py_ssize_t i = 0; i + 1 < sa.n; i++) {
        int64_t t0 = sa.t[i];
        if (horizon >= 0 && t0 >= horizon)
            break;
        int64_t x0 = sa.x[i], y0 = sa.y[i];
        int64_t x1 = sa.x[i + 1], y1 = sa.y[i + 1];
        if (t0 < efloor || (x0 == x1 && y0 == y1))
            continue;
        int64_t key0 = (x0 << CELL_KEY_SHIFT) | y0;
        int64_t key1 = (x1 << CELL_KEY_SHIFT) | y1;
        PyObject *t_obj = PyLong_FromLongLong((long long)t0);
        if (t_obj == NULL)
            goto fail;
        PyObject *key_obj =
            PyLong_FromLongLong((long long)((key0 << 32) | key1));
        if (key_obj == NULL) {
            Py_DECREF(t_obj);
            goto fail;
        }
        int rc = set_bucket_discard(edge_obj, t_obj, key_obj);
        Py_DECREF(key_obj);
        Py_DECREF(t_obj);
        if (rc < 0)
            goto fail;
        if (rc >= 1)
            e_removed++;
    }
    steps_free(&sa);
    return Py_BuildValue("LLLL",
                         (long long)v_removed, (long long)vbuckets_removed,
                         (long long)tiles_removed, (long long)e_removed);
fail:
    steps_free(&sa);
    return NULL;
}

/* How purge_tick_dict tallies each removed bucket's contents. */
typedef enum {
    PURGE_COUNT_SET = 0,     /* value is a set: count its members */
    PURGE_COUNT_BUCKET = 1,  /* count one per removed tick */
    PURGE_COUNT_DICT = 2,    /* value is a dict: count its members */
} PurgeCount;

/* Remove every tick < t from a {tick: container} dict.  ``floor`` is
 * the caller's known lower bound on live ticks; mirrors _stale_ticks()
 * in choosing a range walk or a key scan.  Adds the removed-content
 * tally to *items and the removed-bucket count to *buckets. */
static int
purge_tick_dict(PyObject *dict, int64_t floor, int64_t t, PurgeCount kind,
                int64_t *items, int64_t *buckets)
{
    PyObject *stale = NULL;
    if (t - floor <= (int64_t)PyDict_GET_SIZE(dict)) {
        for (int64_t tick = floor; tick < t; tick++) {
            PyObject *t_obj = PyLong_FromLongLong((long long)tick);
            if (t_obj == NULL)
                return -1;
            PyObject *value = PyDict_GetItemWithError(dict, t_obj);
            if (value == NULL) {
                Py_DECREF(t_obj);
                if (PyErr_Occurred())
                    return -1;
                continue;
            }
            switch (kind) {
            case PURGE_COUNT_SET:
                *items += PySet_Check(value) ? PySet_GET_SIZE(value) : 0;
                break;
            case PURGE_COUNT_BUCKET:
                *items += 1;
                break;
            case PURGE_COUNT_DICT:
                *items += PyDict_Check(value) ? PyDict_GET_SIZE(value) : 0;
                break;
            }
            (*buckets)++;
            int rc = PyDict_DelItem(dict, t_obj);
            Py_DECREF(t_obj);
            if (rc < 0)
                return -1;
        }
        return 0;
    }
    /* Key scan: collect stale ticks first, never mutate mid-iteration. */
    stale = PyList_New(0);
    if (stale == NULL)
        return -1;
    PyObject *key, *value;
    Py_ssize_t pos = 0;
    while (PyDict_Next(dict, &pos, &key, &value)) {
        int64_t tick = (int64_t)PyLong_AsLongLong(key);
        if (tick == -1 && PyErr_Occurred())
            goto fail;
        if (tick < t && PyList_Append(stale, key) < 0)
            goto fail;
    }
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(stale); i++) {
        PyObject *t_obj = PyList_GET_ITEM(stale, i);
        PyObject *v = PyDict_GetItemWithError(dict, t_obj);
        if (v == NULL) {
            if (PyErr_Occurred())
                goto fail;
            continue;
        }
        switch (kind) {
        case PURGE_COUNT_SET:
            *items += PySet_Check(v) ? PySet_GET_SIZE(v) : 0;
            break;
        case PURGE_COUNT_BUCKET:
            *items += 1;
            break;
        case PURGE_COUNT_DICT:
            *items += PyDict_Check(v) ? PyDict_GET_SIZE(v) : 0;
            break;
        }
        (*buckets)++;
        if (PyDict_DelItem(dict, t_obj) < 0)
            goto fail;
    }
    Py_DECREF(stale);
    return 0;
fail:
    Py_XDECREF(stale);
    return -1;
}

static PyObject *
stsearch_purge_before(PyObject *self, PyObject *args)
{
    (void)self;
    int mode, tile_bits;
    PyObject *vertex_obj, *edge_obj;
    long long t_ll, vfloor_ll, efloor_ll;
    if (!PyArg_ParseTuple(args, "iOOiLLL:purge_before",
                          &mode, &vertex_obj, &edge_obj, &tile_bits,
                          &t_ll, &vfloor_ll, &efloor_ll))
        return NULL;
    (void)tile_bits;
    if (mut_check_args(mode, vertex_obj, edge_obj) < 0)
        return NULL;
    int64_t t = (int64_t)t_ll;
    int64_t vfloor = (int64_t)vfloor_ll;
    int64_t efloor = (int64_t)efloor_ll;

    int64_t v_removed = 0, vbuckets_removed = 0, tiles_removed = 0;
    int64_t e_removed = 0, e_buckets = 0;

    if (t > vfloor) {
        switch (mode) {
        case PROBE_CDT:
            if (purge_tick_dict(vertex_obj, vfloor, t, PURGE_COUNT_SET,
                                &v_removed, &vbuckets_removed) < 0)
                return NULL;
            break;
        case PROBE_DENSE:
            if (purge_tick_dict(vertex_obj, vfloor, t, PURGE_COUNT_BUCKET,
                                &v_removed, &vbuckets_removed) < 0)
                return NULL;
            break;
        case PROBE_TILED_SET: {
            /* Tiles may empty and be deleted: snapshot their ids first. */
            PyObject *tids = PyDict_Keys(vertex_obj);
            if (tids == NULL)
                return NULL;
            for (Py_ssize_t i = 0; i < PyList_GET_SIZE(tids); i++) {
                PyObject *tid = PyList_GET_ITEM(tids, i);
                PyObject *tile = PyDict_GetItemWithError(vertex_obj, tid);
                if (tile == NULL) {
                    if (PyErr_Occurred()) {
                        Py_DECREF(tids);
                        return NULL;
                    }
                    continue;
                }
                if (!PyDict_Check(tile)) {
                    PyErr_SetString(PyExc_TypeError,
                                    "tile is not a dict");
                    Py_DECREF(tids);
                    return NULL;
                }
                if (purge_tick_dict(tile, vfloor, t, PURGE_COUNT_SET,
                                    &v_removed, &vbuckets_removed) < 0) {
                    Py_DECREF(tids);
                    return NULL;
                }
                if (PyDict_GET_SIZE(tile) == 0) {
                    if (PyDict_DelItem(vertex_obj, tid) < 0) {
                        Py_DECREF(tids);
                        return NULL;
                    }
                    tiles_removed++;
                }
            }
            Py_DECREF(tids);
            break;
        }
        case PROBE_TILED_DENSE:
            if (purge_tick_dict(vertex_obj, vfloor, t, PURGE_COUNT_DICT,
                                &tiles_removed, &vbuckets_removed) < 0)
                return NULL;
            break;
        }
    }
    if (t > efloor
        && purge_tick_dict(edge_obj, efloor, t, PURGE_COUNT_SET,
                           &e_removed, &e_buckets) < 0)
        return NULL;
    return Py_BuildValue("LLLL",
                         (long long)v_removed, (long long)vbuckets_removed,
                         (long long)tiles_removed, (long long)e_removed);
}

static PyObject *
stsearch_audit_path(PyObject *self, PyObject *args)
{
    (void)self;
    int mode, tile_bits;
    PyObject *vertex_obj, *edge_obj, *steps_obj;
    long long height_ll;
    if (!PyArg_ParseTuple(args, "iOOiLO:audit_path",
                          &mode, &vertex_obj, &edge_obj, &tile_bits,
                          &height_ll, &steps_obj))
        return NULL;
    if (mut_check_args(mode, vertex_obj, edge_obj) < 0)
        return NULL;
    int64_t height = (int64_t)height_ll;
    int64_t mask = ((int64_t)1 << tile_bits) - 1;

    StepArray sa;
    if (steps_load(steps_obj, &sa) < 0)
        return NULL;

    int blocked = 0;
    int64_t memo_tile_id = -1;
    int memo_valid = 0;
    PyObject *memo_tile = NULL;  /* borrowed; audits never mutate */

    for (Py_ssize_t i = 1; i < sa.n && !blocked; i++) {
        int64_t t0 = sa.t[i - 1];
        int64_t x0 = sa.x[i - 1], y0 = sa.y[i - 1];
        int64_t t1 = sa.t[i];
        int64_t x1 = sa.x[i], y1 = sa.y[i];
        int64_t key1 = (x1 << CELL_KEY_SHIFT) | y1;
        PyObject *t1_obj = PyLong_FromLongLong((long long)t1);
        if (t1_obj == NULL)
            goto fail;
        switch (mode) {
        case PROBE_CDT:
        case PROBE_TILED_SET: {
            PyObject *target = vertex_obj;
            if (mode == PROBE_TILED_SET) {
                int64_t tile_id = tile_of_key(key1, tile_bits);
                if (!memo_valid || tile_id != memo_tile_id) {
                    PyObject *tid =
                        PyLong_FromLongLong((long long)tile_id);
                    if (tid == NULL)
                        goto astep_fail;
                    memo_tile = PyDict_GetItemWithError(vertex_obj, tid);
                    Py_DECREF(tid);
                    if (memo_tile == NULL && PyErr_Occurred())
                        goto astep_fail;
                    memo_tile_id = tile_id;
                    memo_valid = 1;
                }
                target = memo_tile;
                if (target == NULL) {
                    /* tile never materialised: vertex is free */
                    break;
                }
            }
            PyObject *bucket = PyDict_GetItemWithError(target, t1_obj);
            if (bucket == NULL) {
                if (PyErr_Occurred())
                    goto astep_fail;
                break;
            }
            PyObject *key_obj = PyLong_FromLongLong((long long)key1);
            if (key_obj == NULL)
                goto astep_fail;
            int hit = PySet_Contains(bucket, key_obj);
            Py_DECREF(key_obj);
            if (hit < 0)
                goto astep_fail;
            blocked = hit;
            break;
        }
        case PROBE_DENSE: {
            PyObject *layer = PyDict_GetItemWithError(vertex_obj, t1_obj);
            if (layer == NULL) {
                if (PyErr_Occurred())
                    goto astep_fail;
                break;
            }
            if (!PyByteArray_Check(layer)) {
                PyErr_SetString(PyExc_TypeError,
                                "dense layer is not a bytearray");
                goto astep_fail;
            }
            Py_ssize_t ci = (Py_ssize_t)(x1 * height + y1);
            if (ci < 0 || ci >= PyByteArray_GET_SIZE(layer)) {
                PyErr_SetString(PyExc_IndexError,
                                "cell index outside dense layer");
                goto astep_fail;
            }
            blocked = PyByteArray_AS_STRING(layer)[ci] != 0;
            break;
        }
        case PROBE_TILED_DENSE: {
            PyObject *layer = PyDict_GetItemWithError(vertex_obj, t1_obj);
            if (layer == NULL) {
                if (PyErr_Occurred())
                    goto astep_fail;
                break;
            }
            PyObject *tid = PyLong_FromLongLong(
                (long long)tile_of_key(key1, tile_bits));
            if (tid == NULL)
                goto astep_fail;
            PyObject *tile = PyDict_GetItemWithError(layer, tid);
            Py_DECREF(tid);
            if (tile == NULL) {
                if (PyErr_Occurred())
                    goto astep_fail;
                break;
            }
            if (!PyByteArray_Check(tile)) {
                PyErr_SetString(PyExc_TypeError,
                                "tile block is not a bytearray");
                goto astep_fail;
            }
            Py_ssize_t slot =
                (Py_ssize_t)(((x1 & mask) << tile_bits) | (y1 & mask));
            if (slot < 0 || slot >= PyByteArray_GET_SIZE(tile)) {
                PyErr_SetString(PyExc_IndexError,
                                "slot outside tile block");
                goto astep_fail;
            }
            blocked = PyByteArray_AS_STRING(tile)[slot] != 0;
            break;
        }
        }
        if (!blocked && (x0 != x1 || y0 != y1)) {
            /* swap probe: the stored opposing traversal, reversed key */
            PyObject *t0_obj = PyLong_FromLongLong((long long)t0);
            if (t0_obj == NULL)
                goto astep_fail;
            PyObject *swaps = PyDict_GetItemWithError(edge_obj, t0_obj);
            Py_DECREF(t0_obj);
            if (swaps == NULL) {
                if (PyErr_Occurred())
                    goto astep_fail;
            } else {
                int64_t key0 = (x0 << CELL_KEY_SHIFT) | y0;
                PyObject *probe = PyLong_FromLongLong(
                    (long long)((key1 << 32) | key0));
                if (probe == NULL)
                    goto astep_fail;
                int hit = PySet_Contains(swaps, probe);
                Py_DECREF(probe);
                if (hit < 0)
                    goto astep_fail;
                blocked = hit;
            }
        }
        Py_DECREF(t1_obj);
        continue;
astep_fail:
        Py_DECREF(t1_obj);
        goto fail;
    }
    steps_free(&sa);
    return PyBool_FromLong(!blocked);
fail:
    steps_free(&sa);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* Field + tier-0 kernel (ABI 3).                                      */
/*                                                                     */
/* bfs_fill floods true shortest-path distances over the prepared      */
/* adjacency table straight into a caller-owned int32 buffer — the     */
/* backing store of an eager HeuristicField (and, shared, of the       */
/* multiprocessing field arena).  tier0_leg fuses the free-flow greedy */
/* descent (free_flow._walk, both regimes) with the bulk reservation   */
/* audit (audit_chain semantics), answering a conflict-free leg in one */
/* call.  Bit-identity with the python bodies is pinned by the         */
/* equivalence suites.                                                 */
/* ------------------------------------------------------------------ */

static PyObject *
stsearch_bfs_fill(PyObject *self, PyObject *args)
{
    (void)self;
    PyObject *capsule, *buf_obj;
    Py_ssize_t source_ci;
    long long unreached_ll;
    if (!PyArg_ParseTuple(args, "OnOL:bfs_fill",
                          &capsule, &source_ci, &buf_obj, &unreached_ll))
        return NULL;
    GridData *gd = PyCapsule_GetPointer(capsule, GRID_CAPSULE_NAME);
    if (gd == NULL)
        return NULL;
    Py_buffer view;
    if (PyObject_GetBuffer(buf_obj, &view, PyBUF_WRITABLE) < 0)
        return NULL;
    if (view.len != (Py_ssize_t)(gd->n_cells * sizeof(int32_t))) {
        PyBuffer_Release(&view);
        PyErr_SetString(PyExc_ValueError,
                        "distance buffer must hold n_cells int32 values");
        return NULL;
    }
    if (source_ci < 0 || source_ci >= gd->n_cells) {
        PyBuffer_Release(&view);
        PyErr_SetString(PyExc_IndexError, "source cell outside grid");
        return NULL;
    }
    int32_t un = (int32_t)unreached_ll;
    if (un >= 0 && (Py_ssize_t)un < gd->n_cells) {
        /* a real distance is at most n_cells - 1; the sentinel must not
         * collide with one or the visited test below misfires */
        PyBuffer_Release(&view);
        PyErr_SetString(PyExc_ValueError,
                        "unreached sentinel collides with a distance");
        return NULL;
    }
    int32_t *dist = (int32_t *)view.buf;
    for (Py_ssize_t i = 0; i < gd->n_cells; i++)
        dist[i] = un;
    int32_t *queue = PyMem_Malloc((gd->n_cells ? gd->n_cells : 1)
                                  * sizeof(int32_t));
    if (queue == NULL) {
        PyBuffer_Release(&view);
        return PyErr_NoMemory();
    }
    Py_ssize_t head = 0, tail = 0;
    dist[source_ci] = 0;
    queue[tail++] = (int32_t)source_ci;
    while (head < tail) {
        Py_ssize_t ci = (Py_ssize_t)queue[head++];
        int32_t d_next = dist[ci] + 1;
        for (Py_ssize_t a = gd->adj_off[ci]; a < gd->adj_off[ci + 1]; a++) {
            Py_ssize_t nci = (Py_ssize_t)gd->adj_nci[a];
            if (dist[nci] == un) {
                dist[nci] = d_next;
                queue[tail++] = (int32_t)nci;
            }
        }
    }
    PyMem_Free(queue);
    PyBuffer_Release(&view);
    Py_RETURN_NONE;
}

/* Build [(x, y), ...] for tier0_leg's cells payloads. */
static PyObject *
tier0_cells_list(const GridData *gd, const int32_t *indices, int64_t k)
{
    PyObject *cells = PyList_New((Py_ssize_t)(k + 1));
    if (cells == NULL)
        return NULL;
    for (int64_t i = 0; i <= k; i++) {
        int64_t ci = (int64_t)indices[i];
        PyObject *cell = Py_BuildValue("(LL)",
                                       (long long)(ci / gd->height),
                                       (long long)(ci % gd->height));
        if (cell == NULL) {
            Py_DECREF(cells);
            return NULL;
        }
        PyList_SET_ITEM(cells, (Py_ssize_t)i, cell);
    }
    return cells;
}

static PyObject *
stsearch_tier0_leg(PyObject *self, PyObject *args)
{
    (void)self;
    int mode, tile_bits, h_mode;
    PyObject *capsule, *vertex_obj, *edge_obj, *h_arg;
    Py_ssize_t source_ci, goal_ci;
    long long start_t_ll, trigger_ll;
    if (!PyArg_ParseTuple(args, "OiOOiiOnnLL:tier0_leg",
                          &capsule, &mode, &vertex_obj, &edge_obj,
                          &tile_bits, &h_mode, &h_arg, &source_ci,
                          &goal_ci, &start_t_ll, &trigger_ll))
        return NULL;
    GridData *gd = PyCapsule_GetPointer(capsule, GRID_CAPSULE_NAME);
    if (gd == NULL)
        return NULL;
    if (mut_check_args(mode, vertex_obj, edge_obj) < 0)
        return NULL;
    if (source_ci < 0 || source_ci >= gd->n_cells
            || goal_ci < 0 || goal_ci >= gd->n_cells) {
        PyErr_SetString(PyExc_IndexError, "cell outside grid");
        return NULL;
    }
    int64_t start_t = (int64_t)start_t_ll;
    int64_t trigger = (int64_t)trigger_ll;
    int64_t height = gd->height;

    Py_buffer hview;
    const int32_t *hbuf = NULL;
    int have_hview = 0;
    if (h_mode == 2) {
        if (PyObject_GetBuffer(h_arg, &hview, PyBUF_SIMPLE) < 0)
            return NULL;
        if (hview.len != (Py_ssize_t)(gd->n_cells * sizeof(int32_t))) {
            PyBuffer_Release(&hview);
            PyErr_SetString(PyExc_TypeError,
                            "h buffer must hold n_cells int32 values");
            return NULL;
        }
        hbuf = (const int32_t *)hview.buf;
        have_hview = 1;
    } else if (h_mode != 1) {
        PyErr_SetString(PyExc_ValueError,
                        "tier0_leg h_mode must be 1 or 2");
        return NULL;
    }

    /* -- descent extraction (mirrors free_flow._walk) ----------------- */
    int64_t k;
    int32_t *indices = NULL;
    if (h_mode == 1) {
        /* closed form on the lazy Manhattan field: all of x, then all
         * of y (see _walk_manhattan — unobstructed floors only) */
        int64_t sx = (int64_t)source_ci / height;
        int64_t sy = (int64_t)source_ci % height;
        int64_t gx = (int64_t)goal_ci / height;
        int64_t gy = (int64_t)goal_ci % height;
        int64_t dx = sx > gx ? sx - gx : gx - sx;
        int64_t dy = sy > gy ? sy - gy : gy - sy;
        k = dx + dy;
        indices = PyMem_Malloc((size_t)(k + 1) * sizeof(int32_t));
        if (indices == NULL)
            return PyErr_NoMemory();
        Py_ssize_t at = 0;
        int64_t xstep = gx >= sx ? 1 : -1;
        for (int64_t x = sx; x != gx; x += xstep)
            indices[at++] = (int32_t)(x * height + sy);
        int64_t ystep = gy >= sy ? 1 : -1;
        for (int64_t y = sy; y != gy; y += ystep)
            indices[at++] = (int32_t)(gx * height + y);
        indices[at++] = (int32_t)goal_ci;
    } else {
        int64_t h = (int64_t)hbuf[source_ci];
        if (h > (int64_t)gd->n_cells) {
            /* the field's unreachable marker */
            PyBuffer_Release(&hview);
            return Py_BuildValue("(iOL)", 0, Py_None, 0LL);
        }
        k = h;
        indices = PyMem_Malloc((size_t)(k + 1) * sizeof(int32_t));
        if (indices == NULL) {
            PyBuffer_Release(&hview);
            return PyErr_NoMemory();
        }
        indices[0] = (int32_t)source_ci;
        Py_ssize_t ci = source_ci;
        for (int64_t i = 1; i <= k; i++) {
            h -= 1;
            Py_ssize_t next = -1;
            for (Py_ssize_t a = gd->adj_off[ci]; a < gd->adj_off[ci + 1];
                    a++) {
                Py_ssize_t nci = (Py_ssize_t)gd->adj_nci[a];
                if ((int64_t)hbuf[nci] == h) {
                    next = nci;
                    break;
                }
            }
            if (next < 0) {
                /* exact fields always descend; mirror _walk_generic's
                 * defensive None */
                PyMem_Free(indices);
                PyBuffer_Release(&hview);
                return Py_BuildValue("(iOL)", 0, Py_None, 0LL);
            }
            ci = next;
            indices[i] = (int32_t)ci;
        }
    }

    /* -- bulk audit (audit_chain semantics: vertex at arrival tick,
     *    reversed swap probe at departure tick, first hit wins) ------- */
    int use_fin = trigger > 0 && k > 0;
    int64_t j = 0;
    if (use_fin)
        j = k > trigger ? k - trigger : 0;
    int64_t limit = use_fin ? j : k;
    int64_t mask = ((int64_t)1 << tile_bits) - 1;
    int blocked = 0;
    int64_t memo_tile_id = -1;
    int memo_valid = 0;
    PyObject *memo_tile = NULL;  /* borrowed; audits never mutate */

    for (int64_t i = 1; i <= limit && !blocked; i++) {
        Py_ssize_t ci = (Py_ssize_t)indices[i];
        int64_t key1 = gd->cell_keys[ci];
        PyObject *t1_obj = PyLong_FromLongLong((long long)(start_t + i));
        if (t1_obj == NULL)
            goto fail;
        switch (mode) {
        case PROBE_CDT:
        case PROBE_TILED_SET: {
            PyObject *target = vertex_obj;
            if (mode == PROBE_TILED_SET) {
                int64_t tile_id = tile_of_key(key1, tile_bits);
                if (!memo_valid || tile_id != memo_tile_id) {
                    PyObject *tid =
                        PyLong_FromLongLong((long long)tile_id);
                    if (tid == NULL)
                        goto lstep_fail;
                    memo_tile = PyDict_GetItemWithError(vertex_obj, tid);
                    Py_DECREF(tid);
                    if (memo_tile == NULL && PyErr_Occurred())
                        goto lstep_fail;
                    memo_tile_id = tile_id;
                    memo_valid = 1;
                }
                target = memo_tile;
                if (target == NULL)
                    break;  /* tile never materialised: vertex is free */
            }
            PyObject *bucket = PyDict_GetItemWithError(target, t1_obj);
            if (bucket == NULL) {
                if (PyErr_Occurred())
                    goto lstep_fail;
                break;
            }
            int hit = PySet_Contains(bucket, gd->key_objs[ci]);
            if (hit < 0)
                goto lstep_fail;
            blocked = hit;
            break;
        }
        case PROBE_DENSE: {
            PyObject *layer = PyDict_GetItemWithError(vertex_obj, t1_obj);
            if (layer == NULL) {
                if (PyErr_Occurred())
                    goto lstep_fail;
                break;
            }
            if (!PyByteArray_Check(layer)) {
                PyErr_SetString(PyExc_TypeError,
                                "dense layer is not a bytearray");
                goto lstep_fail;
            }
            if (ci >= PyByteArray_GET_SIZE(layer)) {
                PyErr_SetString(PyExc_IndexError,
                                "cell index outside dense layer");
                goto lstep_fail;
            }
            blocked = PyByteArray_AS_STRING(layer)[ci] != 0;
            break;
        }
        case PROBE_TILED_DENSE: {
            PyObject *layer = PyDict_GetItemWithError(vertex_obj, t1_obj);
            if (layer == NULL) {
                if (PyErr_Occurred())
                    goto lstep_fail;
                break;
            }
            PyObject *tid = PyLong_FromLongLong(
                (long long)tile_of_key(key1, tile_bits));
            if (tid == NULL)
                goto lstep_fail;
            PyObject *tile = PyDict_GetItemWithError(layer, tid);
            Py_DECREF(tid);
            if (tile == NULL) {
                if (PyErr_Occurred())
                    goto lstep_fail;
                break;
            }
            if (!PyByteArray_Check(tile)) {
                PyErr_SetString(PyExc_TypeError,
                                "tile block is not a bytearray");
                goto lstep_fail;
            }
            int64_t x1 = key1 >> CELL_KEY_SHIFT;
            int64_t y1 = key1 & CELL_KEY_MASK;
            Py_ssize_t slot =
                (Py_ssize_t)(((x1 & mask) << tile_bits) | (y1 & mask));
            if (slot < 0 || slot >= PyByteArray_GET_SIZE(tile)) {
                PyErr_SetString(PyExc_IndexError,
                                "slot outside tile block");
                goto lstep_fail;
            }
            blocked = PyByteArray_AS_STRING(tile)[slot] != 0;
            break;
        }
        }
        if (!blocked) {
            /* a descent never waits, so every step is a move */
            PyObject *t0_obj = PyLong_FromLongLong(
                (long long)(start_t + i - 1));
            if (t0_obj == NULL)
                goto lstep_fail;
            PyObject *swaps = PyDict_GetItemWithError(edge_obj, t0_obj);
            Py_DECREF(t0_obj);
            if (swaps == NULL) {
                if (PyErr_Occurred())
                    goto lstep_fail;
            } else {
                int64_t key0 = gd->cell_keys[indices[i - 1]];
                PyObject *probe = PyLong_FromLongLong(
                    (long long)((key1 << 32) | key0));
                if (probe == NULL)
                    goto lstep_fail;
                int hit = PySet_Contains(swaps, probe);
                Py_DECREF(probe);
                if (hit < 0)
                    goto lstep_fail;
                blocked = hit;
            }
        }
        Py_DECREF(t1_obj);
        continue;
lstep_fail:
        Py_DECREF(t1_obj);
        goto fail;
    }

    /* -- verdict + payload -------------------------------------------- */
    {
        PyObject *payload = NULL;
        PyObject *out = NULL;
        if (blocked) {
            /* audit reject: the rescue tier wants the full cell chain */
            payload = tier0_cells_list(gd, indices, k);
            if (payload == NULL)
                goto fail;
            out = Py_BuildValue("(iNL)", 3, payload, 0LL);
        } else if (use_fin) {
            /* head prefix audited clean; python invokes the finisher */
            payload = tier0_cells_list(gd, indices, k);
            if (payload == NULL)
                goto fail;
            out = Py_BuildValue("(iNL)", 2, payload, (long long)j);
        } else {
            /* conflict-free: emit the timed steps Path.from_cells would */
            payload = PyList_New((Py_ssize_t)(k + 1));
            if (payload == NULL)
                goto fail;
            for (int64_t i = 0; i <= k; i++) {
                int64_t ci = (int64_t)indices[i];
                PyObject *step = Py_BuildValue(
                    "(LLL)", (long long)(start_t + i),
                    (long long)(ci / height), (long long)(ci % height));
                if (step == NULL) {
                    Py_DECREF(payload);
                    goto fail;
                }
                PyList_SET_ITEM(payload, (Py_ssize_t)i, step);
            }
            out = Py_BuildValue("(iNL)", 1, payload, 0LL);
        }
        PyMem_Free(indices);
        if (have_hview)
            PyBuffer_Release(&hview);
        return out;
    }

fail:
    PyMem_Free(indices);
    if (have_hview)
        PyBuffer_Release(&hview);
    return NULL;
}

/* ------------------------------------------------------------------ */

static PyMethodDef stsearch_methods[] = {
    {"prepare_grid", stsearch_prepare_grid, METH_VARARGS,
     "prepare_grid(height, adjacency, cell_keys) -> capsule\n"
     "Flatten a grid's adjacency table into native arrays."},
    {"run", stsearch_run, METH_VARARGS,
     "run(grid_capsule, probe_mode, probe_a, probe_b, tile_bits,\n"
     "    h_mode, h_arg, source_ci, goal_ci, start_time, probe_limit,\n"
     "    max_expansions, finisher, finisher_trigger, use_flat, deep,\n"
     "    max_layers, chunk_layers, init_expansions, init_peak_open)\n"
     " -> (status, steps, finisher_tail, expansions, generated, peak_open)"},
    {"reserve_path", stsearch_reserve_path, METH_VARARGS,
     "reserve_path(mode, vertex_obj, edge_obj, tile_bits, height,\n"
     "    block_cells, steps, horizon, vfloor, efloor, high, collect)\n"
     " -> (v_added, vbuckets_added, tiles_added, e_added, new_high,\n"
     "     vprobes, eprobes, poison)\n"
     "Insert a path's vertices and edges, bit-identical to the python\n"
     "reserve_path of the mode's table; horizon < 0 means unbounded."},
    {"unreserve_path", stsearch_unreserve_path, METH_VARARGS,
     "unreserve_path(mode, vertex_obj, edge_obj, tile_bits, height,\n"
     "    steps, horizon, vfloor, efloor)\n"
     " -> (v_removed, vbuckets_removed, tiles_removed, e_removed)\n"
     "Remove a previously reserved path (same iteration bounds as\n"
     "reserve_path; dense layers/blocks stay materialised)."},
    {"purge_before", stsearch_purge_before, METH_VARARGS,
     "purge_before(mode, vertex_obj, edge_obj, tile_bits, t, vfloor,\n"
     "    efloor)\n"
     " -> (v_removed, vbuckets_removed, tiles_removed, e_removed)\n"
     "Drop all reservations strictly before t (the periodic update)."},
    {"audit_path", stsearch_audit_path, METH_VARARGS,
     "audit_path(mode, vertex_obj, edge_obj, tile_bits, height, steps)\n"
     " -> bool\n"
     "Bulk conflict audit: every arrival vertex at its arrival tick and\n"
     "every traversed edge (reversed swap probe) at its departure tick."},
    {"bfs_fill", stsearch_bfs_fill, METH_VARARGS,
     "bfs_fill(grid_capsule, source_ci, buffer, unreached) -> None\n"
     "Flood true shortest-path distances from source_ci into a writable\n"
     "int32 buffer of n_cells entries; unvisited cells keep the\n"
     "``unreached`` sentinel (must not collide with a real distance)."},
    {"tier0_leg", stsearch_tier0_leg, METH_VARARGS,
     "tier0_leg(grid_capsule, mode, vertex_obj, edge_obj, tile_bits,\n"
     "    h_mode, h_arg, source_ci, goal_ci, start_t, trigger)\n"
     " -> (verdict, payload, j)\n"
     "Fused free-flow descent + bulk reservation audit.  Verdicts:\n"
     "0 unreachable (payload None); 1 conflict-free (payload the timed\n"
     "steps); 2 head prefix j audited clean for a finisher (payload the\n"
     "cell chain); 3 audit reject (payload the cell chain for rescue)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef stsearch_module = {
    PyModuleDef_HEAD_INIT,
    "_stsearch",
    "Native spatiotemporal A* expansion loop (bit-identical to the\n"
    "pure-python cores in repro.pathfinding.st_astar).",
    -1,
    stsearch_methods,
};

PyMODINIT_FUNC
PyInit__stsearch(void)
{
    PyObject *mod = PyModule_Create(&stsearch_module);
    if (mod == NULL)
        return NULL;
    if (PyModule_AddIntConstant(mod, "KERNEL_ABI", 3) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}
