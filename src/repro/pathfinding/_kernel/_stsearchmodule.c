/* _stsearch — native expansion loop for repro.pathfinding.st_astar.
 *
 * Implements the packed-integer spatiotemporal A* core (bucket queue,
 * epoch-stamped flat workspace, per-tick reservation probes) in C, with
 * results bit-identical to the pure-python cores in st_astar.py:
 *
 *   - flat + FIFO   == _search_packed   (sub-gate floors, layer-capped)
 *   - hash + FIFO   == _search_heap, deep_ties=False  (overflow restarts)
 *   - hash + deep   == _search_heap, deep_ties=True   (paper-scale floors)
 *
 * "Bit-identical" covers expansion order, tie breaking, the produced
 * path, and every SearchStats counter.  The FIFO bucket order reproduces
 * the heap's (f, tie) order; the deep-tie order (f, -g, tie) is realised
 * as per-f sub-buckets indexed by h = f - g, consumed smallest-h (i.e.
 * deepest-g) first, FIFO within a sub-bucket.  The stale-entry test
 * ``g_best + h != f_bucket`` is the same g-dominance restatement the
 * python cores use.
 *
 * Reservation probes run natively for the library's own structures
 * (probe modes 1-4 below) and through the generic packed-probe callables
 * otherwise (mode 0), so third-party ReservationTable subclasses keep
 * working unmodified.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define GRID_CAPSULE_NAME "repro.pathfinding._kernel.grid"

/* Cell-key packing, mirrored from repro.types (x << 16 | y). */
#define CELL_KEY_SHIFT 16
#define CELL_KEY_MASK 0xFFFF

/* Probe modes, mirrored from ReservationTable.kernel_probe_spec(). */
enum {
    PROBE_CALLABLE = 0,     /* (is_free_packed, edge_free_packed)        */
    PROBE_CDT = 1,          /* ({t: set(key)}, {t: set(edge)})           */
    PROBE_DENSE = 2,        /* ({t: bytearray[ci]}, {t: set(edge)})      */
    PROBE_TILED_SET = 3,    /* ({tile: {t: set(key)}}, {t: set(edge)})   */
    PROBE_TILED_DENSE = 4,  /* ({t: {tile: bytearray}}, {t: set(edge)})  */
};

/* run() statuses, mapped to SearchOutcome by the python wrapper. */
enum {
    ST_COMPLETE = 0,
    ST_BUDGET = 1,
    ST_EXHAUSTED = 2,
    ST_OVERFLOW = 3,   /* flat workspace hit the layer cap: restart on hash */
    ST_FINISHER = 4,   /* finisher produced the tail; head steps attached */
};

/* ------------------------------------------------------------------ */
/* Prepared grid: flattened adjacency + cached per-cell key objects.   */
/* ------------------------------------------------------------------ */

typedef struct {
    Py_ssize_t n_cells;
    int64_t height;
    Py_ssize_t *adj_off;   /* n_cells + 1 offsets into adj_nci/adj_nkey */
    int32_t *adj_nci;
    int64_t *adj_nkey;
    int64_t *cell_keys;
    PyObject **key_objs;   /* owned PyLong per cell's packed key */
} GridData;

static void
grid_capsule_destroy(PyObject *capsule)
{
    GridData *gd = PyCapsule_GetPointer(capsule, GRID_CAPSULE_NAME);
    if (gd == NULL)
        return;
    if (gd->key_objs != NULL) {
        for (Py_ssize_t i = 0; i < gd->n_cells; i++)
            Py_XDECREF(gd->key_objs[i]);
        PyMem_Free(gd->key_objs);
    }
    PyMem_Free(gd->adj_off);
    PyMem_Free(gd->adj_nci);
    PyMem_Free(gd->adj_nkey);
    PyMem_Free(gd->cell_keys);
    PyMem_Free(gd);
}

static PyObject *
stsearch_prepare_grid(PyObject *self, PyObject *args)
{
    long long height;
    PyObject *adjacency, *cell_keys;
    if (!PyArg_ParseTuple(args, "LOO", &height, &adjacency, &cell_keys))
        return NULL;

    PyObject *adj_fast = PySequence_Fast(adjacency, "adjacency not a sequence");
    if (adj_fast == NULL)
        return NULL;
    PyObject *keys_fast = PySequence_Fast(cell_keys, "cell_keys not a sequence");
    if (keys_fast == NULL) {
        Py_DECREF(adj_fast);
        return NULL;
    }

    Py_ssize_t n_cells = PySequence_Fast_GET_SIZE(keys_fast);
    if (PySequence_Fast_GET_SIZE(adj_fast) != n_cells) {
        PyErr_SetString(PyExc_ValueError,
                        "adjacency and cell_keys length mismatch");
        goto parse_fail;
    }

    GridData *gd = PyMem_Calloc(1, sizeof(GridData));
    if (gd == NULL) {
        PyErr_NoMemory();
        goto parse_fail;
    }
    gd->n_cells = n_cells;
    gd->height = (int64_t)height;

    Py_ssize_t total = 0;
    for (Py_ssize_t i = 0; i < n_cells; i++) {
        Py_ssize_t row_len = PySequence_Size(
            PySequence_Fast_GET_ITEM(adj_fast, i));
        if (row_len < 0)
            goto gd_fail;
        total += row_len;
    }

    gd->adj_off = PyMem_Malloc((n_cells + 1) * sizeof(Py_ssize_t));
    gd->adj_nci = PyMem_Malloc((total ? total : 1) * sizeof(int32_t));
    gd->adj_nkey = PyMem_Malloc((total ? total : 1) * sizeof(int64_t));
    gd->cell_keys = PyMem_Malloc((n_cells ? n_cells : 1) * sizeof(int64_t));
    gd->key_objs = PyMem_Calloc((n_cells ? n_cells : 1), sizeof(PyObject *));
    if (gd->adj_off == NULL || gd->adj_nci == NULL || gd->adj_nkey == NULL
            || gd->cell_keys == NULL || gd->key_objs == NULL) {
        PyErr_NoMemory();
        goto gd_fail;
    }

    Py_ssize_t at = 0;
    for (Py_ssize_t i = 0; i < n_cells; i++) {
        gd->adj_off[i] = at;
        PyObject *key_obj = PySequence_Fast_GET_ITEM(keys_fast, i);
        int64_t key = (int64_t)PyLong_AsLongLong(key_obj);
        if (key == -1 && PyErr_Occurred())
            goto gd_fail;
        gd->cell_keys[i] = key;
        Py_INCREF(key_obj);
        gd->key_objs[i] = key_obj;

        PyObject *row = PySequence_Fast(
            PySequence_Fast_GET_ITEM(adj_fast, i), "adjacency row");
        if (row == NULL)
            goto gd_fail;
        Py_ssize_t row_len = PySequence_Fast_GET_SIZE(row);
        for (Py_ssize_t j = 0; j < row_len; j++) {
            PyObject *pair = PySequence_Fast_GET_ITEM(row, j);
            PyObject *pair_fast = PySequence_Fast(pair, "adjacency pair");
            if (pair_fast == NULL || PySequence_Fast_GET_SIZE(pair_fast) != 2) {
                Py_XDECREF(pair_fast);
                Py_DECREF(row);
                if (!PyErr_Occurred())
                    PyErr_SetString(PyExc_ValueError, "bad adjacency pair");
                goto gd_fail;
            }
            long long nci = PyLong_AsLongLong(
                PySequence_Fast_GET_ITEM(pair_fast, 0));
            long long nkey = PyLong_AsLongLong(
                PySequence_Fast_GET_ITEM(pair_fast, 1));
            Py_DECREF(pair_fast);
            if (PyErr_Occurred()) {
                Py_DECREF(row);
                goto gd_fail;
            }
            gd->adj_nci[at] = (int32_t)nci;
            gd->adj_nkey[at] = (int64_t)nkey;
            at++;
        }
        Py_DECREF(row);
    }
    gd->adj_off[n_cells] = at;

    PyObject *capsule = PyCapsule_New(gd, GRID_CAPSULE_NAME,
                                      grid_capsule_destroy);
    if (capsule == NULL)
        goto gd_fail;
    Py_DECREF(adj_fast);
    Py_DECREF(keys_fast);
    return capsule;

gd_fail:
    if (gd->key_objs != NULL)
        for (Py_ssize_t i = 0; i < n_cells; i++)
            Py_XDECREF(gd->key_objs[i]);
    PyMem_Free(gd->adj_off);
    PyMem_Free(gd->adj_nci);
    PyMem_Free(gd->adj_nkey);
    PyMem_Free(gd->cell_keys);
    PyMem_Free(gd->key_objs);
    PyMem_Free(gd);
parse_fail:
    Py_DECREF(adj_fast);
    Py_DECREF(keys_fast);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* Open-set containers.                                                */
/* ------------------------------------------------------------------ */

typedef struct {           /* one FIFO list of packed rel-states */
    int64_t *items;
    Py_ssize_t len, cap, pos;
} Bucket;

typedef struct {           /* per-f bucket array (FIFO / seed order) */
    Bucket *b;
    Py_ssize_t len, cap;
} BArray;

typedef struct {           /* per-f sub-buckets by h (deep-tie order) */
    Bucket *by_h;
    Py_ssize_t h_len, h_cap;
    int64_t lo_h;          /* smallest h with possibly-unread entries */
    int64_t live;          /* unread entries across all sub-buckets */
} FBucket;

typedef struct {
    FBucket *b;
    Py_ssize_t len, cap;
} FBArray;

static int
bucket_push(Bucket *bk, int64_t value)
{
    if (bk->len == bk->cap) {
        Py_ssize_t ncap = bk->cap ? bk->cap * 2 : 8;
        int64_t *ni = PyMem_Realloc(bk->items, ncap * sizeof(int64_t));
        if (ni == NULL)
            return -1;
        bk->items = ni;
        bk->cap = ncap;
    }
    bk->items[bk->len++] = value;
    return 0;
}

static int
barray_ensure(BArray *ba, Py_ssize_t f)
{
    if (f < ba->len)
        return 0;
    if (f >= ba->cap) {
        Py_ssize_t ncap = ba->cap ? ba->cap : 16;
        while (ncap <= f)
            ncap *= 2;
        Bucket *nb = PyMem_Realloc(ba->b, ncap * sizeof(Bucket));
        if (nb == NULL)
            return -1;
        ba->b = nb;
        ba->cap = ncap;
    }
    memset(ba->b + ba->len, 0, (f + 1 - ba->len) * sizeof(Bucket));
    ba->len = f + 1;
    return 0;
}

static void
barray_free_items(BArray *ba)
{
    for (Py_ssize_t i = 0; i < ba->len; i++)
        PyMem_Free(ba->b[i].items);
    PyMem_Free(ba->b);
    ba->b = NULL;
    ba->len = ba->cap = 0;
}

static int
fbarray_ensure(FBArray *fa, Py_ssize_t f)
{
    if (f < fa->len)
        return 0;
    if (f >= fa->cap) {
        Py_ssize_t ncap = fa->cap ? fa->cap : 16;
        while (ncap <= f)
            ncap *= 2;
        FBucket *nb = PyMem_Realloc(fa->b, ncap * sizeof(FBucket));
        if (nb == NULL)
            return -1;
        fa->b = nb;
        fa->cap = ncap;
    }
    for (Py_ssize_t i = fa->len; i <= f; i++) {
        memset(&fa->b[i], 0, sizeof(FBucket));
        fa->b[i].lo_h = INT64_MAX;
    }
    fa->len = f + 1;
    return 0;
}

static int
fbucket_ensure_h(FBucket *fb, Py_ssize_t h)
{
    if (h < fb->h_len)
        return 0;
    if (h >= fb->h_cap) {
        Py_ssize_t ncap = fb->h_cap ? fb->h_cap : 8;
        while (ncap <= h)
            ncap *= 2;
        Bucket *nb = PyMem_Realloc(fb->by_h, ncap * sizeof(Bucket));
        if (nb == NULL)
            return -1;
        fb->by_h = nb;
        fb->h_cap = ncap;
    }
    memset(fb->by_h + fb->h_len, 0, (h + 1 - fb->h_len) * sizeof(Bucket));
    fb->h_len = h + 1;
    return 0;
}

static void
fbarray_free(FBArray *fa)
{
    for (Py_ssize_t i = 0; i < fa->len; i++) {
        FBucket *fb = &fa->b[i];
        for (Py_ssize_t h = 0; h < fb->h_len; h++)
            PyMem_Free(fb->by_h[h].items);
        PyMem_Free(fb->by_h);
    }
    PyMem_Free(fa->b);
    fa->b = NULL;
    fa->len = fa->cap = 0;
}

/* ------------------------------------------------------------------ */
/* Open-addressing int64 -> (g, parent) map for the hash backends.     */
/* ------------------------------------------------------------------ */

typedef struct {
    int64_t *keys;     /* -1 == empty (rel states are non-negative) */
    int64_t *g;
    int64_t *parent;
    Py_ssize_t cap, mask, used;
} HMap;

static int
hmap_init(HMap *m, Py_ssize_t cap)
{
    m->cap = cap;
    m->mask = cap - 1;
    m->used = 0;
    m->keys = PyMem_Malloc(cap * sizeof(int64_t));
    m->g = PyMem_Malloc(cap * sizeof(int64_t));
    m->parent = PyMem_Malloc(cap * sizeof(int64_t));
    if (m->keys == NULL || m->g == NULL || m->parent == NULL) {
        PyMem_Free(m->keys);
        PyMem_Free(m->g);
        PyMem_Free(m->parent);
        m->keys = m->g = m->parent = NULL;
        return -1;
    }
    memset(m->keys, 0xFF, cap * sizeof(int64_t));  /* all -1 */
    return 0;
}

static void
hmap_free(HMap *m)
{
    PyMem_Free(m->keys);
    PyMem_Free(m->g);
    PyMem_Free(m->parent);
    m->keys = m->g = m->parent = NULL;
}

static inline Py_ssize_t
hmap_slot(const HMap *m, int64_t key)
{
    uint64_t h = (uint64_t)key * 0x9E3779B97F4A7C15ULL;
    Py_ssize_t i = (Py_ssize_t)((h ^ (h >> 29)) & (uint64_t)m->mask);
    while (m->keys[i] != -1 && m->keys[i] != key)
        i = (i + 1) & m->mask;
    return i;
}

static int
hmap_grow(HMap *m)
{
    HMap bigger;
    if (hmap_init(&bigger, m->cap * 2) < 0)
        return -1;
    for (Py_ssize_t i = 0; i < m->cap; i++) {
        if (m->keys[i] == -1)
            continue;
        Py_ssize_t slot = hmap_slot(&bigger, m->keys[i]);
        bigger.keys[slot] = m->keys[i];
        bigger.g[slot] = m->g[i];
        bigger.parent[slot] = m->parent[i];
    }
    bigger.used = m->used;
    hmap_free(m);
    *m = bigger;
    return 0;
}

/* ------------------------------------------------------------------ */
/* Persistent flat workspace (epoch-stamped arrays + bucket skeletons) */
/* ------------------------------------------------------------------ */

typedef struct {
    Py_ssize_t n_cells;
    Py_ssize_t size;       /* allocated entries (layers * n_cells) */
    int64_t *g, *gen, *parent;
    int64_t epoch;
    BArray fifo;
    int active;
} Workspace;

static Workspace global_ws;  /* one shape slot; reset on shape change */

static void
ws_reset(Workspace *w, Py_ssize_t n_cells)
{
    PyMem_Free(w->g);
    PyMem_Free(w->gen);
    PyMem_Free(w->parent);
    barray_free_items(&w->fifo);
    memset(w, 0, sizeof(Workspace));
    w->n_cells = n_cells;
}

static int
ws_grow(Workspace *w, Py_ssize_t rel, int64_t max_layers,
        int64_t chunk_layers)
{
    Py_ssize_t cap = (Py_ssize_t)max_layers * w->n_cells;
    Py_ssize_t need = rel + 1 - w->size;
    Py_ssize_t chunk = (Py_ssize_t)chunk_layers * w->n_cells;
    if (need > chunk)
        chunk = need;
    if (chunk > cap - w->size)
        chunk = cap - w->size;
    Py_ssize_t nsize = w->size + chunk;
    int64_t *ng = PyMem_Realloc(w->g, nsize * sizeof(int64_t));
    if (ng == NULL)
        return -1;
    w->g = ng;
    int64_t *ngen = PyMem_Realloc(w->gen, nsize * sizeof(int64_t));
    if (ngen == NULL)
        return -1;
    w->gen = ngen;
    int64_t *np = PyMem_Realloc(w->parent, nsize * sizeof(int64_t));
    if (np == NULL)
        return -1;
    w->parent = np;
    memset(w->gen + w->size, 0, chunk * sizeof(int64_t));
    w->size = nsize;
    return 0;
}

/* ------------------------------------------------------------------ */
/* Reservation probes.                                                 */
/* ------------------------------------------------------------------ */

typedef struct {
    int mode;
    int tile_bits;
    PyObject *vertex_obj;  /* borrowed from args */
    PyObject *edge_obj;    /* borrowed from args */
    /* per-expansion context */
    int guarded;
    PyObject *occupied;    /* borrowed: mode 1 vertex set for t1 */
    const char *layer1;    /* mode 2 dense layer bytes for t1 */
    PyObject *layer_tiles; /* borrowed: mode 4 tile dict for t1 */
    PyObject *swaps;       /* borrowed: modes 1-4 edge set for t1 - 1 */
    PyObject *t1_obj;      /* owned */
    PyObject *t0_obj;      /* owned */
    int64_t memo_tile_id;  /* modes 3/4 last-tile memo */
    PyObject *memo_tile;   /* borrowed */
} Probe;

static inline int64_t
tile_of_key(int64_t key, int bits)
{
    return ((key >> (CELL_KEY_SHIFT + bits)) << CELL_KEY_SHIFT)
        | ((key & CELL_KEY_MASK) >> bits);
}

/* Fetch the per-tick context for one expansion.  Returns -1 on error. */
static int
probe_setup(Probe *p, int64_t t1, int guarded)
{
    p->guarded = guarded;
    p->occupied = NULL;
    p->layer1 = NULL;
    p->layer_tiles = NULL;
    p->swaps = NULL;
    p->t1_obj = NULL;
    p->t0_obj = NULL;
    if (p->mode == PROBE_TILED_DENSE)
        p->memo_tile_id = -1;  /* memo is per time layer */
    if (!guarded)
        return 0;
    p->t1_obj = PyLong_FromLongLong((long long)t1);
    if (p->t1_obj == NULL)
        return -1;
    p->t0_obj = PyLong_FromLongLong((long long)(t1 - 1));
    if (p->t0_obj == NULL)
        return -1;
    switch (p->mode) {
    case PROBE_CALLABLE:
        return 0;
    case PROBE_CDT:
        p->occupied = PyDict_GetItemWithError(p->vertex_obj, p->t1_obj);
        if (p->occupied == NULL && PyErr_Occurred())
            return -1;
        break;
    case PROBE_DENSE: {
        PyObject *layer = PyDict_GetItemWithError(p->vertex_obj, p->t1_obj);
        if (layer == NULL) {
            if (PyErr_Occurred())
                return -1;
        } else {
            if (!PyByteArray_Check(layer)) {
                PyErr_SetString(PyExc_TypeError,
                                "dense layer is not a bytearray");
                return -1;
            }
            p->layer1 = PyByteArray_AS_STRING(layer);
        }
        break;
    }
    case PROBE_TILED_SET:
        break;  /* tiles probed per cell */
    case PROBE_TILED_DENSE:
        p->layer_tiles = PyDict_GetItemWithError(p->vertex_obj, p->t1_obj);
        if (p->layer_tiles == NULL && PyErr_Occurred())
            return -1;
        break;
    }
    p->swaps = PyDict_GetItemWithError(p->edge_obj, p->t0_obj);
    if (p->swaps == NULL && PyErr_Occurred())
        return -1;
    return 0;
}

static void
probe_teardown(Probe *p)
{
    Py_CLEAR(p->t1_obj);
    Py_CLEAR(p->t0_obj);
    p->occupied = NULL;
    p->layer1 = NULL;
    p->layer_tiles = NULL;
    p->swaps = NULL;
}

/* Whether arriving on cell ``ci`` at t1 hits a vertex reservation.
 * Returns 1 blocked, 0 free, -1 error.  Callers skip when unguarded. */
static int
probe_vertex(Probe *p, const GridData *gd, Py_ssize_t ci)
{
    switch (p->mode) {
    case PROBE_CALLABLE: {
        PyObject *res = PyObject_CallFunctionObjArgs(
            p->vertex_obj, p->t1_obj, gd->key_objs[ci], NULL);
        if (res == NULL)
            return -1;
        int truthy = PyObject_IsTrue(res);
        Py_DECREF(res);
        if (truthy < 0)
            return -1;
        return !truthy;
    }
    case PROBE_CDT:
        if (p->occupied == NULL)
            return 0;
        return PySet_Contains(p->occupied, gd->key_objs[ci]);
    case PROBE_DENSE:
        return p->layer1 != NULL && p->layer1[ci] != 0;
    case PROBE_TILED_SET: {
        int64_t tile_id = tile_of_key(gd->cell_keys[ci], p->tile_bits);
        PyObject *tile;
        if (tile_id == p->memo_tile_id) {
            tile = p->memo_tile;
        } else {
            PyObject *tid = PyLong_FromLongLong((long long)tile_id);
            if (tid == NULL)
                return -1;
            tile = PyDict_GetItemWithError(p->vertex_obj, tid);
            Py_DECREF(tid);
            if (tile == NULL && PyErr_Occurred())
                return -1;
            p->memo_tile_id = tile_id;
            p->memo_tile = tile;
        }
        if (tile == NULL)
            return 0;
        PyObject *bucket = PyDict_GetItemWithError(tile, p->t1_obj);
        if (bucket == NULL)
            return PyErr_Occurred() ? -1 : 0;
        return PySet_Contains(bucket, gd->key_objs[ci]);
    }
    case PROBE_TILED_DENSE: {
        if (p->layer_tiles == NULL)
            return 0;
        int64_t key = gd->cell_keys[ci];
        int64_t tile_id = tile_of_key(key, p->tile_bits);
        PyObject *tile;
        if (tile_id == p->memo_tile_id) {
            tile = p->memo_tile;
        } else {
            PyObject *tid = PyLong_FromLongLong((long long)tile_id);
            if (tid == NULL)
                return -1;
            tile = PyDict_GetItemWithError(p->layer_tiles, tid);
            Py_DECREF(tid);
            if (tile == NULL && PyErr_Occurred())
                return -1;
            p->memo_tile_id = tile_id;
            p->memo_tile = tile;
        }
        if (tile == NULL)
            return 0;
        if (!PyByteArray_Check(tile)) {
            PyErr_SetString(PyExc_TypeError, "tile block is not a bytearray");
            return -1;
        }
        int64_t x = key >> CELL_KEY_SHIFT;
        int64_t y = key & CELL_KEY_MASK;
        int64_t mask = ((int64_t)1 << p->tile_bits) - 1;
        Py_ssize_t slot = (Py_ssize_t)(((x & mask) << p->tile_bits)
                                       | (y & mask));
        return PyByteArray_AS_STRING(tile)[slot] != 0;
    }
    }
    PyErr_SetString(PyExc_SystemError, "unknown probe mode");
    return -1;
}

/* Whether the move sci -> nci departing at t1 - 1 hits a swap.
 * Returns 1 blocked, 0 free, -1 error. */
static int
probe_edge(Probe *p, const GridData *gd, Py_ssize_t sci, Py_ssize_t nci)
{
    if (p->mode == PROBE_CALLABLE) {
        PyObject *res = PyObject_CallFunctionObjArgs(
            p->edge_obj, p->t0_obj, gd->key_objs[sci], gd->key_objs[nci],
            NULL);
        if (res == NULL)
            return -1;
        int truthy = PyObject_IsTrue(res);
        Py_DECREF(res);
        if (truthy < 0)
            return -1;
        return !truthy;
    }
    if (p->swaps == NULL)
        return 0;
    int64_t combined = (gd->cell_keys[nci] << 32) | gd->cell_keys[sci];
    PyObject *probe = PyLong_FromLongLong((long long)combined);
    if (probe == NULL)
        return -1;
    int hit = PySet_Contains(p->swaps, probe);
    Py_DECREF(probe);
    return hit;
}

/* ------------------------------------------------------------------ */
/* The search itself.                                                  */
/* ------------------------------------------------------------------ */

typedef struct {
    /* problem */
    const GridData *gd;
    int64_t height;
    Py_ssize_t n_cells;
    PyObject *hlist;       /* h_mode 0: list field (borrowed) */
    int h_mode;            /* 0 list, 1 native Manhattan */
    int64_t gx, gy;        /* h_mode 1 goal coordinates */
    /* backends */
    int use_flat;          /* flat workspace vs hash map */
    int deep;              /* deep-tie sub-bucket order vs FIFO */
    Workspace *ws;         /* flat: the (global or temp) workspace */
    int ws_is_temp;
    int64_t epoch;
    int64_t max_layers, chunk_layers;
    HMap hm;
    BArray hash_fifo;      /* hash + FIFO open set */
    FBArray deepq;         /* hash + deep open set */
    int64_t hi_f;
    int64_t h0;
} Search;

static inline int64_t
heuristic_at(const Search *s, Py_ssize_t ci, int *err)
{
    if (s->h_mode == 1) {
        int64_t x = (int64_t)ci / s->height;
        int64_t y = (int64_t)ci % s->height;
        int64_t dx = x > s->gx ? x - s->gx : s->gx - x;
        int64_t dy = y > s->gy ? y - s->gy : s->gy - y;
        return dx + dy;
    }
    PyObject *item = PyList_GET_ITEM(s->hlist, ci);
    int64_t h = (int64_t)PyLong_AsLongLong(item);
    if (h == -1 && PyErr_Occurred()) {
        *err = 1;
        return 0;
    }
    return h;
}

/* Record/improve a successor and push it at f-offset ``nf``.
 * ``h`` is the successor's heuristic (deep mode sub-bucket index).
 * Returns 1 pushed, 0 dominated, -1 error. */
static inline int
relax(Search *s, int64_t nrel, int64_t g_next, int64_t rel,
      int64_t nf, int64_t h)
{
    if (s->use_flat) {
        Workspace *w = s->ws;
        if (w->gen[nrel] == s->epoch && g_next >= w->g[nrel])
            return 0;
        w->gen[nrel] = s->epoch;
        w->g[nrel] = g_next;
        w->parent[nrel] = rel;
        if (barray_ensure(&w->fifo, (Py_ssize_t)nf) < 0)
            return -1;
        if (bucket_push(&w->fifo.b[nf], nrel) < 0)
            return -1;
    } else {
        if ((s->hm.used + 1) * 3 > s->hm.cap * 2 && hmap_grow(&s->hm) < 0)
            return -1;
        Py_ssize_t slot = hmap_slot(&s->hm, nrel);
        if (s->hm.keys[slot] == -1) {
            s->hm.keys[slot] = nrel;
            s->hm.used++;
        } else if (g_next >= s->hm.g[slot]) {
            return 0;
        }
        s->hm.g[slot] = g_next;
        s->hm.parent[slot] = rel;
        if (s->deep) {
            if (fbarray_ensure(&s->deepq, (Py_ssize_t)nf) < 0)
                return -1;
            FBucket *fb = &s->deepq.b[nf];
            if (fbucket_ensure_h(fb, (Py_ssize_t)h) < 0)
                return -1;
            if (bucket_push(&fb->by_h[h], nrel) < 0)
                return -1;
            fb->live++;
            if (h < fb->lo_h)
                fb->lo_h = h;
        } else {
            if (barray_ensure(&s->hash_fifo, (Py_ssize_t)nf) < 0)
                return -1;
            if (bucket_push(&s->hash_fifo.b[nf], nrel) < 0)
                return -1;
        }
    }
    if (nf > s->hi_f)
        s->hi_f = nf;
    return 1;
}

static PyObject *
reconstruct(const Search *s, int64_t rel, int64_t start_time)
{
    PyObject *steps = PyList_New(0);
    if (steps == NULL)
        return NULL;
    while (rel >= 0) {
        int64_t t_rel = rel / s->n_cells;
        int64_t ci = rel % s->n_cells;
        int64_t x = ci / s->height;
        int64_t y = ci % s->height;
        PyObject *step = Py_BuildValue("(LLL)",
                                       (long long)(start_time + t_rel),
                                       (long long)x, (long long)y);
        if (step == NULL || PyList_Append(steps, step) < 0) {
            Py_XDECREF(step);
            Py_DECREF(steps);
            return NULL;
        }
        Py_DECREF(step);
        if (s->use_flat) {
            rel = s->ws->parent[rel];
        } else {
            Py_ssize_t slot = hmap_slot(&s->hm, rel);
            rel = s->hm.parent[slot];
        }
    }
    if (PyList_Reverse(steps) < 0) {
        Py_DECREF(steps);
        return NULL;
    }
    return steps;
}

static PyObject *
stsearch_run(PyObject *self, PyObject *args)
{
    PyObject *capsule, *probe_a, *probe_b, *h_arg, *finisher;
    int probe_mode, tile_bits, h_mode, use_flat, deep;
    Py_ssize_t source_ci, goal_ci;
    long long start_time, probe_limit, max_expansions;
    long long finisher_trigger, max_layers, chunk_layers;
    long long init_expansions, init_peak_open;

    if (!PyArg_ParseTuple(
            args, "OiOOiiOnnLLLOLiiLLLL",
            &capsule, &probe_mode, &probe_a, &probe_b, &tile_bits,
            &h_mode, &h_arg, &source_ci, &goal_ci,
            &start_time, &probe_limit, &max_expansions,
            &finisher, &finisher_trigger, &use_flat, &deep,
            &max_layers, &chunk_layers, &init_expansions, &init_peak_open))
        return NULL;

    GridData *gd = PyCapsule_GetPointer(capsule, GRID_CAPSULE_NAME);
    if (gd == NULL)
        return NULL;

    /* Validate the probe spec shape up front, then trust it in the loop. */
    switch (probe_mode) {
    case PROBE_CALLABLE:
        if (!PyCallable_Check(probe_a) || !PyCallable_Check(probe_b)) {
            PyErr_SetString(PyExc_TypeError, "probe callables expected");
            return NULL;
        }
        break;
    case PROBE_CDT:
    case PROBE_DENSE:
    case PROBE_TILED_SET:
    case PROBE_TILED_DENSE:
        if (!PyDict_Check(probe_a) || !PyDict_Check(probe_b)) {
            PyErr_SetString(PyExc_TypeError, "probe dicts expected");
            return NULL;
        }
        break;
    default:
        PyErr_SetString(PyExc_ValueError, "unknown probe mode");
        return NULL;
    }

    Search s;
    memset(&s, 0, sizeof(Search));
    s.gd = gd;
    s.height = gd->height;
    s.n_cells = gd->n_cells;
    s.h_mode = h_mode;
    s.use_flat = use_flat;
    s.deep = deep;
    s.max_layers = max_layers;
    s.chunk_layers = chunk_layers;
    s.hi_f = 0;

    if (h_mode == 1) {
        long long gx, gy;
        if (!PyArg_ParseTuple(h_arg, "LL", &gx, &gy))
            return NULL;
        s.gx = (int64_t)gx;
        s.gy = (int64_t)gy;
    } else {
        if (!PyList_Check(h_arg)
                || PyList_GET_SIZE(h_arg) != s.n_cells) {
            PyErr_SetString(PyExc_TypeError,
                            "h field must be a list of n_cells ints");
            return NULL;
        }
        s.hlist = h_arg;
    }

    Probe probe;
    memset(&probe, 0, sizeof(Probe));
    probe.mode = probe_mode;
    probe.tile_bits = tile_bits;
    probe.vertex_obj = probe_a;
    probe.edge_obj = probe_b;
    probe.memo_tile_id = -1;

    int herr = 0;
    s.h0 = heuristic_at(&s, source_ci, &herr);
    if (herr)
        return NULL;

    /* Backend setup. */
    Workspace temp_ws;
    memset(&temp_ws, 0, sizeof(Workspace));
    if (use_flat) {
        Workspace *w = &global_ws;
        if (w->active) {
            /* Re-entrant search (a finisher that searches): hand out a
             * throwaway workspace rather than corrupting the live one.
             * This must be decided before any shape-change reset — the
             * outer search owns the global arrays right now. */
            temp_ws.n_cells = s.n_cells;
            w = &temp_ws;
            s.ws_is_temp = 1;
        } else if (w->n_cells != s.n_cells) {
            ws_reset(w, s.n_cells);
        }
        s.ws = w;
        w->epoch += 1;
        s.epoch = w->epoch;
        w->active = 1;
        if (w->size < s.n_cells
                && ws_grow(w, s.n_cells - 1, max_layers, chunk_layers) < 0) {
            w->active = 0;
            return PyErr_NoMemory();
        }
        w->gen[source_ci] = s.epoch;
        w->g[source_ci] = 0;
        w->parent[source_ci] = -1;
        if (barray_ensure(&w->fifo, 0) < 0
                || bucket_push(&w->fifo.b[0], source_ci) < 0) {
            w->active = 0;
            return PyErr_NoMemory();
        }
    } else {
        if (hmap_init(&s.hm, 4096) < 0)
            return PyErr_NoMemory();
        Py_ssize_t slot = hmap_slot(&s.hm, source_ci);
        s.hm.keys[slot] = source_ci;
        s.hm.g[slot] = 0;
        s.hm.parent[slot] = -1;
        s.hm.used = 1;
        if (deep) {
            if (fbarray_ensure(&s.deepq, 0) < 0
                    || fbucket_ensure_h(&s.deepq.b[0], (Py_ssize_t)s.h0) < 0
                    || bucket_push(&s.deepq.b[0].by_h[s.h0], source_ci) < 0) {
                fbarray_free(&s.deepq);
                hmap_free(&s.hm);
                return PyErr_NoMemory();
            }
            s.deepq.b[0].live = 1;
            s.deepq.b[0].lo_h = s.h0;
        } else {
            if (barray_ensure(&s.hash_fifo, 0) < 0
                    || bucket_push(&s.hash_fifo.b[0], source_ci) < 0) {
                barray_free_items(&s.hash_fifo);
                hmap_free(&s.hm);
                return PyErr_NoMemory();
            }
        }
    }

    int64_t f_off = 0;           /* bucket cursor (f - h0) */
    int64_t f_abs = s.h0;        /* absolute f at the cursor */
    int64_t open_size = 1;
    int64_t expansions = (int64_t)init_expansions;
    int64_t generated = 0;
    int64_t peak_open = (int64_t)init_peak_open;
    int64_t loop_ticker = 0;

    int status = ST_EXHAUSTED;
    int64_t result_rel = -1;
    PyObject *steps = NULL;       /* owned on success */
    PyObject *finisher_tail = NULL;

    while (open_size > 0) {
        if (((++loop_ticker) & 0x3FFF) == 0 && PyErr_CheckSignals() < 0)
            goto fail;

        /* -- pop ------------------------------------------------------ */
        int64_t rel;
        if (s.deep) {
            while (f_off < s.deepq.len && s.deepq.b[f_off].live == 0) {
                f_off++;
                f_abs++;
            }
            if (f_off > s.hi_f || f_off >= s.deepq.len) {
                PyErr_SetString(PyExc_AssertionError,
                                "bucket queue underflow: heuristic field "
                                "is not consistent");
                goto fail;
            }
            FBucket *fb = &s.deepq.b[f_off];
            while (fb->lo_h < fb->h_len
                    && fb->by_h[fb->lo_h].pos >= fb->by_h[fb->lo_h].len)
                fb->lo_h++;
            if (fb->lo_h >= fb->h_len) {
                PyErr_SetString(PyExc_AssertionError,
                                "bucket queue underflow: heuristic field "
                                "is not consistent");
                goto fail;
            }
            Bucket *hb = &fb->by_h[fb->lo_h];
            if (open_size > peak_open)
                peak_open = open_size;
            rel = hb->items[hb->pos++];
            fb->live--;
        } else {
            BArray *ba = use_flat ? &s.ws->fifo : &s.hash_fifo;
            while (f_off < ba->len
                    && ba->b[f_off].pos >= ba->b[f_off].len) {
                f_off++;
                f_abs++;
            }
            if (f_off > s.hi_f || f_off >= ba->len) {
                PyErr_SetString(PyExc_AssertionError,
                                "bucket queue underflow: heuristic field "
                                "is not consistent");
                goto fail;
            }
            Bucket *bk = &ba->b[f_off];
            if (open_size > peak_open)
                peak_open = open_size;
            rel = bk->items[bk->pos++];
        }
        open_size--;

        int64_t t_rel = rel / s.n_cells;
        Py_ssize_t ci = (Py_ssize_t)(rel % s.n_cells);
        int64_t h_ci = heuristic_at(&s, ci, &herr);
        if (herr)
            goto fail;
        int64_t g;
        if (use_flat) {
            g = s.ws->g[rel];
        } else {
            Py_ssize_t slot = hmap_slot(&s.hm, rel);
            g = s.hm.g[slot];
        }
        if (g + h_ci != f_abs)
            continue;  /* dominated by a later, cheaper push */
        expansions++;
        if (expansions > max_expansions) {
            status = ST_BUDGET;
            goto done;
        }

        if (ci == (Py_ssize_t)goal_ci) {
            status = ST_COMPLETE;
            result_rel = rel;
            goto done;
        }

        if (finisher != Py_None && h_ci > 0 && h_ci <= finisher_trigger) {
            PyObject *cell = Py_BuildValue("(LL)",
                                           (long long)(ci / s.height),
                                           (long long)(ci % s.height));
            if (cell == NULL)
                goto fail;
            PyObject *t_obj = PyLong_FromLongLong(
                (long long)(start_time + t_rel));
            if (t_obj == NULL) {
                Py_DECREF(cell);
                goto fail;
            }
            PyObject *tail = PyObject_CallFunctionObjArgs(
                finisher, cell, t_obj, NULL);
            Py_DECREF(cell);
            Py_DECREF(t_obj);
            if (tail == NULL)
                goto fail;
            if (tail != Py_None) {
                status = ST_FINISHER;
                result_rel = rel;
                finisher_tail = tail;
                goto done;
            }
            Py_DECREF(tail);
        }

        int64_t g_next = g + 1;
        int64_t t1 = start_time + t_rel + 1;
        int64_t nxt_base = rel - ci + s.n_cells;
        if (use_flat && nxt_base + s.n_cells > s.ws->size) {
            if (t_rel + 2 > max_layers) {
                status = ST_OVERFLOW;
                goto done;
            }
            if (ws_grow(s.ws, (Py_ssize_t)(nxt_base + s.n_cells - 1),
                        max_layers, chunk_layers) < 0) {
                PyErr_NoMemory();
                goto fail;
            }
        }
        int guarded = t1 <= probe_limit;
        int64_t base_f = g_next - s.h0;

        if (probe_setup(&probe, t1, guarded) < 0)
            goto fail;

        /* Wait in place (the fifth action) — vertex check only. */
        int blocked = guarded ? probe_vertex(&probe, gd, ci) : 0;
        if (blocked < 0)
            goto expand_fail;
        if (!blocked) {
            int pushed = relax(&s, nxt_base + ci, g_next, rel,
                               base_f + h_ci, h_ci);
            if (pushed < 0) {
                PyErr_NoMemory();
                goto expand_fail;
            }
            if (pushed) {
                generated++;
                open_size++;
            }
        }

        /* The four moves, in adjacency order. */
        for (Py_ssize_t a = gd->adj_off[ci]; a < gd->adj_off[ci + 1]; a++) {
            Py_ssize_t nci = (Py_ssize_t)gd->adj_nci[a];
            if (guarded) {
                blocked = probe_vertex(&probe, gd, nci);
                if (blocked < 0)
                    goto expand_fail;
                if (blocked)
                    continue;
                blocked = probe_edge(&probe, gd, ci, nci);
                if (blocked < 0)
                    goto expand_fail;
                if (blocked)
                    continue;
            }
            int64_t nh = heuristic_at(&s, nci, &herr);
            if (herr)
                goto expand_fail;
            int pushed = relax(&s, nxt_base + nci, g_next, rel,
                               base_f + nh, nh);
            if (pushed < 0) {
                PyErr_NoMemory();
                goto expand_fail;
            }
            if (pushed) {
                generated++;
                open_size++;
            }
        }
        probe_teardown(&probe);
    }

done:
    if (result_rel >= 0) {
        steps = reconstruct(&s, result_rel, start_time);
        if (steps == NULL)
            goto fail;
    }
    {
        PyObject *out = Py_BuildValue(
            "iOOLLL", status,
            steps ? steps : Py_None,
            finisher_tail ? finisher_tail : Py_None,
            (long long)expansions, (long long)generated,
            (long long)peak_open);
        Py_XDECREF(steps);
        Py_XDECREF(finisher_tail);
        steps = NULL;
        finisher_tail = NULL;
        /* cleanup below runs with `out` ready */
        if (use_flat) {
            Workspace *w = s.ws;
            for (Py_ssize_t i = 0; i <= (Py_ssize_t)s.hi_f
                     && i < w->fifo.len; i++) {
                w->fifo.b[i].len = 0;
                w->fifo.b[i].pos = 0;
            }
            w->active = 0;
            if (s.ws_is_temp)
                ws_reset(&temp_ws, 0);
        } else {
            hmap_free(&s.hm);
            if (s.deep)
                fbarray_free(&s.deepq);
            else
                barray_free_items(&s.hash_fifo);
        }
        return out;
    }

expand_fail:
    probe_teardown(&probe);
fail:
    Py_XDECREF(steps);
    Py_XDECREF(finisher_tail);
    if (use_flat) {
        Workspace *w = s.ws;
        if (w != NULL) {
            for (Py_ssize_t i = 0; i <= (Py_ssize_t)s.hi_f
                     && i < w->fifo.len; i++) {
                w->fifo.b[i].len = 0;
                w->fifo.b[i].pos = 0;
            }
            w->active = 0;
        }
        if (s.ws_is_temp)
            ws_reset(&temp_ws, 0);
    } else {
        hmap_free(&s.hm);
        if (s.deep)
            fbarray_free(&s.deepq);
        else
            barray_free_items(&s.hash_fifo);
    }
    return NULL;
}

/* ------------------------------------------------------------------ */

static PyMethodDef stsearch_methods[] = {
    {"prepare_grid", stsearch_prepare_grid, METH_VARARGS,
     "prepare_grid(height, adjacency, cell_keys) -> capsule\n"
     "Flatten a grid's adjacency table into native arrays."},
    {"run", stsearch_run, METH_VARARGS,
     "run(grid_capsule, probe_mode, probe_a, probe_b, tile_bits,\n"
     "    h_mode, h_arg, source_ci, goal_ci, start_time, probe_limit,\n"
     "    max_expansions, finisher, finisher_trigger, use_flat, deep,\n"
     "    max_layers, chunk_layers, init_expansions, init_peak_open)\n"
     " -> (status, steps, finisher_tail, expansions, generated, peak_open)"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef stsearch_module = {
    PyModuleDef_HEAD_INIT,
    "_stsearch",
    "Native spatiotemporal A* expansion loop (bit-identical to the\n"
    "pure-python cores in repro.pathfinding.st_astar).",
    -1,
    stsearch_methods,
};

PyMODINIT_FUNC
PyInit__stsearch(void)
{
    PyObject *mod = PyModule_Create(&stsearch_module);
    if (mod == NULL)
        return NULL;
    if (PyModule_AddIntConstant(mod, "KERNEL_ABI", 1) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}
