"""Optional native search kernel for the spatiotemporal A* core.

``load_compiled()`` is a pure import probe: it returns the compiled
``_stsearch`` module when a built artefact is importable and ``None``
otherwise — it never invokes a compiler.  Building is always an explicit
act (``scripts/build_kernel.py``, the test/bench harnesses, or CI) via
:func:`repro.pathfinding._kernel.build.build_extension`, so importing the
library on a machine without a toolchain stays side-effect free and the
pure-python core remains the always-working fallback.
"""

from __future__ import annotations

import importlib
from typing import Optional

#: Result of the last probe: ``False`` = not probed yet, ``None`` =
#: probed and absent, module = probed and loaded.
_probed = False
_module = None


def load_compiled(refresh: bool = False):
    """Import-probe the compiled kernel; ``None`` when unavailable.

    ``refresh=True`` re-probes after an explicit build (the module is
    cached after the first successful import; a failed probe is retried
    only on refresh so steady-state callers pay one cached lookup).
    """
    global _probed, _module
    if _probed and not refresh:
        return _module
    if _module is None:
        try:
            _module = importlib.import_module(
                "repro.pathfinding._kernel._stsearch")
        except ImportError:
            _module = None
    _probed = True
    return _module


def build_and_load(force: bool = False):
    """Best-effort build then probe; ``None`` when either step fails."""
    from .build import build_extension
    if build_extension(force=force) is None:
        return None
    return load_compiled(refresh=True)


__all__ = ["load_compiled", "build_and_load"]
