"""Build helper for the native search kernel.

Compiles ``_stsearchmodule.c`` into ``_stsearch<EXT_SUFFIX>`` next to this
file by invoking the C compiler recorded in ``sysconfig`` directly — no
setuptools invocation, no network, no temp build trees left behind.  The
compiled artefact is written via a temp file + atomic ``os.replace`` so
concurrent builders (a pytest-xdist swarm, parallel bench jobs) can race
harmlessly.

One module carries both halves of the native core: the ``KERNEL_ABI``-1
search expansion loop and, since ABI 2, the reservation-mutation entry
points (``reserve_path`` / ``unreserve_path`` / ``purge_before`` /
``audit_path`` over the ``kernel_probe_spec`` modes).  A stale ABI-1
artefact is rejected at selection time by ``set_mutation_kernel``, not
here — rebuilding is still this module's only job, and a rebuilt
extension cannot be re-imported into a process that already loaded the
old one (CPython never unloads C extensions; run in a fresh process).

``setup.py`` in this directory remains the documented setuptools route
(``python setup.py build_ext --inplace``); this module is what the test
suite, the bench harness and CI actually call because it works on a bare
compiler with no build backend installed.

Set ``REPRO_KERNEL_BUILD=0`` to forbid build attempts entirely (the CI
pure-python job uses this to prove the fallback path never needs a
compiler).
"""

from __future__ import annotations

import os
import shlex
import subprocess
import sysconfig
import tempfile
from typing import List, Optional

_HERE = os.path.dirname(os.path.abspath(__file__))
_SOURCE = os.path.join(_HERE, "_stsearchmodule.c")


def extension_filename() -> str:
    """The platform-tagged filename the import system expects."""
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return "_stsearch" + suffix


def extension_path() -> str:
    """Absolute path of the (possibly not yet built) extension."""
    return os.path.join(_HERE, extension_filename())


def build_allowed() -> bool:
    """Whether the environment permits invoking a compiler."""
    return os.environ.get("REPRO_KERNEL_BUILD", "1") != "0"


def is_stale() -> bool:
    """Whether the built artefact is missing or older than its source."""
    target = extension_path()
    if not os.path.exists(target):
        return True
    try:
        return os.path.getmtime(target) < os.path.getmtime(_SOURCE)
    except OSError:
        return True


def _compiler_command(output: str) -> Optional[List[str]]:
    cc = sysconfig.get_config_var("CC") or os.environ.get("CC") or "cc"
    include = sysconfig.get_paths().get("include")
    if include is None:
        return None
    cmd = shlex.split(cc)
    cmd += ["-O2", "-fPIC", "-shared", "-I" + include, _SOURCE, "-o", output]
    return cmd


def build_extension(force: bool = False, quiet: bool = True) -> Optional[str]:
    """Compile the kernel if needed; return the artefact path or ``None``.

    ``None`` means the kernel is unavailable: builds are forbidden by
    ``REPRO_KERNEL_BUILD=0``, no compiler is present, or compilation
    failed.  Callers treat that as "run pure python" — building is always
    best-effort, never an error.
    """
    if not force and not is_stale():
        return extension_path()
    if not build_allowed():
        return extension_path() if os.path.exists(extension_path()) else None
    fd, temp_out = tempfile.mkstemp(suffix=".so", dir=_HERE)
    os.close(fd)
    try:
        cmd = _compiler_command(temp_out)
        if cmd is None:
            return None
        result = subprocess.run(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        if result.returncode != 0:
            if not quiet:
                raise RuntimeError(
                    "kernel build failed:\n" + result.stderr.decode(
                        "utf-8", "replace"))
            return None
        os.replace(temp_out, extension_path())
        temp_out = None
        return extension_path()
    except (OSError, subprocess.SubprocessError):
        if not quiet:
            raise
        return None
    finally:
        if temp_out is not None and os.path.exists(temp_out):
            os.unlink(temp_out)
