"""Search heuristics for the A* family.

The paper uses the Manhattan distance h-value (Sec. V-C).  On layouts with
blocked cells Manhattan can underestimate badly, so we also provide an
exact "true distance" heuristic backed by one BFS from the goal — a
standard MAPF trick that stays admissible and is reusable across the many
searches that share a goal (every delivery to the same picker, for
instance).

Two representations coexist.  The closure-based heuristics
(:func:`manhattan_heuristic`, :func:`true_distance_heuristic`) satisfy the
callable :data:`Heuristic` protocol.  :class:`HeuristicField` additionally
exposes the distances as a flat list indexed by cell index (``x·H + y``),
which is what the packed-integer spatiotemporal A* core consumes — one
list index per h-lookup instead of a closure call.  On open floors the
field equals Manhattan everywhere (so searches are bit-identical to the
paper's h-value); on obstructed floors it is *tighter* while staying
admissible and consistent.
"""

from __future__ import annotations

import atexit
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..config import PAPER_SCALE_MIN_CELLS
from ..types import Cell, manhattan
from ..warehouse.grid import Grid

#: A heuristic maps a cell to a lower bound on its distance to the goal.
Heuristic = Callable[[Cell], int]


def manhattan_heuristic(goal: Cell) -> Heuristic:
    """The paper's h-value: Manhattan distance to ``goal``."""

    def h(cell: Cell) -> int:
        return manhattan(cell, goal)

    return h


def true_distance_heuristic(grid: Grid, goal: Cell) -> Heuristic:
    """Exact shortest-path distance to ``goal`` via one reverse BFS.

    Unreachable cells get an effectively infinite value so A* abandons
    them immediately instead of expanding toward a dead end.
    """
    dist = grid.bfs_distances(goal)
    infinity = grid.n_cells + 1

    def h(cell: Cell) -> int:
        d = int(dist[cell])
        return d if d >= 0 else infinity

    return h


class _LazyManhattanFlat:
    """A flat-indexed Manhattan field computed per lookup, never stored.

    On a grid with no blocked cells the exact BFS distance *is* the
    Manhattan distance for every cell (the 4-connected rectangle has no
    detours), so the eager O(HW) list a :class:`HeuristicField` normally
    builds — ~0.1 s and megabytes per goal on the paper-true 541×302
    floor, times thousands of distinct rack/picker goals — can be
    replaced by two subtractions at lookup time.  Values are identical
    by construction, so searches, descents and tie-breaking are
    bit-identical to the eager field's.
    """

    __slots__ = ("_gx", "_gy", "_height", "_n_cells")

    def __init__(self, goal: Cell, height: int, n_cells: int) -> None:
        self._gx, self._gy = goal
        self._height = height
        self._n_cells = n_cells

    def __getitem__(self, ci: int) -> int:
        x, y = divmod(ci, self._height)
        return abs(x - self._gx) + abs(y - self._gy)

    def __len__(self) -> int:
        return self._n_cells


class HeuristicField:
    """Exact distance-to-goal field with O(1) flat indexed lookup.

    ``flat[x * H + y]`` is the true shortest-path distance from ``(x, y)``
    to ``goal`` (cells that cannot reach the goal get an effectively
    infinite value so A* abandons them immediately).  Built from one
    reverse BFS; admissible and consistent by construction.  Instances are
    also plain callables, so they slot anywhere a :data:`Heuristic` is
    accepted.

    On *unobstructed* floors of at least
    :data:`~repro.config.PAPER_SCALE_MIN_CELLS` cells, ``flat`` is a
    :class:`_LazyManhattanFlat` — value-identical (BFS distance equals
    Manhattan when nothing blocks), zero build cost and zero footprint.
    Small floors keep the eager list: the lookup is a hair faster and
    every historical benchmark/golden ran on it.
    """

    __slots__ = ("goal", "flat", "nbytes", "_height")

    def __init__(self, grid: Grid, goal: Cell) -> None:
        self.goal = goal
        self._height = grid.height
        if grid.n_cells >= PAPER_SCALE_MIN_CELLS and not grid.blocked_cells:
            self.flat = _LazyManhattanFlat(goal, grid.height, grid.n_cells)
            self.nbytes = 64
            return
        # One typed int32 buffer per eager field (unreachable cells get
        # the n_cells + 1 infinity).  Indexing yields plain ints exactly
        # like the historical boxed-int list, while the buffer protocol
        # feeds the compiled search / tier-0 kernels zero-copy and ships
        # through the shared field arena without re-flooding.
        self.flat = grid.distance_flat(goal, unreached=grid.n_cells + 1)
        #: Reported footprint: the actual 4 B/cell buffer plus header
        #: (the previous estimate charged 8 B/pointer list skeleton).
        self.nbytes = 64 + 4 * len(self.flat)

    @classmethod
    def from_flat(cls, goal: Cell, height: int, flat,
                  nbytes: int = 64) -> "HeuristicField":
        """Wrap an existing flat buffer (arena-backed fields).

        Shared-memory fields charge only the 64 B skeleton: the backing
        bytes live once in the arena, not per attached cache.
        """
        field = object.__new__(cls)
        field.goal = goal
        field._height = height
        field.flat = flat
        field.nbytes = nbytes
        return field

    def __call__(self, cell: Cell) -> int:
        return self.flat[cell[0] * self._height + cell[1]]


@dataclass(frozen=True)
class FieldArenaHandle:
    """Picklable pointer to a live :class:`FieldArena`.

    Worker initargs and checkpoints ship this instead of the fields
    themselves; :func:`attach_field_arena` turns it back into zero-copy
    views in the receiving process.
    """

    name: str
    height: int
    n_cells: int
    slots: Tuple[Tuple[Cell, int], ...]


class FieldArena:
    """Read-only shared-memory store of eager heuristic-field buffers.

    One :mod:`multiprocessing.shared_memory` block holds the int32
    distance buffer of every exported goal back to back, so matrix and
    batch worker pools *inherit* fields by attaching instead of paying
    a full-floor BFS flood per goal per process — the fields are
    physically shared pages, not per-worker copies.  The arena is
    immutable after build; attached :class:`HeuristicField` views are
    value-identical to locally flooded ones by construction (same
    deterministic BFS, same sentinel).
    """

    def __init__(self, shm: shared_memory.SharedMemory, height: int,
                 n_cells: int, slots: Dict[Cell, int],
                 owner: bool) -> None:
        self._shm = shm
        self._height = height
        self._n_cells = n_cells
        self._slots = slots
        self._owner = owner
        #: Every memoryview handed out over the block.  ``close()``
        #: releases them so the mapping can actually drop — without
        #: this, ``SharedMemory``'s finaliser hits ``BufferError:
        #: cannot close exported pointers exist`` at interpreter
        #: shutdown in every process still holding a field view.
        self._views: List[memoryview] = []

    @classmethod
    def build(cls, grid: Grid, goals: Iterable[Cell]) -> "FieldArena":
        """Flood every distinct passable goal into one shared block."""
        distinct: List[Cell] = []
        seen = set()
        for goal in goals:
            if goal not in seen and grid.passable(goal):
                seen.add(goal)
                distinct.append(goal)
        n_cells = grid.n_cells
        size = max(4 * n_cells * len(distinct), 1)
        shm = shared_memory.SharedMemory(create=True, size=size)
        slots: Dict[Cell, int] = {}
        infinity = n_cells + 1
        for i, goal in enumerate(distinct):
            view = memoryview(shm.buf)[4 * n_cells * i:
                                       4 * n_cells * (i + 1)]
            cast = view.cast("i")
            cast[:] = grid.distance_flat(goal, unreached=infinity)
            cast.release()
            view.release()
            slots[goal] = i
        return cls(shm, grid.height, n_cells, slots, owner=True)

    def handle(self) -> FieldArenaHandle:
        """The picklable attachment token for this arena."""
        return FieldArenaHandle(self._shm.name, self._height,
                                self._n_cells,
                                tuple(self._slots.items()))

    def goals(self) -> Tuple[Cell, ...]:
        return tuple(self._slots)

    def field(self, goal: Cell) -> Optional[HeuristicField]:
        """A zero-copy :class:`HeuristicField` view, or ``None``."""
        slot = self._slots.get(goal)
        if slot is None:
            return None
        n = self._n_cells
        flat = memoryview(self._shm.buf)[4 * n * slot:
                                         4 * n * (slot + 1)].cast("i")
        self._views.append(flat)
        return HeuristicField.from_flat(goal, self._height, flat)

    def nbytes(self) -> int:
        return self._shm.size

    def __len__(self) -> int:
        return len(self._slots)

    def close(self) -> None:
        """Release the handed-out views and the shared block.

        The owner additionally unlinks; it should close only after
        every worker that attached has exited.  Attachers get this
        registered as an :mod:`atexit` hook by
        :func:`attach_field_arena`, so their mappings drop cleanly
        before interpreter teardown; fields served from the arena stop
        being readable afterwards, which only ever happens at process
        exit.  Idempotent.
        """
        for view in self._views:
            try:
                view.release()
            except BufferError:  # pragma: no cover - still sub-exported
                pass
        self._views.clear()
        try:
            if self._owner:
                try:
                    self._shm.unlink()
                except FileNotFoundError:  # pragma: no cover - gone
                    pass
            self._shm.close()
        except BufferError:  # pragma: no cover - foreign view alive
            pass


def attach_field_arena(handle: FieldArenaHandle) -> FieldArena:
    """Open an existing arena from its handle (worker side).

    Raises ``FileNotFoundError`` when the block no longer exists (e.g.
    a checkpoint restored after the owning run closed it); callers
    treat that as "no arena" and fall back to local floods.
    """
    try:
        # 3.13+ spells "attachment, not ownership" directly; without it
        # the attach would enrol the block with the resource tracker,
        # which unlinks it when *this* process exits — yanking it from
        # under the owner and every sibling (bpo-38119).
        shm = shared_memory.SharedMemory(name=handle.name, track=False)
    except TypeError:  # pragma: no cover - depends on interpreter
        # Pre-3.13: suppress the tracker registration for the duration
        # of the attach (the documented workaround for the same bug).
        from multiprocessing import resource_tracker
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=handle.name)
        finally:
            resource_tracker.register = original
    arena = FieldArena(shm, handle.height, handle.n_cells,
                       dict(handle.slots), owner=False)
    # Orderly mapping teardown at process exit (see FieldArena.close).
    atexit.register(arena.close)
    return arena


class HeuristicFieldCache:
    """Memoised :class:`HeuristicField` per goal, owned by each planner.

    Pickers and rack homes recur as goals thousands of times per run; one
    BFS per distinct goal amortises to almost nothing, and reusing the
    field object means repeated legs to the same goal stop re-allocating
    per-call heuristic closures.  The footprint is observable via
    :meth:`memory_bytes` but deliberately kept out of the Fig. 12 MC
    metric (see ``Planner._extra_memory_bytes``).
    """

    #: Cap on cached fields before the cache resets; planner goals are a
    #: bounded set (rack homes + pickers), so this only guards pathological
    #: callers that sweep goals across the whole floor.
    _FIELD_CAP = 1024

    def __init__(self, grid: Grid) -> None:
        self._grid = grid
        self._fields: Dict[Cell, HeuristicField] = {}
        self._invalidation_listeners: List[weakref.ref] = []
        self._arena: Optional[FieldArena] = None

    def attach_arena(self, arena: Optional[FieldArena]) -> None:
        """Serve arena goals as zero-copy views instead of re-flooding.

        Misses for goals outside the arena still flood locally, so an
        arena is purely an accelerator — behaviour is identical with or
        without one (the views are value-identical by construction).
        """
        self._arena = arena

    def add_invalidation_listener(self, listener: Callable[[], None]) -> None:
        """Register a hook fired whenever the field cache resets.

        Derived caches (the tier-0
        :class:`~repro.pathfinding.free_flow.FreeFlowPathCache`) key work
        off these fields; the hook lets them drop their entries in
        lockstep with the cap-driven reset.  Rebuilt fields are
        bit-identical (the BFS is deterministic over the immutable grid),
        so the hook is bookkeeping hygiene, not a correctness need.
        Bound-method listeners are held weakly — registering must not
        extend a derived cache's lifetime, and dead listeners are pruned
        at fire time — so a caller that builds chains repeatedly over one
        long-lived field cache leaks nothing.  Plain callables (lambdas,
        partials) are held strongly: their only reference is often the
        argument itself, and a silently-dead hook would be worse than the
        retention.
        """
        if hasattr(listener, "__self__"):
            ref = weakref.WeakMethod(listener)
        else:
            def ref(listener=listener):  # strong holder, same call shape
                return listener
        self._invalidation_listeners.append(ref)

    def field(self, goal: Cell) -> HeuristicField:
        """Return (building if needed) the exact field toward ``goal``."""
        field = self._fields.get(goal)
        if field is None:
            if len(self._fields) >= self._FIELD_CAP:
                self._fields.clear()
                live = []
                for ref in self._invalidation_listeners:
                    listener = ref()
                    if listener is not None:
                        listener()
                        live.append(ref)
                self._invalidation_listeners = live
            if self._arena is not None:
                field = self._arena.field(goal)
            if field is None:
                field = HeuristicField(self._grid, goal)
            self._fields[goal] = field
        return field

    def peek(self, goal: Cell) -> Optional[HeuristicField]:
        """The field toward ``goal`` if already materialised, else None.

        Consults the memo and the attached arena without flooding —
        the O(1) reachability oracle the shortest-path cache uses to
        fail disconnected pairs fast.
        """
        field = self._fields.get(goal)
        if field is None and self._arena is not None:
            field = self._arena.field(goal)
        return field

    def distance(self, source: Cell, goal: Cell) -> int:
        """True shortest-path distance (≥ grid size if unreachable)."""
        return self.field(goal)(source)

    def memory_bytes(self) -> int:
        """Approximate footprint of all cached fields."""
        return sum(field.nbytes for field in self._fields.values())

    def __len__(self) -> int:
        return len(self._fields)
