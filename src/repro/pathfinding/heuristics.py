"""Search heuristics for the A* family.

The paper uses the Manhattan distance h-value (Sec. V-C).  On layouts with
blocked cells Manhattan can underestimate badly, so we also provide an
exact "true distance" heuristic backed by one BFS from the goal — a
standard MAPF trick that stays admissible and is reusable across the many
searches that share a goal (every delivery to the same picker, for
instance).
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..types import Cell, manhattan
from ..warehouse.grid import Grid

#: A heuristic maps a cell to a lower bound on its distance to the goal.
Heuristic = Callable[[Cell], int]


def manhattan_heuristic(goal: Cell) -> Heuristic:
    """The paper's h-value: Manhattan distance to ``goal``."""

    def h(cell: Cell) -> int:
        return manhattan(cell, goal)

    return h


def true_distance_heuristic(grid: Grid, goal: Cell) -> Heuristic:
    """Exact shortest-path distance to ``goal`` via one reverse BFS.

    Unreachable cells get an effectively infinite value so A* abandons
    them immediately instead of expanding toward a dead end.
    """
    dist = grid.bfs_distances(goal)
    infinity = grid.n_cells + 1

    def h(cell: Cell) -> int:
        d = int(dist[cell])
        return d if d >= 0 else infinity

    return h


class HeuristicCache:
    """Memoised true-distance heuristics keyed by goal cell.

    Pickers and rack homes recur as goals thousands of times per run; one
    BFS per distinct goal amortises to almost nothing.  The cache's
    footprint is reported to the MC metric by the planners that own it.
    """

    def __init__(self, grid: Grid) -> None:
        self._grid = grid
        self._by_goal: Dict[Cell, np.ndarray] = {}

    def heuristic(self, goal: Cell) -> Heuristic:
        """Return (building if needed) the exact heuristic toward ``goal``."""
        table = self._by_goal.get(goal)
        if table is None:
            table = self._grid.bfs_distances(goal)
            self._by_goal[goal] = table
        infinity = self._grid.n_cells + 1

        def h(cell: Cell) -> int:
            d = int(table[cell])
            return d if d >= 0 else infinity

        return h

    def distance(self, source: Cell, goal: Cell) -> int:
        """True shortest-path distance (−1 if unreachable)."""
        table = self._by_goal.get(goal)
        if table is None:
            table = self._grid.bfs_distances(goal)
            self._by_goal[goal] = table
        return int(table[source])

    def memory_bytes(self) -> int:
        """Approximate footprint of all cached tables."""
        return sum(t.nbytes for t in self._by_goal.values())

    def __len__(self) -> int:
        return len(self._by_goal)
