"""Search heuristics for the A* family.

The paper uses the Manhattan distance h-value (Sec. V-C).  On layouts with
blocked cells Manhattan can underestimate badly, so we also provide an
exact "true distance" heuristic backed by one BFS from the goal — a
standard MAPF trick that stays admissible and is reusable across the many
searches that share a goal (every delivery to the same picker, for
instance).

Two representations coexist.  The closure-based heuristics
(:func:`manhattan_heuristic`, :func:`true_distance_heuristic`) satisfy the
callable :data:`Heuristic` protocol.  :class:`HeuristicField` additionally
exposes the distances as a flat list indexed by cell index (``x·H + y``),
which is what the packed-integer spatiotemporal A* core consumes — one
list index per h-lookup instead of a closure call.  On open floors the
field equals Manhattan everywhere (so searches are bit-identical to the
paper's h-value); on obstructed floors it is *tighter* while staying
admissible and consistent.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, List

from ..config import PAPER_SCALE_MIN_CELLS
from ..types import Cell, manhattan
from ..warehouse.grid import Grid

#: A heuristic maps a cell to a lower bound on its distance to the goal.
Heuristic = Callable[[Cell], int]


def manhattan_heuristic(goal: Cell) -> Heuristic:
    """The paper's h-value: Manhattan distance to ``goal``."""

    def h(cell: Cell) -> int:
        return manhattan(cell, goal)

    return h


def true_distance_heuristic(grid: Grid, goal: Cell) -> Heuristic:
    """Exact shortest-path distance to ``goal`` via one reverse BFS.

    Unreachable cells get an effectively infinite value so A* abandons
    them immediately instead of expanding toward a dead end.
    """
    dist = grid.bfs_distances(goal)
    infinity = grid.n_cells + 1

    def h(cell: Cell) -> int:
        d = int(dist[cell])
        return d if d >= 0 else infinity

    return h


class _LazyManhattanFlat:
    """A flat-indexed Manhattan field computed per lookup, never stored.

    On a grid with no blocked cells the exact BFS distance *is* the
    Manhattan distance for every cell (the 4-connected rectangle has no
    detours), so the eager O(HW) list a :class:`HeuristicField` normally
    builds — ~0.1 s and megabytes per goal on the paper-true 541×302
    floor, times thousands of distinct rack/picker goals — can be
    replaced by two subtractions at lookup time.  Values are identical
    by construction, so searches, descents and tie-breaking are
    bit-identical to the eager field's.
    """

    __slots__ = ("_gx", "_gy", "_height", "_n_cells")

    def __init__(self, goal: Cell, height: int, n_cells: int) -> None:
        self._gx, self._gy = goal
        self._height = height
        self._n_cells = n_cells

    def __getitem__(self, ci: int) -> int:
        x, y = divmod(ci, self._height)
        return abs(x - self._gx) + abs(y - self._gy)

    def __len__(self) -> int:
        return self._n_cells


class HeuristicField:
    """Exact distance-to-goal field with O(1) flat indexed lookup.

    ``flat[x * H + y]`` is the true shortest-path distance from ``(x, y)``
    to ``goal`` (cells that cannot reach the goal get an effectively
    infinite value so A* abandons them immediately).  Built from one
    reverse BFS; admissible and consistent by construction.  Instances are
    also plain callables, so they slot anywhere a :data:`Heuristic` is
    accepted.

    On *unobstructed* floors of at least
    :data:`~repro.config.PAPER_SCALE_MIN_CELLS` cells, ``flat`` is a
    :class:`_LazyManhattanFlat` — value-identical (BFS distance equals
    Manhattan when nothing blocks), zero build cost and zero footprint.
    Small floors keep the eager list: the lookup is a hair faster and
    every historical benchmark/golden ran on it.
    """

    __slots__ = ("goal", "flat", "nbytes", "_height")

    def __init__(self, grid: Grid, goal: Cell) -> None:
        self.goal = goal
        self._height = grid.height
        if grid.n_cells >= PAPER_SCALE_MIN_CELLS and not grid.blocked_cells:
            self.flat = _LazyManhattanFlat(goal, grid.height, grid.n_cells)
            self.nbytes = 64
            return
        dist = grid.bfs_distances(goal)
        infinity = grid.n_cells + 1
        self.flat: List[int] = [d if d >= 0 else infinity
                                for d in dist.ravel().tolist()]
        #: Reported footprint: the list skeleton (8 B pointer per cell +
        #: header), consistent with the measured-container-cost estimates
        #: the reservation structures use.  The boxed ints are mostly
        #: shared small ints, so they are not charged per entry.
        self.nbytes = 64 + 8 * len(self.flat)

    def __call__(self, cell: Cell) -> int:
        return self.flat[cell[0] * self._height + cell[1]]


class HeuristicFieldCache:
    """Memoised :class:`HeuristicField` per goal, owned by each planner.

    Pickers and rack homes recur as goals thousands of times per run; one
    BFS per distinct goal amortises to almost nothing, and reusing the
    field object means repeated legs to the same goal stop re-allocating
    per-call heuristic closures.  The footprint is observable via
    :meth:`memory_bytes` but deliberately kept out of the Fig. 12 MC
    metric (see ``Planner._extra_memory_bytes``).
    """

    #: Cap on cached fields before the cache resets; planner goals are a
    #: bounded set (rack homes + pickers), so this only guards pathological
    #: callers that sweep goals across the whole floor.
    _FIELD_CAP = 1024

    def __init__(self, grid: Grid) -> None:
        self._grid = grid
        self._fields: Dict[Cell, HeuristicField] = {}
        self._invalidation_listeners: List[weakref.ref] = []

    def add_invalidation_listener(self, listener: Callable[[], None]) -> None:
        """Register a hook fired whenever the field cache resets.

        Derived caches (the tier-0
        :class:`~repro.pathfinding.free_flow.FreeFlowPathCache`) key work
        off these fields; the hook lets them drop their entries in
        lockstep with the cap-driven reset.  Rebuilt fields are
        bit-identical (the BFS is deterministic over the immutable grid),
        so the hook is bookkeeping hygiene, not a correctness need.
        Bound-method listeners are held weakly — registering must not
        extend a derived cache's lifetime, and dead listeners are pruned
        at fire time — so a caller that builds chains repeatedly over one
        long-lived field cache leaks nothing.  Plain callables (lambdas,
        partials) are held strongly: their only reference is often the
        argument itself, and a silently-dead hook would be worse than the
        retention.
        """
        if hasattr(listener, "__self__"):
            ref = weakref.WeakMethod(listener)
        else:
            def ref(listener=listener):  # strong holder, same call shape
                return listener
        self._invalidation_listeners.append(ref)

    def field(self, goal: Cell) -> HeuristicField:
        """Return (building if needed) the exact field toward ``goal``."""
        field = self._fields.get(goal)
        if field is None:
            if len(self._fields) >= self._FIELD_CAP:
                self._fields.clear()
                live = []
                for ref in self._invalidation_listeners:
                    listener = ref()
                    if listener is not None:
                        listener()
                        live.append(ref)
                self._invalidation_listeners = live
            field = HeuristicField(self._grid, goal)
            self._fields[goal] = field
        return field

    def distance(self, source: Cell, goal: Cell) -> int:
        """True shortest-path distance (≥ grid size if unreachable)."""
        return self.field(goal)(source)

    def memory_bytes(self) -> int:
        """Approximate footprint of all cached fields."""
        return sum(field.nbytes for field in self._fields.values())

    def __len__(self) -> int:
        return len(self._fields)
