"""Path representation and helpers.

A path is the unit the TPRW problem asks planners to emit: ``u_a``, a
timed sequence of cells for one robot.  We store it as an immutable list of
``(t, x, y)`` triples with consecutive integer timestamps; between
consecutive entries the robot either moves to a cardinal neighbour or waits
in place.  This is the exact structure the conflict definitions of Sec. II
are stated over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from ..errors import ConflictError
from ..types import Cell, TimedCell, Tick


@dataclass(frozen=True)
class Path:
    """An immutable timed path for a single robot.

    Attributes
    ----------
    steps:
        Tuple of ``(t, x, y)`` with strictly consecutive ``t`` and each
        spatial step being a wait or a unit cardinal move.
    """

    steps: Tuple[TimedCell, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ConflictError("a path must contain at least one step")
        for (t0, x0, y0), (t1, x1, y1) in zip(self.steps, self.steps[1:]):
            if t1 != t0 + 1:
                raise ConflictError(
                    f"non-consecutive timestamps {t0} -> {t1} in path")
            # abs-form of ``manhattan`` inlined: this validation runs on
            # every constructed path step and the call overhead alone is
            # measurable at fleet scale.
            if abs(x1 - x0) + abs(y1 - y0) > 1:
                raise ConflictError(
                    f"illegal jump ({x0},{y0}) -> ({x1},{y1}) in one tick")

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_cells(cls, cells: Sequence[Cell], start_time: Tick) -> "Path":
        """Build a path from a cell sequence starting at ``start_time``."""
        steps = tuple((start_time + i, x, y) for i, (x, y) in enumerate(cells))
        return cls(steps)

    @classmethod
    def waiting(cls, cell: Cell, start_time: Tick, duration: int) -> "Path":
        """A path that waits in ``cell`` for ``duration`` ticks."""
        if duration < 0:
            raise ConflictError("wait duration must be >= 0")
        x, y = cell
        steps = tuple((start_time + i, x, y) for i in range(duration + 1))
        return cls(steps)

    # -- accessors -----------------------------------------------------------

    @property
    def start_time(self) -> Tick:
        """Timestamp of the first step."""
        return self.steps[0][0]

    @property
    def end_time(self) -> Tick:
        """Timestamp at which the robot occupies the final cell."""
        return self.steps[-1][0]

    @property
    def source(self) -> Cell:
        """First cell of the path."""
        __, x, y = self.steps[0]
        return (x, y)

    @property
    def goal(self) -> Cell:
        """Final cell of the path."""
        __, x, y = self.steps[-1]
        return (x, y)

    @property
    def duration(self) -> int:
        """Number of ticks the path spans (0 for a single-step path)."""
        return self.end_time - self.start_time

    def cell_at(self, t: Tick) -> Cell:
        """The cell occupied at time ``t`` (clamped to the endpoints).

        Before ``start_time`` the robot is at the source; after
        ``end_time`` it stays at the goal — matching how the simulator
        treats a robot that has finished a leg and is waiting for the next.
        """
        if t <= self.start_time:
            return self.source
        if t >= self.end_time:
            return self.goal
        __, x, y = self.steps[t - self.start_time]
        return (x, y)

    def cells_between(self, t_from: Tick, t_to: Tick) -> List[Cell]:
        """The cells occupied over ``[t_from, t_to]`` inclusive, clamped.

        One vectorised slice instead of a ``cell_at`` call per tick: the
        event-driven simulator materialises a robot's motion per *leg*
        (or per processed span), so consumers that still need the
        tick-by-tick trail — renderers, conflict audits, tests — expand
        it here in one call.  Ticks outside the path clamp to the
        endpoints, mirroring :meth:`cell_at`.
        """
        if t_to < t_from:
            raise ConflictError(
                f"cells_between span [{t_from}, {t_to}] is empty")
        start, end = self.start_time, self.end_time
        cells: List[Cell] = []
        if t_from < start:
            cells.extend([self.source] * (min(start, t_to + 1) - t_from))
        lo, hi = max(t_from, start), min(t_to, end)
        if lo <= hi:
            cells.extend((x, y) for __, x, y in
                         self.steps[lo - start:hi - start + 1])
        if t_to > end:
            cells.extend([self.goal] * (t_to - max(end, t_from - 1)))
        return cells

    def truncate_at(self, t: Tick) -> "Path":
        """The prefix of this path through tick ``t`` inclusive.

        The windowed planning pipeline commits and executes only the
        conflict-checked prefix of a search result; everything after
        ``t`` is dropped and replanned when the robot gets there.  A
        ``t`` at or past ``end_time`` returns the path unchanged.
        """
        if t >= self.end_time:
            return self
        if t < self.start_time:
            raise ConflictError(
                f"cannot truncate path starting at {self.start_time} "
                f"to tick {t}")
        return Path(self.steps[:t - self.start_time + 1])

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[TimedCell]:
        return iter(self.steps)

    def concat(self, other: "Path") -> "Path":
        """Join two paths where ``other`` starts when ``self`` ends.

        ``other`` must begin at ``self``'s goal with timestamp
        ``self.end_time`` (the shared step is de-duplicated).
        """
        if other.start_time != self.end_time or other.source != self.goal:
            raise ConflictError(
                f"cannot concat: {self.goal}@{self.end_time} vs "
                f"{other.source}@{other.start_time}")
        return Path(self.steps + other.steps[1:])

    def spatial_cells(self) -> List[Cell]:
        """The cell sequence without timestamps (useful in tests)."""
        return [(x, y) for __, x, y in self.steps]
