"""The reservation interface shared by both conflict structures.

The spatiotemporal A* search (Sec. V-C) and the cache-aided finisher
(Sec. VI-B) are written against this small abstract interface; the
*spatiotemporal graph* (memory-heavy, Sec. V-C) and the *conflict detection
table* (compact, Sec. VI-B) are its two implementations.  Swapping one for
the other is the A4 ablation in DESIGN.md.

Semantics: ``is_free(t, cell)`` guards single-grid conflicts;
``edge_free(t, a, b)`` guards inter-grid (swap) conflicts for a move that
departs ``a`` at ``t`` and arrives at ``b`` at ``t + 1``.

Both probe families exist in two signatures.  The tuple methods are the
readable public API; the ``*_packed`` methods take grid-independent packed
cell keys (``x << 16 | y``, see :func:`repro.types.pack_cell`) and are what
the packed-integer search core calls — implementations override them with
direct integer set probes so the hot loop never builds a tuple.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..types import CELL_KEY_MASK, CELL_KEY_SHIFT, Cell, Tick
from .paths import Path

try:  # optional acceleration; every consumer keeps a pure-python path
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None


# -- native mutation kernel selection ----------------------------------------

#: Minimum native-kernel ABI exposing the reservation *mutation* entry
#: points (reserve/unreserve/purge/audit).  A stale ABI-1 artefact still
#: accelerates the search but mutations silently stay pure-python.
MUTATION_KERNEL_ABI = 2

#: The compiled module whose mutation entry points the production tables
#: call, or ``None`` for the pure-python bodies.  Installed by
#: :func:`set_mutation_kernel` (wired from ``st_astar.set_search_kernel``
#: so one ``REPRO_KERNEL`` switch governs both kernels); tables read it
#: per call rather than capturing it, which keeps them picklable and lets
#: a runtime switch take effect immediately.
_MUTATION_MODULE = None


def set_mutation_kernel(module) -> None:
    """Install (or clear) the compiled mutation kernel.

    ``module`` is the loaded ``_stsearch`` extension or ``None``.  Modules
    predating :data:`MUTATION_KERNEL_ABI` are rejected silently — the
    pure-python bodies are always a correct stand-in.
    """
    global _MUTATION_MODULE
    if module is not None and getattr(
            module, "KERNEL_ABI", 0) < MUTATION_KERNEL_ABI:
        module = None
    _MUTATION_MODULE = module


def mutation_kernel_name() -> str:
    """``"compiled"`` or ``"python"``: which mutation bodies run now."""
    return "compiled" if _MUTATION_MODULE is not None else "python"


# -- spatial tiles (region sharding) ----------------------------------------

def tile_of_cell(x: int, y: int, bits: int) -> int:
    """Tile id of cell ``(x, y)`` for ``2**bits``-cell-square tiles.

    Tile ids reuse the cell-key packing (tile-x in the high half-word) so
    a tile id is one small int and the mapping is a pair of shifts.
    """
    return ((x >> bits) << CELL_KEY_SHIFT) | (y >> bits)


def tile_of_key(key: int, bits: int) -> int:
    """Tile id of a packed cell key (``x << 16 | y``); see
    :func:`tile_of_cell`."""
    return ((key >> (CELL_KEY_SHIFT + bits)) << CELL_KEY_SHIFT) | (
        (key & CELL_KEY_MASK) >> bits)


# -- packed descent chains ---------------------------------------------------

#: Bit positions of the tick in the combined (tick, vertex) / (tick, edge)
#: probe integers of :class:`PackedChain`.  A vertex key is 32 bits, so the
#: tick sits above bit 32; an edge is encoded as (source_key, direction) in
#: 34 bits, so its tick sits above bit 34.
VERTEX_TICK_SHIFT = 32
EDGE_TICK_SHIFT = 34

#: Ticks must stay below this for the combined probes to fit an int64
#: (``tick << 34`` plus a 34-bit edge code); callers fall back to the
#: pure-python audit past it.  Far beyond ``SimulationConfig.max_ticks``.
CHAIN_TICK_LIMIT = 1 << 28

#: Packed-key delta of each cardinal move -> 2-bit direction code.  An
#: edge ``a -> b`` is losslessly ``(key_a << 2) | code(key_b - key_a)``
#: because reserved edges only ever connect 4-adjacent cells.
DIR_CODES = {1 << CELL_KEY_SHIFT: 0, -(1 << CELL_KEY_SHIFT): 1, 1: 2, -1: 3}


class PackedChain:
    """A free-flow descent chain in every representation the audits use.

    Built once when the chain is memoised (see
    :class:`~repro.pathfinding.free_flow.FreeFlowPathCache`), then audited
    thousands of times at different start ticks.  Every consecutive pair
    of chain cells is a *move* (greedy descents strictly descend the exact
    h-field, so they never wait), which is what lets the audit enumerate
    arrivals and traversals by plain index arithmetic.

    Attributes
    ----------
    cells:
        The cell tuple, including both endpoints (the legacy
        ``descent()`` payload).
    keys:
        Packed cell keys (``x << 16 | y``) per chain cell.
    flat:
        Flat cell indices (``x·H + y``) per chain cell, for dense
        (layer-indexed) reservation structures.
    vshift, eshift:
        Optional int64 numpy arrays for the vectorised audit:
        ``vshift[i] = (i << 32) | keys[i]`` so that the combined
        (tick, vertex) probe of arrival ``i`` at start tick ``t`` is the
        single vectorised add ``(t << 32) + vshift[i]``; ``eshift[i]``
        likewise encodes the *reversed* edge probed for the move
        ``i -> i+1`` (the swap probe looks for the stored opposing
        traversal) against its departure tick.  ``None`` when numpy is
        unavailable or a chain step is not a cardinal move.
    """

    __slots__ = ("cells", "keys", "flat", "vshift", "eshift")

    def __init__(self, cells: Tuple[Cell, ...], keys: List[int],
                 flat: List[int]) -> None:
        self.cells = cells
        self.keys = keys
        self.flat = flat
        self.vshift = None
        self.eshift = None
        if _np is not None and len(keys) > 1:
            ka = _np.array(keys, dtype=_np.int64)
            idx = _np.arange(len(keys), dtype=_np.int64)
            delta = ka[:-1] - ka[1:]
            code = _np.full(len(keys) - 1, -1, dtype=_np.int64)
            for value, direction in DIR_CODES.items():
                code[delta == value] = direction
            if (code >= 0).all():
                self.vshift = (idx << VERTEX_TICK_SHIFT) | ka
                self.eshift = ((idx[:-1] << EDGE_TICK_SHIFT)
                               | (ka[1:] << 2) | code)

    def __len__(self) -> int:
        return len(self.keys)


class ReservationTable(abc.ABC):
    """Abstract conflict bookkeeping for already-planned paths."""

    #: Which kernel ran the *last* mutation (``"compiled"``/``"python"``),
    #: or ``""`` for structures that never report.  Read by the planner's
    #: per-op kernel tags in ``PlannerStats``.
    mutation_kernel: str = ""

    #: Monotonic mutation counter, bumped by every reserve/unreserve/
    #: purge on the production tables; ``None`` on structures that do not
    #: track it.  The planner keys its cached ``memory_bytes`` aggregate
    #: on this stamp, so the class default keeps legacy tables (and old
    #: pickles) on the always-recompute path.
    mutation_stamp = None

    @abc.abstractmethod
    def is_free(self, t: Tick, cell: Cell) -> bool:
        """Whether ``cell`` is unreserved at time ``t``."""

    @abc.abstractmethod
    def edge_free(self, t: Tick, source: Cell, target: Cell) -> bool:
        """Whether moving ``source``→``target`` during tick ``t`` avoids a swap."""

    @abc.abstractmethod
    def reserve_path(self, path: Path, horizon: Optional[Tick] = None) -> None:
        """Insert the vertices and edges of ``path`` into the table.

        ``horizon`` is the windowed-commit bound (an *absolute* tick):
        vertices after it and edges arriving after it are not inserted.
        The planning pipeline commits only the conflict-checked prefix of
        a windowed search result this way; the uncommitted tail is
        replanned — and re-committed — when the robot reaches the horizon.
        ``None`` commits the whole path (the classic full-search case).
        """

    @abc.abstractmethod
    def purge_before(self, t: Tick) -> None:
        """Drop all reservations strictly before ``t`` (the periodic update)."""

    def unreserve_path(self, path: Path,
                       horizon: Optional[Tick] = None) -> None:
        """Remove a previously reserved path (inverse of ``reserve_path``).

        Iterates exactly the vertices and edges ``reserve_path(path,
        horizon)`` would have inserted.  The caller must only unreserve
        paths it exclusively owns: a vertex shared with another live path
        is removed outright.  Production tables implement this; the
        legacy structures raise.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support unreserve_path")

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Approximate structure footprint, for the MC metric."""

    def recount(self) -> Dict[str, int]:
        """Recompute ``live_counts`` from scratch, ignoring counters.

        The debug/verification twin of :meth:`live_counts`: walks the
        underlying containers and tallies them directly, so the property
        suite (and a suspicious operator) can assert the incremental
        counters never drift.  Structures without incremental counters
        simply answer :meth:`live_counts`.
        """
        return self.live_counts()

    def live_counts(self) -> Dict[str, int]:
        """Occupancy counters for service-mode telemetry.

        The soak harness samples these at every window boundary to prove
        the memory-flatness claim: under the periodic purge, live entries
        and buckets must track the reservation *window*, not the run
        length.  Implementations extend the dict with their native units
        (entries, tick buckets, dense layers, tiles); the shared footprint
        estimate is always present so heterogeneous structures plot on
        one axis.
        """
        return {"memory_bytes": self.memory_bytes()}

    # -- packed fast path --------------------------------------------------

    def is_free_packed(self, t: Tick, key: int) -> bool:
        """Packed-key :meth:`is_free`; override with a direct int probe."""
        return self.is_free(t, (key >> CELL_KEY_SHIFT, key & CELL_KEY_MASK))

    def edge_free_packed(self, t: Tick, source_key: int,
                         target_key: int) -> bool:
        """Packed-key :meth:`edge_free`; override with a direct int probe."""
        return self.edge_free(
            t,
            (source_key >> CELL_KEY_SHIFT, source_key & CELL_KEY_MASK),
            (target_key >> CELL_KEY_SHIFT, target_key & CELL_KEY_MASK))

    def packed_buckets(self):
        """Expose tick-bucketed reservation sets for the search fast path.

        Implementations whose bookkeeping is literally ``{tick: set of
        packed keys}`` (the CDT) return ``(vertex_buckets, edge_buckets)``
        so the packed A* core can fetch each tick's sets once per
        expansion and probe with bare ``in`` operators.  Structures with a
        different layout return ``None`` and are probed through the
        ``*_packed`` methods instead.
        """
        return None

    def kernel_probe_spec(self):
        """How the native search kernel should probe this structure.

        Returns ``(mode, vertex_obj, edge_obj, tile_bits)`` matching the
        probe modes of ``_kernel/_stsearchmodule.c``.  This base
        implementation answers mode 0 — the generic packed-probe
        callables — so any subclass works with the compiled kernel
        unmodified (each probe calls back into Python, which still beats
        the interpreted expansion loop).  The library's own structures
        override it with their native container layouts (modes 1-4) so
        the hot loop probes C containers directly.  The probe answers are
        bit-identical across modes; the equivalence suite pins that.
        """
        return 0, self.is_free_packed, self.edge_free_packed, 0

    def audit_path(self, path: Path) -> bool:
        """Whether every arrival and move of ``path`` is conflict-free.

        The bulk form of the per-move probes: the tier-0 free-flow fast
        path extracts a candidate path without searching and audits it
        here in one pass — a single hit sends the leg to the full search,
        so the audit only ever has to be *sound*, never clever.  Probes
        exactly what the search core would have probed for the same
        moves: each arrival vertex at its arrival tick and each traversed
        edge at its departure tick; the source vertex at the start tick
        is the robot's own position and is not probed.

        This base implementation goes through :meth:`packed_buckets` when
        the structure is tick-bucketed (one dict hit per tick, bare ``in``
        per key — the same fast path the search core uses) and falls back
        to the tuple probes otherwise; implementations with a different
        native layout (the dense ST graph) override it.
        """
        steps = path.steps
        buckets = self.packed_buckets()
        if buckets is None:
            previous = steps[0]
            for step in steps[1:]:
                t0, x0, y0 = previous
                t1, x1, y1 = step
                if not self.is_free(t1, (x1, y1)):
                    return False
                if ((x0 != x1 or y0 != y1)
                        and not self.edge_free(t0, (x0, y0), (x1, y1))):
                    return False
                previous = step
            return True
        vertex_buckets, edge_buckets = buckets
        previous = steps[0]
        for step in steps[1:]:
            t0, x0, y0 = previous
            t1, x1, y1 = step
            key1 = (x1 << CELL_KEY_SHIFT) | y1
            occupied = vertex_buckets.get(t1)
            if occupied is not None and key1 in occupied:
                return False
            if x0 != x1 or y0 != y1:
                swaps = edge_buckets.get(t0)
                if (swaps is not None
                        and ((key1 << 32)
                             | ((x0 << CELL_KEY_SHIFT) | y0)) in swaps):
                    return False
            previous = step
        return True

    def audit_chain(self, t: Tick, chain: "PackedChain", limit: int) -> bool:
        """Audit the first ``limit`` moves of a packed descent chain.

        Equivalent to :meth:`audit_path` on ``Path.from_cells(
        chain.cells[:limit + 1], t)`` — arrival ``i`` is probed at tick
        ``t + i`` and the traversed edge at its departure tick ``t + i - 1``
        — but takes the chain's precomputed packed keys instead of building
        a timed :class:`~repro.pathfinding.paths.Path` first, so a
        rejected candidate costs no allocation at all.  Requires every
        chain step to be a move (descent chains always are); a wait step
        would probe a spurious self-edge.

        Tick-bucketed implementations answer through
        :meth:`packed_buckets`; others go through the packed probes.  The
        CDT overrides this with a vectorised probe over numpy arrays
        (bit-identical, see :mod:`repro.pathfinding.cdt`).
        """
        keys = chain.keys
        buckets = self.packed_buckets()
        if buckets is None:
            vertex_free = self.is_free_packed
            edge_free = self.edge_free_packed
            for i in range(1, limit + 1):
                if not vertex_free(t + i, keys[i]):
                    return False
                if not edge_free(t + i - 1, keys[i - 1], keys[i]):
                    return False
            return True
        vertex_buckets, edge_buckets = buckets
        for i in range(1, limit + 1):
            occupied = vertex_buckets.get(t + i)
            if occupied is not None and keys[i] in occupied:
                return False
            swaps = edge_buckets.get(t + i - 1)
            if swaps is not None and ((keys[i] << 32) | keys[i - 1]) in swaps:
                return False
        return True

    # -- shared convenience ----------------------------------------------

    def move_allowed(self, t: Tick, source: Cell, target: Cell) -> bool:
        """Whether a robot at ``source`` may be at ``target`` at ``t + 1``.

        Combines the single-grid check on the arrival vertex with the
        inter-grid check on the traversed edge; a wait (``source ==
        target``) only needs the vertex check.
        """
        if not self.is_free(t + 1, target):
            return False
        if source == target:
            return True
        return self.edge_free(t, source, target)


def _stale_ticks(buckets: Dict[Tick, Set[int]], floor: Tick, t: Tick):
    """Ticks in ``[floor, t)`` that may hold a bucket, cheapest way first.

    Walking ``range(floor, t)`` is O(ticks purged) — the normal periodic
    case, where the window advances by the purge cadence.  If a caller
    jumps the floor far ahead of the live window, scanning the bucket keys
    (O(live ticks)) is cheaper; either way the cost never depends on the
    number of stored reservations.
    """
    if t - floor <= len(buckets):
        return range(floor, t)
    return [tick for tick in buckets if tick < t]


class _EdgeMixin:
    """Shared directed-edge bookkeeping for both implementations.

    Traversed timed edges live in per-tick buckets of packed 64-bit keys
    (``source_key << 32 | target_key``); a swap is the presence of the
    reversed key in the departure tick's bucket.  Bucketing by tick makes
    the periodic purge O(ticks purged) — each passed tick is one dict pop —
    where the seed's flat edge set was rebuilt wholesale, O(live edges),
    on every purge.

    Edges below the purge floor are never stored: probes at purged times
    answer "free" anyway (the corresponding vertices are gone), and
    refusing them keeps every live bucket at or above the floor, which is
    what lets the purge walk ``range(old_floor, new_floor)``.
    """

    def __init__(self) -> None:
        self._edge_buckets: Dict[Tick, Set[int]] = {}
        self._n_edges = 0
        self._edge_floor: Tick = 0
        #: Optional ``(t0, x0, y0, x1, y1)`` callback fired once per newly
        #: stored edge — the CDT's vectorised audit index subscribes here
        #: so it sees every insertion without the mixin knowing about it.
        self._edge_note = None

    def _edge_free(self, t: Tick, source: Cell, target: Cell) -> bool:
        return self._edge_free_packed(
            t, (source[0] << CELL_KEY_SHIFT) | source[1],
            (target[0] << CELL_KEY_SHIFT) | target[1])

    def _edge_free_packed(self, t: Tick, source_key: int,
                          target_key: int) -> bool:
        bucket = self._edge_buckets.get(t)
        return bucket is None or (
            (target_key << 32) | source_key) not in bucket

    def _reserve_edges(self, path: Path,
                       horizon: Optional[Tick] = None) -> None:
        steps = path.steps
        buckets = self._edge_buckets
        floor = self._edge_floor
        note = self._edge_note
        # Windowed commit: an edge departing at t0 arrives at t0 + 1, so
        # only edges with t0 < horizon sit inside the committed window.
        ceiling = horizon if horizon is not None else None
        for (t0, x0, y0), (__, x1, y1) in zip(steps, steps[1:]):
            if ceiling is not None and t0 >= ceiling:
                break  # timestamps are consecutive; the rest is later
            if t0 >= floor and (x0 != x1 or y0 != y1):
                key = ((((x0 << CELL_KEY_SHIFT) | y0) << 32)
                       | ((x1 << CELL_KEY_SHIFT) | y1))
                bucket = buckets.get(t0)
                if bucket is None:
                    bucket = buckets[t0] = set()
                if key not in bucket:
                    bucket.add(key)
                    self._n_edges += 1
                    if note is not None:
                        note(t0, x0, y0, x1, y1)

    def _unreserve_edges(self, path: Path,
                         horizon: Optional[Tick] = None) -> None:
        """Remove the edges ``_reserve_edges(path, horizon)`` inserted."""
        buckets = self._edge_buckets
        floor = self._edge_floor
        ceiling = horizon if horizon is not None else None
        for (t0, x0, y0), (__, x1, y1) in zip(path.steps, path.steps[1:]):
            if ceiling is not None and t0 >= ceiling:
                break  # timestamps are consecutive; the rest is later
            if t0 >= floor and (x0 != x1 or y0 != y1):
                key = ((((x0 << CELL_KEY_SHIFT) | y0) << 32)
                       | ((x1 << CELL_KEY_SHIFT) | y1))
                bucket = buckets.get(t0)
                if bucket is not None and key in bucket:
                    bucket.discard(key)
                    self._n_edges -= 1
                    if not bucket:
                        del buckets[t0]

    def _recount_edge_state(self) -> Dict[str, int]:
        """Edge counters recomputed from the buckets (debug twin)."""
        return {"edges": sum(len(bucket)
                             for bucket in self._edge_buckets.values()),
                "edge_ticks": len(self._edge_buckets)}

    def _purge_edges(self, t: Tick) -> None:
        if t <= self._edge_floor:
            return
        buckets = self._edge_buckets
        for tick in _stale_ticks(buckets, self._edge_floor, t):
            bucket = buckets.pop(tick, None)
            if bucket is not None:
                self._n_edges -= len(bucket)
        self._edge_floor = t

    def _edges_memory(self) -> int:
        # Rough per-entry cost of a set of small ints (~100 B measured,
        # matching the seed's tuple-set estimate) plus the per-tick bucket
        # headers the tick-keyed layout adds.
        return 64 + 100 * self._n_edges + 64 * len(self._edge_buckets)

    def _edge_live_counts(self) -> Dict[str, int]:
        """Edge-side occupancy for :meth:`ReservationTable.live_counts`."""
        return {"edges": self._n_edges,
                "edge_ticks": len(self._edge_buckets)}
