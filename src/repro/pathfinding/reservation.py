"""The reservation interface shared by both conflict structures.

The spatiotemporal A* search (Sec. V-C) and the cache-aided finisher
(Sec. VI-B) are written against this small abstract interface; the
*spatiotemporal graph* (memory-heavy, Sec. V-C) and the *conflict detection
table* (compact, Sec. VI-B) are its two implementations.  Swapping one for
the other is the A4 ablation in DESIGN.md.

Semantics: ``is_free(t, cell)`` guards single-grid conflicts;
``edge_free(t, a, b)`` guards inter-grid (swap) conflicts for a move that
departs ``a`` at ``t`` and arrives at ``b`` at ``t + 1``.
"""

from __future__ import annotations

import abc
from typing import Dict, Set, Tuple

from ..types import Cell, Tick
from .paths import Path


class ReservationTable(abc.ABC):
    """Abstract conflict bookkeeping for already-planned paths."""

    @abc.abstractmethod
    def is_free(self, t: Tick, cell: Cell) -> bool:
        """Whether ``cell`` is unreserved at time ``t``."""

    @abc.abstractmethod
    def edge_free(self, t: Tick, source: Cell, target: Cell) -> bool:
        """Whether moving ``source``→``target`` during tick ``t`` avoids a swap."""

    @abc.abstractmethod
    def reserve_path(self, path: Path) -> None:
        """Insert every vertex and edge of ``path`` into the table."""

    @abc.abstractmethod
    def purge_before(self, t: Tick) -> None:
        """Drop all reservations strictly before ``t`` (the periodic update)."""

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Approximate structure footprint, for the MC metric."""

    # -- shared convenience ----------------------------------------------

    def move_allowed(self, t: Tick, source: Cell, target: Cell) -> bool:
        """Whether a robot at ``source`` may be at ``target`` at ``t + 1``.

        Combines the single-grid check on the arrival vertex with the
        inter-grid check on the traversed edge; a wait (``source ==
        target``) only needs the vertex check.
        """
        if not self.is_free(t + 1, target):
            return False
        if source == target:
            return True
        return self.edge_free(t, source, target)


class _EdgeMixin:
    """Shared directed-edge bookkeeping for both implementations.

    Stores the set of traversed timed edges ``(t, source, target)``; a swap
    is the presence of the reversed edge at the same tick.
    """

    def __init__(self) -> None:
        self._edges: Set[Tuple[Tick, Cell, Cell]] = set()

    def _edge_free(self, t: Tick, source: Cell, target: Cell) -> bool:
        return (t, target, source) not in self._edges

    def _reserve_edges(self, path: Path) -> None:
        steps = path.steps
        for (t0, x0, y0), (__, x1, y1) in zip(steps, steps[1:]):
            if (x0, y0) != (x1, y1):
                self._edges.add((t0, (x0, y0), (x1, y1)))

    def _purge_edges(self, t: Tick) -> None:
        self._edges = {edge for edge in self._edges if edge[0] >= t}

    def _edges_memory(self) -> int:
        # Rough per-entry cost of a set of small tuples (~100 B measured).
        return 64 + 100 * len(self._edges)
