"""Shared primitive types used across the :mod:`repro` package.

The whole library works on a 4-connected grid with discrete time.  To keep
hot loops fast we represent coordinates as plain ``(x, y)`` tuples rather
than objects; this module centralises the aliases and the few primitive
helpers (neighbourhood, Manhattan distance) that everything else builds on.
"""

from __future__ import annotations

from typing import Iterator, Tuple

#: A grid cell, ``(x, y)`` with ``0 <= x < width`` and ``0 <= y < height``.
Cell = Tuple[int, int]

#: A timed grid cell, ``(t, x, y)`` — one vertex of the spatiotemporal graph.
TimedCell = Tuple[int, int, int]

#: Discrete simulation time (ticks of unit robot motion).
Tick = int

#: The four cardinal moves.  Waiting in place is modelled separately by the
#: spatiotemporal search as a fifth "stay" action.
CARDINAL_MOVES: Tuple[Cell, ...] = ((1, 0), (-1, 0), (0, 1), (0, -1))


def manhattan(a: Cell, b: Cell) -> int:
    """Return the Manhattan (L1) distance between two cells.

    This is the admissible heuristic used by both the spatial and the
    spatiotemporal A* searches (the paper's h-value, Sec. V-C).
    """
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def neighbours4(cell: Cell) -> Iterator[Cell]:
    """Yield the four cardinal neighbours of ``cell`` (unbounded).

    Bounds and passability checks belong to the grid, not here, so this
    helper stays allocation-light for the inner search loops.
    """
    x, y = cell
    yield x + 1, y
    yield x - 1, y
    yield x, y + 1
    yield x, y - 1
