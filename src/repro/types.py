"""Shared primitive types used across the :mod:`repro` package.

The whole library works on a 4-connected grid with discrete time.  To keep
hot loops fast we represent coordinates as plain ``(x, y)`` tuples rather
than objects; this module centralises the aliases and the few primitive
helpers (neighbourhood, Manhattan distance) that everything else builds on.
"""

from __future__ import annotations

from typing import Iterator, Tuple

#: A grid cell, ``(x, y)`` with ``0 <= x < width`` and ``0 <= y < height``.
Cell = Tuple[int, int]

#: A timed grid cell, ``(t, x, y)`` — one vertex of the spatiotemporal graph.
TimedCell = Tuple[int, int, int]

#: Discrete simulation time (ticks of unit robot motion).
Tick = int

#: The four cardinal moves.  Waiting in place is modelled separately by the
#: spatiotemporal search as a fifth "stay" action.
CARDINAL_MOVES: Tuple[Cell, ...] = ((1, 0), (-1, 0), (0, 1), (0, -1))

#: Bit width of each coordinate in a packed cell key.  16 bits per axis
#: caps grids at 65 536 cells a side — far beyond any warehouse floor —
#: and keeps a packed *edge* (two cells) inside 64 bits.
CELL_KEY_SHIFT = 16
CELL_KEY_MASK = (1 << CELL_KEY_SHIFT) - 1


def pack_cell(cell: Cell) -> int:
    """Pack ``(x, y)`` into one grid-independent integer key.

    The hot loops (spatiotemporal A*, reservation probes) inline the
    shift/mask instead of calling this; the helper exists for cold paths
    and tests, and documents the encoding in one place.
    """
    return (cell[0] << CELL_KEY_SHIFT) | cell[1]


def unpack_cell(key: int) -> Cell:
    """Invert :func:`pack_cell`."""
    return key >> CELL_KEY_SHIFT, key & CELL_KEY_MASK


def manhattan(a: Cell, b: Cell) -> int:
    """Return the Manhattan (L1) distance between two cells.

    This is the admissible heuristic used by both the spatial and the
    spatiotemporal A* searches (the paper's h-value, Sec. V-C).
    """
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def neighbours4(cell: Cell) -> Iterator[Cell]:
    """Yield the four cardinal neighbours of ``cell`` (unbounded).

    Bounds and passability checks belong to the grid, not here, so this
    helper stays allocation-light for the inner search loops.
    """
    x, y = cell
    yield x + 1, y
    yield x - 1, y
    yield x, y + 1
    yield x, y - 1
