"""The scenario registry: Table II datasets plus the scaling families.

Paper scale (Table II) versus the default scale here:

    ============  ===========  ========  ========  =======  ==============
    dataset       paper grid   items     robots    racks    ours (default)
    ============  ===========  ========  ========  =======  ==============
    Syn-A         233 × 104    10⁵       500       5 000    40×26, 1 200 items, 10 robots, 72 racks
    Syn-B         426 × 146    5 × 10⁵   1 000     1 300    56×30, 2 000 items, 14 robots, 48 racks
    Real-Norm     240 × 206    5.6 × 10⁵ 1 000     10 000   48×32, 1 600 items, 12 robots, 120 racks
    Real-Large    541 × 302    10⁶       3 000     34 000   64×40, 2 600 items, 20 robots, 200 racks
    ============  ===========  ========  ========  =======  ==============

Every generator takes a ``scale`` multiplier (linear dimensions and counts
grow together), so paper-scale instances remain constructible; the default
``scale=1.0`` drains in seconds per planner.  The two "real" datasets
substitute the proprietary Geekplus traces with bursty surge arrivals and
Zipf rack popularity (DESIGN.md §4): what the experiments need from them is
high-variance throughput on a larger floor, which the surge preserves.

The per-dataset proportions mirror the paper: Syn-B has *fewer racks but
far more items* than Syn-A (high per-rack throughput — batching country),
while the real datasets have *many racks* (transport-heavy tails).

Beyond the four paper datasets, :data:`SCENARIO_FAMILIES` registers the
sweep families the experiment matrix fans out over:

* ``surge-sweep`` — the Real-Norm floor under increasingly violent
  arrival surges (peak-rate ladder);
* ``fleet-ladder`` — the Real-Large floor with fleets from 10 to 200
  robots (congestion scaling);
* ``obstructed`` — the Syn-A floor with growing pillar counts
  (detour-heavy transport).

A family is one registry entry: ``name -> callable(scale) ->
[ScenarioSpec, ...]``.  Adding a workload means registering one function
that returns specs — no harness changes.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence

from ..errors import ConfigurationError
from .scenario import ItemStreamSpec, ObstructionSpec, ScenarioSpec

#: Seeds fixed per dataset so that all planners (and all reruns) see the
#: identical workload.
_SEEDS = {"Syn-A": 101, "Syn-B": 202, "Real-Norm": 303, "Real-Large": 404,
          "Surge": 505, "Fleet": 606, "Pillars": 707}


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * scale)))


def make_syn_a(scale: float = 1.0) -> ScenarioSpec:
    """Syn-A: moderate Poisson throughput on the smaller synthetic floor."""
    n_racks = _scaled(72, scale)
    return ScenarioSpec(
        name="Syn-A",
        width=_scaled(40, math.sqrt(scale), minimum=16),
        height=_scaled(26, math.sqrt(scale), minimum=12),
        n_racks=n_racks,
        n_pickers=_scaled(12, scale),
        n_robots=_scaled(10, scale),
        items=ItemStreamSpec.of(
            "poisson", n_items=_scaled(1200, scale), n_racks=n_racks,
            rate=0.5 * scale, seed=_SEEDS["Syn-A"]),
        description="synthetic, homogeneous Poisson arrivals",
    )


def make_syn_b(scale: float = 1.0) -> ScenarioSpec:
    """Syn-B: high per-rack throughput (few racks, many items)."""
    n_racks = _scaled(48, scale)
    return ScenarioSpec(
        name="Syn-B",
        width=_scaled(56, math.sqrt(scale), minimum=20),
        height=_scaled(30, math.sqrt(scale), minimum=14),
        n_racks=n_racks,
        n_pickers=_scaled(16, scale),
        n_robots=_scaled(14, scale),
        items=ItemStreamSpec.of(
            "poisson", n_items=_scaled(2000, scale), n_racks=n_racks,
            rate=0.8 * scale, seed=_SEEDS["Syn-B"]),
        description="synthetic, dense Poisson arrivals on few racks",
    )


def make_real_norm(scale: float = 1.0) -> ScenarioSpec:
    """Real-Norm: bursty surge arrivals standing in for the Geekplus trace."""
    n_racks = _scaled(120, scale)
    return ScenarioSpec(
        name="Real-Norm",
        width=_scaled(48, math.sqrt(scale), minimum=20),
        height=_scaled(32, math.sqrt(scale), minimum=14),
        n_racks=n_racks,
        n_pickers=_scaled(12, scale),
        n_robots=_scaled(12, scale),
        items=ItemStreamSpec.of(
            "surge", n_items=_scaled(1600, scale), n_racks=n_racks,
            base_rate=0.3 * scale, peak_rate=1.2 * scale,
            ramp_fraction=0.25, seed=_SEEDS["Real-Norm"]),
        description="surge trace substitute (ramp-peak-tail, Zipf racks)",
    )


def make_real_large(scale: float = 1.0) -> ScenarioSpec:
    """Real-Large: the scalability dataset (largest floor and workload)."""
    n_racks = _scaled(200, scale)
    return ScenarioSpec(
        name="Real-Large",
        width=_scaled(64, math.sqrt(scale), minimum=24),
        height=_scaled(40, math.sqrt(scale), minimum=16),
        n_racks=n_racks,
        n_pickers=_scaled(16, scale),
        n_robots=_scaled(20, scale),
        items=ItemStreamSpec.of(
            "surge", n_items=_scaled(2600, scale), n_racks=n_racks,
            base_rate=0.4 * scale, peak_rate=1.6 * scale,
            ramp_fraction=0.25, seed=_SEEDS["Real-Large"]),
        description="large surge trace substitute",
    )


def make_mini(seed: int = 1, n_items: int = 60) -> ScenarioSpec:
    """A seconds-fast scenario for tests and micro-benchmarks."""
    n_racks = 12
    return ScenarioSpec(
        name="Mini",
        width=18, height=14, n_racks=n_racks, n_pickers=3, n_robots=3,
        items=ItemStreamSpec.of(
            "poisson", n_items=n_items, n_racks=n_racks, rate=0.4,
            seed=seed, processing_low=5, processing_high=12),
        description="tiny smoke-test scenario",
    )


def all_datasets(scale: float = 1.0) -> Dict[str, ScenarioSpec]:
    """The four Table II datasets, in the paper's column order."""
    return {
        "Syn-A": make_syn_a(scale),
        "Syn-B": make_syn_b(scale),
        "Real-Norm": make_real_norm(scale),
        "Real-Large": make_real_large(scale),
    }


# -- sweep families beyond the paper ----------------------------------------

#: Peak-rate multipliers of the surge sweep (1.2·scale is Real-Norm's peak).
SURGE_PEAKS = (0.6, 1.2, 2.4, 4.8)

#: Fleet sizes of the robot ladder (the paper runs 500–3 000 at full scale).
FLEET_SIZES = (10, 25, 50, 100, 200)

#: Pillar counts of the obstructed-floor ladder.
PILLAR_COUNTS = (8, 24, 48)


def surge_sweep(scale: float = 1.0,
                peaks: Sequence[float] = SURGE_PEAKS) -> List[ScenarioSpec]:
    """Bursty-arrival intensity ladder on the Real-Norm floor.

    Each step keeps the floor, fleet and item budget fixed and multiplies
    the surge's peak arrival rate, so the matrix isolates how each planner
    degrades as the midnight-carnival spike sharpens.
    """
    base = make_real_norm(scale)
    specs = []
    for peak in peaks:
        items = ItemStreamSpec.of(
            "surge", n_items=base.items.kwargs()["n_items"],
            n_racks=base.n_racks,
            base_rate=0.3 * scale, peak_rate=max(1.2 * peak * scale,
                                                 0.31 * scale),
            ramp_fraction=0.25, seed=_SEEDS["Surge"])
        specs.append(base.with_(
            name=f"Surge-x{peak:g}", items=items,
            description=f"Real-Norm floor, surge peak x{peak:g}"))
    return specs


def fleet_ladder(scale: float = 1.0,
                 fleets: Sequence[int] = FLEET_SIZES) -> List[ScenarioSpec]:
    """Robot-count ladder (10 → 200 at full scale) on the Real-Large floor.

    Robot counts scale with ``scale`` but never collapse below 1; the rack
    count bounds the fleet (robots park beneath racks), so oversized rungs
    are rejected rather than silently clamped.

    Since the windowed planning pipeline (PR 4) the ladder runs **all
    five planners**: the rungs no longer carry
    :data:`TAG_SKIP_SLOW_PLANNERS`.  The paper's "too slow to execute"
    exclusion of LEF/ILP was about its 541×302 / 3 000-robot floors; on
    this library's scaled-down Real-Large floor both drain every rung in
    tens of seconds (timings in PERFORMANCE.md), and the ladder is
    exactly where the fallback-tier behaviour must be observable for
    every planner.  The Table III ``Real-Large`` cells keep the paper's
    exclusion via ``plan_cells(skip_slow_on=...)``.
    """
    base = make_real_large(scale)
    specs = []
    for fleet in fleets:
        n_robots = _scaled(fleet, scale)
        if n_robots > base.n_racks:
            raise ConfigurationError(
                f"fleet rung {fleet}: {n_robots} robots exceed "
                f"{base.n_racks} racks at scale {scale}")
        specs.append(base.with_(
            name=f"Fleet-{fleet}", n_robots=n_robots,
            description=f"Real-Large floor, {n_robots} robots"))
    return specs


def obstructed_floor(scale: float = 1.0,
                     pillar_counts: Sequence[int] = PILLAR_COUNTS
                     ) -> List[ScenarioSpec]:
    """Pillar-count ladder on the Syn-A floor (detour-heavy transport)."""
    base = make_syn_a(scale)
    specs = []
    for count in pillar_counts:
        n_pillars = _scaled(count, scale)
        specs.append(base.with_(
            name=f"Pillars-{count}",
            obstructions=ObstructionSpec(n_pillars=n_pillars,
                                         seed=_SEEDS["Pillars"]),
            description=f"Syn-A floor with {n_pillars} pillars"))
    return specs


#: Registered scenario families: ``name -> callable(scale) -> [spec, ...]``.
SCENARIO_FAMILIES: Dict[str, Callable[[float], List[ScenarioSpec]]] = {
    "table2": lambda scale: list(all_datasets(scale).values()),
    "surge-sweep": surge_sweep,
    "fleet-ladder": fleet_ladder,
    "obstructed": obstructed_floor,
    "mini": lambda scale: [make_mini(n_items=max(20, int(60 * scale)))],
}


def scenario_family(name: str, scale: float = 1.0) -> List[ScenarioSpec]:
    """Materialise a registered scenario family at ``scale``."""
    try:
        family = SCENARIO_FAMILIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario family {name!r}; "
            f"choose from {sorted(SCENARIO_FAMILIES)}") from None
    return family(scale)
