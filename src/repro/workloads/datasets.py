"""The four Table II datasets, geometrically scaled for laptop execution.

Paper scale (Table II) versus the default scale here:

    ============  ===========  ========  ========  =======  ==============
    dataset       paper grid   items     robots    racks    ours (default)
    ============  ===========  ========  ========  =======  ==============
    Syn-A         233 × 104    10⁵       500       5 000    40×26, 1 200 items, 10 robots, 72 racks
    Syn-B         426 × 146    5 × 10⁵   1 000     1 300    56×30, 2 000 items, 14 robots, 48 racks
    Real-Norm     240 × 206    5.6 × 10⁵ 1 000     10 000   48×32, 1 600 items, 12 robots, 120 racks
    Real-Large    541 × 302    10⁶       3 000     34 000   64×40, 2 600 items, 20 robots, 200 racks
    ============  ===========  ========  ========  =======  ==============

Every generator takes a ``scale`` multiplier (linear dimensions and counts
grow together), so paper-scale instances remain constructible; the default
``scale=1.0`` drains in seconds per planner.  The two "real" datasets
substitute the proprietary Geekplus traces with bursty surge arrivals and
Zipf rack popularity (DESIGN.md §4): what the experiments need from them is
high-variance throughput on a larger floor, which the surge preserves.

The per-dataset proportions mirror the paper: Syn-B has *fewer racks but
far more items* than Syn-A (high per-rack throughput — batching country),
while the real datasets have *many racks* (transport-heavy tails).
"""

from __future__ import annotations

import math
from typing import Dict

from .arrivals import poisson_arrivals, surge_arrivals
from .scenario import Scenario

#: Seeds fixed per dataset so that all planners (and all reruns) see the
#: identical workload.
_SEEDS = {"Syn-A": 101, "Syn-B": 202, "Real-Norm": 303, "Real-Large": 404}


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * scale)))


def make_syn_a(scale: float = 1.0) -> Scenario:
    """Syn-A: moderate Poisson throughput on the smaller synthetic floor."""
    n_racks = _scaled(72, scale)
    n_items = _scaled(1200, scale)
    seed = _SEEDS["Syn-A"]
    return Scenario(
        name="Syn-A",
        width=_scaled(40, math.sqrt(scale), minimum=16),
        height=_scaled(26, math.sqrt(scale), minimum=12),
        n_racks=n_racks,
        n_pickers=_scaled(12, scale),
        n_robots=_scaled(10, scale),
        items_factory=lambda: poisson_arrivals(
            n_items=n_items, n_racks=n_racks, rate=0.5 * scale, seed=seed),
        description="synthetic, homogeneous Poisson arrivals",
    )


def make_syn_b(scale: float = 1.0) -> Scenario:
    """Syn-B: high per-rack throughput (few racks, many items)."""
    n_racks = _scaled(48, scale)
    n_items = _scaled(2000, scale)
    seed = _SEEDS["Syn-B"]
    return Scenario(
        name="Syn-B",
        width=_scaled(56, math.sqrt(scale), minimum=20),
        height=_scaled(30, math.sqrt(scale), minimum=14),
        n_racks=n_racks,
        n_pickers=_scaled(16, scale),
        n_robots=_scaled(14, scale),
        items_factory=lambda: poisson_arrivals(
            n_items=n_items, n_racks=n_racks, rate=0.8 * scale, seed=seed),
        description="synthetic, dense Poisson arrivals on few racks",
    )


def make_real_norm(scale: float = 1.0) -> Scenario:
    """Real-Norm: bursty surge arrivals standing in for the Geekplus trace."""
    n_racks = _scaled(120, scale)
    n_items = _scaled(1600, scale)
    seed = _SEEDS["Real-Norm"]
    return Scenario(
        name="Real-Norm",
        width=_scaled(48, math.sqrt(scale), minimum=20),
        height=_scaled(32, math.sqrt(scale), minimum=14),
        n_racks=n_racks,
        n_pickers=_scaled(12, scale),
        n_robots=_scaled(12, scale),
        items_factory=lambda: surge_arrivals(
            n_items=n_items, n_racks=n_racks, base_rate=0.3 * scale,
            peak_rate=1.2 * scale, ramp_fraction=0.25, seed=seed),
        description="surge trace substitute (ramp-peak-tail, Zipf racks)",
    )


def make_real_large(scale: float = 1.0) -> Scenario:
    """Real-Large: the scalability dataset (largest floor and workload)."""
    n_racks = _scaled(200, scale)
    n_items = _scaled(2600, scale)
    seed = _SEEDS["Real-Large"]
    return Scenario(
        name="Real-Large",
        width=_scaled(64, math.sqrt(scale), minimum=24),
        height=_scaled(40, math.sqrt(scale), minimum=16),
        n_racks=n_racks,
        n_pickers=_scaled(16, scale),
        n_robots=_scaled(20, scale),
        items_factory=lambda: surge_arrivals(
            n_items=n_items, n_racks=n_racks, base_rate=0.4 * scale,
            peak_rate=1.6 * scale, ramp_fraction=0.25, seed=seed),
        description="large surge trace substitute",
    )


def make_mini(seed: int = 1, n_items: int = 60) -> Scenario:
    """A seconds-fast scenario for tests and micro-benchmarks."""
    n_racks = 12
    return Scenario(
        name="Mini",
        width=18, height=14, n_racks=n_racks, n_pickers=3, n_robots=3,
        items_factory=lambda: poisson_arrivals(
            n_items=n_items, n_racks=n_racks, rate=0.4, seed=seed,
            processing_low=5, processing_high=12),
        description="tiny smoke-test scenario",
    )


def all_datasets(scale: float = 1.0) -> Dict[str, Scenario]:
    """The four Table II datasets, in the paper's column order."""
    return {
        "Syn-A": make_syn_a(scale),
        "Syn-B": make_syn_b(scale),
        "Real-Norm": make_real_norm(scale),
        "Real-Large": make_real_large(scale),
    }
