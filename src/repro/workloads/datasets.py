"""The scenario registry: Table II datasets plus the scaling families.

Paper scale (Table II) versus the default scale here:

    ============  ===========  ========  ========  =======  ==============
    dataset       paper grid   items     robots    racks    ours (default)
    ============  ===========  ========  ========  =======  ==============
    Syn-A         233 × 104    10⁵       500       5 000    40×26, 1 200 items, 10 robots, 72 racks
    Syn-B         426 × 146    5 × 10⁵   1 000     1 300    56×30, 2 000 items, 14 robots, 48 racks
    Real-Norm     240 × 206    5.6 × 10⁵ 1 000     10 000   48×32, 1 600 items, 12 robots, 120 racks
    Real-Large    541 × 302    10⁶       3 000     34 000   64×40, 2 600 items, 20 robots, 200 racks
    ============  ===========  ========  ========  =======  ==============

Every generator takes a ``scale`` multiplier (linear dimensions and counts
grow together), so paper-scale instances remain constructible; the default
``scale=1.0`` drains in seconds per planner.  The two "real" datasets
substitute the proprietary Geekplus traces with bursty surge arrivals and
Zipf rack popularity (DESIGN.md §4): what the experiments need from them is
high-variance throughput on a larger floor, which the surge preserves.

The per-dataset proportions mirror the paper: Syn-B has *fewer racks but
far more items* than Syn-A (high per-rack throughput — batching country),
while the real datasets have *many racks* (transport-heavy tails).

Beyond the four paper datasets, :data:`SCENARIO_FAMILIES` registers the
sweep families the experiment matrix fans out over:

* ``surge-sweep`` — the Real-Norm floor under increasingly violent
  arrival surges (peak-rate ladder);
* ``fleet-ladder`` — fleets from 10 to 200 robots on the scaled-down
  Real-Large floor, then 500 to 3 000 on the paper-true 541×302 floor
  (congestion scaling; see :func:`fleet_ladder` for the floor switch);
* ``real-large`` — the single paper-true Real-Large scenario
  (:func:`make_real_large_paper`), the paper's excluded regime;
* ``obstructed`` — the Syn-A floor with growing pillar counts
  (detour-heavy transport).

A family is one registry entry: ``name -> callable(scale) ->
[ScenarioSpec, ...]``.  Adding a workload means registering one function
that returns specs — no harness changes.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence

from ..errors import ConfigurationError
from .scenario import (TAG_SKIP_SLOW_PLANNERS, ItemStreamSpec,
                       ObstructionSpec, ScenarioSpec)

#: Seeds fixed per dataset so that all planners (and all reruns) see the
#: identical workload.
_SEEDS = {"Syn-A": 101, "Syn-B": 202, "Real-Norm": 303, "Real-Large": 404,
          "Surge": 505, "Fleet": 606, "Pillars": 707,
          "Real-Large-Paper": 808}


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * scale)))


def make_syn_a(scale: float = 1.0) -> ScenarioSpec:
    """Syn-A: moderate Poisson throughput on the smaller synthetic floor."""
    n_racks = _scaled(72, scale)
    return ScenarioSpec(
        name="Syn-A",
        width=_scaled(40, math.sqrt(scale), minimum=16),
        height=_scaled(26, math.sqrt(scale), minimum=12),
        n_racks=n_racks,
        n_pickers=_scaled(12, scale),
        n_robots=_scaled(10, scale),
        items=ItemStreamSpec.of(
            "poisson", n_items=_scaled(1200, scale), n_racks=n_racks,
            rate=0.5 * scale, seed=_SEEDS["Syn-A"]),
        description="synthetic, homogeneous Poisson arrivals",
    )


def make_syn_b(scale: float = 1.0) -> ScenarioSpec:
    """Syn-B: high per-rack throughput (few racks, many items)."""
    n_racks = _scaled(48, scale)
    return ScenarioSpec(
        name="Syn-B",
        width=_scaled(56, math.sqrt(scale), minimum=20),
        height=_scaled(30, math.sqrt(scale), minimum=14),
        n_racks=n_racks,
        n_pickers=_scaled(16, scale),
        n_robots=_scaled(14, scale),
        items=ItemStreamSpec.of(
            "poisson", n_items=_scaled(2000, scale), n_racks=n_racks,
            rate=0.8 * scale, seed=_SEEDS["Syn-B"]),
        description="synthetic, dense Poisson arrivals on few racks",
    )


def make_real_norm(scale: float = 1.0) -> ScenarioSpec:
    """Real-Norm: bursty surge arrivals standing in for the Geekplus trace."""
    n_racks = _scaled(120, scale)
    return ScenarioSpec(
        name="Real-Norm",
        width=_scaled(48, math.sqrt(scale), minimum=20),
        height=_scaled(32, math.sqrt(scale), minimum=14),
        n_racks=n_racks,
        n_pickers=_scaled(12, scale),
        n_robots=_scaled(12, scale),
        items=ItemStreamSpec.of(
            "surge", n_items=_scaled(1600, scale), n_racks=n_racks,
            base_rate=0.3 * scale, peak_rate=1.2 * scale,
            ramp_fraction=0.25, seed=_SEEDS["Real-Norm"]),
        description="surge trace substitute (ramp-peak-tail, Zipf racks)",
    )


def make_real_large(scale: float = 1.0) -> ScenarioSpec:
    """Real-Large: the scalability dataset (largest floor and workload)."""
    n_racks = _scaled(200, scale)
    return ScenarioSpec(
        name="Real-Large",
        width=_scaled(64, math.sqrt(scale), minimum=24),
        height=_scaled(40, math.sqrt(scale), minimum=16),
        n_racks=n_racks,
        n_pickers=_scaled(16, scale),
        n_robots=_scaled(20, scale),
        items=ItemStreamSpec.of(
            "surge", n_items=_scaled(2600, scale), n_racks=n_racks,
            base_rate=0.4 * scale, peak_rate=1.6 * scale,
            ramp_fraction=0.25, seed=_SEEDS["Real-Large"]),
        description="large surge trace substitute",
    )


def make_real_large_paper(scale: float = 1.0) -> ScenarioSpec:
    """Real-Large at the paper's **true** floor dimensions (541 × 302).

    This is the regime Table II lists and Sec. VII excludes as "too slow
    to execute" for the baseline planners — the whole reason the
    scalability machinery (region-sharded reservations, batched planner
    wakes, the paper-scale auto-gate in
    :class:`~repro.planners.base.Planner`) exists.  At ``scale=1.0`` the
    floor is exactly the paper's 541 × 302 with a 3 000-robot fleet;
    rack, picker and item counts are *documented scale-downs* (4 000
    racks vs. the paper's 34 000, 18 000 surge items vs. 10⁶) so a
    single-process pure-python run drains in minutes rather than days —
    the floor size and fleet, which drive every per-leg and per-structure
    cost, are the paper-true parts.  Tagged
    :data:`~repro.workloads.scenario.TAG_SKIP_SLOW_PLANNERS`: LEF/ILP
    keep the paper's exclusion here.
    """
    n_racks = _scaled(4000, scale)
    return ScenarioSpec(
        name="Real-Large-Paper",
        width=_scaled(541, math.sqrt(scale), minimum=64),
        height=_scaled(302, math.sqrt(scale), minimum=40),
        n_racks=n_racks,
        n_pickers=_scaled(120, scale),
        n_robots=_scaled(3000, scale),
        items=ItemStreamSpec.of(
            "surge", n_items=_scaled(18000, scale), n_racks=n_racks,
            base_rate=2.8 * scale, peak_rate=11.2 * scale,
            ramp_fraction=0.25, seed=_SEEDS["Real-Large-Paper"]),
        description="paper-true 541x302 floor, 3000 robots; racks/items "
                    "scaled down ~8.5x/~55x (documented) for tractability",
        tags=(TAG_SKIP_SLOW_PLANNERS,),
    )


def make_mini(seed: int = 1, n_items: int = 60) -> ScenarioSpec:
    """A seconds-fast scenario for tests and micro-benchmarks."""
    n_racks = 12
    return ScenarioSpec(
        name="Mini",
        width=18, height=14, n_racks=n_racks, n_pickers=3, n_robots=3,
        items=ItemStreamSpec.of(
            "poisson", n_items=n_items, n_racks=n_racks, rate=0.4,
            seed=seed, processing_low=5, processing_high=12),
        description="tiny smoke-test scenario",
    )


def all_datasets(scale: float = 1.0) -> Dict[str, ScenarioSpec]:
    """The four Table II datasets, in the paper's column order."""
    return {
        "Syn-A": make_syn_a(scale),
        "Syn-B": make_syn_b(scale),
        "Real-Norm": make_real_norm(scale),
        "Real-Large": make_real_large(scale),
    }


# -- sweep families beyond the paper ----------------------------------------

#: Peak-rate multipliers of the surge sweep (1.2·scale is Real-Norm's peak).
SURGE_PEAKS = (0.6, 1.2, 2.4, 4.8)

#: Fleet sizes of the robot ladder (the paper runs 500–3 000 at full scale).
FLEET_SIZES = (10, 25, 50, 100, 200)

#: The ladder's paper-floor rungs: the fleet sizes the paper actually
#: evaluates on Real-Large, run on the true 541×302 floor of
#: :func:`make_real_large_paper`.
FLEET_SIZES_LARGE = (500, 1000, 3000)

#: Pillar counts of the obstructed-floor ladder.
PILLAR_COUNTS = (8, 24, 48)


def surge_sweep(scale: float = 1.0,
                peaks: Sequence[float] = SURGE_PEAKS) -> List[ScenarioSpec]:
    """Bursty-arrival intensity ladder on the Real-Norm floor.

    Each step keeps the floor, fleet and item budget fixed and multiplies
    the surge's peak arrival rate, so the matrix isolates how each planner
    degrades as the midnight-carnival spike sharpens.
    """
    base = make_real_norm(scale)
    specs = []
    for peak in peaks:
        items = ItemStreamSpec.of(
            "surge", n_items=base.items.kwargs()["n_items"],
            n_racks=base.n_racks,
            base_rate=0.3 * scale, peak_rate=max(1.2 * peak * scale,
                                                 0.31 * scale),
            ramp_fraction=0.25, seed=_SEEDS["Surge"])
        specs.append(base.with_(
            name=f"Surge-x{peak:g}", items=items,
            description=f"Real-Norm floor, surge peak x{peak:g}"))
    return specs


def fleet_ladder(scale: float = 1.0,
                 fleets: Sequence[int] = FLEET_SIZES,
                 large_fleets: Sequence[int] = FLEET_SIZES_LARGE
                 ) -> List[ScenarioSpec]:
    """Robot-count ladder (10 → 3 000 at full scale), in two floor regimes.

    The small rungs (``fleets``, 10 → 200) run on the scaled-down
    Real-Large floor exactly as they always have — their specs, seeds and
    results are byte-identical to the pre-ladder-extension registry.  The
    large rungs (``large_fleets``, 500 → 3 000) are the fleet sizes the
    paper actually evaluates, and they only make sense on the paper-true
    541×302 floor of :func:`make_real_large_paper`: 500 robots on the
    64×40 scaled floor would exceed its rack count, and congestion at
    those fleet sizes is precisely the paper's excluded regime.  The
    ladder therefore *switches floors* between rung 200 and rung 500 —
    a deliberate, documented discontinuity (per-rung metrics are
    comparable within a regime, not across the switch).

    Large rungs carry a reduced 6 000-item surge stream (vs. the full
    Real-Large-Paper 18 000): the ladder measures congestion scaling, not
    workload endurance, and 3 000 robots drain 6 000 items while the
    fleet is still saturated.  They keep
    :data:`TAG_SKIP_SLOW_PLANNERS` (inherited from the paper-floor
    spec): LEF/ILP retain the paper's exclusion there, while the small
    rungs continue to run all five planners.

    Robot counts scale with ``scale`` but never collapse below 1; the rack
    count bounds the fleet (robots park beneath racks), so oversized rungs
    are rejected rather than silently clamped.
    """
    base = make_real_large(scale)
    specs = []
    for fleet in fleets:
        n_robots = _scaled(fleet, scale)
        if n_robots > base.n_racks:
            raise ConfigurationError(
                f"fleet rung {fleet}: {n_robots} robots exceed "
                f"{base.n_racks} racks at scale {scale}")
        specs.append(base.with_(
            name=f"Fleet-{fleet}", n_robots=n_robots,
            description=f"Real-Large floor, {n_robots} robots"))
    paper = make_real_large_paper(scale)
    large_items = ItemStreamSpec.of(
        "surge", n_items=_scaled(6000, scale), n_racks=paper.n_racks,
        base_rate=2.8 * scale, peak_rate=11.2 * scale,
        ramp_fraction=0.25, seed=_SEEDS["Fleet"])
    for fleet in large_fleets:
        n_robots = _scaled(fleet, scale)
        if n_robots > paper.n_racks:
            raise ConfigurationError(
                f"fleet rung {fleet}: {n_robots} robots exceed "
                f"{paper.n_racks} racks at scale {scale}")
        specs.append(paper.with_(
            name=f"Fleet-{fleet}", n_robots=n_robots, items=large_items,
            description=f"paper-true Real-Large floor, {n_robots} robots"))
    return specs


def obstructed_floor(scale: float = 1.0,
                     pillar_counts: Sequence[int] = PILLAR_COUNTS
                     ) -> List[ScenarioSpec]:
    """Pillar-count ladder on the Syn-A floor (detour-heavy transport)."""
    base = make_syn_a(scale)
    specs = []
    for count in pillar_counts:
        n_pillars = _scaled(count, scale)
        specs.append(base.with_(
            name=f"Pillars-{count}",
            obstructions=ObstructionSpec(n_pillars=n_pillars,
                                         seed=_SEEDS["Pillars"]),
            description=f"Syn-A floor with {n_pillars} pillars"))
    return specs


#: Registered scenario families: ``name -> callable(scale) -> [spec, ...]``.
SCENARIO_FAMILIES: Dict[str, Callable[[float], List[ScenarioSpec]]] = {
    "table2": lambda scale: list(all_datasets(scale).values()),
    "surge-sweep": surge_sweep,
    "fleet-ladder": fleet_ladder,
    "real-large": lambda scale: [make_real_large_paper(scale)],
    "obstructed": obstructed_floor,
    "mini": lambda scale: [make_mini(n_items=max(20, int(60 * scale)))],
}


def scenario_family(name: str, scale: float = 1.0) -> List[ScenarioSpec]:
    """Materialise a registered scenario family at ``scale``."""
    try:
        family = SCENARIO_FAMILIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario family {name!r}; "
            f"choose from {sorted(SCENARIO_FAMILIES)}") from None
    return family(scale)
