"""Scenario: a reproducible (layout, fleet, workload) bundle.

A scenario is *data*; :meth:`Scenario.build` materialises a fresh
:class:`~repro.warehouse.state.WarehouseState` plus the item stream every
time it is called, so each planner in a comparison starts from an
identical, untouched world.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from ..warehouse.entities import Item
from ..warehouse.layout import WarehouseLayout, build_layout
from ..warehouse.state import WarehouseState


@dataclass(frozen=True)
class Scenario:
    """A named, reproducible experiment input.

    Attributes
    ----------
    name:
        Dataset name as reported in tables (e.g. ``"Syn-A"``).
    width, height:
        Grid dimensions.
    n_racks, n_pickers, n_robots:
        Entity counts.
    items_factory:
        Zero-argument callable producing the item stream; must be
        deterministic (seeded) so planners compare on identical inputs.
    description:
        One-line provenance note for reports.
    """

    name: str
    width: int
    height: int
    n_racks: int
    n_pickers: int
    n_robots: int
    items_factory: Callable[[], List[Item]]
    description: str = ""

    def layout(self) -> WarehouseLayout:
        """Build the floor plan for this scenario."""
        return build_layout(self.width, self.height,
                            n_racks=self.n_racks, n_pickers=self.n_pickers)

    def build(self) -> Tuple[WarehouseState, List[Item]]:
        """Materialise a fresh world and its workload."""
        state = WarehouseState.from_layout(self.layout(), self.n_robots)
        items = self.items_factory()
        if not items:
            raise ValueError(f"scenario {self.name} produced no items")
        max_rack = max(item.rack_id for item in items)
        if max_rack >= self.n_racks:
            raise ValueError(
                f"scenario {self.name}: item references rack {max_rack} "
                f"but only {self.n_racks} racks exist")
        return state, items

    @property
    def n_items(self) -> int:
        """Workload size (materialises the stream once)."""
        return len(self.items_factory())
