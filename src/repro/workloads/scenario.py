"""Scenario specs: declarative, picklable (layout, fleet, workload) bundles.

A :class:`ScenarioSpec` is *plain data* — grid dimensions, entity counts
and a named arrival-process spec — so it can cross a process boundary (the
parallel experiment matrix ships specs to ``ProcessPoolExecutor`` workers)
and every materialisation is reproducible from the embedded seeds alone.
:meth:`ScenarioSpec.build` returns a fresh
:class:`~repro.warehouse.state.WarehouseState` plus the item stream every
time it is called, so each planner in a comparison starts from an
identical, untouched world and two builds never share mutable state.

Arrival processes are referenced by *name* into the registry in
:mod:`repro.workloads.arrivals` (``items_factory`` callables of the old
``Scenario`` class are gone — callables capture closures which neither
pickle nor diff).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..warehouse.entities import Item
from ..warehouse.layout import WarehouseLayout, build_layout, obstruct_layout
from ..warehouse.state import WarehouseState


def _freeze(value: Any) -> Any:
    """Recursively convert lists/dicts to tuples so params stay hashable."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value


@dataclass(frozen=True)
class ItemStreamSpec:
    """A named arrival process plus its parameters, as immutable data.

    Attributes
    ----------
    generator:
        Key into :data:`repro.workloads.arrivals.GENERATORS`
        (e.g. ``"poisson"``, ``"surge"``, ``"deterministic"``).
    params:
        Keyword arguments for the generator, stored as a sorted tuple of
        ``(name, value)`` pairs so the spec is hashable and picklable.
    """

    generator: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, generator: str, **params: Any) -> "ItemStreamSpec":
        """Build a spec from keyword arguments (lists become tuples)."""
        return cls(generator=generator,
                   params=tuple(sorted((k, _freeze(v))
                                       for k, v in params.items())))

    def kwargs(self) -> Dict[str, Any]:
        """The generator keyword arguments as a fresh dict."""
        return dict(self.params)

    def materialise(self) -> List[Item]:
        """Run the named generator; identical output on every call."""
        from .arrivals import resolve_generator
        return resolve_generator(self.generator)(**self.kwargs())


@dataclass(frozen=True)
class ObstructionSpec:
    """Structural obstacles scattered over the storage area.

    ``n_pillars`` cells are blocked, chosen deterministically from
    ``seed`` while preserving reachability of every rack home and picker
    (see :func:`repro.warehouse.layout.obstruct_layout`).
    """

    n_pillars: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_pillars < 1:
            raise ConfigurationError(
                f"n_pillars must be >= 1, got {self.n_pillars}")


#: Tag marking scenarios whose floors the paper's slow baselines (LEF,
#: ILP) cannot finish in reasonable time; the matrix skips them there.
TAG_SKIP_SLOW_PLANNERS = "skip-slow-planners"


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, reproducible experiment input — pure data.

    Attributes
    ----------
    name:
        Dataset name as reported in tables (e.g. ``"Syn-A"``).
    width, height:
        Grid dimensions.
    n_racks, n_pickers, n_robots:
        Entity counts.
    items:
        The arrival-process spec; must be deterministic (seeded) so
        planners compare on identical inputs.
    obstructions:
        Optional pillar scatter for obstructed-floor scenarios.
    description:
        One-line provenance note for reports.
    tags:
        Free-form markers the harness keys behaviour on (e.g.
        :data:`TAG_SKIP_SLOW_PLANNERS`).
    """

    name: str
    width: int
    height: int
    n_racks: int
    n_pickers: int
    n_robots: int
    items: ItemStreamSpec
    obstructions: Optional[ObstructionSpec] = None
    description: str = ""
    tags: Tuple[str, ...] = ()

    def layout(self) -> WarehouseLayout:
        """Build the floor plan for this scenario."""
        layout = build_layout(self.width, self.height,
                              n_racks=self.n_racks, n_pickers=self.n_pickers)
        if self.obstructions is not None:
            layout = obstruct_layout(layout,
                                     n_pillars=self.obstructions.n_pillars,
                                     seed=self.obstructions.seed)
        return layout

    def build(self) -> Tuple[WarehouseState, List[Item]]:
        """Materialise a fresh world and its workload."""
        state = WarehouseState.from_layout(self.layout(), self.n_robots)
        items = self.items.materialise()
        if not items:
            raise ConfigurationError(
                f"scenario {self.name} produced no items")
        max_rack = max(item.rack_id for item in items)
        if max_rack >= self.n_racks:
            raise ConfigurationError(
                f"scenario {self.name}: item references rack {max_rack} "
                f"but only {self.n_racks} racks exist")
        return state, items

    def with_(self, **changes: Any) -> "ScenarioSpec":
        """Return a copy with ``changes`` applied (sweep convenience)."""
        return replace(self, **changes)

    @property
    def n_items(self) -> int:
        """Workload size (materialises the stream once)."""
        return len(self.items.materialise())

    def spec_dict(self) -> Dict[str, Any]:
        """The whole spec as a JSON-serialisable dict (result provenance)."""
        return {
            "name": self.name,
            "width": self.width, "height": self.height,
            "n_racks": self.n_racks, "n_pickers": self.n_pickers,
            "n_robots": self.n_robots,
            "items": {"generator": self.items.generator,
                      "params": self.items.kwargs()},
            "obstructions": (None if self.obstructions is None
                             else {"n_pillars": self.obstructions.n_pillars,
                                   "seed": self.obstructions.seed}),
            "description": self.description,
            "tags": list(self.tags),
        }


def workload_fingerprint(spec: ScenarioSpec) -> str:
    """SHA-256 over the materialised item stream.

    A module-level function (not a method) so it can be shipped to a
    ``spawn``-started worker; the process-safety tests compare parent and
    child fingerprints byte for byte.
    """
    items = spec.items.materialise()
    payload = json.dumps(
        [(i.item_id, i.rack_id, i.arrival, i.processing_time)
         for i in items], separators=(",", ":"))
    return hashlib.sha256(payload.encode("ascii")).hexdigest()
