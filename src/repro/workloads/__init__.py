"""Workload generation: arrival processes, scenarios, Table II datasets."""

from .arrivals import (PROCESSING_TIME_RANGE, deterministic_arrivals,
                       poisson_arrivals, surge_arrivals,
                       uniform_processing_time)
from .datasets import (all_datasets, make_mini, make_real_large,
                       make_real_norm, make_syn_a, make_syn_b)
from .scenario import Scenario

__all__ = [
    "PROCESSING_TIME_RANGE",
    "Scenario",
    "all_datasets",
    "deterministic_arrivals",
    "make_mini",
    "make_real_large",
    "make_real_norm",
    "make_syn_a",
    "make_syn_b",
    "poisson_arrivals",
    "surge_arrivals",
    "uniform_processing_time",
]
