"""Workload generation: arrival processes, scenario specs, the registry."""

from .arrivals import (GENERATORS, PROCESSING_TIME_RANGE,
                       deterministic_arrivals, poisson_arrivals,
                       register_generator, resolve_generator, surge_arrivals,
                       uniform_processing_time)
from .datasets import (FLEET_SIZES, PILLAR_COUNTS, SCENARIO_FAMILIES,
                       SURGE_PEAKS, all_datasets, fleet_ladder, make_mini,
                       make_real_large, make_real_norm, make_syn_a,
                       make_syn_b, obstructed_floor, scenario_family,
                       surge_sweep)
from .scenario import (TAG_SKIP_SLOW_PLANNERS, ItemStreamSpec,
                       ObstructionSpec, ScenarioSpec, workload_fingerprint)

__all__ = [
    "FLEET_SIZES",
    "GENERATORS",
    "ItemStreamSpec",
    "ObstructionSpec",
    "PILLAR_COUNTS",
    "PROCESSING_TIME_RANGE",
    "SCENARIO_FAMILIES",
    "SURGE_PEAKS",
    "ScenarioSpec",
    "TAG_SKIP_SLOW_PLANNERS",
    "all_datasets",
    "deterministic_arrivals",
    "fleet_ladder",
    "make_mini",
    "make_real_large",
    "make_real_norm",
    "make_syn_a",
    "make_syn_b",
    "obstructed_floor",
    "poisson_arrivals",
    "register_generator",
    "resolve_generator",
    "scenario_family",
    "surge_arrivals",
    "surge_sweep",
    "uniform_processing_time",
    "workload_fingerprint",
]
