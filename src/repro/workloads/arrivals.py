"""Item arrival processes.

The synthetic datasets emerge items "following Poisson distribution"
(Sec. VII-A); the real Geekplus traces are high-variance and bursty — we
model them with a piecewise-rate (surge) Poisson process plus Zipf rack
popularity, which reproduces the bottleneck migration of Fig. 13 without
the proprietary data (see DESIGN.md §4).

Every generator is a pure function of its RNG seed, so workloads are
reproducible across planners — all five algorithms see byte-identical item
streams in every experiment.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..warehouse.entities import Item

#: Item processing times are "distributed uniformly between 20 and 40
#: seconds, close to the real situation" (Sec. VII-A).
PROCESSING_TIME_RANGE = (20, 40)


def uniform_processing_time(rng: random.Random,
                            low: int = PROCESSING_TIME_RANGE[0],
                            high: int = PROCESSING_TIME_RANGE[1]) -> int:
    """Draw one item's processing time (inclusive uniform)."""
    return rng.randint(low, high)


def poisson_arrivals(n_items: int, n_racks: int, rate: float, seed: int,
                     processing_low: int = PROCESSING_TIME_RANGE[0],
                     processing_high: int = PROCESSING_TIME_RANGE[1]) -> List[Item]:
    """Homogeneous Poisson item stream over uniformly random racks.

    Parameters
    ----------
    n_items:
        Total items to generate.
    n_racks:
        Racks to spread them over (uniformly).
    rate:
        Expected arrivals per tick (λ of the Poisson process).
    seed:
        RNG seed; identical seeds give identical workloads.
    """
    if n_items < 1:
        raise ConfigurationError("n_items must be >= 1")
    if n_racks < 1:
        raise ConfigurationError("n_racks must be >= 1")
    if rate <= 0:
        raise ConfigurationError("rate must be positive")
    rng = random.Random(seed)
    items: List[Item] = []
    t = 0.0
    for item_id in range(n_items):
        t += rng.expovariate(rate)
        items.append(Item(
            item_id=item_id,
            rack_id=rng.randrange(n_racks),
            arrival=int(t),
            processing_time=uniform_processing_time(
                rng, processing_low, processing_high)))
    return items


def surge_arrivals(n_items: int, n_racks: int, base_rate: float,
                   peak_rate: float, ramp_fraction: float, seed: int,
                   zipf_s: float = 0.7,
                   processing_low: int = PROCESSING_TIME_RANGE[0],
                   processing_high: int = PROCESSING_TIME_RANGE[1]) -> List[Item]:
    """Bursty stream standing in for the Geekplus traces.

    Three phases over the items: a ``base_rate`` warm-up, a ``peak_rate``
    surge (the midnight-carnival spike of the paper's introduction), and a
    ``base_rate`` tail; phase boundaries at ``ramp_fraction`` and
    ``1 - ramp_fraction`` of the item budget.  Rack popularity is Zipf —
    hot racks accumulate items quickly, which is what makes batching (and
    thus adaptivity) matter.

    Parameters
    ----------
    zipf_s:
        Zipf exponent for rack popularity.  The 0.7 default concentrates
        load on hot racks without letting a single picker's queue
        serialise the whole run.
    """
    if not 0.0 < ramp_fraction < 0.5:
        raise ConfigurationError("ramp_fraction must be in (0, 0.5)")
    if peak_rate <= base_rate:
        raise ConfigurationError("peak_rate must exceed base_rate")
    rng = random.Random(seed)

    weights = np.array([1.0 / (k ** zipf_s) for k in range(1, n_racks + 1)])
    weights /= weights.sum()
    cumulative = np.cumsum(weights)
    # Shuffle rack identities so hot racks are spread over the floor.
    rack_order = list(range(n_racks))
    rng.shuffle(rack_order)

    warm_end = int(n_items * ramp_fraction)
    surge_end = int(n_items * (1.0 - ramp_fraction))

    items: List[Item] = []
    t = 0.0
    for item_id in range(n_items):
        rate = peak_rate if warm_end <= item_id < surge_end else base_rate
        t += rng.expovariate(rate)
        rank = int(np.searchsorted(cumulative, rng.random()))
        items.append(Item(
            item_id=item_id,
            rack_id=rack_order[min(rank, n_racks - 1)],
            arrival=int(t),
            processing_time=uniform_processing_time(
                rng, processing_low, processing_high)))
    return items


def deterministic_arrivals(schedule: Sequence[tuple],
                           processing_time: int = 20) -> List[Item]:
    """Hand-written workloads for tests: ``[(arrival, rack_id), ...]``."""
    return [Item(item_id=i, rack_id=rack_id, arrival=arrival,
                 processing_time=processing_time)
            for i, (arrival, rack_id) in enumerate(schedule)]


# -- the named generator registry -------------------------------------------
#
# Scenario specs reference arrival processes *by name* so a spec is plain,
# picklable data that any worker process can materialise (see
# :mod:`repro.workloads.scenario`).  Third-party generators register here.

GENERATORS: dict = {
    "poisson": poisson_arrivals,
    "surge": surge_arrivals,
    "deterministic": deterministic_arrivals,
}


def register_generator(name: str,
                       generator: Callable[..., List[Item]]) -> None:
    """Add an arrival generator to the registry.

    The generator must be a pure function of its keyword arguments
    (deterministic for a fixed seed) so scenario builds stay reproducible
    across processes.
    """
    if name in GENERATORS:
        raise ConfigurationError(f"arrival generator {name!r} already registered")
    GENERATORS[name] = generator


def resolve_generator(name: str) -> Callable[..., List[Item]]:
    """Look up a registered arrival generator by name."""
    try:
        return GENERATORS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown arrival generator {name!r}; "
            f"choose from {sorted(GENERATORS)}") from None


# -- open-ended streams (service mode) ---------------------------------------
#
# The batch generators above materialise a fixed item count; an always-on
# run has no item count.  A *stream* is a stateful, picklable iterator
# over the same arrival processes: ``take(n)`` yields the next ``n``
# items, and chunked consumption is byte-identical to one big draw
# (``take(a); take(b)`` ≡ ``take(a + b)``) because the RNG state lives in
# the stream.  Picklability is a hard requirement — the soak harness
# checkpoints the stream next to the engine so a restored run replays
# the exact item sequence.


class ItemStream:
    """Base open-ended item source: deterministic, chunked, picklable."""

    def __init__(self) -> None:
        self._next_id = 0

    @property
    def emitted(self) -> int:
        """Items produced so far (also the next item id)."""
        return self._next_id

    def take(self, n: int) -> List[Item]:
        """The next ``n`` items of the stream, in arrival order."""
        if n < 0:
            raise ConfigurationError(f"take(n) needs n >= 0, got {n}")
        items = [self._emit(self._next_id + i) for i in range(n)]
        self._next_id += n
        return items

    def _emit(self, item_id: int) -> Item:
        raise NotImplementedError


class PoissonStream(ItemStream):
    """Unbounded homogeneous Poisson stream (the open-ended ``poisson``).

    Same per-item draw sequence as :func:`poisson_arrivals` — gap, rack,
    processing time — so the first ``n`` items of the stream equal the
    batch generator's output for the same seed.
    """

    def __init__(self, n_racks: int, rate: float, seed: int,
                 processing_low: int = PROCESSING_TIME_RANGE[0],
                 processing_high: int = PROCESSING_TIME_RANGE[1]) -> None:
        if n_racks < 1:
            raise ConfigurationError("n_racks must be >= 1")
        if rate <= 0:
            raise ConfigurationError("rate must be positive")
        super().__init__()
        self.n_racks = n_racks
        self.rate = rate
        self.processing_low = processing_low
        self.processing_high = processing_high
        self._rng = random.Random(seed)
        self._t = 0.0

    def _emit(self, item_id: int) -> Item:
        self._t += self._rng.expovariate(self.rate)
        return Item(item_id=item_id,
                    rack_id=self._rng.randrange(self.n_racks),
                    arrival=int(self._t),
                    processing_time=uniform_processing_time(
                        self._rng, self.processing_low,
                        self.processing_high))


class CycleStream(ItemStream):
    """Shift-shaped demand: rates cycling over a fixed period of ticks.

    Models the day-curve arrival profiles of staffed-warehouse traces (a
    quiet night shift, a morning ramp, an afternoon peak) without any
    proprietary data: ``rates[k]`` is the Poisson rate in force during
    segment ``k`` of each ``period``-tick cycle, segments of equal
    length.  Each inter-arrival gap is drawn at the rate of the segment
    containing the *current* stream time — a piecewise approximation
    (a gap spanning a boundary uses the departing segment's rate) that
    is deterministic, picklable, and keeps the chunk-invariance
    contract.  Rack popularity is Zipf like :func:`surge_arrivals`.
    """

    def __init__(self, n_racks: int, rates: Sequence[float], period: int,
                 seed: int, zipf_s: float = 0.7,
                 processing_low: int = PROCESSING_TIME_RANGE[0],
                 processing_high: int = PROCESSING_TIME_RANGE[1]) -> None:
        if n_racks < 1:
            raise ConfigurationError("n_racks must be >= 1")
        if not rates or any(rate <= 0 for rate in rates):
            raise ConfigurationError("rates must be non-empty and positive")
        if period < len(rates):
            raise ConfigurationError(
                f"period ({period}) must cover the {len(rates)} segments")
        super().__init__()
        self.n_racks = n_racks
        self.rates = tuple(float(rate) for rate in rates)
        self.period = period
        self.processing_low = processing_low
        self.processing_high = processing_high
        self._rng = random.Random(seed)
        self._t = 0.0
        weights = [1.0 / (k ** zipf_s) for k in range(1, n_racks + 1)]
        total = sum(weights)
        cumulative, acc = [], 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        self._cumulative = cumulative
        rack_order = list(range(n_racks))
        self._rng.shuffle(rack_order)
        self._rack_order = rack_order

    def _current_rate(self) -> float:
        phase = self._t % self.period
        segment = int(phase * len(self.rates) / self.period)
        return self.rates[min(segment, len(self.rates) - 1)]

    def _emit(self, item_id: int) -> Item:
        self._t += self._rng.expovariate(self._current_rate())
        rank = min(bisect.bisect_left(self._cumulative, self._rng.random()),
                   self.n_racks - 1)
        return Item(item_id=item_id,
                    rack_id=self._rack_order[rank],
                    arrival=int(self._t),
                    processing_time=uniform_processing_time(
                        self._rng, self.processing_low,
                        self.processing_high))


STREAMS: dict = {
    "poisson": PoissonStream,
    "cycle": CycleStream,
}


def register_stream(name: str, stream: Callable[..., ItemStream]) -> None:
    """Add an open-ended stream factory to the registry.

    The factory must return a picklable :class:`ItemStream` whose output
    is a pure function of its arguments and draw count.
    """
    if name in STREAMS:
        raise ConfigurationError(f"item stream {name!r} already registered")
    STREAMS[name] = stream


def resolve_stream(name: str) -> Callable[..., ItemStream]:
    """Look up a registered open-ended stream factory by name."""
    try:
        return STREAMS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown item stream {name!r}; "
            f"choose from {sorted(STREAMS)}") from None
