"""Configuration objects for planners and simulations.

All the knobs the paper exposes (Sec. VII-A defaults) live here as frozen
dataclasses so experiments can be described declaratively and compared
field-by-field.  Validation happens eagerly in ``__post_init__`` — a bad
value fails at construction time, not three minutes into a simulation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import ConfigurationError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


#: Valid values of the ``REPRO_KERNEL`` environment variable.
SEARCH_KERNEL_CHOICES = ("auto", "compiled", "python")


def search_kernel_choice() -> str:
    """Resolve the ``REPRO_KERNEL`` search-kernel override.

    ``auto`` (the default) uses the compiled C expansion loop when a built
    artefact is importable and falls back to the pure-python core silently
    otherwise.  ``compiled`` demands the native kernel (selection fails
    loudly when it is absent — see
    :func:`repro.pathfinding.st_astar.set_search_kernel`); ``python``
    forces the pure-python core even when the extension is available.  The
    two cores are pinned bit-identical by the equivalence suite, so the
    knob is a pure performance control.
    """
    choice = os.environ.get("REPRO_KERNEL", "auto").strip().lower()
    _require(choice in SEARCH_KERNEL_CHOICES,
             f"REPRO_KERNEL must be one of {SEARCH_KERNEL_CHOICES}, "
             f"got {choice!r}")
    return choice


#: Floor size (in cells) past which the "paper-scale" machinery switches on
#: automatically when the corresponding knob is left at ``None``:
#: region-sharded reservation structures and batched planner wakes.  Every
#: historical scenario (the scaled-down Table II floors, the small fleet
#: rungs, the golden-trace mini floor) sits far below this threshold, so the
#: auto rule leaves their behaviour — and their goldens — byte-identical;
#: the paper-true 541×302 floor (163 382 cells) lands far above it.
PAPER_SCALE_MIN_CELLS = 16_384


@dataclass(frozen=True)
class QLearningConfig:
    """Hyper-parameters of the rack-selection learner (Sec. V, Table I).

    Attributes
    ----------
    delta:
        Bootstrap degree δ — per-timestamp probability of using the greedy
        "most slack picker first" approximation instead of the learned
        policy.  The paper finds δ < 0.4 effective and defaults to 0.2.
    epsilon:
        ε of the ε-greedy action policy (paper default 0.1).
    learning_rate:
        β in the Q-learning update, Eq. 5 (paper default 0.1).
    discount:
        γ in Eq. 5.  The paper does not state its value; 0.9 is the
        conventional choice and is exposed here as a knob.
    state_bin_width:
        Width of the buckets used to discretise the unbounded accumulated
        processing times ``⟨ap_r, ar_r⟩`` into a tabular state.  The paper
        uses the raw counters; a tabular learner needs finitely many states
        to generalise at all, so we bucket (documented deviation).
    deferral_weight:
        Exchange rate between per-item deferral cost and per-selection
        overhead cost (see :func:`repro.rl.mdp.wait_cost`).  Defaults to
        the decision horizon 1/(1 − γ).
    """

    delta: float = 0.2
    epsilon: float = 0.1
    learning_rate: float = 0.1
    discount: float = 0.9
    state_bin_width: int = 60
    deferral_weight: float = 10.0

    def __post_init__(self) -> None:
        _require(0.0 <= self.delta <= 1.0, f"delta must be in [0,1], got {self.delta}")
        _require(0.0 <= self.epsilon <= 1.0, f"epsilon must be in [0,1], got {self.epsilon}")
        _require(0.0 < self.learning_rate <= 1.0,
                 f"learning_rate must be in (0,1], got {self.learning_rate}")
        _require(0.0 <= self.discount < 1.0, f"discount must be in [0,1), got {self.discount}")
        _require(self.state_bin_width >= 1,
                 f"state_bin_width must be >= 1, got {self.state_bin_width}")
        _require(self.deferral_weight > 0,
                 f"deferral_weight must be positive, got {self.deferral_weight}")


@dataclass(frozen=True)
class PlannerConfig:
    """Knobs shared by the planners (Secs. V–VI, Table I).

    Attributes
    ----------
    knn_k:
        K — how many closest racks each robot probes under flip requesting
        (EATP, Sec. VI-A).  The paper leaves K unstated on its 5 000+ rack
        floors; on the scaled-down layouts K = 8 keeps the probe
        neighbourhood dense enough that EATP stays within ~1% of ATP's
        makespan (the paper's reported trade-off).
    cache_threshold:
        L — Manhattan-distance threshold below which the cache-aided
        finisher takes over from spatiotemporal A* (EATP, Sec. VI-B).
        ``0`` disables the cache.  The paper's default of 50 is tuned to
        its 233×104-and-larger floors; our default of 12 is the same
        fraction of the scaled-down layouts (DESIGN.md §4).
    max_search_expansions:
        Safety valve for a single spatiotemporal A* run; prevents an
        accidentally unreachable goal from hanging an experiment.
    search_horizon:
        ``W`` of the windowed fallback tier: how many ticks of
        conflict-aware lookahead the windowed search plans (and the
        reservation structure commits) before the simulator replans at
        the horizon.  Only reached when the full search exhausts — the
        windowed tier changes nothing on runs the full search handles.
    free_flow:
        Whether the tier-0 free-flow fast path (greedy descent on the
        exact heuristic field plus a bulk reservation audit, see
        :mod:`repro.pathfinding.free_flow`) runs ahead of the full
        search.  Provably behaviour-neutral — a fast-path leg is
        byte-identical to what the full search would have returned — so
        disabling it is purely a benchmarking/ablation control.
    free_flow_rescue:
        Whether a free-flow descent whose audit hits a reservation is
        *rescued* by wait-following — walk the same descent cells,
        waiting in place wherever the next move conflicts (the Sec. VI-B
        finisher policy applied from the start cell) — before falling
        into the full search.  O(path + waits) instead of the full
        search's O(distance²) plateau, which is what makes congested
        wakes on the paper-true floor tractable; the rescued path can
        differ from the search's optimum, so ``None`` (the default)
        enables the rescue only on floors of at least
        :data:`PAPER_SCALE_MIN_CELLS` cells, keeping every historical
        scenario byte-identical.
    rescue_wait_per_step:
        Per-step wait cap of the rescue walk: a single blocked move may
        wait at most this many ticks before the rescue declines.
    rescue_total_wait:
        Total-wait cap of the rescue walk across the whole leg (the
        dense-traffic livelock guard of ``follow_with_waits``).
    fallback_wait_ticks:
        Replan backoff of the wait-in-place tier: how many ticks a boxed
        robot holds position before the pipeline retries, when no
        earlier free tick of its cell suggests a better moment.
    reservation_horizon:
        How many ticks into the past the reservation structure keeps before
        its periodic purge (the CDT "update" operation, Sec. VI-B).
    reservation_sharding:
        Whether the planner's reservation structure is the region-sharded
        variant (tick buckets / graph layers partitioned into fixed-size
        spatial tiles, see :mod:`repro.pathfinding.cdt` and
        :mod:`repro.pathfinding.spatiotemporal_graph`).  ``None`` (the
        default) auto-enables sharding on floors of at least
        :data:`PAPER_SCALE_MIN_CELLS` cells and keeps the paper-faithful
        global structures below it; sharded and global tables are pinned
        bit-identical by the equivalence suites, so the knob is a pure
        performance control.
    shard_tile_bits:
        log2 of the tile edge length used by the sharded reservation
        structures (5 → 32×32-cell tiles).
    batch_planning:
        Whether a planner wake that resolves several (robot, rack) legs
        plans them as one batch — candidates planned independently against
        the frozen reservation table, then audited-and-committed in order
        with an optimistic replan on audit conflict.  ``None`` (default)
        follows the same :data:`PAPER_SCALE_MIN_CELLS` auto rule as
        ``reservation_sharding``.
    batch_min_legs:
        Minimum number of resolved legs in one wake before the batch path
        engages; smaller wakes use the sequential plan-commit loop.
    batch_workers:
        Process-pool width for planning the independent candidates of one
        batch in parallel (0 — the default — plans them in-process).  The
        pool reuses the matrix executor plumbing (spawned workers, the
        grid shipped once at initialisation) and is only consulted by
        planners whose pipelines are pool-replicable (no memoising
        finisher), so pooled and in-process batches stay bit-identical.
    qlearning:
        Nested learner configuration, used by ATP and EATP only.
    seed:
        Seed for the planner's private RNG (Bernoulli(δ) draws and
        ε-greedy exploration), so runs are reproducible.
    """

    knn_k: int = 8
    cache_threshold: int = 12
    max_search_expansions: int = 200_000
    search_horizon: int = 64
    free_flow: bool = True
    free_flow_rescue: Optional[bool] = None
    rescue_wait_per_step: int = 16
    rescue_total_wait: int = 96
    fallback_wait_ticks: int = 8
    reservation_horizon: int = 64
    reservation_sharding: Optional[bool] = None
    shard_tile_bits: int = 5
    batch_planning: Optional[bool] = None
    batch_min_legs: int = 8
    batch_workers: int = 0
    qlearning: QLearningConfig = field(default_factory=QLearningConfig)
    seed: int = 7

    def __post_init__(self) -> None:
        _require(self.knn_k >= 1, f"knn_k must be >= 1, got {self.knn_k}")
        _require(self.cache_threshold >= 0,
                 f"cache_threshold must be >= 0, got {self.cache_threshold}")
        _require(self.max_search_expansions > 0,
                 f"max_search_expansions must be > 0, got {self.max_search_expansions}")
        _require(self.search_horizon >= 1,
                 f"search_horizon must be >= 1, got {self.search_horizon}")
        _require(self.rescue_wait_per_step >= 1,
                 f"rescue_wait_per_step must be >= 1, "
                 f"got {self.rescue_wait_per_step}")
        _require(self.rescue_total_wait >= 1,
                 f"rescue_total_wait must be >= 1, "
                 f"got {self.rescue_total_wait}")
        _require(self.fallback_wait_ticks >= 1,
                 f"fallback_wait_ticks must be >= 1, "
                 f"got {self.fallback_wait_ticks}")
        _require(self.reservation_horizon > 0,
                 f"reservation_horizon must be > 0, got {self.reservation_horizon}")
        _require(2 <= self.shard_tile_bits <= 10,
                 f"shard_tile_bits must be in [2, 10], "
                 f"got {self.shard_tile_bits}")
        _require(self.batch_min_legs >= 2,
                 f"batch_min_legs must be >= 2, got {self.batch_min_legs}")
        _require(self.batch_workers >= 0,
                 f"batch_workers must be >= 0, got {self.batch_workers}")

    def with_(self, **changes) -> "PlannerConfig":
        """Return a copy with ``changes`` applied (ablation convenience)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class SimulationConfig:
    """Controls for the validation system (Sec. VII-A).

    Attributes
    ----------
    max_ticks:
        Hard stop for a run; a simulation that has not drained by then
        raises, which in practice flags a livelocked planner.
    metrics_checkpoints:
        How many evenly spaced item-count checkpoints to record for the
        Fig. 10–12 series (the paper uses 10).
    purge_interval:
        How often (in ticks) reservation structures drop past timestamps —
        the CDT update operation of Sec. VI-B.
    record_bottleneck_trace:
        Whether to record the per-tick transport/queuing/processing cost
        decomposition used by the Fig. 13 case study (small overhead).
    collect_paths:
        Whether to keep every planned leg path in the result, so tests
        can audit global conflict-freedom (memory-heavy on big runs).
    """

    max_ticks: int = 500_000
    metrics_checkpoints: int = 10
    purge_interval: int = 64
    record_bottleneck_trace: bool = False
    collect_paths: bool = False

    def __post_init__(self) -> None:
        _require(self.max_ticks > 0, f"max_ticks must be > 0, got {self.max_ticks}")
        _require(self.metrics_checkpoints >= 1,
                 f"metrics_checkpoints must be >= 1, got {self.metrics_checkpoints}")
        _require(self.purge_interval >= 1,
                 f"purge_interval must be >= 1, got {self.purge_interval}")
