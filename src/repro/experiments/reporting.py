"""Plain-text table/series formatting for experiment reports.

The harness prints the same rows and series the paper reports; these
helpers keep the formatting consistent across all regenerators without
pulling in a plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None) -> str:
    """Render an aligned monospace table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence,
                  y_format: str = "{:.3f}") -> str:
    """Render one figure series as ``name: (x, y) (x, y) ...``."""
    points = " ".join(f"({x}, {y_format.format(y)})" for x, y in zip(xs, ys))
    return f"{name}: {points}"


def percent_improvement(baseline: float, ours: float) -> float:
    """Relative improvement of ``ours`` over ``baseline`` (positive=better).

    Matches the paper's convention for makespan/time reductions:
    ``(baseline − ours) / baseline``.
    """
    if baseline == 0:
        return 0.0
    return (baseline - ours) / baseline * 100.0
