"""On-disk JSON result store for the parallel experiment matrix.

One matrix run owns one directory (``results/<matrix>/``); each finished
(scenario × planner) cell streams into its own ``<cell>.json`` the moment
its worker returns.  A re-invoked matrix skips every cell whose file is
already present, so an interrupted grid resumes from where it died and
deleting a single cell file recomputes exactly that cell.

Writes are atomic (temp file + ``os.replace``) so a crashed run never
leaves a half-written cell that a resume would mistake for a finished one.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, Optional

from ..errors import ConfigurationError

_UNSAFE = re.compile(r"[^A-Za-z0-9._=+-]+")


def cell_filename(cell_id: str) -> str:
    """Map a cell id to a safe, stable filename (without directory)."""
    safe = _UNSAFE.sub("_", cell_id).strip("_")
    if not safe:
        raise ConfigurationError(f"cell id {cell_id!r} has no usable characters")
    return f"{safe}.json"


def assert_unique_filenames(cell_ids: Iterable[str]) -> None:
    """Fail fast when distinct cell ids map to the same result file.

    The filename sanitiser collapses runs of unsafe characters, so ids
    like ``mini/atp`` and ``mini:atp`` collide on disk — the second cell
    would silently overwrite (or resume from!) the first's results.  A
    repeated identical id is rejected too: it is the same double-write.
    Matrix builders call this before running anything.
    """
    by_file: Dict[str, str] = {}
    for cell_id in cell_ids:
        filename = cell_filename(cell_id)
        other = by_file.get(filename)
        if other is not None:
            raise ConfigurationError(
                f"matrix cell ids collide (same result file {filename!r}): "
                f"{other!r} vs {cell_id!r}")
        by_file[filename] = cell_id


class ResultStore:
    """A directory of per-cell JSON payloads, keyed by cell id."""

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # A crash between writing a temp file and renaming it leaves a
        # stale *.json.tmp behind; sweep them on open so they never
        # accumulate or confuse a directory listing.
        for stale in self.root.glob("*.json.tmp"):
            try:
                stale.unlink()
            except FileNotFoundError:
                pass

    def path(self, cell_id: str) -> Path:
        """Where the given cell's payload lives."""
        return self.root / cell_filename(cell_id)

    def has(self, cell_id: str) -> bool:
        """Whether the cell already finished in a previous run."""
        return self.path(cell_id).is_file()

    def load(self, cell_id: str) -> Dict[str, Any]:
        """Read one cell's payload."""
        with self.path(cell_id).open("r", encoding="utf-8") as fh:
            return json.load(fh)

    def save(self, cell_id: str, payload: Dict[str, Any]) -> Path:
        """Atomically write one cell's payload; returns its path."""
        target = self.path(cell_id)
        tmp = target.with_suffix(".json.tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, target)
        return target

    def delete(self, cell_id: str) -> None:
        """Drop one cell (forces recomputation on the next run)."""
        try:
            self.path(cell_id).unlink()
        except FileNotFoundError:
            pass

    def cell_files(self) -> Iterator[Path]:
        """All finished cell files, sorted by name."""
        return iter(sorted(self.root.glob("*.json")))

    def __len__(self) -> int:
        return sum(1 for __ in self.root.glob("*.json"))


def open_store(results_dir: Optional[os.PathLike],
               matrix_name: str) -> Optional[ResultStore]:
    """``ResultStore`` under ``results_dir/<matrix_name>``, or None."""
    if results_dir is None:
        return None
    return ResultStore(Path(results_dir) / matrix_name)
