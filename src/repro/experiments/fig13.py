"""Experiment E7 — Fig. 13: bottleneck variation over time (case study).

The paper's Geekplus case study shows the fulfilment-cycle bottleneck
migrating as a surge builds: transport dominates while item volume is
small, queuing takes over as queues build at the pickers, and processing
cost grows then flattens.  This regenerator runs the adaptive planner on a
surge workload with the bottleneck trace enabled and reports the
transport/queuing/processing decomposition over time plus the dominant
step per window.

Run as a module::

    python -m repro.experiments.fig13 [--scale S] [--planner NAME]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import List, Optional

from ..config import PlannerConfig, SimulationConfig
from ..sim.serialize import trace_from_dict
from ..workloads.datasets import make_real_norm
from .harness import MatrixCell, run_matrix
from .store import open_store


@dataclass(frozen=True)
class BottleneckReport:
    """Summarised Fig. 13 output."""

    planner: str
    #: Dominant step per window of the run, in time order.
    timeline: List[str]
    #: Final cumulative cost of each step (mission-ticks).
    cum_transport: int
    cum_queuing: int
    cum_processing: int

    @property
    def migrated(self) -> bool:
        """Whether the bottleneck moved from transport to queuing."""
        if "transport" not in self.timeline or "queuing" not in self.timeline:
            return False
        return (self.timeline.index("transport")
                < self.timeline.index("queuing"))


def run_fig13(scale: float = 1.0, planner: str = "ATP",
              window: int = 200,
              planner_config: Optional[PlannerConfig] = None,
              results_dir: Optional[str] = None) -> BottleneckReport:
    """Run the case study and summarise the bottleneck migration.

    A one-cell matrix: with ``results_dir`` set, a stored cell replays
    from its serialised trace without re-simulating.
    """
    # No explicit label: the default cell id carries a config digest, so
    # a stored trace is never replayed under different knobs.
    cell = MatrixCell(
        scenario=make_real_norm(scale), planner=planner,
        planner_config=planner_config,
        sim_config=SimulationConfig(record_bottleneck_trace=True))
    store = open_store(results_dir, f"fig13-s{scale:g}")
    payload = run_matrix([cell], store=store)[cell.cell_id]
    trace = trace_from_dict(payload["result"]["trace"])
    last = trace.samples[-1]
    return BottleneckReport(
        planner=planner,
        timeline=trace.bottleneck_timeline(window),
        cum_transport=last.cum_transport,
        cum_queuing=last.cum_queuing,
        cum_processing=last.cum_processing)


def render_fig13(report: BottleneckReport) -> str:
    """Format the case-study report."""
    lines = [f"Fig. 13 — bottleneck variation ({report.planner} on surge "
             f"workload)"]
    lines.append("  dominant step per window: " + " ".join(
        {"transport": "T", "queuing": "Q", "processing": "P"}[w]
        for w in report.timeline))
    lines.append(f"  cumulative mission-ticks: transport={report.cum_transport:,} "
                 f"queuing={report.cum_queuing:,} "
                 f"processing={report.cum_processing:,}")
    lines.append(f"  transport→queuing migration observed: {report.migrated}")
    return "\n".join(lines)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--planner", default="ATP")
    parser.add_argument("--results-dir", default=None)
    args = parser.parse_args(argv)
    print(render_fig13(run_fig13(scale=args.scale, planner=args.planner,
                                 results_dir=args.results_dir)))


if __name__ == "__main__":
    main()
