"""Experiment E6 — Fig. 12: memory consumption over the planning procedure.

Samples each planner's live planning-structure footprint (reservation
structure, plus EATP's cache/KNN/Q-table) at the item-count checkpoints.
The paper's claim — every A*-based planner pays for the spatiotemporal
graph while EATP's conflict detection table stays far below — is the shape
this regenerator checks.  Cells run through the experiment matrix
(``--workers``, ``--results-dir``).

Run as a module::

    python -m repro.experiments.fig12 [--scale S] [--dataset NAME] [--workers N]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import PlannerConfig
from ..workloads.datasets import all_datasets
from .harness import DEFAULT_PLANNERS, plan_cells, run_matrix
from .reporting import format_series
from .store import open_store


@dataclass(frozen=True)
class MemorySeries:
    """One planner's memory checkpoint series on one dataset."""

    planner: str
    items: List[int]
    memory_kib: List[float]
    peak_kib: float


def run_fig12(scale: float = 1.0, dataset: Optional[str] = None,
              planner_config: Optional[PlannerConfig] = None,
              workers: int = 0, results_dir: Optional[str] = None
              ) -> Dict[str, List[MemorySeries]]:
    """Compute the Fig. 12 series; ``{dataset: [series per planner]}``."""
    datasets = all_datasets(scale)
    if dataset is not None:
        datasets = {dataset: datasets[dataset]}
    cells = plan_cells(datasets.values(), DEFAULT_PLANNERS, planner_config)
    store = open_store(results_dir, f"fig12-s{scale:g}")
    payloads = run_matrix(cells, workers=workers, store=store)
    out: Dict[str, List[MemorySeries]] = {name: [] for name in datasets}
    for payload in payloads.values():
        metrics = payload["result"]["metrics"]
        checkpoints = metrics["checkpoints"]
        out[payload["scenario"]].append(MemorySeries(
            planner=payload["planner"],
            items=[c["items_processed"] for c in checkpoints],
            memory_kib=[c["memory_bytes"] / 1024 for c in checkpoints],
            peak_kib=metrics["peak_memory_bytes"] / 1024))
    return out


def render_fig12(data: Dict[str, List[MemorySeries]]) -> str:
    """Format the memory figure as labelled series plus peak summary."""
    lines: List[str] = []
    for dataset, series in data.items():
        lines.append(f"Fig. 12 — MC on {dataset} (KiB)")
        for s in series:
            lines.append("  " + format_series(s.planner, s.items,
                                              s.memory_kib, "{:.0f}"))
        peaks = ", ".join(f"{s.planner}={s.peak_kib:.0f}" for s in series)
        lines.append(f"  peaks: {peaks}")
    return "\n".join(lines)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--dataset", default=None,
                        choices=[None, "Syn-A", "Syn-B", "Real-Norm",
                                 "Real-Large"])
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--results-dir", default=None)
    args = parser.parse_args(argv)
    print(render_fig12(run_fig12(scale=args.scale, dataset=args.dataset,
                                 workers=args.workers,
                                 results_dir=args.results_dir)))


if __name__ == "__main__":
    main()
