"""Experiment E8 — the Sec. III-B adversarial construction (Fig. 4).

Two pickers, one robot.  Picker p1 owns a single *far-away* rack whose k
items arrive one-by-one, spaced exactly one fulfilment cycle apart —
greedy dispatch (NTP) therefore shuttles that rack k times, paying the
long round trip D every time.  Picker p2 owns k racks *right next to it*
whose items arrive in a quick burst.  The optimal play is to serve p2's
cheap racks while p1's items accumulate, then deliver p1's rack in one
batched trip; the greedy play costs ≈ k·(D + ξ), an Ω(k) competitive
ratio (Sec. III-B).

This regenerator builds that exact workload and reports the NTP-vs-ATP
makespan ratio as k grows, demonstrating the gap the paper uses to
motivate adaptive selection.

Run as a module::

    python -m repro.experiments.badcase [--k K]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import PlannerConfig, QLearningConfig, SimulationConfig
from ..planners import PLANNERS
from ..sim.engine import Simulation
from ..types import manhattan
from ..warehouse.entities import Item
from ..warehouse.layout import WarehouseLayout, build_layout
from ..warehouse.state import WarehouseState


@dataclass(frozen=True)
class PlannerOutcome:
    """How one planner handled the construction."""

    makespan: int
    #: Fulfilment cycles paid for rack 0 — the k-trip shuttle vs batching.
    rack0_trips: int
    #: Mean (completion − arrival) over all items.
    mean_flow_time: float


@dataclass(frozen=True)
class BadCaseResult:
    """Outcomes of the adversarial workload for one value of k.

    The greedy shuttle shows up as ``rack0_trips ≈ k`` for NTP versus a
    handful of batched trips for ATP, and correspondingly in the mean
    flow time of p2's burst items, which greedy strands behind the long
    round trips.
    """

    k: int
    outcomes: Dict[str, PlannerOutcome]

    @property
    def makespans(self) -> Dict[str, int]:
        """Planner → makespan (compatibility accessor)."""
        return {n: o.makespan for n, o in self.outcomes.items()}

    @property
    def shuttle_ratio(self) -> float:
        """NTP's rack-0 trips over ATP's — the Ω(k) mechanism."""
        return self.outcomes["NTP"].rack0_trips / max(
            self.outcomes["ATP"].rack0_trips, 1)

    @property
    def flow_penalty(self) -> float:
        """NTP mean flow time / ATP mean flow time."""
        return (self.outcomes["NTP"].mean_flow_time
                / max(self.outcomes["ATP"].mean_flow_time, 1e-9))


def build_bad_case(k: int, xi: int = 8
                   ) -> Tuple[WarehouseLayout, List[int], List[Item]]:
    """Construct the Sec. III-B world: layout, rack→picker map, items.

    Rack 0 (p1's) is the home *farthest* from picker p1 — maximising the
    round trip D — and the robot starts parked beneath it, exactly as in
    the paper's figure.  p2's k racks are the homes *closest* to p2.
    """
    if k < 2:
        raise ValueError("the construction needs k >= 2")
    width = max(20, k + 10)
    base = build_layout(width, 16, n_racks=max(k + 1, 8), n_pickers=2)
    p1, p2 = base.picker_locations

    # Reorder homes: index 0 = farthest from p1, 1..k = nearest to p2.
    homes = list(base.rack_homes)
    far = max(homes, key=lambda h: manhattan(h, p1))
    homes.remove(far)
    homes.sort(key=lambda h: manhattan(h, p2))
    ordered = [far] + homes
    layout = WarehouseLayout(grid=base.grid, rack_homes=tuple(ordered),
                             picker_locations=base.picker_locations)
    layout.validate()

    rack_to_picker = [0] + [1] * (len(ordered) - 1)

    # D + ξ: one full greedy cycle.  Arrivals are paced one tick inside
    # the cycle so the greedy planner always finds a fresh p1 item the
    # moment its robot frees — the adversarial drip of Fig. 4(a).
    cycle = max(2 * manhattan(far, p1) + xi - 2, 1)
    items: List[Item] = []
    item_id = 0
    for j in range(k):  # p1's items: one per cycle, all on rack 0
        items.append(Item(item_id, 0, j * cycle, xi))
        item_id += 1
    for j in range(k):  # p2's burst: one rack each, shortly after o1
        items.append(Item(item_id, 1 + j, 2 + j, xi))
        item_id += 1
    return layout, rack_to_picker, items


def run_bad_case(k: int = 6, xi: int = 8,
                 planner_config: Optional[PlannerConfig] = None) -> BadCaseResult:
    """Run NTP and ATP on the adversarial workload."""
    layout, rack_to_picker, items = build_bad_case(k, xi)
    if planner_config is None:
        # A patient adaptive configuration: rely on the learned policy.
        planner_config = PlannerConfig(
            qlearning=QLearningConfig(delta=0.02, epsilon=0.02))
    outcomes = {}
    for name in ("NTP", "ATP"):
        state = WarehouseState.from_layout(layout, n_robots=1,
                                           rack_to_picker=rack_to_picker)
        planner = PLANNERS[name](state, planner_config)
        result = Simulation(state, planner, items).run()
        arrival_of = {item.item_id: item.arrival for item in items}
        flows = []
        rack0_trips = 0
        for mission in result.missions:
            if mission.rack_id == 0:
                rack0_trips += 1
            done = mission.stage_entered_at
            for item in mission.batch:
                flows.append(done - arrival_of[item.item_id])
        outcomes[name] = PlannerOutcome(
            makespan=result.metrics.makespan,
            rack0_trips=rack0_trips,
            mean_flow_time=sum(flows) / len(flows))
    return BadCaseResult(k=k, outcomes=outcomes)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--k", type=int, default=6)
    args = parser.parse_args(argv)
    result = run_bad_case(args.k)
    for name, outcome in result.outcomes.items():
        print(f"  {name}: makespan={outcome.makespan} "
              f"rack0_trips={outcome.rack0_trips} "
              f"mean_flow={outcome.mean_flow_time:.1f}")
    print(f"Bad case k={result.k}: greedy shuttles rack 0 "
          f"{result.shuttle_ratio:.1f}x more often; items flow "
          f"{result.flow_penalty:.2f}x slower under greedy")


if __name__ == "__main__":
    main()
