"""Shared experiment harness: run planners over scenarios, collect results.

Every table/figure regenerator in this package goes through
:func:`run_planner` / :func:`run_comparison`, so all experiments share the
same world-building and bookkeeping, and a planner never sees a world
another planner has touched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..config import PlannerConfig, SimulationConfig
from ..planners import PLANNERS
from ..sim.engine import Simulation, SimulationResult
from ..workloads.scenario import Scenario

#: The evaluation order of the paper's tables.
DEFAULT_PLANNERS = ("NTP", "LEF", "ILP", "ATP", "EATP")

#: Planners the paper could not run on Real-Large ("too slow to execute");
#: kept skippable here for fidelity with Table III's missing cells.
SLOW_PLANNERS = ("LEF", "ILP")


@dataclass
class ComparisonResult:
    """Results of one scenario across several planners."""

    scenario_name: str
    results: Dict[str, SimulationResult] = field(default_factory=dict)

    def makespans(self) -> Dict[str, int]:
        """Planner name → makespan."""
        return {name: res.metrics.makespan for name, res in self.results.items()}

    def best_planner(self) -> str:
        """The planner with the smallest makespan."""
        return min(self.results, key=lambda n: self.results[n].metrics.makespan)


def run_planner(scenario: Scenario, planner_name: str,
                planner_config: Optional[PlannerConfig] = None,
                sim_config: Optional[SimulationConfig] = None) -> SimulationResult:
    """Run one planner over a fresh build of ``scenario``."""
    if planner_name not in PLANNERS:
        raise KeyError(f"unknown planner {planner_name!r}; "
                       f"choose from {sorted(PLANNERS)}")
    state, items = scenario.build()
    planner = PLANNERS[planner_name](state, planner_config)
    simulation = Simulation(state, planner, items, sim_config)
    return simulation.run()


def run_comparison(scenario: Scenario,
                   planners: Sequence[str] = DEFAULT_PLANNERS,
                   planner_config: Optional[PlannerConfig] = None,
                   sim_config: Optional[SimulationConfig] = None,
                   skip: Iterable[str] = ()) -> ComparisonResult:
    """Run several planners over identical copies of ``scenario``."""
    skipped = set(skip)
    comparison = ComparisonResult(scenario_name=scenario.name)
    for name in planners:
        if name in skipped:
            continue
        comparison.results[name] = run_planner(scenario, name,
                                               planner_config, sim_config)
    return comparison
