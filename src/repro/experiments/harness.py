"""Shared experiment harness: the (scenario × planner) matrix runner.

Every table/figure regenerator in this package goes through the same
entry points, so all experiments share one world-building path and a
planner never sees a world another planner has touched:

* :func:`run_planner` / :func:`run_comparison` — one in-process run, the
  unit tests' workhorse;
* :func:`run_matrix` — a grid of :class:`MatrixCell` s fanned out over a
  ``ProcessPoolExecutor``, each finished cell streamed into a JSON
  :class:`~repro.experiments.store.ResultStore` and skipped on re-runs.

Determinism: a cell is (spec, planner name, configs) — plain picklable
data — and every worker materialises its world from the spec's embedded
seeds, so a cell's :func:`~repro.sim.serialize.deterministic_view` is
identical whether it ran serially, in a pool, or on another machine.
Only the wall-clock timing fields differ.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence)

from ..config import PAPER_SCALE_MIN_CELLS, PlannerConfig, SimulationConfig
from ..errors import ConfigurationError
from ..pathfinding.heuristics import (FieldArena, FieldArenaHandle,
                                      attach_field_arena)
from ..planners import PLANNERS
from ..sim.engine import Simulation, SimulationResult
from ..sim.serialize import result_to_dict
from ..workloads.scenario import TAG_SKIP_SLOW_PLANNERS, ScenarioSpec
from .store import ResultStore, assert_unique_filenames

#: The evaluation order of the paper's tables.
DEFAULT_PLANNERS = ("NTP", "LEF", "ILP", "ATP", "EATP")

#: Planners the paper could not run on Real-Large ("too slow to execute");
#: kept skippable here for fidelity with Table III's missing cells.
SLOW_PLANNERS = ("LEF", "ILP")


@dataclass
class ComparisonResult:
    """Results of one scenario across several planners."""

    scenario_name: str
    results: Dict[str, SimulationResult] = field(default_factory=dict)

    def makespans(self) -> Dict[str, int]:
        """Planner name → makespan."""
        return {name: res.metrics.makespan for name, res in self.results.items()}

    def best_planner(self) -> str:
        """The planner with the smallest makespan."""
        return min(self.results, key=lambda n: self.results[n].metrics.makespan)


def run_planner(scenario: ScenarioSpec, planner_name: str,
                planner_config: Optional[PlannerConfig] = None,
                sim_config: Optional[SimulationConfig] = None,
                arena_handle: Optional[FieldArenaHandle] = None
                ) -> SimulationResult:
    """Run one planner over a fresh build of ``scenario``.

    ``arena_handle``, when given, names a shared-memory block of
    prebuilt heuristic fields (see :func:`run_matrix`); the planner
    reads goal fields from it instead of re-flooding them, with
    bit-identical values.  A stale handle is silently ignored.
    """
    if planner_name not in PLANNERS:
        raise KeyError(f"unknown planner {planner_name!r}; "
                       f"choose from {sorted(PLANNERS)}")
    state, items = scenario.build()
    planner = PLANNERS[planner_name](state, planner_config)
    if arena_handle is not None:
        try:
            planner.attach_field_arena(attach_field_arena(arena_handle))
        except (FileNotFoundError, OSError):
            pass
    simulation = Simulation(state, planner, items, sim_config)
    try:
        return simulation.run()
    finally:
        # Release run-scoped resources — without this, a run with
        # ``batch_workers > 0`` would leak its worker pool processes.
        planner.close()


def run_comparison(scenario: ScenarioSpec,
                   planners: Sequence[str] = DEFAULT_PLANNERS,
                   planner_config: Optional[PlannerConfig] = None,
                   sim_config: Optional[SimulationConfig] = None,
                   skip: Iterable[str] = ()) -> ComparisonResult:
    """Run several planners over identical copies of ``scenario``.

    Raises
    ------
    ConfigurationError
        If ``skip`` (or an empty ``planners``) leaves nothing to run — an
        empty comparison would silently satisfy any downstream check.
    """
    skipped = set(skip)
    to_run = [name for name in planners if name not in skipped]
    if not to_run:
        raise ConfigurationError(
            f"comparison on {scenario.name} has no planners to run "
            f"(planners={list(planners)}, skip={sorted(skipped)})")
    comparison = ComparisonResult(scenario_name=scenario.name)
    for name in to_run:
        comparison.results[name] = run_planner(scenario, name,
                                               planner_config, sim_config)
    return comparison


# -- the parallel matrix -----------------------------------------------------


@dataclass(frozen=True)
class MatrixCell:
    """One unit of matrix work: a scenario spec bound to one planner.

    Everything here is plain picklable data; a worker process rebuilds
    the whole world from it.  ``cell_id`` doubles as the result filename
    stem, so it must be unique within a matrix: the default id is
    ``<scenario>--<planner>``, extended with a config digest whenever a
    non-default config is attached — a stored cell must never be mistaken
    for one computed under different knobs.
    """

    scenario: ScenarioSpec
    planner: str
    planner_config: Optional[PlannerConfig] = None
    sim_config: Optional[SimulationConfig] = None
    #: Optional explicit id override (sweeps label their own cells).
    label: str = ""
    #: Shared heuristic-field arena for this cell's grid, attached by
    #: :func:`run_matrix` on the pool path.  Excluded from ``cell_id``
    #: (the digest hashes only the config pair) because attached fields
    #: are bit-identical to locally flooded ones — a transport detail,
    #: not a knob.
    arena_handle: Optional[FieldArenaHandle] = None

    @property
    def cell_id(self) -> str:
        if self.label:
            return self.label
        base = f"{self.scenario.name}--{self.planner}"
        if self.planner_config is None and self.sim_config is None:
            return base
        # Frozen dataclass reprs list every field, so the digest changes
        # iff some knob does.
        digest = hashlib.sha256(
            repr((self.planner_config, self.sim_config)).encode("utf-8")
        ).hexdigest()[:8]
        return f"{base}--cfg-{digest}"


def plan_cells(scenarios: Iterable[ScenarioSpec],
               planners: Sequence[str] = DEFAULT_PLANNERS,
               planner_config: Optional[PlannerConfig] = None,
               sim_config: Optional[SimulationConfig] = None,
               skip_slow_on: Iterable[str] = ("Real-Large",),
               slow_planners: Sequence[str] = SLOW_PLANNERS) -> List[MatrixCell]:
    """Cross scenarios with planners into cells, honouring the slow-skips.

    A scenario excludes ``slow_planners`` when its name is listed in
    ``skip_slow_on`` *or* it carries
    :data:`~repro.workloads.scenario.TAG_SKIP_SLOW_PLANNERS` (families
    that rebuild the Real-Large floor under other names, like the fleet
    ladder, tag themselves).
    """
    cells = []
    slow_scenarios = set(skip_slow_on)
    for scenario in scenarios:
        skip_slow = (scenario.name in slow_scenarios
                     or TAG_SKIP_SLOW_PLANNERS in scenario.tags)
        for planner in planners:
            if skip_slow and planner in slow_planners:
                continue
            cells.append(MatrixCell(scenario=scenario, planner=planner,
                                    planner_config=planner_config,
                                    sim_config=sim_config))
    return cells


def execute_cell(cell: MatrixCell) -> Dict[str, Any]:
    """Run one cell to completion; the worker-side entry point.

    Module-level (not a closure) so ``ProcessPoolExecutor`` can pickle it
    under any start method.  Returns a JSON-serialisable payload carrying
    the cell's identity, the scenario spec for provenance, the serialised
    result, and the cell's wall-clock (``wall_s`` — a measurement, so it
    sits outside ``result`` and the deterministic view).
    """
    started = time.perf_counter()
    result = run_planner(cell.scenario, cell.planner,
                         cell.planner_config, cell.sim_config,
                         arena_handle=cell.arena_handle)
    return {
        "cell_id": cell.cell_id,
        "scenario": cell.scenario.name,
        "planner": cell.planner,
        "spec": cell.scenario.spec_dict(),
        "result": result_to_dict(result),
        "wall_s": time.perf_counter() - started,
    }


def run_matrix(cells: Sequence[MatrixCell], workers: int = 0,
               store: Optional[ResultStore] = None,
               progress: Optional[Callable[[str, str], None]] = None
               ) -> Dict[str, Dict[str, Any]]:
    """Run a cell grid, in parallel, resuming from ``store`` if given.

    Parameters
    ----------
    cells:
        The grid; cell ids must be unique.
    workers:
        ``0`` runs every cell serially in this process (bit-identical
        payloads aside from wall-clock timings); ``n >= 1`` fans cells
        out over a ``ProcessPoolExecutor`` with ``n`` workers.
    store:
        Optional on-disk store.  Cells whose file already exists are
        *not* re-run — their stored payload is returned — and every
        freshly finished cell is written the moment it completes, so an
        interrupted matrix resumes where it died.
    progress:
        Optional callback ``(cell_id, status)`` with status ``"cached"``
        (resumed from the store), ``"queued"`` (submitted to the pool),
        ``"start"`` (beginning serially in this process) or ``"done"``
        (the CLI's progress line).

    Returns
    -------
    ``{cell_id: payload}`` in the order of ``cells``.
    """
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    # Deduplicate on the *filename* the store would use, so ids that
    # sanitise to the same file cannot silently overwrite each other.
    assert_unique_filenames(cell.cell_id for cell in cells)
    ids = [cell.cell_id for cell in cells]

    notify = progress if progress is not None else (lambda cell_id, status: None)
    payloads: Dict[str, Dict[str, Any]] = {}
    pending: List[MatrixCell] = []
    for cell in cells:
        if store is not None and store.has(cell.cell_id):
            payload = store.load(cell.cell_id)
            # A stored payload records which cell produced it; a mismatch
            # means the file belongs to a *different* id that sanitised to
            # the same name in some earlier matrix — resuming from it
            # would silently serve the wrong results.
            stored_id = payload.get("cell_id", cell.cell_id)
            if stored_id != cell.cell_id:
                raise ConfigurationError(
                    f"result file for {cell.cell_id!r} was written by "
                    f"{stored_id!r}; delete it to recompute")
            payloads[cell.cell_id] = payload
            notify(cell.cell_id, "cached")
        else:
            pending.append(cell)

    def finish(cell: MatrixCell, payload: Dict[str, Any]) -> None:
        if store is not None:
            store.save(cell.cell_id, payload)
        payloads[cell.cell_id] = payload
        notify(cell.cell_id, "done")

    if workers == 0 or len(pending) <= 1:
        for cell in pending:
            notify(cell.cell_id, "start")
            finish(cell, execute_cell(cell))
    else:
        pending, arenas = _share_field_arenas(pending)
        try:
            with ProcessPoolExecutor(
                    max_workers=min(workers, len(pending))) as pool:
                futures = {}
                for cell in pending:
                    notify(cell.cell_id, "queued")
                    futures[pool.submit(execute_cell, cell)] = cell
                remaining = set(futures)
                while remaining:
                    done, remaining = wait(remaining,
                                           return_when=FIRST_COMPLETED)
                    for future in done:
                        finish(futures[future], future.result())
        finally:
            for arena in arenas:
                arena.close()

    return {cell_id: payloads[cell_id] for cell_id in ids}


def _share_field_arenas(pending: Sequence[MatrixCell]
                        ) -> "tuple[List[MatrixCell], List[FieldArena]]":
    """Build one shared heuristic-field arena per distinct pending grid.

    Workers running cells on the same floor would each re-flood the same
    per-goal BFS fields and hold private copies (the dominant share of a
    small cell's setup and RSS).  Instead the parent floods each distinct
    grid's goal fields — rack homes and picker stations, the only goals
    planners route to — once into shared memory, and tags every cell with
    its grid's handle; workers attach read-only.  Paper-scale
    unobstructed floors use zero-footprint lazy Manhattan fields, so
    those grids are skipped.  Returns the (possibly re-tagged) cells and
    the owned arenas the caller must close after the pool drains; any
    failure to build simply leaves cells untagged (workers flood locally,
    bit-identically).
    """
    arenas: List[FieldArena] = []
    handles: Dict[Any, Optional[FieldArenaHandle]] = {}
    tagged: List[MatrixCell] = []
    for cell in pending:
        layout = cell.scenario.layout()
        grid = layout.grid
        key = grid
        if key not in handles:
            handle = None
            if (grid.n_cells < PAPER_SCALE_MIN_CELLS
                    or grid.blocked_cells):
                try:
                    arena = FieldArena.build(
                        grid, tuple(layout.rack_homes)
                        + tuple(layout.picker_locations))
                    arenas.append(arena)
                    handle = arena.handle()
                except (OSError, ValueError):
                    handle = None
            handles[key] = handle
        handle = handles[key]
        tagged.append(cell if handle is None
                      else replace(cell, arena_handle=handle))
    return tagged, arenas
