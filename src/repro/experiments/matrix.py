"""``python -m repro matrix`` — run a (scenario × planner) grid in parallel.

The scenario axis comes from the family registry in
:mod:`repro.workloads.datasets`; the planner axis defaults to the paper's
five.  Finished cells stream into ``<results-dir>/<matrix-name>/`` and a
re-run skips everything already on disk::

    python -m repro matrix --family table2 --workers 4 --results-dir results
    python -m repro matrix --family fleet-ladder --planners NTP,EATP --scale 0.3
    python -m repro matrix --family obstructed --workers 2 --fresh
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

from ..workloads.datasets import SCENARIO_FAMILIES, scenario_family
from .harness import DEFAULT_PLANNERS, plan_cells, run_matrix
from .reporting import format_table
from .store import ResultStore, open_store


def render_matrix_summary(payloads: Dict[str, dict], title: str) -> str:
    """One row per scenario, one makespan column per planner."""
    scenarios: List[str] = []
    planners: List[str] = []
    makespans: Dict[str, Dict[str, int]] = {}
    for payload in payloads.values():
        scenario, planner = payload["scenario"], payload["planner"]
        if scenario not in scenarios:
            scenarios.append(scenario)
        if planner not in planners:
            planners.append(planner)
        makespans.setdefault(scenario, {})[planner] = (
            payload["result"]["metrics"]["makespan"])
    rows = []
    for scenario in scenarios:
        row = [scenario]
        for planner in planners:
            value = makespans[scenario].get(planner)
            row.append(f"{value:,}" if value is not None else "-")
        rows.append(row)
    return format_table(["Scenario"] + planners, rows, title=title)


def render_slowest_cells(payloads: Dict[str, dict], top: int = 5) -> str:
    """The ``top`` slowest cells by wall-clock — the engine-regression
    tripwire a sweep prints without anyone opening the results dir.

    Cells stored by releases that predate per-cell timing (no ``wall_s``)
    are skipped; cached cells report the wall-clock of the run that
    produced them.
    """
    timed = [(payload["wall_s"], cell_id)
             for cell_id, payload in payloads.items()
             if payload.get("wall_s") is not None]
    if not timed:
        return "(no per-cell wall-clock recorded)"
    timed.sort(reverse=True)
    rows = [[cell_id, f"{wall:.2f}s"] for wall, cell_id in timed[:top]]
    return format_table(["Slowest cells", "Wall"], rows,
                        title=f"Per-cell wall-clock (top {min(top, len(timed))} "
                              f"of {len(timed)})")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--family", default="table2",
                        choices=sorted(SCENARIO_FAMILIES),
                        help="scenario family to sweep (registry name)")
    parser.add_argument("--planners", default=",".join(DEFAULT_PLANNERS),
                        help="comma-separated planner names")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="scenario scale multiplier")
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes (0 = serial)")
    parser.add_argument("--results-dir", default=None,
                        help="root directory for per-cell JSON results; "
                             "cells already on disk are not re-run")
    parser.add_argument("--fresh", action="store_true",
                        help="ignore (delete) cached cells before running")
    args = parser.parse_args(argv)

    scenarios = scenario_family(args.family, scale=args.scale)
    planners = tuple(p.strip() for p in args.planners.split(",") if p.strip())
    cells = plan_cells(scenarios, planners)
    matrix_name = f"{args.family}-s{args.scale:g}"
    store: Optional[ResultStore] = open_store(args.results_dir, matrix_name)
    if store is not None and args.fresh:
        for cell in cells:
            store.delete(cell.cell_id)

    def progress(cell_id: str, status: str) -> None:
        print(f"  [{status:>6}] {cell_id}", file=sys.stderr, flush=True)

    started = time.perf_counter()
    payloads = run_matrix(cells, workers=args.workers, store=store,
                          progress=progress)
    elapsed = time.perf_counter() - started

    title = (f"Matrix {matrix_name}: {len(cells)} cells, "
             f"{args.workers or 1} worker(s), {elapsed:.1f}s")
    print(render_matrix_summary(payloads, title))
    print(render_slowest_cells(payloads))
    if store is not None:
        print(f"cells stored under {store.root}/")


if __name__ == "__main__":
    main()
